//! The paper's headline qualitative results, asserted at Test scale so the
//! full suite stays fast. The bench harness reproduces the quantitative
//! versions at Small/Full scale (see EXPERIMENTS.md).

use vlt::core::{System, SystemConfig};
use vlt::workloads::{workload, Scale};

fn cycles(cfg: SystemConfig, name: &str, threads: usize) -> u64 {
    let w = workload(name).unwrap();
    let built = w.build(threads, Scale::Test);
    let label = cfg.name.clone();
    let mut sys = System::new(cfg, &built.program, threads);
    let r = sys.run(500_000_000).unwrap_or_else(|e| panic!("{name} on {label}: {e}"));
    (built.verifier)(sys.funcsim()).unwrap_or_else(|e| panic!("{name} on {label}: {e}"));
    r.cycles
}

/// Figure 1 shape: long-vector apps scale with lanes, scalar apps do not.
#[test]
fn long_vectors_scale_scalar_apps_do_not() {
    let mxm_speedup = cycles(SystemConfig::base(1), "mxm", 1) as f64
        / cycles(SystemConfig::base(8), "mxm", 1) as f64;
    assert!(mxm_speedup > 2.0, "mxm 1->8 lanes: {mxm_speedup:.2}");

    let radix_speedup = cycles(SystemConfig::base(1), "radix", 1) as f64
        / cycles(SystemConfig::base(8), "radix", 1) as f64;
    assert!(
        (0.9..1.1).contains(&radix_speedup),
        "radix must not depend on lanes: {radix_speedup:.2}"
    );
}

/// Figure 3 shape: VLT accelerates the short-vector applications, and four
/// threads beat two.
#[test]
fn vlt_accelerates_short_vector_apps() {
    for name in ["mpenc", "trfd", "multprec", "bt"] {
        let base = cycles(SystemConfig::base(8), name, 1);
        let v2 = cycles(SystemConfig::v2_cmp(), name, 2);
        let v4 = cycles(SystemConfig::v4_cmp(), name, 4);
        let s2 = base as f64 / v2 as f64;
        let s4 = base as f64 / v4 as f64;
        assert!(s2 > 1.05, "{name}: VLT-2 speedup {s2:.2}");
        assert!(s4 > s2 * 0.95, "{name}: VLT-4 ({s4:.2}) should not trail VLT-2 ({s2:.2})");
    }
}

/// Figure 5 shape: V2-SMT tracks V2-CMP; V4-SMT trails V4-CMT.
#[test]
fn smt_design_points_behave_as_in_figure5() {
    let mut smt_close = 0;
    for name in ["trfd", "multprec"] {
        let v2_cmp = cycles(SystemConfig::v2_cmp(), name, 2);
        let v2_smt = cycles(SystemConfig::v2_smt(), name, 2);
        if (v2_smt as f64) < 1.35 * v2_cmp as f64 {
            smt_close += 1;
        }
        let v4_cmt = cycles(SystemConfig::v4_cmt(), name, 4);
        let v4_smt = cycles(SystemConfig::v4_smt(), name, 4);
        assert!(
            v4_smt as f64 > 0.95 * v4_cmt as f64,
            "{name}: V4-SMT ({v4_smt}) cannot beat V4-CMT ({v4_cmt}) meaningfully"
        );
    }
    assert!(smt_close >= 1, "V2-SMT should track V2-CMP on at least one app");
}

/// Figure 6 shape: lane threads beat the CMT on high-TLP/low-ILP apps and
/// only tie on barnes.
#[test]
fn lane_threads_vs_cmt_shape() {
    let ocean_speedup = cycles(SystemConfig::cmt(), "ocean", 4) as f64
        / cycles(SystemConfig::v4_cmt_lane_threads(), "ocean", 8) as f64;
    assert!(ocean_speedup > 1.1, "ocean lanes vs CMT: {ocean_speedup:.2}");

    let barnes_speedup = cycles(SystemConfig::cmt(), "barnes", 4) as f64
        / cycles(SystemConfig::v4_cmt_lane_threads(), "barnes", 8) as f64;
    assert!(
        barnes_speedup < ocean_speedup,
        "barnes ({barnes_speedup:.2}) must profit less than ocean ({ocean_speedup:.2})"
    );
}
