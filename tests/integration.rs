//! Cross-crate integration: assemble → functional execution → timing
//! simulation → verification, through the public facade only.

use vlt::core::{System, SystemConfig};
use vlt::exec::FuncSim;
use vlt::isa::asm::assemble;
use vlt::isa::disasm::disasm_text;
use vlt::workloads::{suite, Scale};

#[test]
fn assemble_disassemble_reassemble() {
    let src = r#"
        li       x1, 16
        setvl    x2, x1
        vid      v1
        vadd.vv  v2, v1, v1
        vredsum  x3, v2
        halt
    "#;
    let p1 = assemble(src).unwrap();
    // Disassemble and reassemble: identical encodings.
    let listing = disasm_text(&p1.text, vlt::isa::TEXT_BASE);
    let stripped: String =
        listing.lines().map(|l| l.split_once(": ").unwrap().1).collect::<Vec<_>>().join("\n");
    let p2 = assemble(&stripped).unwrap();
    assert_eq!(p1.text, p2.text);
}

#[test]
fn functional_and_timed_agree_on_results() {
    // The same program produces the same architectural state whether run
    // functionally or under the timing model.
    let src = r#"
        .data
    out:
        .zero 8
        .text
        li      x1, 100
        li      x2, 0
        li      x3, 0
    loop:
        add     x2, x2, x3
        addi    x3, x3, 1
        blt     x3, x1, loop
        la      x4, out
        sd      x2, 0(x4)
        halt
    "#;
    let prog = assemble(src).unwrap();

    let mut fsim = FuncSim::new(&prog, 1);
    fsim.run_to_completion(100_000).unwrap();
    let out = prog.symbol("out").unwrap();
    let functional = fsim.mem.read_u64(out);

    let mut sys = System::new(SystemConfig::base(8), &prog, 1);
    sys.run(1_000_000).unwrap();
    let timed = sys.funcsim().mem.read_u64(out);

    assert_eq!(functional, 4950);
    assert_eq!(functional, timed);
}

#[test]
fn every_workload_verifies_on_its_figure_configurations() {
    // Vector workloads on base and V2-CMP; scalar workloads on CMT and the
    // lanes — the exact configurations the figures use.
    for w in suite() {
        if w.vectorizable() {
            let b1 = w.build(1, Scale::Test);
            let mut sys = System::new(SystemConfig::base(8), &b1.program, 1);
            sys.run(200_000_000).unwrap_or_else(|e| panic!("{} base: {e}", w.name()));
            (b1.verifier)(sys.funcsim()).unwrap_or_else(|e| panic!("{} base: {e}", w.name()));

            let b2 = w.build(2, Scale::Test);
            let mut sys = System::new(SystemConfig::v2_cmp(), &b2.program, 2);
            sys.run(200_000_000).unwrap_or_else(|e| panic!("{} v2: {e}", w.name()));
            (b2.verifier)(sys.funcsim()).unwrap_or_else(|e| panic!("{} v2: {e}", w.name()));
        } else {
            let b1 = w.build(4, Scale::Test);
            let mut sys = System::new(SystemConfig::cmt(), &b1.program, 4);
            sys.run(200_000_000).unwrap_or_else(|e| panic!("{} cmt: {e}", w.name()));
            (b1.verifier)(sys.funcsim()).unwrap_or_else(|e| panic!("{} cmt: {e}", w.name()));

            let b2 = w.build(8, Scale::Test);
            let mut sys = System::new(SystemConfig::v4_cmt_lane_threads(), &b2.program, 8);
            sys.run(200_000_000).unwrap_or_else(|e| panic!("{} lanes: {e}", w.name()));
            (b2.verifier)(sys.funcsim()).unwrap_or_else(|e| panic!("{} lanes: {e}", w.name()));
        }
    }
}

#[test]
fn simulation_is_deterministic_across_configs() {
    let w = vlt::workloads::workload("trfd").unwrap();
    for (cfg, threads) in
        [(SystemConfig::base(8), 1usize), (SystemConfig::v2_smt(), 2), (SystemConfig::v4_cmt(), 4)]
    {
        let built = w.build(threads, Scale::Test);
        let a = System::new(cfg.clone(), &built.program, threads).run(200_000_000).unwrap();
        let b = System::new(cfg.clone(), &built.program, threads).run(200_000_000).unwrap();
        assert_eq!(a.cycles, b.cycles, "{} nondeterministic", cfg.name);
        assert_eq!(a.utilization, b.utilization, "{} nondeterministic", cfg.name);
    }
}

#[test]
fn area_model_and_configs_are_consistent() {
    // Every timed configuration has a defined area.
    use vlt::area::{AreaModel, ConfigArea, VltDesign};
    let m = AreaModel::default();
    for d in VltDesign::ALL {
        let row = ConfigArea::compute(*d, &m, 8);
        assert!(row.area > m.base_processor(8));
        assert!(row.pct_increase > 0.0);
    }
}
