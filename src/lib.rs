#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # vlt — Vector Lane Threading, reproduced
//!
//! Facade crate re-exporting the full VLT reproduction stack. See the
//! individual crates for detail:
//!
//! * [`isa`] — the Cray-X1-flavoured vector ISA and assembler,
//! * [`exec`] — the functional simulator (architectural state, traces),
//! * [`mem`] — caches, the banked L2, and main memory,
//! * [`scalar`] — out-of-order superscalar / SMT and in-order lane cores,
//! * [`core`] — the vector unit, VLT, and the full-system timing simulator,
//! * [`stats`] — utilization accounting and reporting,
//! * [`workloads`] — the nine applications from the paper's Table 4,
//! * [`area`] — the Alpha-derived area model (Tables 1 and 2),
//! * [`verify`] — the `vlint` static verifier and lint pass (DESIGN.md §7).

pub use vlt_area as area;
pub use vlt_core as core;
pub use vlt_exec as exec;
pub use vlt_isa as isa;
pub use vlt_mem as mem;
pub use vlt_scalar as scalar;
pub use vlt_stats as stats;
pub use vlt_verify as verify;
pub use vlt_workloads as workloads;
