//! `vlt-as` — assemble a VLT-ISA source file.
//!
//! ```text
//! vlt-as program.s            # assemble, report sizes
//! vlt-as program.s -o out.bin # also write the raw text segment
//! vlt-as program.s --list     # print the encoded listing
//! ```

use std::process::ExitCode;

use vlt::isa::asm::assemble;
use vlt::isa::disasm::disasm_text;
use vlt::isa::TEXT_BASE;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input = None;
    let mut output = None;
    let mut list = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" => {
                i += 1;
                output = args.get(i).cloned();
            }
            "--list" => list = true,
            "-h" | "--help" => {
                eprintln!("usage: vlt-as <program.s> [-o out.bin] [--list]");
                return ExitCode::SUCCESS;
            }
            other => input = Some(other.to_string()),
        }
        i += 1;
    }
    let Some(input) = input else {
        eprintln!("usage: vlt-as <program.s> [-o out.bin] [--list]");
        return ExitCode::FAILURE;
    };

    let src = match std::fs::read_to_string(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("vlt-as: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let prog = match assemble(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("vlt-as: {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{input}: {} instructions, {} data bytes, {} symbols",
        prog.text.len(),
        prog.data.len(),
        prog.symbols.len()
    );
    if list {
        print!("{}", disasm_text(&prog.text, TEXT_BASE));
    }
    if let Some(out) = output {
        let bytes: Vec<u8> = prog.text.iter().flat_map(|w| w.to_le_bytes()).collect();
        if let Err(e) = std::fs::write(&out, bytes) {
            eprintln!("vlt-as: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {out}");
    }
    ExitCode::SUCCESS
}
