//! `vlt-dis` — disassemble a raw VLT-ISA text segment (as written by
//! `vlt-as -o`) or re-list an assembly source.
//!
//! ```text
//! vlt-dis out.bin             # disassemble raw 32-bit words
//! vlt-dis program.s --asm     # assemble then list (with addresses)
//! ```

use std::process::ExitCode;

use vlt::isa::asm::assemble;
use vlt::isa::disasm::disasm_text;
use vlt::isa::TEXT_BASE;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input = None;
    let mut from_asm = false;
    for a in &args {
        match a.as_str() {
            "--asm" => from_asm = true,
            "-h" | "--help" => {
                eprintln!("usage: vlt-dis <text.bin | program.s --asm>");
                return ExitCode::SUCCESS;
            }
            other => input = Some(other.to_string()),
        }
    }
    let Some(input) = input else {
        eprintln!("usage: vlt-dis <text.bin | program.s --asm>");
        return ExitCode::FAILURE;
    };

    let text: Vec<u32> = if from_asm {
        let src = match std::fs::read_to_string(&input) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("vlt-dis: cannot read {input}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match assemble(&src) {
            Ok(p) => p.text,
            Err(e) => {
                eprintln!("vlt-dis: {input}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let bytes = match std::fs::read(&input) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("vlt-dis: cannot read {input}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if bytes.len() % 4 != 0 {
            eprintln!("vlt-dis: {input}: length is not a multiple of 4");
            return ExitCode::FAILURE;
        }
        bytes.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect()
    };

    print!("{}", disasm_text(&text, TEXT_BASE));
    ExitCode::SUCCESS
}
