//! `vlt-run` — assemble and simulate a VLT-ISA program on any of the
//! paper's machine configurations.
//!
//! ```text
//! vlt-run program.s                          # base 8-lane, 1 thread
//! vlt-run program.s --config v2-cmp -t 2     # 2 VLT threads
//! vlt-run program.s --config v4-cmt-lanes -t 8
//! vlt-run program.s --lanes 4                # base with 4 lanes
//! vlt-run program.s --functional             # no timing model
//! ```
//!
//! Prints cycles, instructions, IPC, datapath utilization, and region
//! attribution.

use std::process::ExitCode;

use vlt::core::{System, SystemConfig};
use vlt::exec::FuncSim;
use vlt::isa::asm::assemble;

fn config_by_name(name: &str, lanes: usize) -> Option<SystemConfig> {
    Some(match name {
        "base" => SystemConfig::base(lanes),
        "v2-smt" => SystemConfig::v2_smt(),
        "v2-cmp" => SystemConfig::v2_cmp(),
        "v2-cmp-h" => SystemConfig::v2_cmp_h(),
        "v4-smt" => SystemConfig::v4_smt(),
        "v4-cmt" => SystemConfig::v4_cmt(),
        "v4-cmp" => SystemConfig::v4_cmp(),
        "v4-cmp-h" => SystemConfig::v4_cmp_h(),
        "cmt" => SystemConfig::cmt(),
        "v4-cmt-lanes" => SystemConfig::v4_cmt_lane_threads(),
        _ => return None,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input = None;
    let mut config = "base".to_string();
    let mut threads = 1usize;
    let mut lanes = 8usize;
    let mut functional = false;
    let mut max_cycles = 2_000_000_000u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--config" | "-c" => {
                i += 1;
                config = args.get(i).cloned().unwrap_or_default();
            }
            "--threads" | "-t" => {
                i += 1;
                threads = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(1);
            }
            "--lanes" => {
                i += 1;
                lanes = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(8);
            }
            "--max-cycles" => {
                i += 1;
                max_cycles = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(max_cycles);
            }
            "--functional" | "-f" => functional = true,
            "-h" | "--help" => {
                eprintln!(
                    "usage: vlt-run <program.s> [--config NAME] [--threads N] \
                     [--lanes N] [--functional] [--max-cycles N]\n\
                     configs: base v2-smt v2-cmp v2-cmp-h v4-smt v4-cmt v4-cmp \
                     v4-cmp-h cmt v4-cmt-lanes"
                );
                return ExitCode::SUCCESS;
            }
            other => input = Some(other.to_string()),
        }
        i += 1;
    }
    let Some(input) = input else {
        eprintln!("usage: vlt-run <program.s> [--config NAME] [--threads N] ... (see --help)");
        return ExitCode::FAILURE;
    };

    let src = match std::fs::read_to_string(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("vlt-run: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let prog = match assemble(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("vlt-run: {input}: {e}");
            return ExitCode::FAILURE;
        }
    };

    if functional {
        let mut sim = FuncSim::new(&prog, threads);
        match sim.run_to_completion(max_cycles) {
            Ok(s) => {
                println!("functional: {} instructions across {threads} thread(s)", s.insts);
                println!(
                    "vectorization: {:.1}% of operations, avg VL {:.1}",
                    s.pct_vectorization(),
                    s.avg_vl()
                );
            }
            Err(e) => {
                eprintln!("vlt-run: {e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    let Some(cfg) = config_by_name(&config, lanes) else {
        eprintln!("vlt-run: unknown config `{config}` (see --help)");
        return ExitCode::FAILURE;
    };
    let name = cfg.name.clone();
    let mut system = System::new(cfg, &prog, threads);
    match system.run(max_cycles) {
        Ok(r) => {
            println!("config {name}, {threads} thread(s):");
            println!("  cycles      : {}", r.cycles);
            println!("  instructions: {}", r.committed);
            println!("  IPC         : {:.2}", r.committed as f64 / r.cycles as f64);
            let u = r.utilization;
            if u.total() > 0 {
                println!(
                    "  datapaths   : {:.1}% busy, {:.1}% partly idle, {:.1}% stalled, {:.1}% idle",
                    100.0 * u.busy as f64 / u.total() as f64,
                    100.0 * u.partly_idle as f64 / u.total() as f64,
                    100.0 * u.stalled as f64 / u.total() as f64,
                    100.0 * u.all_idle as f64 / u.total() as f64
                );
            }
            for (region, cycles) in &r.region_cycles {
                println!("  region {region}    : {cycles} cycles");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("vlt-run: {e}");
            ExitCode::FAILURE
        }
    }
}
