# stride_stencil: out[i] = even[i] + odd[i] over an interleaved array.
#
# Two strided loads (`vlds`, 16-byte stride) split an interleaved stream
# into its even and odd phases; the sum is stored unit-stride. `vlint`
# checks the full strided footprint (first and last element) against the
# data image, so shrinking `xs` or doubling the stride trips `oob-read`.

    .data
xs: .dword 0, 1, 2, 3, 4, 5, 6, 7
    .zero 192                  # 32 dwords, 16 interleaved pairs
outp:
    .zero 128                  # 16 dwords

    .text
    .eq vlint.threads, 1      # single-thread demo (for vlint --races)
    li      x3, 16
    setvl   x0, x3             # 16 pairs
    la      x20, xs
    li      x4, 16             # stride: every other dword
    vlds    v1, x20, x4        # even phase: xs[0], xs[2], ...
    addi    x5, x20, 8
    vlds    v2, x5, x4         # odd phase:  xs[1], xs[3], ...
    vadd.vv v3, v1, v2
    la      x21, outp
    vst     v3, x21
    halt
