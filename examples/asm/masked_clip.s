# masked_clip: out[i] = min(x[i], 100) via a compare-and-merge mask.
#
# Demonstrates the mask pipeline `vlint` tracks: `vslt.vv` defines `vm`,
# `vmerge` consumes it. Remove the compare and the verifier reports
# `mask-reset` (merge with the mask still at its reset value).

    .data
xs: .dword 3, 250, 17, 999, 42, 100, 101, 0
    .zero 192                  # 32 dwords total
outp:
    .zero 256

    .text
    .eq vlint.threads, 1      # single-thread demo (for vlint --races)
    li      x3, 32
    setvl   x0, x3             # single thread, one full strip
    la      x20, xs
    vld     v1, x20            # x
    vxor.vv v2, v2, v2         # zero idiom: v2 = 0
    li      x5, 100
    vadd.vs v2, v2, x5         # splat threshold
    vslt.vv v2, v1             # vm[e] = (100 < x[e])  -> lanes to clip
    vmerge  v3, v2, v1         # clip ? threshold : x
    la      x21, outp
    vst     v3, x21
    halt
