# table_gather: content-steered gather + in-slice permutation scatter.
#
# The addresses here are *data*, not address arithmetic: `keys` holds
# byte offsets into `vals` (the gather is steered by table content), and
# `perm` holds each thread's slot order inside its own 32-byte slice of
# `out`. A plain per-thread symbolic walk cannot bound either access —
# the content-aware footprint analysis can, because both tables are
# read-only and their value images are known:
#
#   * `keys[i] ∈ {0, 8, ..., 120}`, so the gather stays inside `vals`;
#   * `perm[i] ∈ {0, 8, 16, 24}`, so each scatter lane lands inside the
#     thread's own slice `out[4*tid .. 4*tid+4]` — per-thread write
#     hulls are disjoint, and the partition lemma discharges every race
#     candidate (`vlint --races examples/asm/table_gather.s` is clean
#     with zero allow annotations).
#
# Swap `slli x4, x10, 5` for `slli x4, x10, 3` and the slices overlap:
# `--races` reports the write-write conflict.

    .data
keys:                          # byte offsets into vals: 8 * {11,0,8,3,15,6,1,13,4,9,2,12,7,14,5,10}
    .dword 88, 0, 64, 24, 120, 48, 8, 104
    .dword 32, 72, 16, 96, 56, 112, 40, 80
vals:                          # the table the gather reads
    .dword 101, 102, 103, 104, 105, 106, 107, 108
    .dword 109, 110, 111, 112, 113, 114, 115, 116
perm:                          # per-thread slot order: each row permutes {0,8,16,24}
    .dword 16, 0, 24, 8
    .dword 8, 24, 0, 16
    .dword 24, 16, 8, 0
    .dword 0, 8, 16, 24
out:
    .zero 128                  # 4 dwords per thread

    .text
    .eq vlint.threads, 4       # thread count for `vlint --races`
    li      x9, 4
    vltcfg  x9
    tid     x10
    slli    x4, x10, 5         # this thread's 32-byte slice offset
    li      x11, 4
    setvl   x2, x11            # four lanes per thread

    la      x20, keys
    add     x5, x20, x4
    vld     v1, x5             # my four key offsets (content: [0, 120])
    la      x21, vals
    vldx    v2, x21, v1        # gather vals[keys[i] / 8]
    vadd.vv v3, v2, v2         # the "work": double each value

    la      x22, perm
    add     x6, x22, x4
    vld     v4, x6             # my slot order (content: {0,8,16,24})
    la      x23, out
    add     x7, x23, x4        # base of my out slice
    vstx    v3, x7, v4         # permutation scatter inside my slice
    halt
