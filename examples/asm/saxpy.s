# saxpy: y[i] += a * x[i], strip-mined over four VLT threads.
#
# The canonical VLT shape: `vltcfg` partitions the vector register file,
# each thread owns a contiguous range of elements, and a converged
# `barrier` closes the parallel section. Passes `vlint` with zero
# findings; try seeding a defect (drop the `setvl`, typo a register) and
# re-running `vlint examples/asm/saxpy.s`.

    .data
xs: .double 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0
    .zero 448                  # 64 doubles total
ys: .double 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0
    .zero 448

    .text
    .eq vlint.threads, 4       # thread count for `vlint --races`
    li      x9, 4
    vltcfg  x9                 # 4 threads, MVL 16 each
    tid     x10
    li      x11, 16            # elements per thread
    mul     x12, x10, x11      # lo
    add     x13, x12, x11      # hi
    la      x20, xs
    la      x21, ys
    li      x4, 2
    fcvt.f.x f1, x4            # a = 2.0
    mv      x14, x12           # i
loop:
    sub     x3, x13, x14
    setvl   x2, x3             # vl = min(remaining, MVL)
    slli    x4, x14, 3
    add     x5, x20, x4
    vld     v1, x5             # x[i..]
    add     x6, x21, x4
    vld     v2, x6             # y[i..]
    vfma.vs v2, v1, f1         # y += a*x
    vst     v2, x6
    add     x14, x14, x2
    blt     x14, x13, loop
    barrier
    halt
