# dot: two-phase reduction, dot = sum(x[i] * y[i]).
#
# Phase 1: each of the four threads reduces its own element range with
# `vfredsum` and publishes a partial to `partials[tid]`. Phase 2 (after
# the barrier): thread 0 loads the four partials as a tiny vector and
# reduces them to the final scalar. Clean under `vlint`, including the
# barrier-epoch race analysis (`vlint --races examples/asm/dot.s`) —
# the partials handoff is exactly the cross-thread communication the
# barrier licenses. Delete the `barrier` (or store every partial to
# `partials[0]`) and `--races` reports the conflict.

    .data
xs: .double 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0
    .zero 448                  # 64 doubles total
ys: .double 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0
    .zero 448
partials:
    .zero 32                   # one double per thread
result:
    .zero 8

    .text
    .eq vlint.threads, 4       # thread count for `vlint --races`
    li      x9, 4
    vltcfg  x9
    tid     x10
    li      x11, 16            # elements per thread
    mul     x12, x10, x11
    slli    x4, x12, 3
    la      x20, xs
    la      x21, ys
    add     x5, x20, x4        # &x[lo]
    add     x6, x21, x4        # &y[lo]
    setvl   x2, x11            # whole range fits one strip (MVL = 16)
    vld     v1, x5
    vld     v2, x6
    vfmul.vv v3, v1, v2
    vfredsum f1, v3            # partial dot
    la      x7, partials
    slli    x4, x10, 3
    add     x7, x7, x4
    fsd     f1, 0(x7)          # partials[tid]
    barrier

    bnez    x10, done          # only thread 0 folds the partials
    li      x3, 4
    setvl   x0, x3
    la      x7, partials
    vld     v4, x7
    vfredsum f2, v4
    la      x8, result
    fsd     f2, 0(x8)
done:
    halt
