//! The paper's headline effect, reproduced on the `mpenc` workload:
//! a short-vector application wastes most of an 8-lane vector unit, and
//! vector lane threading recovers the loss by running 2 or 4 threads on
//! lane partitions.
//!
//! ```text
//! cargo run --example short_vectors --release
//! ```

use vlt::core::{System, SystemConfig};
use vlt::workloads::{workload, Scale};

fn run(cfg: SystemConfig, threads: usize) -> (String, u64, f64) {
    let w = workload("mpenc").unwrap();
    let built = w.build(threads, Scale::Small);
    let name = cfg.name.clone();
    let mut system = System::new(cfg, &built.program, threads);
    let r = system.run(2_000_000_000).expect("simulates");
    (built.verifier)(system.funcsim()).expect("verifies");
    (name, r.cycles, r.utilization.busy_fraction())
}

fn main() {
    println!("mpenc (video encoding, avg VL ~11) across VLT configurations:\n");
    let (_, base, base_busy) = run(SystemConfig::base(8), 1);
    println!("base   : {base:>9} cycles  (busy datapaths {:.1}%)", 100.0 * base_busy);
    for (cfg, threads) in
        [(SystemConfig::v2_cmp(), 2), (SystemConfig::v4_cmt(), 4), (SystemConfig::v4_cmp(), 4)]
    {
        let (name, cycles, busy) = run(cfg, threads);
        println!(
            "{name:<7}: {cycles:>9} cycles  (busy datapaths {:.1}%)  speedup {:.2}x",
            100.0 * busy,
            base as f64 / cycles as f64
        );
    }
    println!("\nThe busy fraction rises and cycles fall as idle lanes are");
    println!("recovered by additional vector threads (paper Figures 3 and 4).");
}
