//! Bring your own kernel: write a VLT-ISA SPMD program with barriers and a
//! `vltcfg` lane partition, then sweep it across configurations.
//!
//! The kernel below computes a fused dot-product partial sum per thread:
//! each of two VLT threads reduces half of a 2048-element array, then
//! thread 0 combines the partials after a barrier.
//!
//! ```text
//! cargo run --example custom_kernel --release
//! ```

use vlt::core::{System, SystemConfig};
use vlt::isa::asm::assemble;

const N: usize = 2048;

fn kernel(threads: usize) -> vlt::isa::Program {
    let vals: Vec<String> = (0..N).map(|i| format!("{}.5", i % 17)).collect();
    let src = format!(
        r#"
        .data
    xs:
        .double {vals}
    partial:
        .zero 64
    total:
        .zero 8
        .text
        li       x9, {threads}
        vltcfg   x9
        tid      x10
        li       x11, {per_thread}
        mul      x12, x10, x11
        slli     x13, x12, 3
        la       x14, xs
        add      x14, x14, x13     # my slice
        fcvt.f.x f1, x0            # acc = 0.0
        li       x15, 0
    loop:
        sub      x3, x11, x15
        setvl    x2, x3
        vld      v1, x14
        vfmul.vv v2, v1, v1        # x^2
        vfredsum f2, v2
        fadd     f1, f1, f2
        slli     x4, x2, 3
        add      x14, x14, x4
        add      x15, x15, x2
        blt      x15, x11, loop
        la       x16, partial
        slli     x4, x10, 3
        add      x16, x16, x4
        fsd      f1, 0(x16)
        barrier
        bnez     x10, done         # thread 0 combines
        la       x16, partial
        fcvt.f.x f3, x0
        li       x5, 0
        li       x6, {threads}
    combine:
        fld      f4, 0(x16)
        fadd     f3, f3, f4
        addi     x16, x16, 8
        addi     x5, x5, 1
        blt      x5, x6, combine
        la       x16, total
        fsd      f3, 0(x16)
    done:
        barrier
        halt
    "#,
        vals = vals.join(", "),
        per_thread = N / threads,
    );
    assemble(&src).expect("kernel assembles")
}

fn main() {
    for (cfg, threads) in
        [(SystemConfig::base(8), 1), (SystemConfig::v2_cmp(), 2), (SystemConfig::v4_cmt(), 4)]
    {
        let prog = kernel(threads);
        let name = cfg.name.clone();
        let mut sys = System::new(cfg, &prog, threads);
        let r = sys.run(100_000_000).expect("simulates");
        let total = sys.funcsim().mem.read_f64(prog.symbol("total").unwrap());
        println!("{name:<7} x{threads}: sum(x^2) = {total:.2} in {:>7} cycles", r.cycles);
    }
}
