//! Quickstart: assemble a small vector kernel, run it functionally, then
//! time it on the base 8-lane vector processor.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use vlt::core::{System, SystemConfig};
use vlt::exec::FuncSim;
use vlt::isa::asm::assemble;

fn main() {
    // A tiny kernel: y[i] = 3*x[i] + y[i] over 64 elements.
    let program = assemble(
        r#"
        .data
    xs: .double 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0
        .zero 448              # pad to 64 elements
    ys: .zero 512
        .text
        li       x1, 64
        setvl    x2, x1        # vl = 64
        li       x3, 3
        fcvt.f.x f1, x3        # a = 3.0
        la       x4, xs
        la       x5, ys
        vld      v1, x4        # x
        vld      v2, x5        # y (zeros)
        vfma.vs  v2, v1, f1    # y += a*x
        vst      v2, x5
        halt
    "#,
    )
    .expect("kernel assembles");

    // 1. Functional execution: architecturally exact, no timing.
    let mut sim = FuncSim::new(&program, 1);
    let summary = sim.run_to_completion(100_000).expect("runs to completion");
    let ys = program.symbol("ys").unwrap();
    println!("functional: {} instructions", summary.insts);
    for i in 0..8 {
        println!("  y[{i}] = {}", sim.mem.read_f64(ys + 8 * i));
    }

    // 2. Cycle-level timing on the base vector processor (Table 3).
    let mut system = System::new(SystemConfig::base(8), &program, 1);
    let result = system.run(1_000_000).expect("simulates");
    println!(
        "timed: {} cycles, {} instructions committed, {:.1}% datapaths busy",
        result.cycles,
        result.committed,
        100.0 * result.utilization.busy_fraction()
    );
}
