//! Phase analysis: sample the datapath utilization over time while a
//! partially-vectorized workload runs, and render an ASCII timeline —
//! the per-phase view behind the paper's Figure 4 aggregates.
//!
//! ```text
//! cargo run --example utilization_timeline --release
//! ```

use vlt::core::{System, SystemConfig};
use vlt::workloads::{workload, Scale};

fn main() {
    let w = workload("multprec").unwrap();
    let built = w.build(1, Scale::Small);
    let mut sys = System::new(SystemConfig::base(8), &built.program, 1);
    let (result, samples) = sys.run_sampled(2_000_000_000, 512).expect("simulates");
    (built.verifier)(sys.funcsim()).expect("verifies");

    println!("multprec on the base 8-lane processor: {} cycles\n", result.cycles);
    println!("cycle      region  busy% of interval (24 datapaths)  |bar|");
    let mut prev = samples[0];
    for s in samples.iter().skip(1) {
        let dp_cycles = (s.cycle - prev.cycle) * 24;
        let busy = s.utilization.busy - prev.utilization.busy;
        let stalled = s.utilization.stalled - prev.utilization.stalled;
        let busy_pct = 100.0 * busy as f64 / dp_cycles as f64;
        let stall_pct = 100.0 * stalled as f64 / dp_cycles as f64;
        let bar: String = std::iter::repeat_n('#', (busy_pct / 2.0) as usize).collect::<String>()
            + &std::iter::repeat_n('.', (stall_pct / 2.0) as usize).collect::<String>();
        println!(
            "{:>9}  r{}      {:5.1}% busy {:5.1}% stalled   |{bar}|",
            s.cycle, s.region, busy_pct, stall_pct
        );
        prev = *s;
    }
    println!("\n'#' = busy datapaths, '.' = stalled; watch the vector phases");
    println!("(region 1) light up and the serial tail (region 0) go dark.");
}
