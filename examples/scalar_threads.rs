//! VLT scalar-thread mode (paper §5, Figure 6): run 8 scalar threads of a
//! non-vectorizable application directly on the vector lanes — each lane a
//! 2-way in-order core — and compare against the CMT baseline (two 4-way
//! SMT cores, no vector unit).
//!
//! ```text
//! cargo run --example scalar_threads --release
//! ```

use vlt::core::{System, SystemConfig};
use vlt::workloads::{workload, Scale};

fn main() {
    for name in ["radix", "ocean", "barnes"] {
        let w = workload(name).unwrap();

        // CMT baseline: 4 threads on 2 wide OOO cores.
        let cmt = w.build(4, Scale::Small);
        let mut sys = System::new(SystemConfig::cmt(), &cmt.program, 4);
        let cmt_cycles = sys.run(2_000_000_000).expect("cmt simulates").cycles;
        (cmt.verifier)(sys.funcsim()).expect("cmt verifies");

        // VLT: 8 threads, one per lane.
        let vlt = w.build(8, Scale::Small);
        let mut sys = System::new(SystemConfig::v4_cmt_lane_threads(), &vlt.program, 8);
        let vlt_cycles = sys.run(2_000_000_000).expect("vlt simulates").cycles;
        (vlt.verifier)(sys.funcsim()).expect("vlt verifies");

        println!(
            "{name:<8} CMT(4 threads): {cmt_cycles:>9} cycles   VLT lanes(8 threads): {vlt_cycles:>9} cycles   VLT speedup {:.2}x",
            cmt_cycles as f64 / vlt_cycles as f64
        );
    }
    println!("\nMany simple cores beat few wide ones when per-thread ILP is low");
    println!("(radix, ocean); long divide chains favour the OOO cores (barnes).");
}
