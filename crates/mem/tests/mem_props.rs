//! Property tests on the memory hierarchy timing model.

use proptest::prelude::*;

use vlt_mem::{BankedL2, Cache, MemConfig, MemSystem};

proptest! {
    /// Completion times never precede the request plus the hit latency, and
    /// never exceed request + bank wait + miss path.
    #[test]
    fn l2_latency_bounds(addrs in proptest::collection::vec(0u64..10_000_000, 1..200)) {
        let cfg = MemConfig::default();
        let mut l2 = BankedL2::new(&cfg);
        for (now, a) in addrs.into_iter().enumerate() {
            let now = now as u64;
            let t = l2.access(a, false, now);
            prop_assert!(t >= now + cfg.l2_hit, "{t} < {now} + hit");
            // Worst case: waited for the bank, missed, and queued behind
            // every preceding line fill.
            prop_assert!(t <= now + l2.accesses * cfg.mem_line_cycles + cfg.l2_hit + cfg.l2_miss + l2.accesses);
        }
    }

    /// A second access to the same address at a later time is a hit.
    #[test]
    fn l2_second_access_hits(addr in 0u64..100_000_000) {
        let cfg = MemConfig::default();
        let mut l2 = BankedL2::new(&cfg);
        let t1 = l2.access(addr, false, 0);
        let t2 = l2.access(addr, false, t1 + 10);
        prop_assert_eq!(t2, t1 + 10 + cfg.l2_hit);
    }

    /// Cache stats always add up, and hit rate is within [0, 1].
    #[test]
    fn cache_stats_consistent(addrs in proptest::collection::vec(0u64..1_000_000, 1..500)) {
        let mut c = Cache::new(16 * 1024, 2, 64);
        for a in &addrs {
            c.access(*a);
        }
        prop_assert_eq!(c.hits + c.misses, addrs.len() as u64);
        prop_assert!((0.0..=1.0).contains(&c.hit_rate()));
    }

    /// The same access sequence always produces the same timings
    /// (determinism of the contention counters).
    #[test]
    fn hierarchy_is_deterministic(ops in proptest::collection::vec((0u64..1_000_000, any::<bool>()), 1..200)) {
        let run = || {
            let mut m = MemSystem::new(MemConfig::default(), 2, 8);
            let mut out = Vec::new();
            for (i, (addr, write)) in ops.iter().enumerate() {
                out.push(m.data_access(i % 2, *addr, *write, i as u64));
                out.push(m.l2_access(*addr ^ 0xABCD, *write, i as u64));
            }
            out
        };
        prop_assert_eq!(run(), run());
    }
}

#[test]
fn lane_icache_is_direct_mapped_and_small() {
    let mut m = MemSystem::new(MemConfig::default(), 1, 8);
    // 4 KB direct-mapped: two addresses 4 KB apart conflict.
    m.lane_inst_fetch(0, 0, 0x1000, 0);
    let warm = m.lane_inst_fetch(0, 0, 0x1000, 100);
    assert_eq!(warm, 101);
    m.lane_inst_fetch(0, 0, 0x2000, 200); // evicts 0x1000 (4 KB apart)
    let evicted = m.lane_inst_fetch(0, 0, 0x1000, 300);
    assert!(evicted > 301, "conflicting line must have been evicted");
}
