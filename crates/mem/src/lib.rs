#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # vlt-mem — the on-chip memory system
//!
//! Timing model for the memory hierarchy of the simulated vector processor
//! (paper §2, Table 3):
//!
//! * per-core L1 instruction and data caches (16 KB, 2-way),
//! * a unified 4 MB, 4-way associative L2, **16-way banked** with 8-byte
//!   word interleaving — strided and indexed vector accesses contend for
//!   banks exactly as in classic vector memory systems,
//! * main memory behind the L2 with a fixed miss penalty and a line-fill
//!   bandwidth limit,
//! * per-lane 4 KB instruction caches for VLT scalar-thread mode (§5).
//!
//! The model is *timing only*: data values live in the functional simulator
//! (`vlt_exec::Memory`). Contention is modeled with pipelined next-free
//! counters per bank/channel, which is deterministic and exact for
//! 1-access-per-cycle resources.

pub mod cache;
pub mod config;
pub mod l2;
pub mod net;
pub mod system;

pub use cache::Cache;
pub use config::MemConfig;
pub use l2::{BankEvent, BankedL2};
pub use net::{ClusterNet, NetConfig, NetStats};
pub use system::{MemStats, MemSystem};
