//! The multi-banked L2 cache and the main-memory channel behind it.
//!
//! Banks are interleaved at 8-byte word granularity — the classic vector
//! memory organization. Unit-stride element streams spread across all 16
//! banks; a stride equal to a multiple of `8 * banks` bytes serializes on a
//! single bank. Each bank is pipelined at one access per cycle.

use crate::cache::Cache;
use crate::config::MemConfig;

/// One observed L2 bank access, recorded only while event recording is
/// enabled (see [`BankedL2::set_recording`]). Purely observational: the
/// timeline exporter turns these into per-bank trace slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankEvent {
    /// Bank index the access landed in.
    pub bank: u32,
    /// Cycle the bank began servicing the access (after any conflict wait).
    pub start: u64,
    /// Cycle the data was ready (hit latency or full miss path).
    pub done: u64,
    /// True when the access waited for a busy bank.
    pub conflict: bool,
    /// True for writes.
    pub write: bool,
    /// True when the access missed to memory.
    pub miss: bool,
}

/// Word-interleaved, multi-banked L2 + main-memory channel timing model.
#[derive(Debug)]
pub struct BankedL2 {
    tags: Cache,
    /// Next cycle each bank can accept an access (pipelined 1/cycle).
    bank_free: Vec<u64>,
    /// Next cycle the memory channel can start a line fill.
    mem_free: u64,
    hit_latency: u64,
    miss_penalty: u64,
    mem_line_cycles: u64,
    banks: usize,
    /// Total accesses that had to wait for a busy bank.
    pub bank_conflicts: u64,
    /// Conflict count per bank (same events as `bank_conflicts`, split by
    /// the bank the access waited on).
    pub bank_conflict_counts: Vec<u64>,
    /// Total L2 accesses.
    pub accesses: u64,
    /// Accesses that missed to memory.
    pub misses: u64,
    /// When true, every access is appended to `events` (drained by the
    /// observer layer each cycle). Off by default: recording never affects
    /// timing, only whether the buffer fills.
    recording: bool,
    /// Recorded accesses since the last [`BankedL2::drain_events`] call.
    events: Vec<BankEvent>,
    /// What-if idealization: bank arbitration is free (accesses never wait
    /// for a busy bank and never occupy one). Hit/miss latency and the
    /// memory-channel serialization are unchanged, so the knob removes
    /// exactly the bank-conflict cost and nothing else.
    ideal: bool,
}

impl BankedL2 {
    /// Build from the memory configuration.
    pub fn new(cfg: &MemConfig) -> Self {
        assert!(cfg.l2_banks.is_power_of_two());
        BankedL2 {
            tags: Cache::new(cfg.l2_size, cfg.l2_assoc, cfg.l2_line),
            bank_free: vec![0; cfg.l2_banks],
            mem_free: 0,
            hit_latency: cfg.l2_hit,
            miss_penalty: cfg.l2_miss,
            mem_line_cycles: cfg.mem_line_cycles,
            banks: cfg.l2_banks,
            bank_conflicts: 0,
            bank_conflict_counts: vec![0; cfg.l2_banks],
            accesses: 0,
            misses: 0,
            recording: false,
            events: Vec::new(),
            ideal: false,
        }
    }

    /// Enable or disable the zero-conflict idealization (see the `ideal`
    /// field). Off by default; the timing model is byte-identical with it
    /// off.
    pub fn set_ideal(&mut self, on: bool) {
        self.ideal = on;
    }

    /// Enable or disable per-access event recording (observer support).
    pub fn set_recording(&mut self, on: bool) {
        self.recording = on;
        if !on {
            self.events.clear();
        }
    }

    /// Events recorded since the last drain. The caller is expected to
    /// [`BankedL2::clear_events`] after consuming them; the buffer's
    /// capacity is retained so steady-state recording does not allocate.
    pub fn recorded_events(&self) -> &[BankEvent] {
        &self.events
    }

    /// Discard consumed events, keeping the buffer capacity.
    pub fn clear_events(&mut self) {
        self.events.clear();
    }

    /// Bank index for an address (8-byte word interleaving).
    #[inline]
    pub fn bank_of(&self, addr: u64) -> usize {
        ((addr >> 3) as usize) & (self.banks - 1)
    }

    /// Access the L2 at cycle `now`; returns the cycle the data is ready.
    ///
    /// Writes have the same bank/tag behaviour as reads (write-allocate);
    /// the caller decides whether the requester actually waits on them.
    pub fn access(&mut self, addr: u64, write: bool, now: u64) -> u64 {
        self.accesses += 1;
        let bank = self.bank_of(addr);
        let start = if self.ideal { now } else { now.max(self.bank_free[bank]) };
        let conflict = start > now;
        if conflict {
            self.bank_conflicts += 1;
            self.bank_conflict_counts[bank] += 1;
        }
        if !self.ideal {
            self.bank_free[bank] = start + 1;
        }
        let mut miss = false;
        let done = if self.tags.access(addr) {
            start + self.hit_latency
        } else {
            miss = true;
            self.misses += 1;
            // The fill occupies the memory channel for `mem_line_cycles`.
            let mem_start = (start + self.hit_latency).max(self.mem_free);
            self.mem_free = mem_start + self.mem_line_cycles;
            mem_start + self.miss_penalty
        };
        if self.recording {
            self.events.push(BankEvent { bank: bank as u32, start, done, conflict, write, miss });
        }
        done
    }

    /// Advisory earliest cycle `> from` at which a currently-busy bank or
    /// the memory channel frees up; `None` when everything is already free.
    /// The memory system is passive (it never changes state on its own —
    /// every transition happens inside a requester's `access`), so this can
    /// only *shorten* an idle-cycle skip; it lets the driver bound a span
    /// without reasoning about in-flight line fills.
    pub fn next_event(&self, from: u64) -> Option<u64> {
        let mut ev: Option<u64> = None;
        for &b in &self.bank_free {
            if b > from {
                ev = Some(ev.map_or(b, |e: u64| e.min(b)));
            }
        }
        if self.mem_free > from {
            ev = Some(ev.map_or(self.mem_free, |e| e.min(self.mem_free)));
        }
        ev
    }

    /// Number of banks.
    pub fn num_banks(&self) -> usize {
        self.banks
    }

    /// L2 tag hit rate so far.
    pub fn hit_rate(&self) -> f64 {
        self.tags.hit_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l2() -> BankedL2 {
        BankedL2::new(&MemConfig::default())
    }

    #[test]
    fn hit_after_fill_costs_hit_latency() {
        let mut l2 = l2();
        let t1 = l2.access(0x10000, false, 0);
        assert_eq!(t1, 10 + 100); // cold miss
        let t2 = l2.access(0x10000, false, 200);
        assert_eq!(t2, 210); // hit
    }

    #[test]
    fn unit_stride_spreads_over_banks() {
        let mut l2 = l2();
        // Warm the line first so we measure bank behaviour, not misses.
        for e in 0..16u64 {
            l2.access(0x20000 + 8 * e, false, 0);
        }
        let before = l2.bank_conflicts;
        // 16 words at unit stride hit 16 distinct banks: no conflicts.
        for e in 0..16u64 {
            l2.access(0x40000 + 8 * e, false, 1000);
        }
        // The 16 accesses are all to different banks — conflicts unchanged
        // except those caused by cold-miss fills above; measure delta:
        assert_eq!(l2.bank_conflicts, before);
    }

    #[test]
    fn same_bank_stride_serializes() {
        let mut l2 = l2();
        let stride = 8 * 16; // all accesses land in bank 0
                             // Issue 8 simultaneous accesses at cycle 0.
        let mut last = 0;
        for e in 0..8u64 {
            last = last.max(l2.access(0x80000 + stride * e, false, 0));
        }
        // Bank pipelining: the 8th access starts at cycle 7 at best.
        assert!(l2.bank_conflicts >= 7, "expected serialization, got {}", l2.bank_conflicts);
        assert!(last >= 7 + 10);
    }

    #[test]
    fn bank_of_is_word_interleaved() {
        let l2 = l2();
        assert_eq!(l2.bank_of(0), 0);
        assert_eq!(l2.bank_of(8), 1);
        assert_eq!(l2.bank_of(8 * 15), 15);
        assert_eq!(l2.bank_of(8 * 16), 0);
        assert_eq!(l2.bank_of(4), 0); // sub-word offset ignored
    }

    #[test]
    fn memory_channel_limits_miss_bandwidth() {
        let mut l2 = l2();
        // Two cold misses to different banks at the same cycle: the second
        // line fill waits for the channel.
        let a = l2.access(0x100000, false, 0);
        let b = l2.access(0x200000 + 8, false, 0);
        assert_eq!(a, 110);
        assert!(b > a, "second miss must queue behind the first fill: {b} vs {a}");
    }

    #[test]
    fn stats_accumulate() {
        let mut l2 = l2();
        l2.access(0x1000, false, 0);
        l2.access(0x1000, true, 100);
        assert_eq!(l2.accesses, 2);
        assert_eq!(l2.misses, 1);
        assert!(l2.hit_rate() > 0.0);
    }
}
