//! Memory-hierarchy parameters (paper Table 3).

/// All sizes in bytes, latencies in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// L1 capacity (each of I and D).
    pub l1_size: usize,
    /// L1 associativity.
    pub l1_assoc: usize,
    /// L1 line size.
    pub l1_line: usize,
    /// L1 hit latency (load-use).
    pub l1_hit: u64,
    /// L2 capacity.
    pub l2_size: usize,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// L2 line size.
    pub l2_line: usize,
    /// Number of L2 banks (word-interleaved).
    pub l2_banks: usize,
    /// L2 hit latency.
    pub l2_hit: u64,
    /// Additional penalty for an L2 miss (to main memory).
    pub l2_miss: u64,
    /// Cycles of main-memory channel occupancy per line fill
    /// (bandwidth limit on concurrent misses).
    pub mem_line_cycles: u64,
    /// Per-lane instruction cache capacity (scalar-thread mode, §5).
    pub lane_icache_size: usize,
    /// Per-lane instruction cache line size.
    pub lane_icache_line: usize,
}

impl Default for MemConfig {
    /// The paper's Table 3 parameters.
    fn default() -> Self {
        MemConfig {
            l1_size: 16 * 1024,
            l1_assoc: 2,
            l1_line: 64,
            l1_hit: 2,
            l2_size: 4 * 1024 * 1024,
            l2_assoc: 4,
            l2_line: 64,
            l2_banks: 16,
            l2_hit: 10,
            l2_miss: 100,
            mem_line_cycles: 2,
            lane_icache_size: 4 * 1024,
            lane_icache_line: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table3() {
        let c = MemConfig::default();
        assert_eq!(c.l1_size, 16 * 1024);
        assert_eq!(c.l1_assoc, 2);
        assert_eq!(c.l2_size, 4 * 1024 * 1024);
        assert_eq!(c.l2_assoc, 4);
        assert_eq!(c.l2_banks, 16);
        assert_eq!(c.l2_hit, 10);
        assert_eq!(c.l2_miss, 100);
        assert_eq!(c.lane_icache_size, 4 * 1024);
    }
}
