//! The composed memory hierarchy used by the system simulator.

use crate::cache::Cache;
use crate::config::MemConfig;
use crate::l2::BankedL2;

/// Aggregate memory statistics for reporting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemStats {
    /// Per-core L1-I (hits, misses).
    pub l1i: Vec<(u64, u64)>,
    /// Per-core L1-D (hits, misses).
    pub l1d: Vec<(u64, u64)>,
    /// Per-lane I-cache (hits, misses).
    pub lane_i: Vec<(u64, u64)>,
    /// L2 (accesses, misses, bank conflicts).
    pub l2: (u64, u64, u64),
    /// L2 bank-conflict count per bank (sums to `l2.2`).
    pub l2_bank_conflicts: Vec<u64>,
    /// Inter-cluster network statistics; `None` on single-cluster machines
    /// (which have no network). Filled in by the system driver — the
    /// [`ClusterNet`](crate::net::ClusterNet) is owned there, not here.
    pub net: Option<crate::net::NetStats>,
}

/// The full memory hierarchy: per-core L1s, per-lane I-caches, shared L2.
///
/// Scalar cores access the L2 through their L1s; the vector unit and the
/// lane cores (VLT scalar-thread mode) access the L2 directly (paper §2:
/// "the vector unit ... accesses the L2 directly to avoid thrashing in the
/// small L1 cache").
#[derive(Debug)]
pub struct MemSystem {
    cfg: MemConfig,
    l1i: Vec<Cache>,
    l1d: Vec<Cache>,
    lane_i: Vec<Cache>,
    /// The shared banked L2.
    pub l2: BankedL2,
}

impl MemSystem {
    /// Build a hierarchy for `cores` scalar units and `lanes` vector lanes.
    pub fn new(cfg: MemConfig, cores: usize, lanes: usize) -> Self {
        MemSystem {
            l1i: (0..cores).map(|_| Cache::new(cfg.l1_size, cfg.l1_assoc, cfg.l1_line)).collect(),
            l1d: (0..cores).map(|_| Cache::new(cfg.l1_size, cfg.l1_assoc, cfg.l1_line)).collect(),
            lane_i: (0..lanes)
                .map(|_| Cache::new(cfg.lane_icache_size, 1, cfg.lane_icache_line))
                .collect(),
            l2: BankedL2::new(&cfg),
            cfg,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Instruction fetch from core `c` at cycle `now`; returns ready cycle.
    pub fn inst_fetch(&mut self, c: usize, addr: u64, now: u64) -> u64 {
        if self.l1i[c].access(addr) {
            now + 1
        } else {
            self.l2.access(addr, false, now + 1) + 1
        }
    }

    /// Data access from core `c` through its L1-D.
    pub fn data_access(&mut self, c: usize, addr: u64, write: bool, now: u64) -> u64 {
        if self.l1d[c].access(addr) {
            now + self.cfg.l1_hit
        } else {
            self.l2.access(addr, write, now + 1) + 1
        }
    }

    /// Direct L2 access (vector memory ports, lane cores' data path).
    pub fn l2_access(&mut self, addr: u64, write: bool, now: u64) -> u64 {
        self.l2.access(addr, write, now)
    }

    /// Lane instruction fetch (VLT scalar-thread mode). Misses are forwarded
    /// to the owning scalar unit's L1-I (paper §5), then the L2.
    pub fn lane_inst_fetch(&mut self, lane: usize, owner_core: usize, addr: u64, now: u64) -> u64 {
        if self.lane_i[lane].access(addr) {
            now + 1
        } else {
            self.inst_fetch(owner_core, addr, now + 1)
        }
    }

    /// Advisory earliest cycle `> from` at which any timed memory resource
    /// (L2 bank pipelines, the main-memory channel) frees up; `None` when
    /// all are free. The L1s and lane I-caches hold no timing state, so the
    /// banked L2 is the only contributor. See [`BankedL2::next_event`] for
    /// why this is advisory (memory is passive).
    pub fn next_event(&self, from: u64) -> Option<u64> {
        self.l2.next_event(from)
    }

    /// Barrier coherence action: invalidate L1 data caches so post-barrier
    /// reads observe other threads' writes (compiler memory barriers in the
    /// paper; see DESIGN.md §8).
    pub fn barrier_flush(&mut self) {
        for c in &mut self.l1d {
            c.invalidate_all();
        }
    }

    /// Snapshot statistics.
    pub fn stats(&self) -> MemStats {
        MemStats {
            l1i: self.l1i.iter().map(|c| (c.hits, c.misses)).collect(),
            l1d: self.l1d.iter().map(|c| (c.hits, c.misses)).collect(),
            lane_i: self.lane_i.iter().map(|c| (c.hits, c.misses)).collect(),
            l2: (self.l2.accesses, self.l2.misses, self.l2.bank_conflicts),
            l2_bank_conflicts: self.l2.bank_conflict_counts.clone(),
            net: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemSystem {
        MemSystem::new(MemConfig::default(), 2, 8)
    }

    #[test]
    fn ifetch_hits_are_fast() {
        let mut m = sys();
        let cold = m.inst_fetch(0, 0x1000, 0);
        assert!(cold > 100, "cold fetch goes to memory: {cold}");
        let warm = m.inst_fetch(0, 0x1000, 200);
        assert_eq!(warm, 201);
        // Same line: also warm.
        assert_eq!(m.inst_fetch(0, 0x1004, 300), 301);
    }

    #[test]
    fn dcache_hit_latency() {
        let mut m = sys();
        m.data_access(0, 0x5000, false, 0);
        let t = m.data_access(0, 0x5000, false, 100);
        assert_eq!(t, 100 + MemConfig::default().l1_hit);
    }

    #[test]
    fn cores_have_private_l1s() {
        let mut m = sys();
        m.data_access(0, 0x5000, false, 0);
        // Core 1 misses its own L1 but hits the shared L2.
        let t = m.data_access(1, 0x5000, false, 100);
        assert!(t >= 100 + 10, "core 1 should go to L2: {t}");
        assert!(t < 100 + 100, "but the L2 line is warm: {t}");
    }

    #[test]
    fn lane_ifetch_forwards_to_core_l1i() {
        let mut m = sys();
        // Warm core 0's L1-I.
        m.inst_fetch(0, 0x1000, 0);
        // Lane 3 cold in its own I-cache, warm in core 0's L1-I.
        let t = m.lane_inst_fetch(3, 0, 0x1000, 200);
        assert_eq!(t, 202);
        // Now warm in the lane cache too.
        assert_eq!(m.lane_inst_fetch(3, 0, 0x1000, 300), 301);
        // Lane 4 still cold.
        assert_eq!(m.lane_inst_fetch(4, 0, 0x1000, 400), 402);
    }

    #[test]
    fn barrier_flush_invalidates_l1d_only() {
        let mut m = sys();
        m.data_access(0, 0x5000, false, 0);
        m.inst_fetch(0, 0x1000, 0);
        m.barrier_flush();
        // D-access now misses L1 (hits L2).
        let t = m.data_access(0, 0x5000, false, 1000);
        assert!(t >= 1010);
        // I-fetch still warm.
        assert_eq!(m.inst_fetch(0, 0x1000, 2000), 2001);
    }

    #[test]
    fn stats_shape() {
        let mut m = sys();
        m.data_access(0, 0x100, true, 0);
        m.lane_inst_fetch(7, 1, 0x1000, 0);
        let s = m.stats();
        assert_eq!(s.l1d.len(), 2);
        assert_eq!(s.lane_i.len(), 8);
        assert_eq!(s.l1d[0].1, 1);
        assert!(s.l2.0 >= 1);
    }
}
