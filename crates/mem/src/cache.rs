//! A generic set-associative tag array with true-LRU replacement.

/// Set-associative cache *tags* (timing model only — no data storage).
///
/// ```
/// use vlt_mem::Cache;
/// let mut c = Cache::new(16 * 1024, 2, 64);
/// assert!(!c.access(0x1000)); // cold miss fills the line
/// assert!(c.access(0x1038));  // same 64-byte line: hit
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    /// `sets[set][way]` = tag, or `u64::MAX` for invalid.
    tags: Vec<u64>,
    /// Last-use stamp per (set, way) for LRU.
    stamps: Vec<u64>,
    ways: usize,
    num_sets: usize,
    line_bits: u32,
    tick: u64,
    /// Demand hits.
    pub hits: u64,
    /// Demand misses (each triggers a fill).
    pub misses: u64,
}

const INVALID: u64 = u64::MAX;

impl Cache {
    /// Build tags for a cache of `size` bytes, `assoc` ways, `line` bytes
    /// per line. All three must be powers of two with `size >= assoc*line`.
    pub fn new(size: usize, assoc: usize, line: usize) -> Self {
        assert!(size.is_power_of_two() && assoc.is_power_of_two() && line.is_power_of_two());
        assert!(size >= assoc * line, "cache smaller than one set");
        let num_sets = size / (assoc * line);
        Cache {
            tags: vec![INVALID; num_sets * assoc],
            stamps: vec![0; num_sets * assoc],
            ways: assoc,
            num_sets,
            line_bits: line.trailing_zeros(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn set_of(&self, addr: u64) -> usize {
        ((addr >> self.line_bits) as usize) & (self.num_sets - 1)
    }

    #[inline]
    fn tag_of(&self, addr: u64) -> u64 {
        addr >> self.line_bits
    }

    /// Probe and update: returns `true` on hit. A miss installs the line,
    /// evicting the LRU way.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.ways;
        let mut victim = base;
        let mut victim_stamp = u64::MAX;
        for w in base..base + self.ways {
            if self.tags[w] == tag {
                self.stamps[w] = self.tick;
                self.hits += 1;
                return true;
            }
            if self.stamps[w] < victim_stamp {
                victim_stamp = self.stamps[w];
                victim = w;
            }
        }
        self.misses += 1;
        self.tags[victim] = tag;
        self.stamps[victim] = self.tick;
        false
    }

    /// Probe without filling (used for inclusive-hierarchy checks in tests).
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        self.tags[set * self.ways..(set + 1) * self.ways].contains(&tag)
    }

    /// Invalidate everything (barrier coherence flush; §6 of DESIGN.md).
    pub fn invalidate_all(&mut self) {
        self.tags.fill(INVALID);
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> usize {
        1 << self.line_bits
    }

    /// Hit fraction so far (0 when no accesses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(1024, 2, 64);
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1020)); // same 64B line
        assert!(!c.access(0x1040)); // next line
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        // 2-way, line 64, 2 sets => set stride 128.
        let mut c = Cache::new(256, 2, 64);
        // Three lines mapping to set 0: 0x000, 0x100, 0x200.
        assert!(!c.access(0x000));
        assert!(!c.access(0x100));
        assert!(c.access(0x000)); // touch: 0x100 is now LRU
        assert!(!c.access(0x200)); // evicts 0x100
        assert!(c.access(0x000));
        assert!(!c.access(0x100)); // was evicted
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = Cache::new(128, 1, 64);
        assert!(!c.access(0x000));
        assert!(!c.access(0x100)); // conflicts with 0x000 (2 sets)
        assert!(!c.access(0x000));
    }

    #[test]
    fn invalidate_all_flushes() {
        let mut c = Cache::new(1024, 2, 64);
        c.access(0x40);
        assert!(c.probe(0x40));
        c.invalidate_all();
        assert!(!c.probe(0x40));
        assert!(!c.access(0x40));
    }

    #[test]
    fn capacity_fits_working_set() {
        // A working set equal to capacity must fully hit on the second pass
        // with LRU and power-of-two strides.
        let mut c = Cache::new(16 * 1024, 2, 64);
        for addr in (0..16 * 1024u64).step_by(64) {
            c.access(addr);
        }
        let misses_before = c.misses;
        for addr in (0..16 * 1024u64).step_by(64) {
            assert!(c.access(addr), "addr {addr:#x} should hit");
        }
        assert_eq!(c.misses, misses_before);
    }

    proptest! {
        #[test]
        fn access_after_access_hits(addr in any::<u64>()) {
            let mut c = Cache::new(4096, 4, 64);
            c.access(addr);
            prop_assert!(c.access(addr));
        }

        #[test]
        fn stats_are_consistent(addrs in proptest::collection::vec(0u64..100_000, 1..200)) {
            let mut c = Cache::new(2048, 2, 64);
            for a in &addrs {
                c.access(*a);
            }
            prop_assert_eq!(c.hits + c.misses, addrs.len() as u64);
        }
    }
}
