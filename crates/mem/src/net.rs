//! The inter-cluster network joining lane clusters to the shared L2.
//!
//! A multi-cluster machine replicates the vector datapath into physically
//! separate lane clusters (AraXL-style); the clusters reach the shared
//! banked L2 over per-cluster links. The model is deliberately in the same
//! family as [`BankedL2`]: each cluster owns one pipelined link that
//! accepts one element transfer per cycle, a transfer pays a fixed hop
//! latency each way, and a busy link makes later transfers wait — that
//! wait is *network contention*, attributed separately from L2 bank
//! conflicts via the `NetworkContention` stall cause.
//!
//! Like the rest of the memory system the network is passive: every state
//! transition happens inside a requester's [`ClusterNet::access`], so its
//! [`ClusterNet::next_event`] is advisory (it can only shorten an
//! idle-span skip, never create work).
//!
//! [`BankedL2`]: crate::l2::BankedL2

use crate::system::MemSystem;

/// Inter-cluster network parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// One-way link traversal latency in cycles (paid request-side before
    /// the L2 access starts and again response-side after it completes).
    pub hop_latency: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        // A handful of cycles: clusters are on-chip but physically apart
        // (cross-die routing, not a DRAM round trip).
        NetConfig { hop_latency: 4 }
    }
}

/// Aggregate network statistics for reporting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Total element transfers carried.
    pub transfers: u64,
    /// Transfers that waited for a busy link.
    pub contended: u64,
    /// Total cycles transfers spent waiting for a link (sums the per-
    /// transfer departure delays; disjoint from L2 bank-conflict waits).
    pub wait_cycles: u64,
    /// Contended-transfer count per cluster link (sums to `contended`).
    pub link_contention: Vec<u64>,
}

/// Per-cluster pipelined links between the lane clusters and the L2.
#[derive(Debug)]
pub struct ClusterNet {
    hop: u64,
    /// Next cycle each cluster's link can accept a transfer.
    link_free: Vec<u64>,
    /// Running statistics.
    pub stats: NetStats,
    /// What-if idealization: zero hop latency and infinite link bandwidth
    /// (transfers never queue). Removes exactly the network cost; the L2's
    /// own timing is unchanged.
    ideal: bool,
}

impl ClusterNet {
    /// Build links for `clusters` lane clusters.
    pub fn new(cfg: &NetConfig, clusters: usize) -> Self {
        assert!(clusters >= 1);
        ClusterNet {
            hop: cfg.hop_latency,
            link_free: vec![0; clusters],
            stats: NetStats { link_contention: vec![0; clusters], ..NetStats::default() },
            ideal: false,
        }
    }

    /// Enable or disable the zero-hop idealization (see the `ideal`
    /// field). Off by default; the timing model is byte-identical with it
    /// off.
    pub fn set_ideal(&mut self, on: bool) {
        self.ideal = on;
    }

    /// Number of cluster links.
    pub fn num_clusters(&self) -> usize {
        self.link_free.len()
    }

    /// One-way hop latency in force.
    pub fn hop_latency(&self) -> u64 {
        self.hop
    }

    /// Claim cluster `c`'s link at cycle `at`; returns the departure cycle
    /// and whether the transfer had to wait for the link.
    fn traverse(&mut self, cluster: usize, at: u64) -> (u64, bool) {
        self.stats.transfers += 1;
        if self.ideal {
            return (at, false);
        }
        let depart = at.max(self.link_free[cluster]);
        let contended = depart > at;
        if contended {
            self.stats.contended += 1;
            self.stats.link_contention[cluster] += 1;
            self.stats.wait_cycles += depart - at;
        }
        self.link_free[cluster] = depart + 1;
        (depart, contended)
    }

    /// An element access from lane cluster `cluster` to the shared L2 at
    /// cycle `at`: link wait + request hop, then the L2's own timing, then
    /// the response hop home. Returns the cycle the data is back in the
    /// cluster and whether the *network* (not an L2 bank) made it wait.
    pub fn access(
        &mut self,
        mem: &mut MemSystem,
        cluster: usize,
        addr: u64,
        write: bool,
        at: u64,
    ) -> (u64, bool) {
        let (depart, contended) = self.traverse(cluster, at);
        let hop = if self.ideal { 0 } else { self.hop };
        let done = mem.l2_access(addr, write, depart + hop);
        (done + hop, contended)
    }

    /// Advisory earliest cycle `> from` at which a currently-busy link
    /// frees up; `None` when all links are free. Advisory for the same
    /// reason as [`BankedL2::next_event`](crate::l2::BankedL2::next_event):
    /// the network is passive.
    pub fn next_event(&self, from: u64) -> Option<u64> {
        let mut ev: Option<u64> = None;
        for &l in &self.link_free {
            if l > from {
                ev = Some(ev.map_or(l, |e: u64| e.min(l)));
            }
        }
        ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemConfig;

    fn net(clusters: usize) -> ClusterNet {
        ClusterNet::new(&NetConfig::default(), clusters)
    }

    fn mem() -> MemSystem {
        MemSystem::new(MemConfig::default(), 1, 8)
    }

    #[test]
    fn access_pays_two_hops_around_the_l2() {
        let mut m = mem();
        let base = m.l2_access(0x1000, false, 0); // warm the line (cold miss)
        let mut n = net(2);
        let (done, contended) = n.access(&mut m, 0, 0x1000, false, 1000);
        // hit latency (10) + 2 hops (4 each) on a free link.
        assert_eq!(done, 1000 + 4 + 10 + 4);
        assert!(!contended);
        assert!(base > 0);
    }

    #[test]
    fn busy_link_serializes_and_counts_contention() {
        let mut m = mem();
        for e in 0..16u64 {
            m.l2_access(0x2000 + 8 * e, false, 0); // warm 16 banks
        }
        let mut n = net(1);
        // 16 simultaneous unit-stride transfers: distinct L2 banks, so the
        // only serialization is the single cluster link.
        let mut last = 0;
        for e in 0..16u64 {
            let (done, _) = n.access(&mut m, 0, 0x2000 + 8 * e, false, 5000);
            last = last.max(done);
        }
        assert_eq!(n.stats.transfers, 16);
        assert_eq!(n.stats.contended, 15);
        assert_eq!(n.stats.link_contention, vec![15]);
        // Transfer k departs at 5000 + k: the pipeline adds 15 cycles.
        assert_eq!(n.stats.wait_cycles, (1..16).sum::<u64>());
        assert_eq!(last, 5000 + 15 + 4 + 10 + 4);
    }

    #[test]
    fn clusters_have_independent_links() {
        let mut m = mem();
        m.l2_access(0x3000, false, 0);
        m.l2_access(0x3008, false, 0);
        let mut n = net(2);
        let (_, c0) = n.access(&mut m, 0, 0x3000, false, 100);
        let (_, c1) = n.access(&mut m, 1, 0x3008, false, 100);
        assert!(!c0 && !c1, "different clusters must not contend");
        assert_eq!(n.stats.contended, 0);
    }

    #[test]
    fn next_event_is_advisory_and_beyond_from() {
        let mut m = mem();
        let mut n = net(2);
        assert_eq!(n.next_event(0), None);
        n.access(&mut m, 1, 0x4000, false, 10);
        let ev = n.next_event(10).unwrap();
        assert!(ev > 10);
        assert_eq!(n.next_event(ev), None);
    }
}
