//! `sage` — hydrodynamics-style stencil sweeps (Table 4: 94% vect, VL 63.8).
//!
//! Repeated smoothing sweeps over a large 1-D field with fixed boundaries:
//! `u'[i] = 0.5 * (u[i-1] + u[i+1])`, ping-ponging between two arrays.
//! Long unit-stride vectors; threads split the interior with a barrier per
//! timestep.

use vlt_exec::FuncSim;
use vlt_isa::asm::assemble;

use crate::common::{data_doubles, expect_f64s, read_f64s, rng_stream, Built, Scale};
use crate::suite::{PaperRow, Workload};

/// The workload singleton.
pub struct Sage;

fn initial(n: usize) -> Vec<f64> {
    rng_stream(0x5A6E, n).into_iter().map(|v| (v % 1000) as f64 / 8.0).collect()
}

fn golden(n: usize, steps: usize) -> Vec<f64> {
    let mut cur = initial(n);
    let mut next = vec![0.0f64; n];
    for _ in 0..steps {
        next[0] = cur[0];
        next[n - 1] = cur[n - 1];
        for i in 1..n - 1 {
            // vfadd then vfmul.vs 0.5
            next[i] = (cur[i - 1] + cur[i + 1]) * 0.5;
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

impl Workload for Sage {
    fn name(&self) -> &'static str {
        "sage"
    }

    fn vectorizable(&self) -> bool {
        true
    }

    fn paper_row(&self) -> PaperRow {
        PaperRow {
            pct_vect: Some(94.0),
            avg_vl: Some(63.8),
            common_vls: &[64],
            opportunity: None,
            description: "hydrodynamics modeling",
        }
    }

    fn build_spread(&self, threads: usize, clusters: usize, scale: Scale) -> Built {
        let vltcfg = crate::common::vltcfg_operand(threads, clusters);
        let n: usize = scale.pick(258, 8194, 16386);
        let steps: usize = scale.pick(2, 5, 5);
        let interior = n - 2;
        assert!(interior.is_multiple_of(threads), "interior must divide across threads");
        let u0 = initial(n);
        let src = format!(
            r#"
        .data
    {u0_data}
    u1:
        .zero {bytes}
        .text
        # cur/next swap between u0 and u1 every timestep; the symbolic
        # analysis sees each pointer as possibly-either-base, but the race
        # checker's exact DLP walk separates the two grids per barrier
        # epoch, so no allow is needed.
        li      x9, {vltcfg}
        vltcfg  x9
        tid     x10
        li      x11, {per_thread}
        mul     x12, x10, x11
        addi    x12, x12, 1        # lo (skip boundary)
        add     x13, x12, x11      # hi
        la      x21, u0            # cur
        la      x22, u1            # next
        li      x18, 1
        fcvt.f.x f1, x18
        li      x18, 2
        fcvt.f.x f2, x18
        fdiv    f1, f1, f2         # 0.5
        li      x28, {steps}
        region  1
    step:
        # boundaries: thread 0 copies [0], last thread copies [n-1]
        bnez    x10, notfirst
        fld     f3, 0(x21)
        fsd     f3, 0(x22)
    notfirst:
        li      x19, {threads_m1}
        bne     x10, x19, notlast
        li      x19, {last_off}
        add     x24, x21, x19
        fld     f3, 0(x24)
        add     x24, x22, x19
        fsd     f3, 0(x24)
    notlast:
        mv      x14, x12           # i
    chunk:
        sub     x3, x13, x14
        setvl   x2, x3
        slli    x15, x14, 3
        add     x16, x21, x15
        addi    x17, x16, -8
        vld     v1, x17            # u[i-1 ..]
        addi    x17, x16, 8
        vld     v2, x17            # u[i+1 ..]
        vfadd.vv v3, v1, v2
        vfmul.vs v3, v3, f1
        add     x17, x22, x15
        vst     v3, x17
        add     x14, x14, x2
        blt     x14, x13, chunk
        barrier
        # swap cur/next
        mv      x19, x21
        mv      x21, x22
        mv      x22, x19
        addi    x28, x28, -1
        bnez    x28, step
        region  0
        barrier
        halt
    "#,
            u0_data = data_doubles("u0", &u0),
            bytes = 8 * n,
            per_thread = interior / threads,
            threads_m1 = threads - 1,
            last_off = 8 * (n - 1),
        );
        let program = assemble(&src).unwrap_or_else(|e| panic!("sage: {e}"));
        let result_sym = if steps.is_multiple_of(2) { "u0" } else { "u1" };
        let verifier = Box::new(move |sim: &FuncSim| {
            expect_f64s(&read_f64s(sim, result_sym, n), &golden(n, steps), "sage u")
        });
        Built { program, verifier }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_verifies() {
        Sage.build(1, Scale::Test).run_functional(1, 10_000_000).unwrap();
    }

    #[test]
    fn four_threads_verify() {
        Sage.build(4, Scale::Test).run_functional(4, 10_000_000).unwrap();
    }

    #[test]
    fn golden_smooths() {
        let g = golden(64, 3);
        let i = initial(64);
        // Boundaries fixed.
        assert_eq!(g[0], i[0]);
        assert_eq!(g[63], i[63]);
    }
}
