//! `mxm` — dense matrix multiply (Table 4: 96% vectorized, VL 64).
//!
//! `C = A x B`, f64, row-major, vectorized over output columns in
//! MVL-sized blocks with FMA accumulation — the classic long-vector kernel
//! that scales perfectly with lane count (Figure 1).

use vlt_exec::FuncSim;
use vlt_isa::asm::assemble;

use crate::common::{data_doubles, expect_f64s, read_f64s, Built, Scale};
use crate::suite::{PaperRow, Workload};

/// The workload singleton.
pub struct Mxm;

fn a_val(i: usize, k: usize) -> f64 {
    ((3 * i + 7 * k) % 13) as f64
}

fn b_val(k: usize, j: usize) -> f64 {
    ((5 * k + 11 * j) % 17) as f64
}

fn golden(n: usize) -> Vec<f64> {
    let mut c = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0f64;
            for k in 0..n {
                // vfma.vs: acc += b * a, computed as b.mul_add(a, acc).
                acc = b_val(k, j).mul_add(a_val(i, k), acc);
            }
            c[i * n + j] = acc;
        }
    }
    c
}

impl Workload for Mxm {
    fn name(&self) -> &'static str {
        "mxm"
    }

    fn vectorizable(&self) -> bool {
        true
    }

    fn paper_row(&self) -> PaperRow {
        PaperRow {
            pct_vect: Some(96.0),
            avg_vl: Some(64.0),
            common_vls: &[64],
            opportunity: None,
            description: "dense matrix multiply",
        }
    }

    fn build_spread(&self, threads: usize, clusters: usize, scale: Scale) -> Built {
        let vltcfg = crate::common::vltcfg_operand(threads, clusters);
        let n: usize = scale.pick(64, 192, 256);
        assert!(n.is_multiple_of(threads), "n must divide across threads");
        let a: Vec<f64> = (0..n * n).map(|x| a_val(x / n, x % n)).collect();
        let b: Vec<f64> = (0..n * n).map(|x| b_val(x / n, x % n)).collect();
        let src = format!(
            r#"
        .eq N, {n}
        .data
    {a_data}
    {b_data}
    c:
        .zero {cbytes}
        .text
        li      x9, {vltcfg}
        vltcfg  x9
        tid     x10
        li      x11, {rows_per_thread}
        mul     x12, x10, x11      # i0
        add     x13, x12, x11      # i_end
        li      x20, N
        la      x21, a
        la      x22, b
        la      x23, c
        region  1
        mv      x14, x12           # i
    iloop:
        li      x15, 0             # j0
    jloop:
        li      x17, 64
        setvl   x2, x17            # vl = min(64, mvl)
        vxor.vv v4, v4, v4         # acc = 0
        li      x18, 0             # k
    kloop:
        mul     x19, x14, x20
        add     x19, x19, x18
        slli    x19, x19, 3
        add     x19, x19, x21
        fld     f1, 0(x19)         # a[i][k]
        mul     x24, x18, x20
        add     x24, x24, x15
        slli    x24, x24, 3
        add     x24, x24, x22
        vld     v1, x24            # b[k][j0..j0+vl]
        vfma.vs v4, v1, f1
        addi    x18, x18, 1
        blt     x18, x20, kloop
        mul     x25, x14, x20
        add     x25, x25, x15
        slli    x25, x25, 3
        add     x25, x25, x23
        vst     v4, x25
        add     x15, x15, x2       # j0 += vl
        blt     x15, x20, jloop
        addi    x14, x14, 1
        blt     x14, x13, iloop
        region  0
        barrier
        halt
    "#,
            a_data = data_doubles("a", &a),
            b_data = data_doubles("b", &b),
            cbytes = 8 * n * n,
            rows_per_thread = n / threads,
        );
        let program = assemble(&src).unwrap_or_else(|e| panic!("mxm: {e}"));
        let verifier = Box::new(move |sim: &FuncSim| {
            expect_f64s(&read_f64s(sim, "c", n * n), &golden(n), "mxm c")
        });
        Built { program, verifier }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Scale;

    #[test]
    fn single_thread_verifies() {
        Mxm.build(1, Scale::Test).run_functional(1, 10_000_000).unwrap();
    }

    #[test]
    fn four_threads_verify() {
        Mxm.build(4, Scale::Test).run_functional(4, 10_000_000).unwrap();
    }

    #[test]
    fn golden_spot_check() {
        // c[0][0] = sum_k a(0,k)*b(k,0).
        let n = 8;
        let g = golden(n);
        let manual: f64 = (0..n).map(|k| a_val(0, k) * b_val(k, 0)).sum();
        assert!((g[0] - manual).abs() < 1e-9);
    }
}
