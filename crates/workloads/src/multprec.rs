//! `multprec` — multiprecision array arithmetic (Table 4: 71% vect,
//! avg VL 25.2, VLs 23/24/64, 81% opportunity).
//!
//! Big-number addition over arrays of 23- and 24-limb numbers (base 2^32
//! limbs held in 64-bit elements): the limb adds vectorize at the number
//! width; carry *detection* vectorizes too, but carry *propagation* is a
//! scalar ripple executed only for numbers whose vector check finds a
//! carry. A VL-64 normalization copy closes each batch.
//!
//! Lint note: the prologue once computed the `[num0, num_end)` range that
//! `pass_loop` immediately recomputes; `vlint`'s dead-write pass caught
//! the redundant prologue writes and they were removed.

use vlt_exec::FuncSim;
use vlt_isa::asm::assemble;

use crate::common::{data_dwords, expect_u64s, read_u64s, rng_stream, serial_golden, Built, Scale};
use crate::suite::{PaperRow, Workload};

/// The workload singleton.
pub struct Multprec;

/// Limb widths alternate between the paper's common VLs.
fn width(num: usize) -> usize {
    if num.is_multiple_of(2) {
        24
    } else {
        23
    }
}

const SLOT: usize = 24; // storage stride per number (limbs)

/// Operand limbs: most numbers are carry-free (31-bit limbs); every fourth
/// number uses full 32-bit limbs so carries ripple.
fn operand(seed: u64, nums: usize) -> Vec<u64> {
    let raw = rng_stream(seed, nums * SLOT);
    let mut out = vec![0u64; nums * SLOT];
    for num in 0..nums {
        let mask: u64 = if num % 4 == 0 { 0xFFFF_FFFF } else { 0x7FFF_FFFF };
        for l in 0..width(num) {
            out[num * SLOT + l] = raw[num * SLOT + l] & mask;
        }
    }
    out
}

fn golden(nums: usize) -> (Vec<u64>, Vec<u64>) {
    let a = operand(0x111, nums);
    let b = operand(0x222, nums);
    let mut c = vec![0u64; nums * SLOT];
    for num in 0..nums {
        let w = width(num);
        let base = num * SLOT;
        // Vector limb add, then scalar ripple only if any limb overflows.
        for l in 0..w {
            c[base + l] = a[base + l] + b[base + l];
        }
        if (0..w).any(|l| c[base + l] >> 32 != 0) {
            let mut carry = 0u64;
            for l in 0..w {
                let t = c[base + l] + carry;
                c[base + l] = t & 0xFFFF_FFFF;
                carry = t >> 32;
            }
            // Carry out of the top limb is folded into the spare slot.
            if w < SLOT {
                c[base + w] = carry;
            }
        }
    }
    // Normalization copy: out[i] = c[i] ^ 1 over the full array (VL 64).
    let out: Vec<u64> = c.iter().map(|v| v ^ 1).collect();
    (c, out)
}

impl Workload for Multprec {
    fn name(&self) -> &'static str {
        "multprec"
    }

    fn vectorizable(&self) -> bool {
        true
    }

    fn paper_row(&self) -> PaperRow {
        PaperRow {
            pct_vect: Some(71.0),
            avg_vl: Some(25.2),
            common_vls: &[23, 24, 64],
            opportunity: Some(81.0),
            description: "multiprecision array arithmetic",
        }
    }

    fn build_spread(&self, threads: usize, clusters: usize, scale: Scale) -> Built {
        let vltcfg = crate::common::vltcfg_operand(threads, clusters);
        let nums: usize = scale.pick(16, 256, 512);
        assert!(nums.is_multiple_of(2 * threads));
        let total = nums * SLOT;
        let src = format!(
            r#"
        .data
    {a_data}
    {b_data}
    c:
        .zero {bytes}
    outp:
        .zero {bytes}
    serial_out:
        .zero 8
        .text
        # the carry ripple is a data-dependent scalar walk whose limb
        # cursor joins back into the vector phase; the symbolic footprints
        # smear across the whole c/outp arrays, but the race checker's
        # exact DLP walk proves the per-number partition disjoint, so no
        # allow is needed.
        li      x9, {vltcfg}
        vltcfg  x9
        tid     x10
        la      x20, a
        la      x21, b
        la      x22, c
        region  1
        li      x31, 3             # passes (iterative application)
    pass_loop:
        li      x11, {nums_per_thread}
        mul     x12, x10, x11
        add     x13, x12, x11
        mv      x14, x12           # num
    nloop:
        # width: 24 for even numbers, 23 for odd
        andi    x4, x14, 1
        li      x5, 24
        sub     x5, x5, x4         # w
        li      x6, {slot}
        mul     x7, x14, x6
        slli    x7, x7, 3          # byte base of this number
        add     x15, x20, x7       # &a
        add     x16, x21, x7       # &b
        add     x17, x22, x7       # &c
        # vector limb add + carry detection, strip-mined to the VLT
        # register partition (integer adds are chunking-independent)
        li      x29, 0             # limbs processed
        li      x18, 0             # carry-detect accumulator
    addchunk:
        sub     x3, x5, x29
        setvl   x2, x3
        vld     v1, x15
        vld     v2, x16
        vadd.vv v3, v1, v2
        vst     v3, x17
        li      x4, 32
        vsrl.vs v4, v3, x4
        vredsum x4, v4
        add     x18, x18, x4
        slli    x4, x2, 3
        add     x15, x15, x4
        add     x16, x16, x4
        add     x17, x17, x4
        add     x29, x29, x2
        blt     x29, x5, addchunk
        beqz    x18, nocarry
        # scalar ripple propagation
        li      x19, 0             # limb index
        li      x24, 0             # carry
        li      x28, 1
        slli    x28, x28, 32
        addi    x28, x28, -1       # 0xFFFFFFFF
        add     x25, x22, x7       # &c[num][0]
    ripple:
        ld      x26, 0(x25)
        add     x26, x26, x24
        and     x27, x26, x28
        sd      x27, 0(x25)
        srli    x24, x26, 32
        addi    x25, x25, 8
        addi    x19, x19, 1
        blt     x19, x5, ripple
        # store carry-out in the spare slot (width-23 numbers only)
        li      x4, {slot}
        bge     x5, x4, nocarry
        sd      x24, 0(x25)
    nocarry:
        addi    x14, x14, 1
        blt     x14, x13, nloop
        barrier

        # ---- normalization copy (VL 64): out[i] = c[i] ^ 1 ----
        li      x11, {elems_per_thread}
        mul     x12, x10, x11
        add     x13, x12, x11
        la      x23, outp
        mv      x14, x12
    cloop:
        sub     x3, x13, x14
        setvl   x2, x3
        slli    x4, x14, 3
        add     x5, x22, x4
        vld     v1, x5
        li      x6, 1
        vxor.vs v1, v1, x6
        add     x5, x23, x4
        vst     v1, x5
        add     x14, x14, x2
        blt     x14, x13, cloop
        addi    x31, x31, -1
        bnez    x31, pass_loop
{serial}
        halt
    "#,
            serial = crate::common::serial_phase("outp", total / 6, "serial_out"),
            a_data = data_dwords("a", &operand(0x111, nums)),
            b_data = data_dwords("b", &operand(0x222, nums)),
            bytes = 8 * total,
            slot = SLOT,
            nums_per_thread = nums / threads,
            elems_per_thread = total / threads,
        );
        let program = assemble(&src).unwrap_or_else(|e| panic!("multprec: {e}"));
        let verifier = Box::new(move |sim: &FuncSim| {
            let (c, out) = golden(nums);
            expect_u64s(&read_u64s(sim, "c", total), &c, "multprec c")?;
            expect_u64s(&read_u64s(sim, "outp", total), &out, "multprec out")?;
            let want = serial_golden(&out[..total / 6]);
            expect_u64s(&read_u64s(sim, "serial_out", 1), &[want], "multprec serial")
        });
        Built { program, verifier }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_verifies() {
        Multprec.build(1, Scale::Test).run_functional(1, 10_000_000).unwrap();
    }

    #[test]
    fn four_threads_verify() {
        Multprec.build(4, Scale::Test).run_functional(4, 10_000_000).unwrap();
    }

    #[test]
    fn golden_carries_ripple() {
        let (c, _) = golden(4);
        // Every third number uses 32-bit limbs: its limbs must be masked
        // back below 2^32 after propagation.
        for (l, &limb) in c.iter().enumerate().take(width(0)) {
            assert!(limb < 1 << 32, "limb {l} = {limb:#x}");
        }
    }

    #[test]
    fn widths_alternate() {
        assert_eq!(width(0), 24);
        assert_eq!(width(1), 23);
    }
}
