//! `mpenc` — video encoding (Table 4: 76% vect, avg VL 11.2, VLs 8/16/64).
//!
//! Three phases per frame, mirroring a motion-estimation encoder:
//!
//! 1. **Block search** (VL 8): for every 8x8 block, compute the sum of
//!    absolute differences against four candidate blocks of the reference
//!    frame and record the best candidate — short vectors plus scalar
//!    min-tracking.
//! 2. **Interpolation** (VL 16): 16-wide averaging of reference rows
//!    (half-pel plane).
//!
//! Lint note: the prologue once computed the `[b0, b_end)` block range
//! that `pass_loop` immediately recomputes; `vlint`'s dead-write pass
//! caught the redundant prologue writes and they were removed.
//! 3. **Reconstruction copy** (VL 64): full-plane copy/offset.

use vlt_exec::FuncSim;
use vlt_isa::asm::assemble;

use crate::common::{data_dwords, expect_u64s, read_u64s, rng_stream, serial_golden, Built, Scale};
use crate::suite::{PaperRow, Workload};

/// The workload singleton.
pub struct Mpenc;

/// Candidate offsets (in elements) into the reference plane, relative to
/// the block base.
const CANDS: [usize; 4] = [0, 8, 64, 72];
const BLOCK: usize = 64; // 8x8 pixels
const PAD: usize = 160; // reference overhang for candidate offsets

fn cur_plane(nb: usize) -> Vec<u64> {
    rng_stream(0xC0DE, nb * BLOCK).into_iter().map(|v| v % 256).collect()
}

fn ref_plane(nb: usize) -> Vec<u64> {
    rng_stream(0xF00D, nb * BLOCK + PAD).into_iter().map(|v| v % 256).collect()
}

struct Golden {
    best_sad: Vec<u64>,
    best_idx: Vec<u64>,
    interp: Vec<u64>,
    recon: Vec<u64>,
}

fn golden(nb: usize) -> Golden {
    let cur = cur_plane(nb);
    let rf = ref_plane(nb);
    let mut best_sad = vec![0u64; nb];
    let mut best_idx = vec![0u64; nb];
    for b in 0..nb {
        let mut best = u64::MAX;
        let mut bi = 0u64;
        for (ci, off) in CANDS.iter().enumerate() {
            let mut sad = 0u64;
            for r in 0..8 {
                for e in 0..8 {
                    let a = cur[b * BLOCK + r * 8 + e];
                    let c = rf[b * BLOCK + off + r * 8 + e];
                    sad += a.max(c) - a.min(c);
                }
            }
            if sad < best {
                best = sad;
                bi = ci as u64;
            }
        }
        best_sad[b] = best;
        best_idx[b] = bi;
    }
    // Interpolation: 16-wide average of the reference with its +1 shift.
    let n16 = nb * BLOCK / 16 * 16;
    let interp: Vec<u64> = (0..n16).map(|i| (rf[i] + rf[i + 1]) >> 1).collect();
    // Reconstruction: cur + 1 over the whole plane.
    let recon: Vec<u64> = cur.iter().map(|v| v + 1).collect();
    Golden { best_sad, best_idx, interp, recon }
}

impl Workload for Mpenc {
    fn name(&self) -> &'static str {
        "mpenc"
    }

    fn vectorizable(&self) -> bool {
        true
    }

    fn paper_row(&self) -> PaperRow {
        PaperRow {
            pct_vect: Some(76.0),
            avg_vl: Some(11.2),
            common_vls: &[8, 16, 64],
            opportunity: Some(78.0),
            description: "video encoding",
        }
    }

    fn build_spread(&self, threads: usize, clusters: usize, scale: Scale) -> Built {
        let vltcfg = crate::common::vltcfg_operand(threads, clusters);
        let nb: usize = scale.pick(8, 64, 128); // 8x8 blocks
        assert!(nb.is_multiple_of(threads));
        let cur = cur_plane(nb);
        let rf = ref_plane(nb);
        let plane = nb * BLOCK;
        let src = format!(
            r#"
        .data
    {cur_data}
    {ref_data}
    cands:
        .dword {cands}
    best_sad:
        .zero {nb8}
    best_idx:
        .zero {nb8}
    interp:
        .zero {plane8}
    recon:
        .zero {plane8}
    serial_out:
        .zero 8
        .text
        # the cur/ref row cursors advance through three nested loops (row,
        # candidate, block); the symbolic footprints smear past the
        # read-only input planes, but the race checker's exact DLP walk
        # proves the per-epoch access hulls disjoint, so no allow is needed.
        li      x9, {vltcfg}
        vltcfg  x9
        tid     x10
        la      x20, cur
        la      x21, refp
        la      x22, cands
        la      x23, best_sad
        la      x24, best_idx
        region  1
        li      x31, 2             # frames (re-encode over resident planes)
    pass_loop:
        # ---- phase 1: block SAD search (VL 8) ----
        li      x11, {blocks_per_thread}
        mul     x12, x10, x11
        add     x13, x12, x11
        li      x3, 8
        setvl   x2, x3
        mv      x14, x12           # b
    bloop:
        li      x15, 0             # candidate index
        li      x16, -1            # best sad (u64 max)
        li      x17, 0             # best idx
    cloop:
        slli    x4, x15, 3
        add     x4, x4, x22
        ld      x5, 0(x4)          # cand offset (elements)
        slli    x5, x5, 3
        slli    x6, x14, 9         # b * 64 elements * 8 bytes
        add     x7, x20, x6        # cur block base
        add     x8, x21, x6
        add     x8, x8, x5         # ref cand base
        li      x18, 0             # row
        li      x19, 0             # sad acc
    rloop:
        vld     v1, x7             # cur row
        vld     v2, x8             # ref row
        vsub.vv v3, v1, v2
        vsub.vv v4, v2, v1
        vmax.vv v3, v3, v4         # |diff| (values < 2^32 so signed max works)
        vredsum x25, v3
        add     x19, x19, x25
        addi    x7, x7, 64
        addi    x8, x8, 64
        addi    x18, x18, 1
        slti    x26, x18, 8
        bnez    x26, rloop
        # best tracking
        bgeu    x19, x16, worse
        mv      x16, x19
        mv      x17, x15
    worse:
        addi    x15, x15, 1
        slti    x26, x15, 4
        bnez    x26, cloop
        slli    x4, x14, 3
        add     x5, x23, x4
        sd      x16, 0(x5)
        add     x5, x24, x4
        sd      x17, 0(x5)
        addi    x14, x14, 1
        blt     x14, x13, bloop
        barrier

        # ---- phase 2: interpolation (VL 16) ----
        li      x3, 16
        setvl   x2, x3
        li      x11, {elems_per_thread}
        mul     x12, x10, x11
        add     x13, x12, x11
        la      x27, interp
        mv      x14, x12
    iloop:
        slli    x4, x14, 3
        add     x5, x21, x4
        vld     v1, x5             # ref[i..]
        addi    x5, x5, 8
        vld     v2, x5             # ref[i+1..]
        vadd.vv v3, v1, v2
        li      x6, 1
        vsrl.vs v3, v3, x6
        add     x5, x27, x4
        vst     v3, x5
        add     x14, x14, x2
        blt     x14, x13, iloop
        barrier

        # ---- phase 3: reconstruction copy (VL 64) ----
        li      x3, 64
        setvl   x2, x3
        la      x28, recon
        mv      x14, x12
    ploop:
        sub     x3, x13, x14
        setvl   x2, x3
        slli    x4, x14, 3
        add     x5, x20, x4
        vld     v1, x5
        li      x6, 1
        vadd.vs v1, v1, x6
        add     x5, x28, x4
        vst     v1, x5
        add     x14, x14, x2
        blt     x14, x13, ploop
        addi    x31, x31, -1
        bnez    x31, pass_loop
{serial}
        halt
    "#,
            serial = crate::common::serial_phase("recon", plane / 2, "serial_out"),
            cur_data = data_dwords("cur", &cur),
            ref_data = data_dwords("refp", &rf),
            cands = CANDS.map(|c| c.to_string()).join(", "),
            nb8 = 8 * nb,
            plane8 = 8 * plane,
            blocks_per_thread = nb / threads,
            elems_per_thread = plane / threads,
        );
        let program = assemble(&src).unwrap_or_else(|e| panic!("mpenc: {e}"));
        let verifier = Box::new(move |sim: &FuncSim| {
            let g = golden(nb);
            expect_u64s(&read_u64s(sim, "best_sad", nb), &g.best_sad, "mpenc best_sad")?;
            expect_u64s(&read_u64s(sim, "best_idx", nb), &g.best_idx, "mpenc best_idx")?;
            expect_u64s(&read_u64s(sim, "interp", g.interp.len()), &g.interp, "mpenc interp")?;
            expect_u64s(&read_u64s(sim, "recon", plane), &g.recon, "mpenc recon")?;
            let want = serial_golden(&g.recon[..plane / 2]);
            expect_u64s(&read_u64s(sim, "serial_out", 1), &[want], "mpenc serial")
        });
        Built { program, verifier }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_verifies() {
        Mpenc.build(1, Scale::Test).run_functional(1, 20_000_000).unwrap();
    }

    #[test]
    fn four_threads_verify() {
        Mpenc.build(4, Scale::Test).run_functional(4, 20_000_000).unwrap();
    }

    #[test]
    fn golden_prefers_exact_match() {
        // A block that exactly matches candidate 0 has SAD 0, index 0 —
        // construct by checking any block whose best SAD is 0 maps to the
        // candidate achieving it.
        let g = golden(8);
        for b in 0..8 {
            assert!(g.best_idx[b] < 4);
            assert!(g.best_sad[b] < 64 * 256);
        }
    }
}
