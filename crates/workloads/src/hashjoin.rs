//! `hashjoin` — partitioned hash-join build + vectorized indexed probe
//! (irregular suite).
//!
//! Both relations are pre-partitioned across threads. Each thread builds
//! a private direct-mapped hash table over its build slice (scalar
//! multiply-shift-mask hashing, collisions overwrite — a real
//! direct-mapped table), then probes its probe slice vectorized: hash the
//! probe keys with `vmul.vs`/`vsrl.vs`/`vand.vs`, gather the table slots
//! with `vldx`, compare with `vseq`, and `vmerge` a payload or zero into
//! the per-probe output. A `vpopc` per chunk accumulates the match count.
//!
//! Verification interest: the probe's gather indices are hashes of loaded
//! keys — arbitrary values — yet the footprint analysis proves every
//! access in-bounds *statically*: the `vand.vs` transfer pins the masked
//! byte offsets to `[0, mask]`, which lands the gather inside the
//! thread's own table block, so the per-thread partitions never overlap
//! and the race analysis needs no dynamic walk at all. Zero allows.

use vlt_exec::FuncSim;
use vlt_isa::asm::assemble;

use crate::common::{data_dwords, expect_u64s, read_u64s, rng_stream, Built, Scale};
use crate::suite::{PaperRow, Workload};

/// The workload singleton.
pub struct HashJoin;

const SEED: u64 = 0x104A;
/// Direct-mapped table slots per thread.
const SLOTS: usize = 256;
/// Byte mask for a hashed slot offset: `(SLOTS - 1) * 8`, low bits clear.
const MASKB: u64 = (SLOTS as u64 - 1) * 8;
/// Hash multiplier (fits a short immediate).
const HPRIME: u64 = 0x9E37;
/// Hash downshift: slot bits are taken from bits 16 and up.
const HSHIFT: u32 = 16;
/// Payload multiplier.
const PPRIME: u64 = 0x85EB;

fn dims(scale: Scale) -> usize {
    match scale {
        Scale::Test => 512,
        Scale::Small => 4096,
        Scale::Full => 16384,
    }
}

fn build_keys(n: usize) -> Vec<u64> {
    rng_stream(SEED, n)
}

/// Probe keys: even slots repeat the build key at the same index (same
/// thread slice for every thread count that divides `n`, so they can
/// hit), odd slots are fresh random keys (mostly misses).
fn probe_keys(n: usize) -> Vec<u64> {
    let b = build_keys(n);
    let r = rng_stream(SEED ^ 0xF00D, n);
    (0..n).map(|i| if i % 2 == 0 { b[i] } else { r[i] }).collect()
}

fn slot(k: u64) -> usize {
    ((k.wrapping_mul(HPRIME) >> HSHIFT) & MASKB) as usize / 8
}

/// Replay: per-thread table build (sequential overwrite), then the probe.
/// Returns (per-probe payloads, per-thread match counts).
fn golden(n: usize, threads: usize) -> (Vec<u64>, Vec<u64>) {
    let (bk, pk) = (build_keys(n), probe_keys(n));
    let per = n / threads;
    let mut out = vec![0u64; n];
    let mut matches = vec![0u64; threads];
    for t in 0..threads {
        let mut table = vec![0u64; SLOTS];
        for &k in &bk[t * per..(t + 1) * per] {
            table[slot(k)] = k;
        }
        for (i, &p) in pk.iter().enumerate().take((t + 1) * per).skip(t * per) {
            if table[slot(p)] == p {
                out[i] = p.wrapping_mul(PPRIME);
                matches[t] += 1;
            }
        }
    }
    (out, matches)
}

/// The kernel source (exposed so the lint driver can regenerate it).
pub fn source(threads: usize, clusters: usize, scale: Scale) -> String {
    let n = dims(scale);
    assert!(n.is_multiple_of(threads), "keys must divide across threads");
    let vltcfg = crate::common::vltcfg_operand(threads, clusters);
    format!(
        r#"
        .eq vlint.threads, {threads}
        .data
    {bkeys_data}
    {pkeys_data}
    table:
        .zero {tbytes}
    outj:
        .zero {nbytes}
    matches:
        .zero 64
        .text
        li      x9, {vltcfg}
        vltcfg  x9
        tid     x10
        li      x11, {keys_per_thread}
        mul     x12, x10, x11      # i0
        add     x13, x12, x11      # i_end
        la      x20, bkeys
        la      x21, pkeys
        la      x22, table
        la      x23, outj
        la      x28, matches
        # my private table block
        li      x5, {tblbytes}
        mul     x5, x10, x5
        add     x24, x22, x5
        li      x29, {hprime}
        li      x17, {hshift}
        li      x19, {maskb}

        # ---- build: scalar multiply-shift-mask into my table ----
        region  1
        slli    x5, x12, 3
        add     x5, x5, x20        # &bkeys[i]
        mv      x4, x12
    build:
        ld      x6, 0(x5)
        mul     x7, x6, x29
        srli    x7, x7, {hshift}
        and     x7, x7, x19        # slot byte offset in [0, maskb]
        add     x7, x7, x24
        sd      x6, 0(x7)          # table[h] = key (collisions overwrite)
        addi    x5, x5, 8
        addi    x4, x4, 1
        blt     x4, x13, build
        region  0
        barrier

        # ---- probe: vector hash, gather, compare, merge ----
        region  1
        li      x18, {pprime}
        li      x16, 0             # match count
        slli    x5, x12, 3
        add     x5, x5, x21        # probe key cursor
        slli    x9, x12, 3
        add     x9, x9, x23        # output cursor
        mv      x4, x12
    probe:
        sub     x8, x13, x4
        setvl   x2, x8
        vld     v1, x5             # probe keys
        vmul.vs v2, v1, x29
        vsrl.vs v2, v2, x17
        vand.vs v2, v2, x19        # slot byte offsets in [0, maskb]
        vldx    v3, x24, v2        # gather my table slots
        vseq.vv v3, v1             # mask: slot holds this key
        vmul.vs v4, v1, x18        # payload
        vxor.vv v5, v5, v5
        vmerge  v6, v4, v5         # hit ? payload : 0
        vst     v6, x9
        vpopc   x15
        add     x16, x16, x15
        add     x4, x4, x2
        slli    x8, x2, 3
        add     x5, x5, x8
        add     x9, x9, x8
        blt     x4, x13, probe
        slli    x5, x10, 3
        add     x5, x5, x28
        sd      x16, 0(x5)         # matches[tid]
        region  0
        barrier
        halt
    "#,
        bkeys_data = data_dwords("bkeys", &build_keys(n)),
        pkeys_data = data_dwords("pkeys", &probe_keys(n)),
        tbytes = 8 * SLOTS * threads,
        nbytes = 8 * n,
        tblbytes = 8 * SLOTS,
        keys_per_thread = n / threads,
        hprime = HPRIME,
        hshift = HSHIFT,
        maskb = MASKB,
        pprime = PPRIME,
    )
}

impl Workload for HashJoin {
    fn name(&self) -> &'static str {
        "hashjoin"
    }

    fn vectorizable(&self) -> bool {
        true
    }

    fn paper_row(&self) -> PaperRow {
        PaperRow {
            pct_vect: None,
            avg_vl: None,
            common_vls: &[],
            opportunity: None,
            description: "hash-join build + indexed probe (irregular suite)",
        }
    }

    fn build_spread(&self, threads: usize, clusters: usize, scale: Scale) -> Built {
        let n = dims(scale);
        let src = source(threads, clusters, scale);
        let program = assemble(&src).unwrap_or_else(|e| panic!("hashjoin: {e}"));
        let verifier = Box::new(move |sim: &FuncSim| {
            let (out, matches) = golden(n, threads);
            expect_u64s(&read_u64s(sim, "outj", n), &out, "hashjoin outj")?;
            expect_u64s(&read_u64s(sim, "matches", threads), &matches, "hashjoin matches")
        });
        Built { program, verifier }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_verifies() {
        HashJoin.build(1, Scale::Test).run_functional(1, 10_000_000).unwrap();
    }

    #[test]
    fn four_threads_verify() {
        HashJoin.build(4, Scale::Test).run_functional(4, 10_000_000).unwrap();
    }

    #[test]
    fn probe_actually_hits_and_misses() {
        let n = dims(Scale::Test);
        for threads in [1, 4] {
            let (out, matches) = golden(n, threads);
            let hits: u64 = matches.iter().sum();
            // Even-index probes repeat build keys; at low thread counts the
            // table is oversubscribed, so only part of them survive
            // collisions — but far more than chance.
            assert!(hits > n as u64 / 8, "too few matches: {hits}");
            assert!(hits < n as u64, "everything matched: {hits}");
            assert_eq!(out.iter().filter(|&&v| v != 0).count() as u64, hits);
        }
    }

    #[test]
    fn slot_mask_stays_in_table() {
        for &k in build_keys(64).iter() {
            assert!(slot(k) < SLOTS);
        }
    }
}
