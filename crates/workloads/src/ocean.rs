//! `ocean` — eddy currents in an ocean basin (Table 4: not vectorized,
//! 96% opportunity).
//!
//! Gauss-Seidel/SOR relaxation sweeps on a 2-D grid, written as scalar
//! loops (the paper's compiler does not vectorize them — the j-loop carries
//! a true dependence through the freshly updated west neighbour). Per-point
//! ILP is therefore limited to the serial FP chain, which is what lets 8
//! simple lane cores beat two wide OOO cores (Figure 6): the compiler
//! software-pipelines the neighbour loads one point ahead, hiding the
//! lanes' L2 latency under the chain.

use vlt_exec::FuncSim;
use vlt_isa::asm::assemble;

use crate::common::{
    data_doubles, expect_f64s, read_f64s, read_u64s, rng_stream, serial_golden, Built, Scale,
};
use crate::suite::{PaperRow, Workload};

/// The workload singleton.
pub struct Ocean;

fn initial(n: usize) -> Vec<f64> {
    rng_stream(0x0CEA, n * n).into_iter().map(|v| (v % 512) as f64 / 16.0).collect()
}

/// Golden model: row-parallel Gauss-Seidel. Within a row, each point uses
/// the *new* west value; across rows, the previous sweep's values
/// (row-Jacobi), so threads can own row blocks.
fn golden(n: usize, steps: usize) -> Vec<f64> {
    let mut cur = initial(n);
    let mut next = cur.clone();
    for _ in 0..steps {
        for i in 1..n - 1 {
            let mut west = cur[i * n]; // left boundary
            for j in 1..n - 1 {
                let up = cur[(i - 1) * n + j];
                let down = cur[(i + 1) * n + j];
                let right = cur[i * n + j + 1];
                // Kernel order: t = up + down; w = west + right;
                // west' = (w + t) * 0.25.
                let t = up + down;
                let w = west + right;
                west = (w + t) * 0.25;
                next[i * n + j] = west;
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

impl Workload for Ocean {
    fn name(&self) -> &'static str {
        "ocean"
    }

    fn vectorizable(&self) -> bool {
        false
    }

    fn paper_row(&self) -> PaperRow {
        PaperRow {
            pct_vect: None,
            avg_vl: None,
            common_vls: &[],
            opportunity: Some(96.0),
            description: "eddy currents in ocean basin",
        }
    }

    fn build_spread(&self, threads: usize, _clusters: usize, scale: Scale) -> Built {
        let n: usize = scale.pick(18, 130, 194); // grid edge
        let steps: usize = scale.pick(2, 3, 4);
        let interior = n - 2;
        assert!(interior.is_multiple_of(threads));
        assert!(interior.is_multiple_of(2), "point loop is unrolled by two");
        let u0 = initial(n);
        let src = format!(
            r#"
        .eq N, {n}
        .data
    {u0_data}
    {u1_data}
    serial_out:
        .zero 8
        .text
        # cur/next swap between u0 and u1 every sweep, and the stencil
        # deliberately reads the up/down rows owned by neighbouring threads
        # — from the *previous* sweep's grid. The symbolic analysis cannot
        # separate the two grids after the swap join, but the race
        # checker's exact DLP walk proves the reads and the neighbours'
        # writes never share a barrier epoch's hull, so no allow is needed.
        tid     x10
        li      x11, {rows_per_thread}
        mul     x12, x10, x11
        addi    x12, x12, 1        # row lo
        add     x13, x12, x11      # row hi
        la      x21, u0            # cur
        la      x22, u1            # next
        li      x4, 1
        fcvt.f.x f10, x4
        li      x4, 4
        fcvt.f.x f11, x4
        fdiv    f10, f10, f11      # 0.25
        li      x28, {steps}
        li      x20, N
        region  1
    step:
        mv      x14, x12           # i
    rowloop:
        # row pointers: x5 = &cur[i][1], x6 = up row, x7 = down row,
        # x8 = &next[i][1]
        mul     x4, x14, x20
        slli    x4, x4, 3
        add     x5, x21, x4
        addi    x5, x5, 8
        li      x19, {row_bytes}
        sub     x6, x5, x19
        add     x7, x5, x19
        add     x8, x22, x4
        addi    x8, x8, 8
        fld     f5, -8(x5)         # west = left boundary (new chain seed)
        # software-pipelined prologue: neighbours of the first point
        fld     f1, 0(x6)          # up(j)
        fld     f2, 0(x7)          # down(j)
        fld     f3, 8(x5)          # right(j)
        li      x15, {interior_pairs}
    ptloop:
        # load neighbours of the NEXT point while computing this one
        fld     f6, 8(x6)          # up(j+1)
        fld     f7, 8(x7)          # down(j+1)
        fld     f8, 16(x5)         # right(j+1)
        fadd    f1, f1, f2         # t = up + down
        fadd    f5, f5, f3         # w = west + right
        fadd    f5, f5, f1         # w + t
        fmul    f5, f5, f10        # west'
        fsd     f5, 0(x8)
        # second point of the pair (B regs), loading for j+2 (A regs)
        fld     f1, 16(x6)
        fld     f2, 16(x7)
        fld     f3, 24(x5)
        fadd    f6, f6, f7
        fadd    f5, f5, f8
        fadd    f5, f5, f6
        fmul    f5, f5, f10
        fsd     f5, 8(x8)
        addi    x5, x5, 16
        addi    x6, x6, 16
        addi    x7, x7, 16
        addi    x8, x8, 16
        addi    x15, x15, -1
        bnez    x15, ptloop
        addi    x14, x14, 1
        blt     x14, x13, rowloop
        barrier
        mv      x4, x21
        mv      x21, x22
        mv      x22, x4
        addi    x28, x28, -1
        bnez    x28, step
{serial}
        halt
    "#,
            u0_data = data_doubles("u0", &u0),
            u1_data = data_doubles("u1", &u0),
            rows_per_thread = interior / threads,
            row_bytes = 8 * n,
            interior_pairs = interior / 2,
            serial = crate::common::serial_phase(
                if steps.is_multiple_of(2) { "u0" } else { "u1" },
                n * n / 8,
                "serial_out"
            ),
        );
        let program = assemble(&src).unwrap_or_else(|e| panic!("ocean: {e}"));
        let result_sym = if steps.is_multiple_of(2) { "u0" } else { "u1" };
        let verifier = Box::new(move |sim: &FuncSim| {
            let g = golden(n, steps);
            expect_f64s(&read_f64s(sim, result_sym, n * n), &g, "ocean u")?;
            let words: Vec<u64> = g[..n * n / 8].iter().map(|v| v.to_bits()).collect();
            let want = serial_golden(&words);
            crate::common::expect_u64s(&read_u64s(sim, "serial_out", 1), &[want], "ocean serial")
        });
        Built { program, verifier }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_verifies() {
        Ocean.build(1, Scale::Test).run_functional(1, 20_000_000).unwrap();
    }

    #[test]
    fn eight_threads_verify() {
        Ocean.build(8, Scale::Test).run_functional(8, 20_000_000).unwrap();
    }

    #[test]
    fn golden_boundaries_fixed() {
        let n = 10;
        let g = golden(n, 2);
        let init = initial(n);
        for j in 0..n {
            assert_eq!(g[j], init[j]);
            assert_eq!(g[(n - 1) * n + j], init[(n - 1) * n + j]);
        }
    }

    #[test]
    fn golden_has_west_dependence() {
        // Gauss-Seidel differs from Jacobi: the chain ripples along the row
        // within one sweep. Recompute row 1 manually and compare.
        let n = 10;
        let a = golden(n, 1);
        let init = initial(n);
        let mut west = init[n];
        for j in 1..n - 1 {
            let t = init[j] + init[2 * n + j];
            let w = west + init[n + j + 1];
            west = (w + t) * 0.25;
        }
        assert_eq!(a[n + n - 2], west);
    }
}
