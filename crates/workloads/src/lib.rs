#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # vlt-workloads — the applications of the paper's evaluation
//!
//! Nine SPMD kernels reproducing the *structure* of the applications in
//! Table 4 — the same algorithmic skeletons, vector-length profiles,
//! vectorization fractions, and threading opportunity — written in the VLT
//! ISA and verified against golden Rust implementations:
//!
//! | name       | structure                           | profile            |
//! |------------|-------------------------------------|--------------------|
//! | `mxm`      | dense matrix multiply               | long VL (64)       |
//! | `sage`     | hydrodynamics-style stencil sweeps  | long VL (64)       |
//! | `mpenc`    | video encoding (block SAD search)   | VL 8/16/64         |
//! | `trfd`     | triangular two-electron transform   | VL 4/20/30/35      |
//! | `multprec` | multiprecision array arithmetic     | VL 23/24/64        |
//! | `bt`       | 5x5 block-tridiagonal kernels       | VL 5/10/12         |
//! | `radix`    | parallel LSD radix sort             | scalar (6% vect)   |
//! | `ocean`    | Jacobi relaxation on a grid         | scalar parallel    |
//! | `barnes`   | N-body with irregular walks         | scalar parallel    |
//!
//! Each workload builds at a chosen thread count and [`Scale`]; the
//! returned [`Built`] bundles the program with a verifier that replays the
//! exact arithmetic in Rust and compares the final memory image.
//!
//! Alongside the nine Table-4 applications, an **irregular suite**
//! ([`irregular_suite`]) of four gather/scatter-heavy kernels exercises
//! the content-aware footprint analysis — data-dependent addressing that
//! the verifier must certify without any `vlint.allow.*` annotation:
//!
//! | name       | structure                              | discharged by      |
//! |------------|----------------------------------------|--------------------|
//! | `spmv`     | CSR sparse matrix-vector product       | exact walk hulls   |
//! | `histo`    | histogram + permutation scatter        | injectivity lemma  |
//! | `hashjoin` | hash build + vectorized indexed probe  | masked-index bound |
//! | `sweep`    | multi-sweep stencil, permuted schedule | partition lemma    |

pub mod characterize;
pub mod common;
pub mod suite;

pub mod barnes;
pub mod bt;
pub mod mpenc;
pub mod multprec;
pub mod mxm;
pub mod ocean;
pub mod radix;
pub mod sage;
pub mod trfd;

pub mod hashjoin;
pub mod histo;
pub mod spmv;
pub mod sweep;

pub use common::{Built, Scale};
pub use suite::{irregular_source, irregular_suite, suite, workload, PaperRow, Workload};
