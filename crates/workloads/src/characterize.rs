//! Workload characterization — the measured side of Table 4.
//!
//! Functional runs yield the operation-level metrics (% vectorization,
//! average vector length, common VLs); a timed run on the base processor
//! yields the % opportunity (fraction of execution time inside `region`
//! markers, which tag each workload's VLT-eligible parallel phases).

use vlt_core::{System, SystemConfig};
use vlt_exec::FuncSim;

use crate::common::Scale;
use crate::suite::Workload;

/// Measured Table 4 row.
#[derive(Debug, Clone)]
pub struct Characterization {
    /// Workload name.
    pub name: &'static str,
    /// Measured % vectorization (operations).
    pub pct_vect: f64,
    /// Measured average vector length.
    pub avg_vl: f64,
    /// Most common vector lengths, most frequent first.
    pub common_vls: Vec<usize>,
    /// Measured % opportunity (cycles in marked regions on base timing).
    pub opportunity: f64,
    /// Dynamic instructions in the functional run.
    pub insts: u64,
}

/// Characterize one workload at the given scale (single-threaded, as the
/// paper measures the original application on the base processor).
pub fn characterize(w: &dyn Workload, scale: Scale) -> Result<Characterization, String> {
    let built = w.build(1, scale);

    // Functional metrics.
    let mut sim = FuncSim::new(&built.program, 1);
    let summary = sim.run_to_completion(2_000_000_000).map_err(|e| e.to_string())?;
    (built.verifier)(&sim)?;

    // Timed opportunity on the base 8-lane processor.
    let mut system = System::new(SystemConfig::base(8), &built.program, 1);
    let result = system.run(2_000_000_000).map_err(|e| e.to_string())?;

    Ok(Characterization {
        name: w.name(),
        pct_vect: summary.pct_vectorization(),
        avg_vl: summary.avg_vl(),
        common_vls: summary.common_vls(4),
        opportunity: result.opportunity(),
        insts: summary.insts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::workload;

    #[test]
    fn mxm_is_highly_vectorized() {
        let c = characterize(workload("mxm").unwrap(), Scale::Test).unwrap();
        assert!(c.pct_vect > 85.0, "mxm: {:.1}%", c.pct_vect);
        assert!(c.avg_vl > 60.0, "mxm avg VL: {:.1}", c.avg_vl);
        assert_eq!(c.common_vls[0], 64);
    }

    #[test]
    fn bt_is_half_vectorized_with_short_vls() {
        let c = characterize(workload("bt").unwrap(), Scale::Test).unwrap();
        assert!(
            (30.0..65.0).contains(&c.pct_vect),
            "bt should be ~46% vectorized: {:.1}%",
            c.pct_vect
        );
        assert!(c.avg_vl < 12.0, "bt avg VL: {:.1}", c.avg_vl);
        assert!(c.common_vls.contains(&5));
    }

    #[test]
    fn radix_is_barely_vectorized() {
        let c = characterize(workload("radix").unwrap(), Scale::Test).unwrap();
        assert!(c.pct_vect < 25.0, "radix: {:.1}%", c.pct_vect);
        assert!(c.opportunity > 60.0, "radix opportunity: {:.1}%", c.opportunity);
    }

    #[test]
    fn ocean_and_barnes_have_no_vectors() {
        for name in ["ocean", "barnes"] {
            let c = characterize(workload(name).unwrap(), Scale::Test).unwrap();
            assert_eq!(c.pct_vect, 0.0, "{name}");
            assert!(c.opportunity > 75.0, "{name} opportunity: {:.1}%", c.opportunity);
        }
    }

    #[test]
    fn trfd_has_table4_vls() {
        let c = characterize(workload("trfd").unwrap(), Scale::Test).unwrap();
        for vl in c.common_vls.iter().take(3) {
            assert!([4usize, 20, 30, 35].contains(vl), "unexpected VL {vl}");
        }
        assert!((15.0..30.0).contains(&c.avg_vl), "trfd avg VL: {:.1}", c.avg_vl);
        assert!(c.opportunity > 85.0, "trfd opportunity: {:.1}%", c.opportunity);
    }
}
