//! `spmv` — sparse matrix-vector product in CSR form (irregular suite).
//!
//! `y = A * x` over the wrapping `u64` (+, *) semiring. `A` is stored as
//! textbook CSR with one twist that matches the machine: the row-pointer
//! and column-index arrays hold *byte offsets* (pre-scaled by 8), so the
//! kernel indexes with plain adds and the `vldx` gather consumes the
//! column vector directly. Rows are block-partitioned across threads; the
//! per-row nonzero run is walked in `setvl`-sized chunks — unit-stride
//! loads of the column offsets and values, an indexed gather of `x`, a
//! `vmul.vv`/`vredsum` dot-product accumulation.
//!
//! Verification interest: the gather's addresses are data-dependent
//! (loaded column offsets), but every steering table is read-only `.data`,
//! so the content-aware footprint analysis bounds the CSR cursors from the
//! row-pointer image and the exact multi-thread walk certifies the
//! remaining gather/partition disjointness — no `vlint.allow.*` anywhere.

use vlt_exec::FuncSim;
use vlt_isa::asm::assemble;

use crate::common::{data_dwords, expect_u64s, read_u64s, rng_stream, Built, Scale};
use crate::suite::{PaperRow, Workload};

/// The workload singleton.
pub struct Spmv;

const SEED: u64 = 0x5134;

/// Deterministic CSR instance: `rowptr` (byte offsets into `colidx` /
/// `vals`, length `rows + 1`), `colidx` (byte offsets into `x`), `vals`.
fn csr(rows: usize, cols: usize, max_nnz: usize) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    let counts = rng_stream(SEED, rows);
    let nnz: Vec<usize> = counts.iter().map(|&c| 1 + (c as usize % max_nnz)).collect();
    let total: usize = nnz.iter().sum();
    let mut rowptr = Vec::with_capacity(rows + 1);
    let mut off = 0u64;
    for &k in &nnz {
        rowptr.push(off * 8);
        off += k as u64;
    }
    rowptr.push(off * 8);
    let colidx: Vec<u64> =
        rng_stream(SEED ^ 0xC01, total).iter().map(|&c| (c % cols as u64) * 8).collect();
    let vals = rng_stream(SEED ^ 0x7A1, total);
    (rowptr, colidx, vals)
}

fn xvec(cols: usize) -> Vec<u64> {
    rng_stream(SEED ^ 0x0EC, cols)
}

fn golden(rows: usize, cols: usize, max_nnz: usize) -> Vec<u64> {
    let (rowptr, colidx, vals) = csr(rows, cols, max_nnz);
    let x = xvec(cols);
    (0..rows)
        .map(|r| {
            let (s, e) = (rowptr[r] as usize / 8, rowptr[r + 1] as usize / 8);
            (s..e).fold(0u64, |acc, k| {
                acc.wrapping_add(vals[k].wrapping_mul(x[colidx[k] as usize / 8]))
            })
        })
        .collect()
}

fn dims(scale: Scale) -> (usize, usize, usize) {
    // (rows, cols, max nonzeros per row); rows divide by 8, and the total
    // nonzero count stays within the content analysis' fold window.
    match scale {
        Scale::Test => (32, 64, 8),
        Scale::Small => (192, 128, 16),
        Scale::Full => (512, 512, 16),
    }
}

/// The kernel source (exposed so the lint driver can regenerate it).
pub fn source(threads: usize, clusters: usize, scale: Scale) -> String {
    let (rows, cols, max_nnz) = dims(scale);
    assert!(rows.is_multiple_of(threads), "rows must divide across threads");
    let vltcfg = crate::common::vltcfg_operand(threads, clusters);
    let (rowptr, colidx, vals) = csr(rows, cols, max_nnz);
    format!(
        r#"
        .eq vlint.threads, {threads}
        .data
    {rowptr_data}
    {colidx_data}
    {vals_data}
    {x_data}
    y:
        .zero {ybytes}
        .text
        li      x9, {vltcfg}
        vltcfg  x9
        tid     x10
        li      x11, {rows_per_thread}
        mul     x12, x10, x11      # r
        add     x13, x12, x11      # r_end
        la      x20, rowptr
        la      x21, colidx
        la      x22, vals
        la      x23, x
        la      x24, y
        region  1
    rowloop:
        slli    x5, x12, 3
        add     x5, x5, x20
        ld      x6, 0(x5)          # run start (byte offset)
        ld      x7, 8(x5)          # run end
        li      x16, 0             # dot accumulator
    nnzloop:
        sub     x8, x7, x6
        srli    x8, x8, 3
        setvl   x2, x8             # vl = min(remaining, mvl)
        add     x9, x21, x6
        vld     v1, x9             # column byte offsets
        add     x9, x22, x6
        vld     v2, x9             # matrix values
        vldx    v3, x23, v1        # gather x[col]
        vmul.vv v4, v2, v3
        vredsum x15, v4
        add     x16, x16, x15
        slli    x17, x2, 3
        add     x6, x6, x17
        blt     x6, x7, nnzloop
        slli    x5, x12, 3
        add     x5, x5, x24
        sd      x16, 0(x5)         # y[r]
        addi    x12, x12, 1
        blt     x12, x13, rowloop
        region  0
        barrier
        halt
    "#,
        rowptr_data = data_dwords("rowptr", &rowptr),
        colidx_data = data_dwords("colidx", &colidx),
        vals_data = data_dwords("vals", &vals),
        x_data = data_dwords("x", &xvec(cols)),
        ybytes = 8 * rows,
        rows_per_thread = rows / threads,
    )
}

impl Workload for Spmv {
    fn name(&self) -> &'static str {
        "spmv"
    }

    fn vectorizable(&self) -> bool {
        true
    }

    fn paper_row(&self) -> PaperRow {
        PaperRow {
            pct_vect: None,
            avg_vl: None,
            common_vls: &[],
            opportunity: None,
            description: "CSR sparse matrix-vector product (irregular suite)",
        }
    }

    fn build_spread(&self, threads: usize, clusters: usize, scale: Scale) -> Built {
        let (rows, cols, max_nnz) = dims(scale);
        let src = source(threads, clusters, scale);
        let program = assemble(&src).unwrap_or_else(|e| panic!("spmv: {e}"));
        let verifier = Box::new(move |sim: &FuncSim| {
            expect_u64s(&read_u64s(sim, "y", rows), &golden(rows, cols, max_nnz), "spmv y")
        });
        Built { program, verifier }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_verifies() {
        Spmv.build(1, Scale::Test).run_functional(1, 10_000_000).unwrap();
    }

    #[test]
    fn four_threads_verify() {
        Spmv.build(4, Scale::Test).run_functional(4, 10_000_000).unwrap();
    }

    #[test]
    fn csr_is_well_formed() {
        let (rows, cols, max_nnz) = dims(Scale::Test);
        let (rowptr, colidx, vals) = csr(rows, cols, max_nnz);
        assert_eq!(rowptr.len(), rows + 1);
        assert_eq!(colidx.len(), vals.len());
        assert_eq!(*rowptr.last().unwrap() as usize, 8 * colidx.len());
        // Every row has at least one nonzero (the kernel's inner loop
        // requires a nonempty run — `setvl 0` is an architectural error).
        for w in rowptr.windows(2) {
            assert!(w[0] < w[1]);
        }
        // Column offsets are in-bounds, 8-aligned byte offsets.
        for &c in &colidx {
            assert!(c % 8 == 0 && (c as usize) < 8 * cols);
        }
    }

    #[test]
    fn golden_spot_check() {
        let (rows, cols, max_nnz) = dims(Scale::Test);
        let (rowptr, colidx, vals) = csr(rows, cols, max_nnz);
        let x = xvec(cols);
        let g = golden(rows, cols, max_nnz);
        let r = rows / 2;
        let manual = (rowptr[r] as usize / 8..rowptr[r + 1] as usize / 8)
            .fold(0u64, |a, k| a.wrapping_add(vals[k].wrapping_mul(x[colidx[k] as usize / 8])));
        assert_eq!(g[r], manual);
    }
}
