//! `radix` — parallel LSD radix sort (Table 4: 6% vect, 90% opportunity).
//!
//! Two 8-bit digit passes over 64-bit keys. Each pass: per-thread local
//! histograms, a serial global prefix-sum (the ~10% VLT cannot help), and a
//! stable scatter with data-dependent addressing (the paper's compiler
//! cannot vectorize it). A two-multiply running key checksum forms the
//! serial integer backbone of both loops — the "limited ILP per thread"
//! the paper notes for these applications.
//!
//! Scheduling notes (the code is laid out as a production compiler would
//! schedule it for an in-order machine):
//! * key fetches are software-pipelined two iterations ahead, and bucket
//!   counters one ahead (with a rare same-bucket repair branch),
//! * histograms are stored transposed (`hist[bucket][thread]`) so the
//!   serial prefix is a contiguous walk, pipelined four slots deep.
//!
//! Lint notes (defects `vlint`'s dead-write pass caught): the prologue
//! read `nthr` into a register nothing consumed (removed), and the VL-64
//! checksum sweep computed its `vredsum` reduction and dropped it — the
//! result is now stored to `vchk_out` and checked against the golden
//! wrapping key sum in the verifier.
//!
//! Race notes (the dynamic barrier-epoch checker's one real find): the
//! two-ahead key pipeline over-reads up to 16 bytes past a thread's slice,
//! and at the array seam those reads used to land in the *next* array —
//! `buf` during the scatter epoch and `hist` during the pass-1 count
//! epoch — which another thread was concurrently writing. The loaded
//! values are dead (the pipeline drains before use), but the strict
//! no-intra-epoch-sharing invariant was violated. Guard words between
//! `keys`/`buf` and `buf`/`hist` keep the over-reads out of every written
//! footprint; results are unchanged. The data-dependent scatter itself is
//! beyond static bounding and carries a documented `race-unknown` allow.

use vlt_exec::FuncSim;
use vlt_isa::asm::assemble;

use crate::common::{data_dwords, expect_u64s, read_u64s, rng_stream, serial_golden, Built, Scale};
use crate::suite::{PaperRow, Workload};

/// The workload singleton.
pub struct Radix;

const BUCKETS: usize = 256;
const PASSES: usize = 2;
const PRIME: u64 = 0x9E37;
const PRIME2: u64 = 0x85EB;

fn keys(n: usize) -> Vec<u64> {
    rng_stream(0x5047, n)
}

/// Final sorted order: two stable LSD passes over the low 16 bits.
fn golden(n: usize) -> Vec<u64> {
    let mut k = keys(n);
    k.sort_by_key(|v| v & 0xFFFF);
    k
}

/// Per-thread checksum chains: each pass, each thread folds its slice of
/// the pass's source array into its checksum twice (count loop + scatter
/// loop): `chk = (chk * PRIME + key) * PRIME2` per visit.
fn golden_chk(n: usize, threads: usize) -> Vec<u64> {
    let mut arr = keys(n);
    let per = n / threads;
    let mut chk = vec![0u64; threads];
    for pass in 0..PASSES {
        for (t, c) in chk.iter_mut().enumerate() {
            for _loop in 0..2 {
                for &key in &arr[t * per..(t + 1) * per] {
                    *c = c.wrapping_mul(PRIME).wrapping_add(key);
                    *c = c.wrapping_mul(PRIME2);
                }
            }
        }
        // Stable LSD pass on this digit.
        let shift = 8 * pass;
        let mut next = vec![0u64; n];
        let mut count = [0usize; BUCKETS];
        for &k in &arr {
            count[(k >> shift) as usize & 255] += 1;
        }
        let mut pos = [0usize; BUCKETS];
        let mut run = 0;
        for b in 0..BUCKETS {
            pos[b] = run;
            run += count[b];
        }
        for &k in &arr {
            let b = (k >> shift) as usize & 255;
            next[pos[b]] = k;
            pos[b] += 1;
        }
        arr = next;
    }
    chk
}

/// Histogram clear over this thread's strided slots. The base
/// (single-thread) vector run uses VL-64 vector stores (layout is
/// contiguous when T == 1); threaded variants are pure scalar, since VLT
/// scalar threads execute on lanes with no vector capability (paper §5).
fn clear_code(vector: bool, threads: usize) -> String {
    if vector {
        r#"        li      x3, 64
        setvl   x2, x3
        vxor.vv v1, v1, v1
        mv      x4, x24
        li      x5, 0
    clear:
        vst     v1, x4
        slli    x15, x2, 3
        add     x4, x4, x15
        add     x5, x5, x2
        li      x15, 256
        blt     x5, x15, clear"#
            .to_string()
    } else {
        format!(
            r#"        mv      x4, x24
        li      x5, 0
    clear:
        sd      x0, 0(x4)
        addi    x4, x4, {stride}
        addi    x5, x5, 1
        li      x15, 256
        blt     x5, x15, clear"#,
            stride = 8 * threads
        )
    }
}

/// The base vector run's VL-64 checksum sweep over the sorted keys.
fn vector_checksum(vector: bool, n: usize) -> String {
    if !vector {
        return String::new();
    }
    format!(
        r#"
        region  1
        li      x3, 64
        setvl   x2, x3
        vxor.vv v2, v2, v2
        mv      x4, x20
        li      x5, 0
        li      x15, {n}
    vsum:
        vld     v1, x4
        vadd.vv v2, v2, v1
        slli    x16, x2, 3
        add     x4, x4, x16
        add     x5, x5, x2
        blt     x5, x15, vsum
        vredsum x16, v2
        la      x4, vchk_out
        sd      x16, 0(x4)
"#
    )
}

impl Workload for Radix {
    fn name(&self) -> &'static str {
        "radix"
    }

    fn vectorizable(&self) -> bool {
        false
    }

    fn paper_row(&self) -> PaperRow {
        PaperRow {
            pct_vect: Some(6.0),
            avg_vl: Some(62.3),
            common_vls: &[24, 52, 64],
            opportunity: Some(90.0),
            description: "radix sort",
        }
    }

    fn build_spread(&self, threads: usize, _clusters: usize, scale: Scale) -> Built {
        assert!(threads.is_power_of_two(), "transposed histograms need 2^k threads");
        let n: usize = scale.pick(512, 16384, 32768);
        assert!(n.is_multiple_of(threads));
        // hist/offs slot for (bucket, thread): (b * threads + t) * 8 bytes.
        let bshift = 3 + threads.trailing_zeros();
        let src = format!(
            r#"
        .data
    {keys_data}
    keys_guard:
        .zero 16
    buf:
        .zero {kbytes}
    buf_guard:
        .zero 16
    hist:
        .zero {hbytes}
    offs:
        .zero {hbytes}
    chkout:
        .zero 64
    vchk_out:
        .zero 8
    serial_out:
        .zero 8
        .text
        # the scatter writes through offsets accumulated from the global
        # prefix sum — data-dependent addressing the symbolic footprints
        # cannot bound, and the same widened cursors smear the transposed
        # hist/offs slot footprints across neighbouring threads' slots.
        # The slot partition is disjoint by construction and the scatter
        # targets are disjoint because the prefix sum is exclusive per
        # (bucket, thread): exactly the permutation lemma the observed
        # epoch-synchronous walk certifies, so the race analysis discharges
        # every pair here without allow annotations.
        tid     x10
        li      x11, {keys_per_thread}
        mul     x12, x10, x11      # k0
        add     x13, x12, x11      # k_end
        la      x20, keys
        la      x21, buf
        la      x22, hist
        la      x23, offs
        # per-thread bases: slot(b, tid) = base + (b << {bshift})
        slli    x4, x10, 3
        add     x24, x22, x4       # hist + tid*8
        add     x25, x23, x4       # offs + tid*8
        li      x29, {prime}
        li      x18, {prime2}
        li      x17, 0             # running key checksum (serial backbone)
        li      x26, 0             # pass
    passloop:
        region  1
        # ---- clear my histogram ----
{clear_code}

        # ---- local count: keys pipelined two ahead, counters one ----
        slli    x14, x26, 3        # digit shift = pass*8
        slli    x5, x12, 3
        add     x5, x5, x20        # walking key pointer
        ld      x6, 0(x5)          # key[k0]
        ld      x15, 8(x5)         # key[k0+1]
        srl     x7, x6, x14
        andi    x7, x7, 255
        slli    x7, x7, {bshift}
        add     x7, x7, x24        # my slot for d0
        ld      x8, 0(x7)          # current count
        mv      x4, x12
    count:
        ld      x19, 16(x5)        # key[i+2] (over-reads at the end: benign)
        # bucket of key[i+1] from the already-arrived register
        srl     x27, x15, x14
        andi    x27, x27, 255
        slli    x27, x27, {bshift}
        add     x27, x27, x24
        ld      x28, 0(x27)        # its count (stale on same-bucket runs)
        # serial checksum chain (rank/density arithmetic: limits ILP)
        mul     x17, x17, x29
        add     x17, x17, x6
        mul     x17, x17, x18
        # commit current bucket
        addi    x8, x8, 1
        sd      x8, 0(x7)
        bne     x27, x7, nocollide_c
        mv      x28, x8            # repair the stale pre-load
    nocollide_c:
        mv      x6, x15
        mv      x15, x19
        mv      x7, x27
        mv      x8, x28
        addi    x5, x5, 8
        addi    x4, x4, 1
        blt     x4, x13, count
        region  0
        barrier

        # ---- serial global prefix (thread 0): contiguous transposed
        # walk, software-pipelined four slots deep ----
        bnez    x10, prefix_done
        mv      x7, x22            # hist cursor
        mv      x8, x23            # offs cursor
        li      x6, {slots}
        li      x5, 0              # running total
        ld      x15, 0(x7)
        ld      x16, 8(x7)
        ld      x27, 16(x7)
        ld      x28, 24(x7)
    pflat:
        sd      x5, 0(x8)
        add     x5, x5, x15
        sd      x5, 8(x8)
        add     x5, x5, x16
        ld      x15, 32(x7)        # over-reads into offs at the end: benign
        ld      x16, 40(x7)
        sd      x5, 16(x8)
        add     x5, x5, x27
        sd      x5, 24(x8)
        add     x5, x5, x28
        ld      x27, 48(x7)
        ld      x28, 56(x7)
        addi    x7, x7, 32
        addi    x8, x8, 32
        addi    x6, x6, -4
        bnez    x6, pflat
    prefix_done:
        barrier
        region  1

        # ---- stable scatter: keys pipelined two ahead ----
        slli    x5, x12, 3
        add     x5, x5, x20
        ld      x6, 0(x5)          # key[k0]
        ld      x15, 8(x5)         # key[k0+1]
        srl     x7, x6, x14
        andi    x7, x7, 255
        slli    x7, x7, {bshift}
        add     x7, x7, x25        # my offset slot for d0
        ld      x8, 0(x7)          # destination index
        mv      x4, x12
    scatter:
        ld      x19, 16(x5)        # key[i+2]
        srl     x27, x15, x14
        andi    x27, x27, 255
        slli    x27, x27, {bshift}
        add     x27, x27, x25
        ld      x28, 0(x27)        # next destination (stale on collision)
        # serial checksum chain
        mul     x17, x17, x29
        add     x17, x17, x6
        mul     x17, x17, x18
        # store current key at its destination, bump the offset
        addi    x16, x8, 1
        sd      x16, 0(x7)
        slli    x3, x8, 3
        add     x3, x3, x21
        sd      x6, 0(x3)          # buf[dst] = key
        bne     x27, x7, nocollide_s
        mv      x28, x16
    nocollide_s:
        mv      x6, x15
        mv      x15, x19
        mv      x7, x27
        mv      x8, x28
        addi    x5, x5, 8
        addi    x4, x4, 1
        blt     x4, x13, scatter
        region  0
        barrier
        # swap src/dst arrays
        mv      x4, x20
        mv      x20, x21
        mv      x21, x4
        addi    x26, x26, 1
        slti    x4, x26, {passes}
        bnez    x4, passloop

        # publish the per-thread checksum
        la      x4, chkout
        slli    x5, x10, 3
        add     x4, x4, x5
        sd      x17, 0(x4)
{vcheck}
{serial}
        halt
    "#,
            keys_data = data_dwords("keys", &keys(n)),
            clear_code = clear_code(threads == 1, threads),
            vcheck = vector_checksum(threads == 1, n),
            serial = crate::common::serial_phase("keys", n / 4, "serial_out"),
            kbytes = 8 * n,
            hbytes = 8 * BUCKETS * threads,
            keys_per_thread = n / threads,
            passes = PASSES,
            prime = PRIME,
            prime2 = PRIME2,
            bshift = bshift,
            slots = BUCKETS * threads,
        );
        let program = assemble(&src).unwrap_or_else(|e| panic!("radix: {e}"));
        let verifier = Box::new(move |sim: &FuncSim| {
            let g = golden(n);
            expect_u64s(&read_u64s(sim, "keys", n), &g, "radix keys")?;
            let chk = golden_chk(n, threads);
            expect_u64s(&read_u64s(sim, "chkout", threads), &chk, "radix chk")?;
            if threads == 1 {
                // The VL-64 checksum sweep: keys are a permutation of the
                // input, so the reduction equals the wrapping input sum.
                let vchk = g.iter().fold(0u64, |a, &k| a.wrapping_add(k));
                expect_u64s(&read_u64s(sim, "vchk_out", 1), &[vchk], "radix vchk")?;
            }
            let want = serial_golden(&g[..n / 4]);
            expect_u64s(&read_u64s(sim, "serial_out", 1), &[want], "radix serial")
        });
        Built { program, verifier }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_sorts() {
        Radix.build(1, Scale::Test).run_functional(1, 10_000_000).unwrap();
    }

    #[test]
    fn eight_threads_sort() {
        Radix.build(8, Scale::Test).run_functional(8, 10_000_000).unwrap();
    }

    #[test]
    fn two_threads_sort() {
        Radix.build(2, Scale::Test).run_functional(2, 10_000_000).unwrap();
    }

    #[test]
    fn golden_is_sorted_by_low16() {
        let g = golden(100);
        for w in g.windows(2) {
            assert!((w[0] & 0xFFFF) <= (w[1] & 0xFFFF));
        }
    }

    #[test]
    fn checksums_differ_per_thread() {
        let chk = golden_chk(512, 8);
        assert_eq!(chk.len(), 8);
        assert!(chk.windows(2).any(|w| w[0] != w[1]));
    }
}
