//! `barnes` — galaxy system simulation (Table 4: not vectorized, 98%
//! opportunity).
//!
//! The force-computation phase of a Barnes-Hut step: each body walks its
//! interaction list (pointer chasing through shuffled nodes) accumulating
//! `m / (dx*dx + eps)` terms — long divide-latency chains with almost no
//! ILP. This is the workload whose per-thread performance suffers on a
//! 2-way in-order lane, making VLT and the CMT baseline tie (Figure 6).

use vlt_exec::FuncSim;
use vlt_isa::asm::assemble;

use crate::common::{data_doubles, expect_f64s, read_f64s, rng_stream, Built, Scale};
use crate::suite::{PaperRow, Workload};

/// The workload singleton.
pub struct Barnes;

/// Average interaction-list length.
const LIST_LEN: usize = 12;

fn masses(nb: usize) -> Vec<f64> {
    rng_stream(0xBA51, nb).into_iter().map(|v| ((v % 64) + 1) as f64 / 8.0).collect()
}

fn positions(nb: usize) -> Vec<f64> {
    rng_stream(0xBA52, nb).into_iter().map(|v| (v % 1024) as f64 / 32.0).collect()
}

/// Interaction lists: for body i, a list of partner body indices, laid out
/// as linked nodes `(partner, next_byte_offset)` *shuffled* in memory so
/// the walk is genuine pointer chasing.
fn lists(nb: usize) -> (Vec<u64>, Vec<Vec<usize>>) {
    let rand = rng_stream(0xBA53, nb * LIST_LEN + nb);
    let mut partners: Vec<Vec<usize>> = Vec::with_capacity(nb);
    for i in 0..nb {
        let len = LIST_LEN / 2 + (rand[i] as usize % LIST_LEN); // 6..=17
        partners
            .push((0..len).map(|k| rand[(i * LIST_LEN + k) % rand.len()] as usize % nb).collect());
    }
    // Allocate nodes in a shuffled global order.
    let total: usize = partners.iter().map(|p| p.len()).sum();
    let mut order: Vec<(usize, usize)> = Vec::with_capacity(total);
    for (i, p) in partners.iter().enumerate() {
        for k in 0..p.len() {
            order.push((i, k));
        }
    }
    // Deterministic shuffle.
    let sh = rng_stream(0xBA54, total);
    for i in (1..total).rev() {
        order.swap(i, sh[i] as usize % (i + 1));
    }
    // node slot per (body, k)
    let mut slot = vec![Vec::new(); nb];
    let mut slot_of = std::collections::HashMap::new();
    for (s, key) in order.iter().enumerate() {
        slot_of.insert(*key, s);
    }
    for (i, p) in partners.iter().enumerate() {
        slot[i] = (0..p.len()).map(|k| slot_of[&(i, k)]).collect();
    }
    // nodes: 2 dwords each: (partner_index, next_node_byte_offset or 0)
    let mut nodes = vec![0u64; total * 2];
    for (i, p) in partners.iter().enumerate() {
        for k in 0..p.len() {
            let s = slot[i][k];
            nodes[s * 2] = p[k] as u64;
            nodes[s * 2 + 1] = if k + 1 < p.len() {
                (slot[i][k + 1] * 16) as u64 + 1 // +1 tags "valid"
            } else {
                0
            };
        }
    }
    // heads: byte offset of first node per body (tagged +1), or 0 if empty
    let mut heads = vec![0u64; nb];
    for (i, p) in partners.iter().enumerate() {
        if !p.is_empty() {
            heads[i] = (slot[i][0] * 16) as u64 + 1;
        }
    }
    let mut blob = heads;
    blob.extend_from_slice(&nodes);
    (blob, partners)
}

fn golden(nb: usize) -> Vec<f64> {
    let m = masses(nb);
    let pos = positions(nb);
    let (_, partners) = lists(nb);
    let eps = 0.5f64;
    let mut f = vec![0.0f64; nb];
    for i in 0..nb {
        let mut acc = 0.0f64;
        for &j in &partners[i] {
            let dx = pos[i] - pos[j];
            let d2 = dx * dx + eps;
            acc += m[j] / d2;
        }
        f[i] = acc;
    }
    f
}

impl Workload for Barnes {
    fn name(&self) -> &'static str {
        "barnes"
    }

    fn vectorizable(&self) -> bool {
        false
    }

    fn paper_row(&self) -> PaperRow {
        PaperRow {
            pct_vect: None,
            avg_vl: None,
            common_vls: &[],
            opportunity: Some(98.0),
            description: "galaxy system simulation",
        }
    }

    fn build_spread(&self, threads: usize, _clusters: usize, scale: Scale) -> Built {
        let nb: usize = scale.pick(64, 1024, 2048);
        assert!(nb.is_multiple_of(threads));
        let (blob, _) = lists(nb);
        let src = format!(
            r#"
        .data
    {m_data}
    {p_data}
    heads:
        .dword {blob}
    force:
        .zero {fbytes}
        .text
        # the interaction-list walk is genuine pointer chasing: node
        # addresses come from `next` links loaded at run time, so the
        # symbolic analysis cannot bound the read footprints — but the race
        # checker's exact DLP walk can, and proves the reads stay inside
        # the read-only m/pos/heads arrays, so no allow is needed.
        tid     x10
        li      x11, {bodies_per_thread}
        mul     x12, x10, x11
        add     x13, x12, x11
        la      x20, m
        la      x21, pos
        la      x22, heads
        la      x24, force
        # nodes start right after the heads table
        li      x4, {heads_bytes}
        add     x23, x22, x4       # &nodes
        # eps = 0.5
        li      x4, 1
        fcvt.f.x f10, x4
        li      x4, 2
        fcvt.f.x f11, x4
        fdiv    f10, f10, f11
        region  1
        mv      x14, x12           # body i
    body:
        slli    x4, x14, 3
        add     x5, x21, x4
        fld     f1, 0(x5)          # pos[i]
        fcvt.f.x f2, x0            # acc = 0.0
        add     x5, x22, x4
        ld      x15, 0(x5)         # head (tagged)
    walk:
        beqz    x15, done
        addi    x15, x15, -1       # strip tag -> byte offset
        add     x16, x23, x15
        ld      x17, 0(x16)        # partner j
        ld      x15, 8(x16)        # next (tagged)
        slli    x17, x17, 3
        add     x5, x21, x17
        fld     f3, 0(x5)          # pos[j]
        fsub    f4, f1, f3         # dx
        fmul    f4, f4, f4
        fadd    f4, f4, f10        # d2
        add     x5, x20, x17
        fld     f5, 0(x5)          # m[j]
        fdiv    f5, f5, f4
        fadd    f2, f2, f5
        j       walk
    done:
        add     x5, x24, x4
        fsd     f2, 0(x5)
        addi    x14, x14, 1
        blt     x14, x13, body
        region  0
        barrier
        halt
    "#,
            m_data = data_doubles("m", &masses(nb)),
            p_data = data_doubles("pos", &positions(nb)),
            blob = blob.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", "),
            fbytes = 8 * nb,
            bodies_per_thread = nb / threads,
            heads_bytes = 8 * nb,
        );
        let program = assemble(&src).unwrap_or_else(|e| panic!("barnes: {e}"));
        let verifier = Box::new(move |sim: &FuncSim| {
            expect_f64s(&read_f64s(sim, "force", nb), &golden(nb), "barnes force")
        });
        Built { program, verifier }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_verifies() {
        Barnes.build(1, Scale::Test).run_functional(1, 20_000_000).unwrap();
    }

    #[test]
    fn eight_threads_verify() {
        Barnes.build(8, Scale::Test).run_functional(8, 20_000_000).unwrap();
    }

    #[test]
    fn lists_are_shuffled_but_complete() {
        let (blob, partners) = lists(32);
        let total: usize = partners.iter().map(|p| p.len()).sum();
        assert_eq!(blob.len(), 32 + total * 2);
        // Every list has at least LIST_LEN/2 partners.
        assert!(partners.iter().all(|p| p.len() >= LIST_LEN / 2));
    }
}
