//! `trfd` — two-electron integral transformation (Table 4: 73% vect,
//! avg VL 22.7, VLs 4/20/30/35, 99% opportunity).
//!
//! Triangular loop nest over rows of varying length: each row is scaled
//! and accumulated (`z += v * y`), reduced into a diagonal term, and tagged
//! with triangular index arithmetic — the classic pattern of medium/short
//! vectors riding on heavy scalar index bookkeeping.
//!
//! Lint note: the "symmetric pair bookkeeping" scalar block inside the
//! row loop models trfd's index-transformation workload and deliberately
//! discards its result, so the kernel carries `.eq vlint.allow.dead_write`
//! rather than storing a value no phase consumes. Everything else must
//! stay lint-clean (`verify_suite` enforces it).

use vlt_exec::FuncSim;
use vlt_isa::asm::assemble;

use crate::common::{data_doubles, data_dwords, expect_f64s, read_f64s, rng_stream, Built, Scale};
use crate::suite::{PaperRow, Workload};

/// The workload singleton.
pub struct Trfd;

/// Row lengths cycle through the paper's common VLs.
const ROW_LENGTHS: [usize; 4] = [35, 30, 20, 4];

fn row_len(r: usize) -> usize {
    ROW_LENGTHS[r % ROW_LENGTHS.len()]
}

fn offsets(rows: usize) -> Vec<u64> {
    let mut offs = Vec::with_capacity(rows + 1);
    let mut acc = 0u64;
    for r in 0..rows {
        offs.push(acc);
        acc += row_len(r) as u64;
    }
    offs.push(acc);
    offs
}

fn y_data(total: usize) -> Vec<f64> {
    rng_stream(0x7FD, total).into_iter().map(|v| (v % 64) as f64 / 4.0).collect()
}

fn v_data(rows: usize) -> Vec<f64> {
    rng_stream(0x7FE, rows).into_iter().map(|v| (v % 16) as f64 / 8.0).collect()
}

/// Transformation passes over the arrays (iterative application: the data
/// stays L2-resident after the first sweep).
pub const PASSES: usize = 3;

/// Golden model. Rows longer than `mvl` (the VLT register-file partition)
/// are strip-mined exactly as the kernel does, so the chunked reduction
/// order matches bit-for-bit. `z` accumulates across the passes; `d` holds
/// the last pass's reductions.
fn golden(rows: usize, mvl: usize) -> (Vec<f64>, Vec<f64>) {
    let offs = offsets(rows);
    let total = offs[rows] as usize;
    let y = y_data(total);
    let v = v_data(rows);
    let mut z = vec![0.0f64; total];
    let mut d = vec![0.0f64; rows];
    for _pass in 0..PASSES {
        for r in 0..rows {
            let (o, l) = (offs[r] as usize, row_len(r));
            let mut red = 0.0f64;
            let mut done = 0;
            while done < l {
                let vl = (l - done).min(mvl);
                let mut chunk_red = 0.0f64;
                for e in done..done + vl {
                    // vfma.vs: z += y * v  (computed as y.mul_add(v, z))
                    z[o + e] = y[o + e].mul_add(v[r], z[o + e]);
                    chunk_red += z[o + e]; // vfredsum order: ascending
                }
                red += chunk_red;
                done += vl;
            }
            let tri = (r * (r + 1) / 2) as f64;
            d[r] = red + tri;
        }
    }
    (z, d)
}

impl Workload for Trfd {
    fn name(&self) -> &'static str {
        "trfd"
    }

    fn vectorizable(&self) -> bool {
        true
    }

    fn paper_row(&self) -> PaperRow {
        PaperRow {
            pct_vect: Some(73.0),
            avg_vl: Some(22.7),
            common_vls: &[4, 20, 30, 35],
            opportunity: Some(99.0),
            description: "two-electron integral transformation",
        }
    }

    fn build_spread(&self, threads: usize, clusters: usize, scale: Scale) -> Built {
        let vltcfg = crate::common::vltcfg_operand(threads, clusters);
        let rows: usize = scale.pick(32, 512, 1024);
        assert!(rows.is_multiple_of(threads.max(ROW_LENGTHS.len())));
        let offs = offsets(rows);
        let total = offs[rows] as usize;
        let src = format!(
            r#"
        .data
    {y_data}
    {v_data}
    {off_data}
    z:
        .zero {zbytes}
    d:
        .zero {dbytes}
        .text
        # the symmetric-pair bookkeeping below is modeled work whose result
        # is intentionally unused; see the module docs
        .eq vlint.allow.dead_write, 1
        # row starts come from the offs table loaded at run time, so the
        # symbolic analysis cannot bound the y/z cursors — but the race
        # checker's exact DLP walk can, and proves the per-thread row
        # ranges disjoint, so no allow is needed.
        li      x9, {vltcfg}
        vltcfg  x9
        tid     x10
        li      x11, {rows_per_thread}
        mul     x12, x10, x11      # r0
        add     x13, x12, x11      # r_end
        la      x20, y
        la      x21, v
        la      x22, offs
        la      x23, z
        la      x24, d
        # Row lengths cycle {{35, 30, 20, 4}}; pack them into one register
        # so the length (and thus setvl) comes from register arithmetic —
        # the compiler strength-reduces the offset table out of the loop
        # and keeps the y/z cursors rolling incrementally.
        li      x29, {packed_lengths}
        region  1
        li      x31, {passes}
    pass_loop:
        # my starting cursor: offs[r0] (loaded once per pass, off the
        # critical path)
        slli    x4, x12, 3
        add     x5, x22, x4
        ld      x6, 0(x5)
        slli    x6, x6, 3
        add     x15, x20, x6       # y cursor
        add     x16, x23, x6       # z cursor
        mv      x14, x12           # r
    rloop:
        andi    x4, x14, 3
        slli    x4, x4, 3
        srl     x8, x29, x4
        andi    x8, x8, 255        # row length
        slli    x4, x14, 3
        add     x5, x21, x4
        fld     f1, 0(x5)          # v[r]
        fcvt.f.x f2, x0            # row reduction accumulator = 0.0
        li      x27, 0             # elements processed (strip-mining)
    chunkloop:
        sub     x28, x8, x27
        setvl   x2, x28
        vld     v1, x15
        vld     v2, x16
        vfma.vs v2, v1, f1
        vst     v2, x16
        vfredsum f4, v2
        fadd    f2, f2, f4
        slli    x28, x2, 3
        add     x15, x15, x28
        add     x16, x16, x28
        add     x27, x27, x2
        blt     x27, x8, chunkloop
        # triangular index arithmetic (the scalar bookkeeping trfd is
        # known for): tri = r*(r+1)/2, folded into the diagonal term
        addi    x17, x14, 1
        mul     x18, x14, x17
        srli    x18, x18, 1
        fcvt.f.x f3, x18
        fadd    f2, f2, f3
        add     x5, x24, x4
        fsd     f2, 0(x5)
        # extra index transformation work (symmetric pair bookkeeping)
        mul     x25, x14, x14
        add     x25, x25, x17
        srli    x25, x25, 1
        xor     x26, x25, x18
        and     x26, x26, x17
        addi    x14, x14, 1
        blt     x14, x13, rloop
        addi    x31, x31, -1
        bnez    x31, pass_loop
        region  0
        barrier
        halt
    "#,
            y_data = data_doubles("y", &y_data(total)),
            v_data = data_doubles("v", &v_data(rows)),
            off_data = data_dwords("offs", &offs),
            passes = PASSES,
            packed_lengths = 68427299,
            zbytes = 8 * total,
            dbytes = 8 * rows,
            rows_per_thread = rows / threads,
        );
        let program = assemble(&src).unwrap_or_else(|e| panic!("trfd: {e}"));
        let mvl = vlt_isa::MAX_VL / threads;
        let verifier = Box::new(move |sim: &FuncSim| {
            let (z, d) = golden(rows, mvl);
            expect_f64s(&read_f64s(sim, "z", total), &z, "trfd z")?;
            expect_f64s(&read_f64s(sim, "d", rows), &d, "trfd d")
        });
        Built { program, verifier }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_verifies() {
        Trfd.build(1, Scale::Test).run_functional(1, 10_000_000).unwrap();
    }

    #[test]
    fn four_threads_verify() {
        Trfd.build(4, Scale::Test).run_functional(4, 10_000_000).unwrap();
    }

    #[test]
    fn offsets_are_cumulative() {
        let o = offsets(8);
        assert_eq!(o[0], 0);
        assert_eq!(o[1], 35);
        assert_eq!(o[2], 65);
        assert_eq!(o[8], 2 * (35 + 30 + 20 + 4));
    }

    #[test]
    fn row_lengths_cycle_table4_vls() {
        assert_eq!(row_len(0), 35);
        assert_eq!(row_len(3), 4);
        assert_eq!(row_len(4), 35);
    }
}
