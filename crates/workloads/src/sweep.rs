//! `sweep` — multi-sweep vertical stencil over a permuted row schedule
//! (irregular suite).
//!
//! Four Jacobi-style sweeps over an `f64` grid with ping-ponged
//! source/destination buffers. Each sweep updates every interior row as
//! `0.25 * (above + 2*mid + below)`, vectorized across columns — but the
//! rows are *not* walked in order: a schedule table in `.data` holds
//! pre-scaled row byte offsets, permuted within each thread's contiguous
//! row block (the visit order a tiling or NUMA-aware scheduler would
//! produce).
//!
//! Verification interest: the destination addresses are loaded from
//! memory, yet the content-aware footprint analysis folds each thread's
//! slice of the schedule table into a value hull that is exactly the
//! thread's row block — per-thread disjoint index ranges, the partition
//! lemma — so the data-dependent writes are discharged statically even
//! though the rows are visited in scrambled order. Zero allows.

use vlt_exec::FuncSim;
use vlt_isa::asm::assemble;

use crate::common::{data_doubles, data_dwords, expect_f64s, read_f64s, rng_stream, Built, Scale};
use crate::suite::{PaperRow, Workload};

/// The workload singleton.
pub struct Sweep;

const SEED: u64 = 0x53EE;
const SWEEPS: usize = 4;
/// Finest partition granularity: the schedule permutes rows only within
/// each eighth of the interior, so every thread count in {1,2,4,8} gets
/// contiguous (if scrambled) row blocks.
const GROUPS: usize = 8;

fn dims(scale: Scale) -> (usize, usize) {
    // (interior rows, columns); interior rows divide by 8.
    match scale {
        Scale::Test => (16, 64),
        Scale::Small => (64, 128),
        Scale::Full => (128, 256),
    }
}

fn init_val(r: usize, c: usize) -> f64 {
    ((3 * r + 5 * c) % 17) as f64
}

fn grid(rows: usize, cols: usize) -> Vec<f64> {
    (0..rows * cols).map(|x| init_val(x / cols, x % cols)).collect()
}

/// The row schedule: byte offsets of the interior rows (1..=irows),
/// Fisher-Yates-shuffled within each of the [`GROUPS`] equal blocks.
fn schedule(irows: usize, cols: usize) -> Vec<u64> {
    let mut perm: Vec<u64> = (1..=irows as u64).collect();
    let per = irows / GROUPS;
    let rnd = rng_stream(SEED, irows);
    for g in 0..GROUPS {
        let block = &mut perm[g * per..(g + 1) * per];
        for i in (1..block.len()).rev() {
            block.swap(i, rnd[g * per + i] as usize % (i + 1));
        }
    }
    perm.into_iter().map(|r| r * 8 * cols as u64).collect()
}

/// Replay the sweeps: row visit order never matters (rows are independent
/// within a sweep), but the per-element operation order must match the
/// kernel bit for bit: `((above + below) + mid + mid) * 0.25`.
fn golden(irows: usize, cols: usize) -> Vec<f64> {
    let rows = irows + 2;
    let mut a = grid(rows, cols);
    let mut b = a.clone();
    for _ in 0..SWEEPS {
        for r in 1..=irows {
            for c in 0..cols {
                let s = ((a[(r - 1) * cols + c] + a[(r + 1) * cols + c])
                    + a[r * cols + c]
                    + a[r * cols + c])
                    * 0.25;
                b[r * cols + c] = s;
            }
        }
        std::mem::swap(&mut a, &mut b);
    }
    a
}

/// The kernel source (exposed so the lint driver can regenerate it).
pub fn source(threads: usize, clusters: usize, scale: Scale) -> String {
    let (irows, cols) = dims(scale);
    assert!(irows.is_multiple_of(threads), "interior rows must divide across threads");
    let vltcfg = crate::common::vltcfg_operand(threads, clusters);
    let rows = irows + 2;
    format!(
        r#"
        .eq vlint.threads, {threads}
        .data
    {ga_data}
    {gb_data}
    {sched_data}
    qconst:
        .double 0.25
        .text
        li      x9, {vltcfg}
        vltcfg  x9
        tid     x10
        li      x11, {rows_per_thread}
        mul     x12, x10, x11      # j0 (schedule index)
        add     x13, x12, x11      # j_end
        la      x20, ga            # src
        la      x21, gb            # dst
        la      x22, sched
        la      x23, qconst
        fld     f1, 0(x23)
        li      x26, 0             # sweep
    sweeploop:
        region  1
        mv      x4, x12            # j
    rowloop:
        slli    x5, x4, 3
        add     x5, x5, x22
        ld      x6, 0(x5)          # row byte offset (from the schedule)
        add     x7, x20, x6        # src row
        add     x8, x21, x6        # dst row
        li      x9, {rowbytes}
        sub     x15, x7, x9        # src row above
        add     x16, x7, x9        # src row below
        li      x17, {cols}
        li      x5, 0              # columns done
    colloop:
        sub     x18, x17, x5
        setvl   x2, x18
        vld     v1, x15            # above
        vld     v2, x7             # mid
        vld     v3, x16            # below
        vfadd.vv v4, v1, v3
        vfadd.vv v4, v4, v2
        vfadd.vv v4, v4, v2
        vfmul.vs v4, v4, f1
        vst     v4, x8
        slli    x18, x2, 3
        add     x15, x15, x18
        add     x7, x7, x18
        add     x16, x16, x18
        add     x8, x8, x18
        add     x5, x5, x2
        blt     x5, x17, colloop
        addi    x4, x4, 1
        blt     x4, x13, rowloop
        region  0
        barrier
        # ping-pong the buffers
        mv      x5, x20
        mv      x20, x21
        mv      x21, x5
        addi    x26, x26, 1
        slti    x5, x26, {sweeps}
        bnez    x5, sweeploop
        halt
    "#,
        ga_data = data_doubles("ga", &grid(rows, cols)),
        gb_data = data_doubles("gb", &grid(rows, cols)),
        sched_data = data_dwords("sched", &schedule(irows, cols)),
        rows_per_thread = irows / threads,
        rowbytes = 8 * cols,
        cols = cols,
        sweeps = SWEEPS,
    )
}

impl Workload for Sweep {
    fn name(&self) -> &'static str {
        "sweep"
    }

    fn vectorizable(&self) -> bool {
        true
    }

    fn paper_row(&self) -> PaperRow {
        PaperRow {
            pct_vect: None,
            avg_vl: None,
            common_vls: &[],
            opportunity: None,
            description: "multi-sweep stencil, permuted row schedule (irregular suite)",
        }
    }

    fn build_spread(&self, threads: usize, clusters: usize, scale: Scale) -> Built {
        let (irows, cols) = dims(scale);
        let src = source(threads, clusters, scale);
        let program = assemble(&src).unwrap_or_else(|e| panic!("sweep: {e}"));
        let verifier = Box::new(move |sim: &FuncSim| {
            // SWEEPS is even, so the final interior lands back in `ga`.
            let n = (irows + 2) * cols;
            expect_f64s(&read_f64s(sim, "ga", n), &golden(irows, cols), "sweep ga")
        });
        Built { program, verifier }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_verifies() {
        Sweep.build(1, Scale::Test).run_functional(1, 10_000_000).unwrap();
    }

    #[test]
    fn four_threads_verify() {
        Sweep.build(4, Scale::Test).run_functional(4, 10_000_000).unwrap();
    }

    #[test]
    fn schedule_is_a_blockwise_permutation() {
        let (irows, cols) = dims(Scale::Test);
        let s = schedule(irows, cols);
        assert_eq!(s.len(), irows);
        // Every interior row appears exactly once...
        let mut rows: Vec<u64> = s.iter().map(|&b| b / (8 * cols as u64)).collect();
        rows.sort();
        assert_eq!(rows, (1..=irows as u64).collect::<Vec<_>>());
        // ...and stays inside its group's contiguous row block.
        let per = irows / GROUPS;
        for (i, &b) in s.iter().enumerate() {
            let r = (b / (8 * cols as u64)) as usize;
            let g = i / per;
            assert!(r > g * per && r < 1 + (g + 1) * per, "row {r} escaped group {g}");
        }
        // It is actually scrambled, not the identity.
        let ident: Vec<u64> = (1..=irows as u64).map(|r| r * 8 * cols as u64).collect();
        assert_ne!(s, ident);
    }

    #[test]
    fn golden_boundaries_never_move() {
        let (irows, cols) = dims(Scale::Test);
        let g = golden(irows, cols);
        for c in 0..cols {
            assert_eq!(g[c], init_val(0, c));
            assert_eq!(g[(irows + 1) * cols + c], init_val(irows + 1, c));
        }
    }
}
