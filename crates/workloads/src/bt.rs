//! `bt` — NAS block-tridiagonal kernel (Table 4: 46% vect, avg VL 7.0,
//! VLs 5/10/12, 70% opportunity).
//!
//! Per grid cell: a 5x5 block-matrix/vector product (VL 5, column-major
//! FMA), heavy scalar pivot arithmetic (reciprocals, diagonal updates),
//! and a VL-10 paired-cell relaxation; every fourth cell also touches a
//! VL-12 boundary stencil.
//!
//! Lint note: the prologue once computed the `[cell0, cell_end)` range
//! (`li`/`mul`/`add` into `x11`/`x12`/`x13`) that `pass_loop` immediately
//! recomputes — `vlint`'s dead-write pass caught the redundant writes and
//! the prologue copy was removed.

use vlt_exec::FuncSim;
use vlt_isa::asm::assemble;

use crate::common::{
    data_doubles, expect_f64s, read_f64s, read_u64s, rng_stream, serial_golden, Built, Scale,
};
use crate::suite::{PaperRow, Workload};

/// The workload singleton.
pub struct Bt;

const B: usize = 5; // block dimension
const BSLOT: usize = 32; // storage stride per cell's block (5x5 padded)

fn a_data(cells: usize) -> Vec<f64> {
    rng_stream(0xB7A, cells * BSLOT).into_iter().map(|v| ((v % 32) as f64 - 15.0) / 4.0).collect()
}

fn x_data(cells: usize) -> Vec<f64> {
    rng_stream(0xB7B, cells * 8).into_iter().map(|v| ((v % 16) as f64 + 1.0) / 2.0).collect()
}

fn bdy_data(n: usize) -> Vec<f64> {
    rng_stream(0xB7C, n).into_iter().map(|v| (v % 100) as f64 / 16.0).collect()
}

struct Golden {
    y: Vec<f64>,
    diag: Vec<f64>,
    relax: Vec<f64>,
    bdy: Vec<f64>,
}

fn golden(cells: usize) -> Golden {
    let a = a_data(cells);
    let x = x_data(cells);
    let mut y = vec![0.0f64; cells * 8];
    let mut diag = vec![0.0f64; cells];
    for c in 0..cells {
        // y = A^T-columns FMA: for k, y[0..5] += col_k * x[k].
        for k in 0..B {
            let xv = x[c * 8 + k];
            for e in 0..B {
                let col = a[c * BSLOT + k * B + e];
                y[c * 8 + e] = col.mul_add(xv, y[c * 8 + e]);
            }
        }
        // Scalar pivot arithmetic (one reciprocal per cell).
        let p = 1.0 / (y[c * 8] + 2.0);
        let q = (y[c * 8 + 1] - y[c * 8 + 2]) * p;
        diag[c] = q * q + p;
    }
    // VL-10 paired relaxation over the y array (pairs of cells = 10 lanes).
    let mut relax = vec![0.0f64; cells / 2 * 10];
    for pair in 0..cells / 2 {
        for e in 0..10 {
            let (c, ee) = (pair * 2 + e / B, e % B);
            relax[pair * 10 + e] = y[c * 8 + ee] * 0.25;
        }
    }
    // VL-12 boundary stencil, one strip per 4 cells.
    let strips = cells / 4;
    let bsrc = bdy_data(strips * 12 + 12);
    let mut bdy = vec![0.0f64; strips * 12];
    for s in 0..strips {
        for e in 0..12 {
            bdy[s * 12 + e] = bsrc[s * 12 + e] + bsrc[s * 12 + e + 1];
        }
    }
    Golden { y, diag, relax, bdy }
}

impl Workload for Bt {
    fn name(&self) -> &'static str {
        "bt"
    }

    fn vectorizable(&self) -> bool {
        true
    }

    fn paper_row(&self) -> PaperRow {
        PaperRow {
            pct_vect: Some(46.0),
            avg_vl: Some(7.0),
            common_vls: &[5, 10, 12],
            opportunity: Some(70.0),
            description: "block tridiagonal benchmark",
        }
    }

    fn build_spread(&self, threads: usize, clusters: usize, scale: Scale) -> Built {
        let vltcfg = crate::common::vltcfg_operand(threads, clusters);
        let cells: usize = scale.pick(32, 512, 1024);
        assert!(cells.is_multiple_of(4 * threads));
        let strips = cells / 4;
        let src = format!(
            r#"
        .data
    {a_data}
    {x_data}
    {bsrc_data}
    y:
        .zero {ybytes}
    diag:
        .zero {dbytes}
    relax:
        .zero {rbytes}
    bdy:
        .zero {bbytes}
    serial_out:
        .zero 8
        .text
        # the boundary-stencil strip base rolls through the pass loop; the
        # symbolic footprints smear past the read-only bsrc strip, but the
        # race checker's exact DLP walk proves the per-epoch access hulls
        # disjoint, so no allow is needed.
        li      x9, {vltcfg}
        vltcfg  x9
        tid     x10
        la      x20, a
        la      x21, x
        la      x22, y
        la      x23, diag
        li      x18, 2
        fcvt.f.x f10, x18          # 2.0
        li      x18, 1
        fcvt.f.x f11, x18          # 1.0
        region  1
        li      x31, 3             # passes (iterative solver sweeps)
    pass_loop:
        # ---- phase 1: 5x5 block mat-vec + scalar pivoting ----
        li      x11, {cells_per_thread}
        mul     x12, x10, x11
        add     x13, x12, x11
        li      x3, {b}
        setvl   x2, x3
        mv      x14, x12           # cell
    cellloop:
        li      x4, {bslot}
        mul     x5, x14, x4
        slli    x5, x5, 3
        add     x15, x20, x5       # &A[cell]
        slli    x6, x14, 6         # cell * 8 elems * 8 bytes
        add     x16, x21, x6       # &x[cell]
        add     x17, x22, x6       # &y[cell]
        vxor.vv v4, v4, v4         # y acc
        # fully unrolled 5-column mat-vec (fits more cells in the window)
        fld     f1, 0(x16)
        vld     v1, x15
        vfma.vs v4, v1, f1
        addi    x15, x15, 40
        fld     f2, 8(x16)
        vld     v2, x15
        vfma.vs v4, v2, f2
        addi    x15, x15, 40
        fld     f3, 16(x16)
        vld     v1, x15
        vfma.vs v4, v1, f3
        addi    x15, x15, 40
        fld     f4, 24(x16)
        vld     v2, x15
        vfma.vs v4, v2, f4
        addi    x15, x15, 40
        fld     f5, 32(x16)
        vld     v1, x15
        vfma.vs v4, v1, f5
        vst     v4, x17
        # scalar pivot arithmetic (the non-vectorizable half of bt)
        fld     f1, 0(x17)         # y0
        fadd    f2, f1, f10
        fdiv    f3, f11, f2        # p
        fld     f4, 8(x17)
        fld     f5, 16(x17)
        fsub    f4, f4, f5
        fmul    f4, f4, f3         # q
        fmul    f6, f4, f4
        fadd    f8, f6, f3         # q*q + p
        slli    x4, x14, 3
        add     x5, x23, x4
        fsd     f8, 0(x5)
        addi    x14, x14, 1
        blt     x14, x13, cellloop
        barrier

        # ---- phase 2: VL-10 paired relaxation ----
        # Cells are stored in 8-element slots, so a pair's 2x5 elements are
        # not unit-stride: gather them with an index vector
        # idx[e] = e*8 + (e >= 5 ? 24 : 0) bytes.
        li      x3, 10
        setvl   x2, x3
        la      x24, relax
        li      x4, 1
        fcvt.f.x f1, x4
        li      x4, 4
        fcvt.f.x f2, x4
        fdiv    f1, f1, f2         # 0.25
        vid     v1
        li      x6, 3
        vsll.vs v2, v1, x6         # e*8
        li      x6, {b}
        vsplat  v3, x6
        vsge.vv v1, v3             # mask: e >= 5
        li      x6, 24
        vadd.vs v2, v2, x6, vm     # skip the 3-element slot padding
        li      x11, {pairs_per_thread}
        mul     x14, x10, x11      # pair
        add     x13, x14, x11
    pairloop:
        slli    x4, x14, 7         # pair * 2 cells * 64 bytes
        add     x5, x22, x4        # &y[pair's first cell]
        vldx    v4, x5, v2         # gather 10 elements
        vfmul.vs v4, v4, f1
        li      x4, 80
        mul     x5, x14, x4
        add     x5, x24, x5
        vst     v4, x5
        addi    x14, x14, 1
        blt     x14, x13, pairloop
        barrier

        # ---- phase 3: VL-12 boundary stencil, one strip per 4 cells ----
        li      x3, 12
        setvl   x2, x3
        la      x25, bsrc
        la      x26, bdy
        li      x11, {strips_per_thread}
        mul     x14, x10, x11      # strip
        add     x13, x14, x11
    striploop:
        li      x4, 96             # 12 doubles
        mul     x5, x14, x4
        add     x6, x25, x5
        vld     v1, x6
        addi    x6, x6, 8
        vld     v2, x6
        vfadd.vv v3, v1, v2
        add     x6, x26, x5
        vst     v3, x6
        addi    x14, x14, 1
        blt     x14, x13, striploop
        addi    x31, x31, -1
        bnez    x31, pass_loop
{serial}
        halt
    "#,
            serial =
                crate::common::serial_phase("y", cells * 8 + cells + cells / 2 * 10, "serial_out"),
            a_data = data_doubles("a", &a_data(cells)),
            x_data = data_doubles("x", &x_data(cells)),
            bsrc_data = data_doubles("bsrc", &bdy_data(strips * 12 + 12)),
            ybytes = 8 * cells * 8,
            dbytes = 8 * cells,
            rbytes = 8 * (cells / 2) * 10,
            bbytes = 8 * strips * 12,
            b = B,
            bslot = BSLOT,
            cells_per_thread = cells / threads,
            pairs_per_thread = (cells / 2) / threads,
            strips_per_thread = strips / threads,
        );
        let program = assemble(&src).unwrap_or_else(|e| panic!("bt: {e}"));
        let verifier = Box::new(move |sim: &FuncSim| {
            let g = golden(cells);
            expect_f64s(&read_f64s(sim, "y", cells * 8), &g.y, "bt y")?;
            expect_f64s(&read_f64s(sim, "diag", cells), &g.diag, "bt diag")?;
            expect_f64s(&read_f64s(sim, "relax", cells / 2 * 10), &g.relax, "bt relax")?;
            expect_f64s(&read_f64s(sim, "bdy", strips * 12), &g.bdy, "bt bdy")?;
            // The serial walk covers y, then diag, then relax (contiguous
            // in the data segment).
            let mut words: Vec<u64> = g.y.iter().map(|v| v.to_bits()).collect();
            words.extend(g.diag.iter().map(|v| v.to_bits()));
            words.extend(g.relax.iter().map(|v| v.to_bits()));
            let want = serial_golden(&words);
            crate::common::expect_u64s(&read_u64s(sim, "serial_out", 1), &[want], "bt serial")
        });
        Built { program, verifier }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_verifies() {
        Bt.build(1, Scale::Test).run_functional(1, 10_000_000).unwrap();
    }

    #[test]
    fn four_threads_verify() {
        Bt.build(4, Scale::Test).run_functional(4, 10_000_000).unwrap();
    }
}
