//! `histo` — histogram build + vectorized permutation scatter
//! (irregular suite).
//!
//! A counting sort written the way the paper's applications thread: each
//! thread histograms its slice of the keys into a *private* bucket block
//! (data-dependent read-modify-writes whose footprint the content
//! analysis bounds from the key image — the partition lemma), thread 0
//! turns the per-thread histograms into exclusive starting offsets in
//! `(bucket, thread)` order, and each thread then ranks its keys through
//! its private offset block and retires them with a `vstx` permutation
//! scatter.
//!
//! Keys are stored pre-scaled by 8 (bucket byte offsets), so bucket
//! indexing and the final scatter need no shifts in the hot loops.
//!
//! Verification interest: the scatter's destinations come through memory
//! (the rank scratch), steered by offsets another thread wrote — beyond
//! any per-thread symbolic walk. The race analysis discharges it with the
//! observed epoch-synchronous walk: the per-epoch destination sets are a
//! permutation of `out`, exactly the injectivity lemma. Zero allows.

use vlt_exec::FuncSim;
use vlt_isa::asm::assemble;

use crate::common::{data_dwords, expect_u64s, read_u64s, rng_stream, Built, Scale};
use crate::suite::{PaperRow, Workload};

/// The workload singleton.
pub struct Histo;

const SEED: u64 = 0x415C;

fn dims(scale: Scale) -> (usize, usize) {
    // (keys, buckets); keys divide by 8.
    match scale {
        Scale::Test => (512, 64),
        Scale::Small => (4096, 256),
        Scale::Full => (16384, 256),
    }
}

/// Keys as bucket *byte offsets*: `bucket * 8` for a random bucket.
fn keys(n: usize, buckets: usize) -> Vec<u64> {
    rng_stream(SEED, n).iter().map(|&k| (k % buckets as u64) * 8).collect()
}

/// Per-thread bucket counts, thread-major (`hist[t * buckets + b]`).
fn golden_hist(n: usize, buckets: usize, threads: usize) -> Vec<u64> {
    let ks = keys(n, buckets);
    let per = n / threads;
    let mut h = vec![0u64; threads * buckets];
    for (i, &k) in ks.iter().enumerate() {
        h[(i / per) * buckets + k as usize / 8] += 1;
    }
    h
}

/// The scatter result: scatter order is `(bucket, thread, in-slice
/// index)`, and thread slices are contiguous in original order, so the
/// output is exactly the stable sort of the keys.
fn golden_out(n: usize, buckets: usize) -> Vec<u64> {
    let mut ks = keys(n, buckets);
    ks.sort();
    ks
}

/// The kernel source (exposed so the lint driver can regenerate it).
pub fn source(threads: usize, clusters: usize, scale: Scale) -> String {
    let (n, buckets) = dims(scale);
    assert!(n.is_multiple_of(threads), "keys must divide across threads");
    let vltcfg = crate::common::vltcfg_operand(threads, clusters);
    format!(
        r#"
        .eq vlint.threads, {threads}
        .data
    {keys_data}
    hist:
        .zero {hbytes}
    offs:
        .zero {hbytes}
    rank:
        .zero {nbytes}
    out:
        .zero {nbytes}
        .text
        li      x9, {vltcfg}
        vltcfg  x9
        tid     x10
        nthr    x19
        li      x11, {keys_per_thread}
        mul     x12, x10, x11      # i0
        add     x13, x12, x11      # i_end
        la      x20, keys
        la      x22, hist
        la      x23, offs
        la      x26, out
        la      x27, rank
        # private bucket blocks: hist/offs + tid * buckets * 8
        li      x5, {bbytes}
        mul     x5, x10, x5
        add     x24, x22, x5       # my hist block
        add     x25, x23, x5       # my offs block

        # ---- phase 1: private histogram (bounded data-dependent RMW) ----
        region  1
        slli    x5, x12, 3
        add     x5, x5, x20        # &keys[i]
        mv      x4, x12
    count:
        ld      x6, 0(x5)          # key (bucket byte offset)
        add     x7, x24, x6
        ld      x8, 0(x7)
        addi    x8, x8, 1
        sd      x8, 0(x7)
        addi    x5, x5, 8
        addi    x4, x4, 1
        blt     x4, x13, count
        region  0
        barrier

        # ---- phase 2 (thread 0): exclusive prefix in (bucket, thread)
        # order; `offs` values are byte offsets into `out` ----
        bnez    x10, merge_done
        li      x5, 0              # bucket byte index
        li      x6, 0              # running offset (bytes)
    merge_b:
        li      x7, 0              # thread
    merge_t:
        li      x8, {bbytes}
        mul     x9, x7, x8
        add     x9, x9, x5
        add     x15, x22, x9       # &hist[t][b]
        add     x16, x23, x9       # &offs[t][b]
        sd      x6, 0(x16)
        ld      x17, 0(x15)
        slli    x17, x17, 3
        add     x6, x6, x17
        addi    x7, x7, 1
        blt     x7, x19, merge_t
        addi    x5, x5, 8
        li      x8, {bucketbytes}
        blt     x5, x8, merge_b
    merge_done:
        barrier

        # ---- phase 3a: rank my keys through my private offset block ----
        region  1
        slli    x5, x12, 3
        add     x5, x5, x20        # &keys[i]
        slli    x9, x12, 3
        add     x9, x9, x27        # &rank[i]
        mv      x4, x12
    rankloop:
        ld      x6, 0(x5)
        add     x7, x25, x6        # my offs slot for this bucket
        ld      x8, 0(x7)
        sd      x8, 0(x9)          # rank[i] = destination byte offset
        addi    x8, x8, 8
        sd      x8, 0(x7)
        addi    x5, x5, 8
        addi    x9, x9, 8
        addi    x4, x4, 1
        blt     x4, x13, rankloop

        # ---- phase 3b: vectorized permutation scatter ----
        slli    x5, x12, 3
        add     x5, x5, x20        # key cursor
        slli    x9, x12, 3
        add     x9, x9, x27        # rank cursor
        mv      x4, x12
    scatter:
        sub     x8, x13, x4
        setvl   x2, x8
        vld     v1, x5             # keys
        vld     v2, x9             # destination byte offsets
        vstx    v1, x26, v2        # out[rank] = key
        add     x4, x4, x2
        slli    x8, x2, 3
        add     x5, x5, x8
        add     x9, x9, x8
        blt     x4, x13, scatter
        region  0
        barrier
        halt
    "#,
        keys_data = data_dwords("keys", &keys(n, buckets)),
        hbytes = 8 * buckets * threads,
        nbytes = 8 * n,
        bbytes = 8 * buckets,
        bucketbytes = 8 * buckets,
        keys_per_thread = n / threads,
    )
}

impl Workload for Histo {
    fn name(&self) -> &'static str {
        "histo"
    }

    fn vectorizable(&self) -> bool {
        true
    }

    fn paper_row(&self) -> PaperRow {
        PaperRow {
            pct_vect: None,
            avg_vl: None,
            common_vls: &[],
            opportunity: None,
            description: "histogram + permutation scatter (irregular suite)",
        }
    }

    fn build_spread(&self, threads: usize, clusters: usize, scale: Scale) -> Built {
        let (n, buckets) = dims(scale);
        let src = source(threads, clusters, scale);
        let program = assemble(&src).unwrap_or_else(|e| panic!("histo: {e}"));
        let verifier = Box::new(move |sim: &FuncSim| {
            expect_u64s(&read_u64s(sim, "out", n), &golden_out(n, buckets), "histo out")?;
            expect_u64s(
                &read_u64s(sim, "hist", threads * buckets),
                &golden_hist(n, buckets, threads),
                "histo hist",
            )
        });
        Built { program, verifier }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_verifies() {
        Histo.build(1, Scale::Test).run_functional(1, 10_000_000).unwrap();
    }

    #[test]
    fn four_threads_verify() {
        Histo.build(4, Scale::Test).run_functional(4, 10_000_000).unwrap();
    }

    #[test]
    fn golden_out_is_sorted_and_conserves_keys() {
        let (n, buckets) = dims(Scale::Test);
        let g = golden_out(n, buckets);
        assert!(g.windows(2).all(|w| w[0] <= w[1]));
        let mut ks = keys(n, buckets);
        ks.sort();
        assert_eq!(g, ks);
    }

    #[test]
    fn hist_counts_sum_to_n() {
        let (n, buckets) = dims(Scale::Test);
        for threads in [1, 4, 8] {
            let h = golden_hist(n, buckets, threads);
            assert_eq!(h.iter().sum::<u64>(), n as u64);
        }
    }
}
