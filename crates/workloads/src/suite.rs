//! The workload registry and the Table 4 reference data.

use crate::common::{Built, Scale};

/// The paper's Table 4 row for a workload (reference values to reproduce).
#[derive(Debug, Clone, PartialEq)]
pub struct PaperRow {
    /// "% Vect": percentage of operations that are vector element ops.
    pub pct_vect: Option<f64>,
    /// "Avg VL": average vector length.
    pub avg_vl: Option<f64>,
    /// "Common VLs".
    pub common_vls: &'static [u16],
    /// "% Opportunity": fraction of base execution time VLT can accelerate.
    pub opportunity: Option<f64>,
    /// Paper description column.
    pub description: &'static str,
}

/// One of the nine applications.
pub trait Workload: Sync {
    /// Table 4 name.
    fn name(&self) -> &'static str;

    /// True if the main loops vectorize (false for radix/ocean/barnes).
    fn vectorizable(&self) -> bool;

    /// The paper's reference characteristics.
    fn paper_row(&self) -> PaperRow;

    /// Build the SPMD program for `threads` threads at `scale` using the
    /// legacy flat `vltcfg` encoding (equivalent to
    /// [`build_spread`](Workload::build_spread) with one cluster).
    ///
    /// Vector workloads accept 1, 2, or 4 threads (the VLT partitions);
    /// scalar workloads accept 1..=8.
    fn build(&self, threads: usize, scale: Scale) -> Built {
        self.build_spread(threads, 1, scale)
    }

    /// Build the SPMD program with its `vltcfg` spread over `clusters`
    /// lane clusters (the hierarchical packed encoding). `clusters <= 1`
    /// emits the flat legacy operand — bit-identical to
    /// [`build`](Workload::build). Spreading over `clusters >= 2` raises
    /// the per-thread MVL to `64 * clusters / threads`, which is what lets
    /// vector workloads run at 8 VLT threads on an ultra-wide machine
    /// (fixed-VL phases up to 16 elements need MVL >= 16). Scalar
    /// workloads ignore the spread — they configure no vector state.
    fn build_spread(&self, threads: usize, clusters: usize, scale: Scale) -> Built;

    /// Maximum thread count this workload parallelizes to.
    fn max_threads(&self) -> usize {
        if self.vectorizable() {
            4
        } else {
            8
        }
    }
}

/// All nine workloads, in Table 4 order.
///
/// ```
/// let names: Vec<&str> = vlt_workloads::suite().iter().map(|w| w.name()).collect();
/// assert_eq!(names.len(), 9);
/// assert_eq!(names[0], "mxm");
/// ```
pub fn suite() -> Vec<&'static dyn Workload> {
    vec![
        &crate::mxm::Mxm,
        &crate::sage::Sage,
        &crate::mpenc::Mpenc,
        &crate::trfd::Trfd,
        &crate::multprec::Multprec,
        &crate::bt::Bt,
        &crate::radix::Radix,
        &crate::ocean::Ocean,
        &crate::barnes::Barnes,
    ]
}

/// The four irregular kernels: gather/scatter-heavy SPMD programs whose
/// data-dependent addressing the content-aware footprint analysis must
/// certify without any `vlint.allow.*` annotation. Kept out of [`suite`]
/// — they are verification workloads, not Table 4 rows.
pub fn irregular_suite() -> Vec<&'static dyn Workload> {
    vec![&crate::spmv::Spmv, &crate::histo::Histo, &crate::hashjoin::HashJoin, &crate::sweep::Sweep]
}

/// Regenerate an irregular kernel's assembly source by name (the lint
/// driver feeds these straight to `vlint`). `None` for unknown names —
/// the Table 4 workloads are not exposed this way.
pub fn irregular_source(
    name: &str,
    threads: usize,
    clusters: usize,
    scale: Scale,
) -> Option<String> {
    match name {
        "spmv" => Some(crate::spmv::source(threads, clusters, scale)),
        "histo" => Some(crate::histo::source(threads, clusters, scale)),
        "hashjoin" => Some(crate::hashjoin::source(threads, clusters, scale)),
        "sweep" => Some(crate::sweep::source(threads, clusters, scale)),
        _ => None,
    }
}

/// Look up a workload by name, searching the Table 4 suite and then the
/// irregular suite.
pub fn workload(name: &str) -> Option<&'static dyn Workload> {
    suite().into_iter().chain(irregular_suite()).find(|w| w.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_nine_in_table4_order() {
        let names: Vec<&str> = suite().iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            ["mxm", "sage", "mpenc", "trfd", "multprec", "bt", "radix", "ocean", "barnes"]
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(workload("mxm").is_some());
        assert!(workload("spmv").is_some());
        assert!(workload("nope").is_none());
    }

    #[test]
    fn irregular_suite_has_four_vector_kernels() {
        let names: Vec<&str> = irregular_suite().iter().map(|w| w.name()).collect();
        assert_eq!(names, ["spmv", "histo", "hashjoin", "sweep"]);
        for w in irregular_suite() {
            assert!(w.vectorizable(), "{}", w.name());
            assert!(irregular_source(w.name(), 2, 1, Scale::Test).is_some(), "{}", w.name());
        }
        assert!(irregular_source("mxm", 1, 1, Scale::Test).is_none());
    }

    #[test]
    fn vectorizability_matches_table4() {
        for w in suite() {
            let expect = !matches!(w.name(), "radix" | "ocean" | "barnes");
            assert_eq!(w.vectorizable(), expect, "{}", w.name());
            assert_eq!(w.max_threads(), if expect { 4 } else { 8 });
        }
    }

    #[test]
    fn paper_rows_match_table4() {
        let get = |n: &str| workload(n).unwrap().paper_row();
        assert_eq!(get("mxm").pct_vect, Some(96.0));
        assert_eq!(get("sage").avg_vl, Some(63.8));
        assert_eq!(get("mpenc").common_vls, &[8, 16, 64]);
        assert_eq!(get("trfd").opportunity, Some(99.0));
        assert_eq!(get("multprec").pct_vect, Some(71.0));
        assert_eq!(get("bt").avg_vl, Some(7.0));
        assert_eq!(get("radix").pct_vect, Some(6.0));
        assert_eq!(get("ocean").pct_vect, None);
        assert_eq!(get("barnes").opportunity, Some(98.0));
    }

    /// A single-cluster spread is the same program as the flat build, byte
    /// for byte — the hierarchical path cannot perturb legacy binaries.
    #[test]
    fn single_cluster_spread_is_bit_identical() {
        for w in suite() {
            for threads in [1, w.max_threads()] {
                let flat = w.build(threads, Scale::Test).program;
                let spread = w.build_spread(threads, 1, Scale::Test).program;
                assert_eq!(flat.text, spread.text, "{} x{threads} text", w.name());
                assert_eq!(flat.data, spread.data, "{} x{threads} data", w.name());
            }
        }
    }

    /// The hierarchical spread restores enough MVL for ultra-wide VLT:
    /// every vector workload verifies functionally at 8 threads spread
    /// over 2 and 8 clusters (per-thread MVL 16 and 64).
    #[test]
    fn vector_workloads_verify_spread_at_eight_threads() {
        for w in suite().into_iter().filter(|w| w.vectorizable()) {
            for clusters in [2usize, 8] {
                let built = w.build_spread(8, clusters, Scale::Test);
                built
                    .run_functional(8, 80_000_000)
                    .unwrap_or_else(|e| panic!("{} x8 over {clusters}: {e}", w.name()));
            }
        }
    }

    /// Every workload runs functionally and verifies at Test scale, single
    /// thread and at its max thread count.
    #[test]
    fn all_workloads_verify_functionally() {
        for w in suite() {
            for threads in [1, w.max_threads()] {
                let built = w.build(threads, Scale::Test);
                built
                    .run_functional(threads, 80_000_000)
                    .unwrap_or_else(|e| panic!("{} x{threads}: {e}", w.name()));
            }
        }
    }
}
