//! `wlsrc` — regenerate an irregular kernel's assembly source.
//!
//! The irregular kernels are generated programs (their `.data` sections
//! embed the golden input sets), so there is no checked-in `.s` file for
//! `vlint` to read. This tool reproduces the exact source a workload
//! build assembles and prints it to stdout, which is how CI runs the
//! strict lint over the suite:
//!
//! ```text
//! wlsrc spmv --threads 4 > /tmp/spmv.s && vlint --strict --races --dlp /tmp/spmv.s
//! ```
//!
//! Usage: `wlsrc <name> [--threads N] [--clusters N] [--scale test|small|full]`
//! with `wlsrc --list` printing the available kernel names.

use std::process::ExitCode;

use vlt_workloads::{irregular_source, irregular_suite, Scale};

fn usage() -> &'static str {
    "usage: wlsrc <name> [--threads N] [--clusters N] [--scale test|small|full]\n       wlsrc --list"
}

fn run(args: &[String]) -> Result<String, String> {
    let mut name = None;
    let mut threads = 2usize;
    let mut clusters = 1usize;
    let mut scale = Scale::Test;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" | "--clusters" | "--scale" => {
                let v = it.next().ok_or_else(|| format!("{a} needs a value"))?;
                match a.as_str() {
                    "--threads" => {
                        threads = v
                            .parse()
                            .ok()
                            .filter(|&n| n >= 1)
                            .ok_or("--threads must be a positive integer")?;
                    }
                    "--clusters" => {
                        clusters = v
                            .parse()
                            .ok()
                            .filter(|&n| n >= 1)
                            .ok_or("--clusters must be a positive integer")?;
                    }
                    _ => {
                        scale = match v.as_str() {
                            "test" => Scale::Test,
                            "small" => Scale::Small,
                            "full" => Scale::Full,
                            other => return Err(format!("unknown scale `{other}`")),
                        };
                    }
                }
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            n if name.is_none() => name = Some(n.to_string()),
            extra => return Err(format!("unexpected argument `{extra}`")),
        }
    }
    let name = name.ok_or("missing kernel name")?;
    irregular_source(&name, threads, clusters, scale).ok_or_else(|| {
        format!(
            "unknown kernel `{name}` (known: {})",
            irregular_suite().iter().map(|w| w.name()).collect::<Vec<_>>().join(", ")
        )
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for w in irregular_suite() {
            println!("{}", w.name());
        }
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(src) => {
            print!("{src}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("wlsrc: {e}\n{}", usage());
            ExitCode::from(2)
        }
    }
}
