//! Shared infrastructure for workload generators.

use vlt_exec::FuncSim;
use vlt_isa::Program;

/// Problem-size presets. `Test` keeps functional tests fast; `Small` is the
/// bench default; `Full` approaches the paper's working-set regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Tiny inputs for unit tests.
    Test,
    /// Bench default: tens of thousands of dynamic instructions.
    Small,
    /// Larger runs for the headline numbers.
    Full,
}

impl Scale {
    /// Pick one of three values by scale.
    pub fn pick<T: Copy>(self, test: T, small: T, full: T) -> T {
        match self {
            Scale::Test => test,
            Scale::Small => small,
            Scale::Full => full,
        }
    }
}

/// Verifier callback: inspects the final functional state.
pub type Verifier = Box<dyn Fn(&FuncSim) -> Result<(), String> + Send + Sync>;

/// A workload instance ready to run.
pub struct Built {
    /// The assembled SPMD program.
    pub program: Program,
    /// Checks the final memory image against a golden Rust computation.
    pub verifier: Verifier,
}

impl Built {
    /// Run functionally (no timing) and verify; returns dynamic instruction
    /// count. Used by tests and the characterization harness.
    pub fn run_functional(&self, threads: usize, budget: u64) -> Result<u64, String> {
        let mut sim = FuncSim::new(&self.program, threads);
        let summary = sim.run_to_completion(budget).map_err(|e| e.to_string())?;
        (self.verifier)(&sim)?;
        Ok(summary.insts)
    }
}

/// The `vltcfg` operand for `threads` VLT threads spread over `clusters`
/// lane clusters. `clusters <= 1` keeps the legacy flat encoding, so
/// single-cluster builds stay bit-identical to what they always were;
/// `clusters > 1` packs the hierarchical encoding, which raises the
/// per-thread MVL to `64 * clusters / threads` on a clustered machine.
pub fn vltcfg_operand(threads: usize, clusters: usize) -> u64 {
    if clusters <= 1 {
        threads as u64
    } else {
        vlt_isa::vltcfg::operand(threads as u8, clusters as u8)
    }
}

/// Render a `.double` data block.
pub fn data_doubles(label: &str, values: &[f64]) -> String {
    let vals: Vec<String> = values.iter().map(|v| format!("{v:?}")).collect();
    format!("{label}:\n    .double {}\n", vals.join(", "))
}

/// Render a `.dword` data block.
pub fn data_dwords(label: &str, values: &[u64]) -> String {
    let vals: Vec<String> = values.iter().map(|v| v.to_string()).collect();
    format!("{label}:\n    .dword {}\n", vals.join(", "))
}

/// Read `n` f64 values starting at symbol `sym`.
pub fn read_f64s(sim: &FuncSim, sym: &str, n: usize) -> Vec<f64> {
    let base = sim.prog.program.symbol(sym).unwrap_or_else(|| panic!("symbol {sym}"));
    (0..n).map(|i| sim.mem.read_f64(base + 8 * i as u64)).collect()
}

/// Read `n` u64 values starting at symbol `sym`.
pub fn read_u64s(sim: &FuncSim, sym: &str, n: usize) -> Vec<u64> {
    let base = sim.prog.program.symbol(sym).unwrap_or_else(|| panic!("symbol {sym}"));
    (0..n).map(|i| sim.mem.read_u64(base + 8 * i as u64)).collect()
}

/// Compare f64 arrays bit-exactly (the golden model replays the same
/// operation order, so results must match exactly).
pub fn expect_f64s(got: &[f64], want: &[f64], what: &str) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!("{what}: length {} vs {}", got.len(), want.len()));
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        if g.to_bits() != w.to_bits() {
            return Err(format!("{what}[{i}]: got {g}, want {w}"));
        }
    }
    Ok(())
}

/// Compare u64 arrays.
pub fn expect_u64s(got: &[u64], want: &[u64], what: &str) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!("{what}: length {} vs {}", got.len(), want.len()));
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        if g != w {
            return Err(format!("{what}[{i}]: got {g}, want {w}"));
        }
    }
    Ok(())
}

/// Emit a serial (thread-0-only) scalar phase: an integer reduction over
/// `count` 8-byte words starting at `array`, stored to `out`. Bracketed by
/// barriers and marked `region 0`, it models each application's
/// non-parallelizable portion — the complement of Table 4's "% opportunity".
/// `x10` must still hold the thread id.
pub fn serial_phase(array: &str, count: usize, out: &str) -> String {
    assert!(count.is_multiple_of(4) && count > 0, "serial phase walks four items per block");
    let iters = count / 4;
    format!(
        r#"
        region  0
        barrier
        bnez    x10, serial_skip
        # Unrolled four-wide with ping-ponged register sets: every load
        # leads its use by a full unrolled block, so the walk runs at the
        # chain rate even on an in-order lane without an L1. (Loads may
        # over-read up to 56 bytes past the array; the values are unused.)
        la      x4, {array}
        li      x5, {iters}
        li      x6, 0
        ld      x7, 0(x4)
        ld      x15, 8(x4)
        ld      x16, 16(x4)
        ld      x19, 24(x4)
    serial_loop:
        add     x6, x6, x7
        xor     x8, x6, x7
        srli    x8, x8, 3
        add     x6, x6, x8
        add     x6, x6, x15
        xor     x8, x6, x15
        srli    x8, x8, 3
        add     x6, x6, x8
        ld      x7, 32(x4)
        ld      x15, 40(x4)
        add     x6, x6, x16
        xor     x8, x6, x16
        srli    x8, x8, 3
        add     x6, x6, x8
        add     x6, x6, x19
        xor     x8, x6, x19
        srli    x8, x8, 3
        add     x6, x6, x8
        ld      x16, 48(x4)
        ld      x19, 56(x4)
        addi    x4, x4, 32
        addi    x5, x5, -1
        bnez    x5, serial_loop
        la      x4, {out}
        sd      x6, 0(x4)
    serial_skip:
        barrier
"#
    )
}

/// Golden model of [`serial_phase`]'s reduction.
pub fn serial_golden(words: &[u64]) -> u64 {
    let mut acc = 0u64;
    for &w in words {
        acc = acc.wrapping_add(w);
        let x = (acc ^ w) >> 3;
        acc = acc.wrapping_add(x);
    }
    acc
}

/// Deterministic xorshift64* stream for workload input data.
pub fn rng_stream(seed: u64, n: usize) -> Vec<u64> {
    let mut s = seed.max(1);
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlt_isa::asm::assemble;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Test.pick(1, 2, 3), 1);
        assert_eq!(Scale::Small.pick(1, 2, 3), 2);
        assert_eq!(Scale::Full.pick(1, 2, 3), 3);
    }

    #[test]
    fn data_rendering_assembles() {
        let src = format!(
            ".data\n{}{}\n.text\nhalt\n",
            data_doubles("dd", &[1.5, -2.0]),
            data_dwords("ww", &[1, 2, 3])
        );
        let p = assemble(&src).unwrap();
        assert_eq!(p.data.len(), 2 * 8 + 3 * 8);
    }

    #[test]
    fn rng_stream_is_deterministic() {
        assert_eq!(rng_stream(42, 5), rng_stream(42, 5));
        assert_ne!(rng_stream(42, 5), rng_stream(43, 5));
    }

    #[test]
    fn expect_helpers() {
        assert!(expect_f64s(&[1.0], &[1.0], "x").is_ok());
        assert!(expect_f64s(&[1.0], &[1.0 + f64::EPSILON], "x").is_err());
        assert!(expect_u64s(&[1], &[1, 2], "x").is_err());
    }
}
