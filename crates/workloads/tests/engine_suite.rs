//! Engine equivalence over the nine paper workloads: the block engine
//! must be observationally identical to the interpreter oracle.
//!
//! Two layers, mirroring the driver-equivalence suite:
//!
//! * **Functional** — `FuncSim::run_to_completion` under both engines:
//!   identical `RunSummary`, final memory image, per-thread architectural
//!   state, barrier count, and golden verification of the block result.
//! * **System** — full timing runs: byte-identical `SimResult`s and final
//!   memory whichever functional engine feeds the replay, under both the
//!   event-driven driver and the cycle-by-cycle oracle.
//!
//! The default tests are a smoke subset sized for debug builds; the
//! `#[ignore]`d matrix covers all nine workloads at 1/2/4/8 threads ×
//! both drivers and runs in CI's release step via `--include-ignored`.

use vlt_core::{DriverMode, EngineMode, System, SystemConfig};
use vlt_exec::FuncSim;
use vlt_workloads::{suite, Built, Scale, Workload};

const BUDGET: u64 = 2_000_000_000;

/// Build `w` for `threads` and pick a machine that can run it. Vector
/// workloads top out at 4 flat VLT threads; 8 needs the ultra-wide
/// 2-cluster machine with the `vltcfg` spread over both clusters. Scalar
/// workloads run multithreaded on the CMT baseline and 8-threaded in
/// lane-thread mode (the Figure 6 shapes) — but single-threaded they may
/// still emit base-machine vector code (radix does), so `threads == 1`
/// always gets a machine with a vector unit.
fn built_on(w: &dyn Workload, threads: usize, scale: Scale) -> (SystemConfig, Built) {
    let cfg = if w.vectorizable() || threads == 1 {
        match threads {
            8 => SystemConfig::v8_clustered(2),
            _ => SystemConfig::v4_cmt(),
        }
    } else {
        match threads {
            8 => SystemConfig::v4_cmt_lane_threads(),
            _ => SystemConfig::cmt(),
        }
    };
    let built = if threads == 8 && w.vectorizable() {
        w.build_spread(8, 2, scale)
    } else {
        w.build(threads, scale)
    };
    (cfg, built)
}

/// Functional-layer equivalence for one build.
fn check_functional(w: &dyn Workload, built: &Built, threads: usize) {
    let what = format!("{} x{threads}", w.name());
    let mut oracle = FuncSim::new(&built.program, threads).with_engine(EngineMode::Interp);
    let mut blocks = FuncSim::new(&built.program, threads).with_engine(EngineMode::Block);
    let ra = oracle.run_to_completion(BUDGET).unwrap_or_else(|e| panic!("{what} interp: {e}"));
    let rb = blocks.run_to_completion(BUDGET).unwrap_or_else(|e| panic!("{what} block: {e}"));
    assert_eq!(ra, rb, "{what}: run summaries diverged");
    assert_eq!(oracle.mem, blocks.mem, "{what}: final memory diverged");
    assert_eq!(oracle.barrier_releases(), blocks.barrier_releases(), "{what}: releases");
    for t in 0..threads {
        let (a, b) = (oracle.thread(t), blocks.thread(t));
        assert_eq!(a.x, b.x, "{what}: thread {t} x regs");
        assert_eq!(a.v, b.v, "{what}: thread {t} v regs");
        assert_eq!((a.vl, a.vm, a.pc), (b.vl, b.vm, b.pc), "{what}: thread {t} vl/vm/pc");
    }
    (built.verifier)(&blocks).unwrap_or_else(|m| panic!("{what}: block result bad: {m}"));
}

/// System-layer equivalence for one build on one machine and driver.
fn check_system(
    w: &dyn Workload,
    cfg: &SystemConfig,
    built: &Built,
    threads: usize,
    driver: DriverMode,
) {
    let what = format!("{} on {} x{threads} {driver:?}", w.name(), cfg.name);
    let run = |engine: EngineMode| {
        let mut sys = System::new(cfg.clone(), &built.program, threads)
            .with_driver(driver)
            .with_engine(engine);
        let result = sys.run(BUDGET).unwrap_or_else(|e| panic!("{what} {engine:?}: {e}"));
        (built.verifier)(sys.funcsim()).unwrap_or_else(|m| panic!("{what} {engine:?}: {m}"));
        let mem = sys.funcsim().mem.clone();
        (result, mem)
    };
    let (res_i, mem_i) = run(EngineMode::Interp);
    let (res_b, mem_b) = run(EngineMode::Block);
    assert_eq!(res_i, res_b, "{what}: SimResults diverged across engines");
    assert_eq!(mem_i, mem_b, "{what}: final memory diverged across engines");
}

/// Smoke subset: every workload, single- and max-threaded, functional
/// layer plus one timing pair on the default driver. Debug-build sized.
#[test]
fn engines_agree_smoke() {
    for w in suite() {
        for threads in [1usize, 4] {
            let (cfg, built) = built_on(w, threads, Scale::Test);
            check_functional(w, &built, threads);
            if threads == 4 {
                check_system(w, &cfg, &built, threads, DriverMode::EventDriven);
            }
        }
    }
}

/// The 8-thread shapes exercise the spread/lane-thread builds that the
/// smoke pairs above do not.
#[test]
fn engines_agree_at_eight_threads() {
    for w in suite() {
        let (_, built) = built_on(w, 8, Scale::Test);
        check_functional(w, &built, 8);
    }
}

/// Full acceptance matrix: all nine workloads × 1/2/4/8 threads × both
/// drivers, byte-identical `SimResult`s and final memory between engines.
#[test]
#[ignore = "release-mode CI step: 9 workloads x 4 thread counts x 2 drivers x 2 engines"]
fn engines_agree_full_matrix() {
    for w in suite() {
        for threads in [1usize, 2, 4, 8] {
            let (cfg, built) = built_on(w, threads, Scale::Test);
            check_functional(w, &built, threads);
            for driver in [DriverMode::EventDriven, DriverMode::CycleByCycle] {
                check_system(w, &cfg, &built, threads, driver);
            }
        }
    }
}
