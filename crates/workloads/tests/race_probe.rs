//! Developer probe: dump the static race report for every workload (no
//! asserts, `#[ignore]`d by default). Run it when triaging analysis
//! precision or auditing the per-kernel `vlint.allow.race_*` lines:
//!
//! ```text
//! cargo test -p vlt-workloads --test race_probe -- --ignored --nocapture
//! PROBE_ONLY=radix cargo test -p vlt-workloads --test race_probe -- --ignored --nocapture
//! ```
//!
//! Note: the reports here are *post-allow* — a kernel that suppresses a
//! code shows its count under "suppressed", not as diags.

use vlt_verify::check_races;
use vlt_workloads::{suite, Scale};

#[test]
#[ignore]
fn probe() {
    let filter = std::env::var("PROBE_ONLY").ok();
    for w in suite() {
        if let Some(f) = &filter {
            if w.name() != f {
                continue;
            }
        }
        for threads in [2, w.max_threads()] {
            let built = w.build(threads, Scale::Test);
            let t0 = std::time::Instant::now();
            let report = check_races(&built.program, threads);
            let dt = t0.elapsed();
            println!(
                "=== {} x{threads} ({} diags, {} suppressed, {:?})",
                w.name(),
                report.diags.len(),
                report.suppressed,
                dt
            );
            let mut by_code = std::collections::BTreeMap::new();
            for d in &report.diags {
                *by_code.entry(format!("{}", d.code)).or_insert(0u32) += 1;
            }
            for (c, n) in by_code {
                println!("  CODE {c} {n}");
            }
            for d in report.diags.iter().take(12) {
                println!("  {d}");
            }
        }
    }
}
