//! Static-vs-dynamic DLP validation over the nine Table-4 workloads.
//!
//! The static analyzer (`vlt_verify::dlp`) must reproduce the functional
//! simulator's operation-level Table-4 metrics within the paper-level
//! tolerances — average VL within 10%, % vectorization within 5 points,
//! identical most-common VL — and its partition advisor must pick the
//! empirically best flat VLTCFG for each kernel.

use vlt_exec::FuncSim;
use vlt_verify::dlp::{advise, analyze, DlpOptions};
use vlt_workloads::characterize::characterize;
use vlt_workloads::common::Scale;
use vlt_workloads::suite::suite;

#[test]
fn static_table4_matches_dynamic_for_all_kernels() {
    for w in suite() {
        let c = characterize(w, Scale::Test).unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        let built = w.build(1, Scale::Test);
        let p = analyze(&built.program, &DlpOptions::default());
        assert!(p.exact, "{}: static walk went inexact: {:?}", w.name(), p.notes);

        // Exact walks must agree with the run bit for bit, but assert the
        // acceptance-level tolerances so the test states the contract.
        let (sp, dp) = (p.total.pct_vectorization(), c.pct_vect);
        assert!(
            (sp - dp).abs() <= 5.0,
            "{}: pct vectorization static {sp:.2} vs dynamic {dp:.2}",
            w.name()
        );
        let (sa, da) = (p.total.avg_vl(), c.avg_vl);
        let tol = (da * 0.10).max(1e-9);
        assert!(
            (sa - da).abs() <= tol || (sa == 0.0 && da == 0.0),
            "{}: avg VL static {sa:.2} vs dynamic {da:.2}",
            w.name()
        );
        assert_eq!(
            p.total.common_vls(1),
            c.common_vls.iter().take(1).copied().collect::<Vec<_>>(),
            "{}: most common VL",
            w.name()
        );
        assert_eq!(p.total.insts, c.insts, "{}: instruction count", w.name());
    }
}

#[test]
fn static_profile_is_bit_exact_against_funcsim() {
    for w in suite() {
        let built = w.build(1, Scale::Test);
        let p = analyze(&built.program, &DlpOptions::default());
        assert!(p.exact, "{}: {:?}", w.name(), p.notes);
        let mut sim = FuncSim::new(&built.program, 1);
        let s = sim.run_to_completion(2_000_000_000).unwrap();
        assert_eq!(p.total.insts, s.insts, "{}", w.name());
        assert_eq!(p.total.scalar_ops, s.scalar_ops, "{}", w.name());
        assert_eq!(p.total.vector_insts, s.vector_insts, "{}", w.name());
        assert_eq!(p.total.elem_ops, s.elem_ops, "{}", w.name());
        assert_eq!(p.total.vl_histogram.as_slice(), s.vl_histogram.as_slice(), "{}", w.name());
    }
}

#[test]
fn advisor_matches_empirically_best_partitions() {
    // Best flat VLTCFG per kernel, measured on the timing model (see
    // EXPERIMENTS.md): vector kernels keep >=1 lane of width headroom,
    // scalar-parallel kernels split all the way to 8 threads.
    let expected = [
        ("mpenc", 4),
        ("trfd", 4),
        ("multprec", 4),
        ("bt", 4),
        ("radix", 8),
        ("ocean", 8),
        ("barnes", 8),
    ];
    let mut hits = 0;
    let mut misses = Vec::new();
    for (name, best_t) in expected {
        let w = suite().into_iter().find(|w| w.name() == name).unwrap();
        let built = w.build(1, Scale::Test);
        let p = analyze(&built.program, &DlpOptions::default());
        assert!(p.exact, "{name}: {:?}", p.notes);
        let a = advise(&p);
        if a.best.threads == best_t {
            hits += 1;
        } else {
            misses.push(format!("{name}: advised {} want {best_t}", a.best.threads));
        }
    }
    assert!(
        hits >= expected.len(),
        "advisor missed {:?} ({hits}/{} right)",
        misses,
        expected.len()
    );
}
