//! Schedule-perturbation equivalence (the invariant the driver relies on).
//!
//! Threads only communicate across barriers, so *any* inter-barrier
//! interleaving of the per-thread streams must be architecturally
//! equivalent: same per-thread dynamic instruction streams (down to the
//! element addresses of every vector access) and byte-identical final
//! memory. The timing models bank on this when they pull instructions on
//! their own schedules (DESIGN.md §1, §6); the static/dynamic race
//! checkers prove the no-intra-epoch-sharing invariant it rests on.
//!
//! Here the invariant is exercised directly: each workload runs once under
//! a canonical one-instruction round-robin schedule and once under a
//! seed-randomized pick-any-runnable-thread schedule, and both outcomes
//! must match exactly.

use proptest::prelude::*;

use vlt_exec::{DynKind, FuncSim, Step};
use vlt_isa::DATA_BASE;
use vlt_workloads::suite::suite;
use vlt_workloads::Scale;

const BUDGET: u64 = 200_000_000;

/// FNV-1a over a stream of u64s.
fn fnv(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// Per-thread digest of everything architecturally visible in a stream.
fn digest(sim: &FuncSim, d: &vlt_exec::DynInst, h: &mut u64) {
    fnv(h, u64::from(d.sidx));
    fnv(h, d.pc);
    fnv(h, u64::from(d.vl));
    match d.kind {
        DynKind::Plain => fnv(h, 1),
        DynKind::Branch { taken, target } => {
            fnv(h, 2);
            fnv(h, u64::from(taken));
            fnv(h, target);
        }
        DynKind::Mem { addr, size } => {
            fnv(h, 3);
            fnv(h, addr);
            fnv(h, u64::from(size));
        }
        DynKind::Vector => fnv(h, 4),
        DynKind::VMem { addrs } => {
            fnv(h, 5);
            // Resolve now: ring slots may be rewritten later.
            for &a in sim.addrs(addrs) {
                fnv(h, a);
            }
        }
        DynKind::Barrier => fnv(h, 6),
        DynKind::VltCfg { threads, clusters } => {
            fnv(h, 7);
            fnv(h, u64::from(threads));
            fnv(h, u64::from(clusters));
        }
        DynKind::Halt => fnv(h, 8),
    }
}

/// xorshift64* — deterministic schedule noise from a proptest seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Outcome of one complete run: per-thread (instruction count, digest)
/// plus the final data-image bytes.
struct Outcome {
    threads: Vec<(u64, u64)>,
    data: Vec<u8>,
}

/// Run `prog` to completion, choosing the next thread with `pick`.
fn run<F: FnMut(&[bool]) -> usize>(prog: &vlt_isa::Program, nthr: usize, mut pick: F) -> Outcome {
    let mut sim = FuncSim::new(prog, nthr);
    let mut counts = vec![0u64; nthr];
    let mut hashes = vec![0xcbf2_9ce4_8422_2325u64; nthr];
    let mut runnable = vec![true; nthr];
    let mut steps = 0u64;
    while !sim.all_halted() {
        // A parked or halted thread is not runnable until the state that
        // blocks it changes; when every thread is blocked, re-arm and let
        // step_thread consume the released barrier.
        if runnable.iter().all(|r| !r) {
            runnable = (0..nthr).map(|t| !sim.thread(t).halted).collect();
        }
        let t = pick(&runnable);
        match sim.step_thread(t).expect("workload step failed") {
            Step::Inst(d) => {
                counts[t] += 1;
                digest(&sim, &d, &mut hashes[t]);
                steps += 1;
                assert!(steps < BUDGET, "budget exceeded");
            }
            Step::AtBarrier => runnable[t] = false,
            Step::Halted => runnable[t] = false,
        }
    }
    let data_len = prog.data.len();
    Outcome {
        threads: counts.into_iter().zip(hashes).collect(),
        data: sim.mem.read_bytes(DATA_BASE, data_len),
    }
}

fn canonical(prog: &vlt_isa::Program, nthr: usize) -> Outcome {
    let mut next = 0usize;
    run(prog, nthr, move |runnable| {
        while !runnable[next % runnable.len()] {
            next += 1;
        }
        let t = next % runnable.len();
        next += 1;
        t
    })
}

fn perturbed(prog: &vlt_isa::Program, nthr: usize, seed: u64) -> Outcome {
    let mut rng = Rng(seed);
    run(prog, nthr, move |runnable| loop {
        let t = (rng.next() % runnable.len() as u64) as usize;
        if runnable[t] {
            return t;
        }
    })
}

fn check_equivalent(idx: usize, seed: u64) {
    let all = suite();
    let w = &all[idx % all.len()];
    let threads = w.max_threads();
    let built = w.build(threads, Scale::Test);
    let base = canonical(&built.program, threads);
    let jittered = perturbed(&built.program, threads, seed);
    assert_eq!(base.data, jittered.data, "{}: final memory differs across schedules", w.name());
    for (t, (a, b)) in base.threads.iter().zip(&jittered.threads).enumerate() {
        assert_eq!(
            a,
            b,
            "{} thread {t}: per-thread stream differs across schedules \
             (count/digest {:?} vs {:?})",
            w.name(),
            a,
            b
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random workload × random schedule: the per-thread streams and the
    /// final memory must not depend on the interleaving.
    #[test]
    fn interleaving_does_not_change_outcomes(idx in 0usize..9, seed in any::<u64>()) {
        check_equivalent(idx, seed);
    }
}

/// Every workload gets at least one fixed-seed perturbation (the proptest
/// sweep above samples; this pins full coverage).
#[test]
fn every_workload_survives_one_perturbation() {
    for idx in 0..suite().len() {
        check_equivalent(idx, 0x5EED_0000 + idx as u64);
    }
}
