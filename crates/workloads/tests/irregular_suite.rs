//! Acceptance gate for the irregular kernel suite (spmv, histo, hashjoin,
//! sweep): golden results at 1/2/4/8 threads under both drivers and both
//! engines, and the full strict-lint bar — static verifier, barrier-epoch
//! race analysis, and DLP walk all clean with **zero** `vlint.allow.*`
//! annotations. These four kernels exist to exercise the content-aware
//! footprint analysis on data-dependent addressing; this file is where
//! that claim is enforced.

use vlt_core::{DriverMode, EngineMode, System, SystemConfig};
use vlt_exec::{FuncSim, RaceConfig};
use vlt_verify::dlp::{analyze, DlpOptions};
use vlt_verify::{check_races, predicted_race_sites, verify, Severity};
use vlt_workloads::{irregular_suite, Built, Scale, Workload};

const BUDGET: u64 = 2_000_000_000;

/// Build `w` for `threads` and pick a machine that can run it. All four
/// irregular kernels are vector workloads: flat VLT partitions up to 4
/// threads, and the ultra-wide 2-cluster machine with the `vltcfg` spread
/// for 8 (mirroring the Table-4 engine suite).
fn built_on(w: &dyn Workload, threads: usize, scale: Scale) -> (SystemConfig, Built) {
    let cfg = match threads {
        8 => SystemConfig::v8_clustered(2),
        _ => SystemConfig::v4_cmt(),
    };
    let built = if threads == 8 { w.build_spread(8, 2, scale) } else { w.build(threads, scale) };
    (cfg, built)
}

/// Functional equivalence + golden verification for one build.
fn check_functional(w: &dyn Workload, built: &Built, threads: usize) {
    let what = format!("{} x{threads}", w.name());
    let mut oracle = FuncSim::new(&built.program, threads).with_engine(EngineMode::Interp);
    let mut blocks = FuncSim::new(&built.program, threads).with_engine(EngineMode::Block);
    let ra = oracle.run_to_completion(BUDGET).unwrap_or_else(|e| panic!("{what} interp: {e}"));
    let rb = blocks.run_to_completion(BUDGET).unwrap_or_else(|e| panic!("{what} block: {e}"));
    assert_eq!(ra, rb, "{what}: run summaries diverged");
    assert_eq!(oracle.mem, blocks.mem, "{what}: final memory diverged");
    (built.verifier)(&oracle).unwrap_or_else(|m| panic!("{what}: interp result bad: {m}"));
    (built.verifier)(&blocks).unwrap_or_else(|m| panic!("{what}: block result bad: {m}"));
}

/// Timing-layer equivalence for one build on one machine and driver.
fn check_system(
    w: &dyn Workload,
    cfg: &SystemConfig,
    built: &Built,
    threads: usize,
    driver: DriverMode,
) {
    let what = format!("{} on {} x{threads} {driver:?}", w.name(), cfg.name);
    let run = |engine: EngineMode| {
        let mut sys = System::new(cfg.clone(), &built.program, threads)
            .with_driver(driver)
            .with_engine(engine);
        let result = sys.run(BUDGET).unwrap_or_else(|e| panic!("{what} {engine:?}: {e}"));
        (built.verifier)(sys.funcsim()).unwrap_or_else(|m| panic!("{what} {engine:?}: {m}"));
        let mem = sys.funcsim().mem.clone();
        (result, mem)
    };
    let (res_i, mem_i) = run(EngineMode::Interp);
    let (res_b, mem_b) = run(EngineMode::Block);
    assert_eq!(res_i, res_b, "{what}: SimResults diverged across engines");
    assert_eq!(mem_i, mem_b, "{what}: final memory diverged across engines");
}

/// Golden results at every thread count under both engines, plus one
/// timing pair per kernel. Debug-build sized; the full driver matrix is
/// the `#[ignore]`d test below.
#[test]
fn irregular_kernels_agree_across_engines() {
    for w in irregular_suite() {
        for threads in [1usize, 2, 4, 8] {
            let (cfg, built) = built_on(w, threads, Scale::Test);
            check_functional(w, &built, threads);
            if threads == 4 {
                check_system(w, &cfg, &built, threads, DriverMode::EventDriven);
            }
        }
    }
}

/// Full acceptance matrix: 4 kernels x 1/2/4/8 threads x both drivers,
/// byte-identical `SimResult`s and final memory between engines.
#[test]
#[ignore = "release-mode CI step: 4 kernels x 4 thread counts x 2 drivers x 2 engines"]
fn irregular_kernels_full_matrix() {
    for w in irregular_suite() {
        for threads in [1usize, 2, 4, 8] {
            let (cfg, built) = built_on(w, threads, Scale::Test);
            check_functional(w, &built, threads);
            for driver in [DriverMode::EventDriven, DriverMode::CycleByCycle] {
                check_system(w, &cfg, &built, threads, driver);
            }
        }
    }
}

/// The strict lint bar: zero diagnostics of any severity from the static
/// verifier, at both test scales — and zero allow annotations to lean on
/// (any `vlint.allow.*` symbol in an irregular kernel is itself a
/// failure).
#[test]
fn irregular_kernels_strict_verify_clean_with_zero_allows() {
    for w in irregular_suite() {
        for threads in [1, 2, w.max_threads()] {
            for scale in [Scale::Test, Scale::Small] {
                let built = w.build(threads, scale);
                for sym in built.program.symbols.keys() {
                    assert!(
                        !sym.starts_with("vlint.allow."),
                        "{} x{threads}: carries allow annotation `{sym}`",
                        w.name()
                    );
                }
                let report = verify(&built.program);
                assert!(
                    report.diags.is_empty(),
                    "{} x{threads} {scale:?}: {} diagnostics:\n{report}",
                    w.name(),
                    report.diags.len()
                );
                assert_eq!(report.diags.iter().filter(|d| d.severity == Severity::Warn).count(), 0);
            }
        }
    }
}

/// Static race analysis: clean at every flat thread count, with no allow
/// symbols to suppress anything (checked above).
#[test]
fn irregular_kernels_statically_race_clean() {
    for w in irregular_suite() {
        for threads in [1, 2, 4] {
            let built = w.build(threads, Scale::Test);
            let report = check_races(&built.program, threads);
            assert!(
                report.diags.is_empty(),
                "{} t={threads}: {} race diagnostics:\n{}",
                w.name(),
                report.diags.len(),
                report.diags.iter().map(|d| format!("  {d}")).collect::<Vec<_>>().join("\n")
            );
            assert_eq!(report.suppressed, 0, "{} t={threads}: suppressions", w.name());
        }
    }
}

/// Dynamic race checking cross-validated against the static prediction:
/// every kernel runs clean under the barrier-epoch checker with the
/// static predictor installed (an unpredicted dynamic conflict aborts a
/// debug build inside the checker).
#[test]
fn irregular_kernels_run_clean_under_race_checker() {
    for w in irregular_suite() {
        for threads in [1, 2, 4] {
            let built = w.build(threads, Scale::Test);
            let predicted = predicted_race_sites(&built.program, threads);
            let mut sim = FuncSim::new(&built.program, threads);
            sim.enable_race_checker(RaceConfig {
                predictor: Some(Box::new(move |sidx| predicted.contains(&sidx))),
            });
            sim.run_to_completion(200_000_000)
                .unwrap_or_else(|e| panic!("{} t={threads}: {e}", w.name()));
            let rc = sim.race_checker().unwrap();
            assert!(
                rc.is_clean(),
                "{} t={threads}: intra-epoch conflicts: {:?}",
                w.name(),
                rc.conflicts()
            );
        }
    }
}

/// The static DLP walk must stay exact on every irregular kernel (the
/// data-dependent addressing steers through memory the analyzer models)
/// and reproduce the functional run's operation profile bit for bit.
#[test]
fn irregular_kernels_dlp_exact_and_bit_accurate() {
    for w in irregular_suite() {
        let built = w.build(1, Scale::Test);
        let p = analyze(&built.program, &DlpOptions::default());
        assert!(p.exact, "{}: static walk went inexact: {:?}", w.name(), p.notes);
        let mut sim = FuncSim::new(&built.program, 1);
        let s = sim.run_to_completion(BUDGET).unwrap();
        assert_eq!(p.total.insts, s.insts, "{}", w.name());
        assert_eq!(p.total.scalar_ops, s.scalar_ops, "{}", w.name());
        assert_eq!(p.total.vector_insts, s.vector_insts, "{}", w.name());
        assert_eq!(p.total.elem_ops, s.elem_ops, "{}", w.name());
        assert_eq!(p.total.vl_histogram.as_slice(), s.vl_histogram.as_slice(), "{}", w.name());
        // All four kernels vectorize their hot loops.
        assert!(p.total.pct_vectorization() > 5.0, "{}", w.name());
    }
}
