//! Dynamic checked-mode cross-validation (DESIGN.md §7).
//!
//! Runs every workload under `FuncSim` with the [`vlt_exec::Checker`]
//! enabled and an undefined-read predictor built from the static
//! verifier. Two properties are exercised at once:
//!
//! * the nine kernels are dynamically fault-free (no undefined reads, no
//!   out-of-bounds or misaligned accesses on any thread), and
//! * every dynamic undefined read would have been statically predicted —
//!   the `debug_assert` inside the checker fires otherwise, so merely
//!   finishing the run in a debug build is the cross-validation.

use vlt_exec::{CheckConfig, FuncSim};
use vlt_verify::{predicted_undef_reads, Options};
use vlt_workloads::suite::suite;
use vlt_workloads::Scale;

#[test]
fn all_workloads_run_clean_under_checker() {
    for w in suite() {
        for threads in [1, w.max_threads()] {
            let built = w.build(threads, Scale::Test);
            let predicted = predicted_undef_reads(&built.program, &Options::default());
            let mut sim = FuncSim::new(&built.program, threads);
            sim.enable_checker(CheckConfig {
                undef_predictor: Some(Box::new(move |sidx| predicted.contains(&sidx))),
                ..CheckConfig::default()
            });
            sim.run_to_completion(200_000_000)
                .unwrap_or_else(|e| panic!("{} t={threads}: {e}", w.name()));
            let ck = sim.checker().unwrap();
            assert!(
                ck.is_clean(),
                "{} t={threads}: dynamic faults: {:?} (+{} dropped)",
                w.name(),
                ck.faults(),
                ck.dropped()
            );
        }
    }
}

/// A kernel with a seeded def-before-use slip: the dynamic checker must
/// observe the undefined read, and the static predictor must have seen it
/// coming (otherwise the checker's `debug_assert` aborts this test).
#[test]
fn seeded_undef_read_is_caught_and_predicted() {
    let prog =
        vlt_isa::asm::assemble("tid x1\nbeqz x1, skip\nli x5, 7\nskip:\nsd x5, -8(sp)\nhalt\n")
            .unwrap();
    let predicted = predicted_undef_reads(&prog, &Options::default());
    let mut sim = FuncSim::new(&prog, 2);
    sim.enable_checker(CheckConfig {
        undef_predictor: Some(Box::new(move |sidx| predicted.contains(&sidx))),
        ..CheckConfig::default()
    });
    sim.run_to_completion(1_000).unwrap();
    let ck = sim.checker().unwrap();
    // Thread 0 takes the branch and reads x5 before any write; thread 1
    // initializes it. Exactly one undefined read, on thread 0.
    assert_eq!(ck.faults().len(), 1, "{:?}", ck.faults());
    assert_eq!(ck.faults()[0].tid, 0);
}
