//! Barrier-epoch race checking over the workload suite (DESIGN.md §7).
//!
//! Two sides of the same invariant — threads only communicate across
//! barriers — are exercised over all nine kernels:
//!
//! * **dynamic**: every workload runs under [`vlt_exec::RaceChecker`] at
//!   1/2/4/8 threads (clamped to the kernel's maximum) and must finish with
//!   no same-epoch cross-thread conflict, and
//! * **static→dynamic containment**: a predictor built from
//!   `vlt_verify::predicted_race_sites` is installed, so any dynamic
//!   conflict not statically predicted aborts a debug build via the
//!   checker's `debug_assert` — merely finishing is the cross-validation.
//!
//! The static report itself must also be clean once each kernel's
//! documented `vlint.allow.*` lines are honored; imprecision or genuinely
//! data-dependent addressing is annotated in the kernel source, not here.

use vlt_exec::{FuncSim, RaceConfig};
use vlt_verify::{check_races, predicted_race_sites};
use vlt_workloads::suite::suite;
use vlt_workloads::Scale;

fn thread_counts(max: usize) -> impl Iterator<Item = usize> {
    [1, 2, 4, 8].into_iter().filter(move |&t| t <= max)
}

#[test]
fn all_workloads_run_clean_under_race_checker() {
    for w in suite() {
        for threads in thread_counts(w.max_threads()) {
            let built = w.build(threads, Scale::Test);
            let predicted = predicted_race_sites(&built.program, threads);
            let mut sim = FuncSim::new(&built.program, threads);
            sim.enable_race_checker(RaceConfig {
                predictor: Some(Box::new(move |sidx| predicted.contains(&sidx))),
            });
            sim.run_to_completion(200_000_000)
                .unwrap_or_else(|e| panic!("{} t={threads}: {e}", w.name()));
            let rc = sim.race_checker().unwrap();
            assert!(
                rc.is_clean(),
                "{} t={threads}: intra-epoch conflicts: {:?} (+{} dropped, {} saturated)",
                w.name(),
                rc.conflicts(),
                rc.dropped(),
                rc.saturated()
            );
        }
    }
}

#[test]
fn all_workloads_statically_clean_or_allowed() {
    for w in suite() {
        for threads in thread_counts(w.max_threads()) {
            let built = w.build(threads, Scale::Test);
            let report = check_races(&built.program, threads);
            assert!(
                report.diags.is_empty(),
                "{} t={threads}: {} unsuppressed race diagnostics:\n{}",
                w.name(),
                report.diags.len(),
                report.diags.iter().map(|d| format!("  {d}")).collect::<Vec<_>>().join("\n")
            );
        }
    }
}
