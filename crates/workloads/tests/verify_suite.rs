//! Every workload's built program must pass the static verifier with zero
//! error-severity diagnostics, at every supported thread count and scale
//! the tests exercise. This is the acceptance gate that lets later PRs
//! refactor kernels without hand-auditing all nine workloads.

use vlt_verify::{verify, Code, Severity};
use vlt_workloads::{suite, Scale};

#[test]
fn all_workloads_verify_clean() {
    let mut failures = Vec::new();
    for w in suite() {
        for threads in [1, w.max_threads()] {
            for scale in [Scale::Test, Scale::Small] {
                let built = w.build(threads, scale);
                let report = verify(&built.program);
                if !report.is_clean() {
                    failures.push(format!("{} x{threads} {scale:?}:\n{report}", w.name()));
                }
            }
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n\n"));
}

/// Warnings are not hard failures, but the nine kernels are expected to be
/// warning-free too (any intentional pattern gets a `vlint.allow.*`
/// symbol). This keeps the lint output meaningful when a kernel changes.
#[test]
fn all_workloads_warning_free() {
    let mut failures = Vec::new();
    for w in suite() {
        for threads in [1, w.max_threads()] {
            let built = w.build(threads, Scale::Test);
            let report = verify(&built.program);
            let warns: Vec<String> = report
                .diags
                .iter()
                .filter(|d| d.severity == Severity::Warn)
                .map(|d| d.to_string())
                .collect();
            if !warns.is_empty() {
                failures.push(format!("{} x{threads}:\n  {}", w.name(), warns.join("\n  ")));
            }
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n\n"));
}

/// The verifier must see through every idiom the kernels rely on: no
/// undef-read or memory findings of any severity, anywhere in the suite.
#[test]
fn no_dataflow_findings_across_suite() {
    for w in suite() {
        for threads in [1, w.max_threads()] {
            let built = w.build(threads, Scale::Test);
            let report = verify(&built.program);
            for code in [
                Code::UndefRead,
                Code::MaybeUndefRead,
                Code::OobRead,
                Code::OobWrite,
                Code::Misaligned,
            ] {
                assert!(
                    !report.flags(code),
                    "{} x{threads}: unexpected {code}:\n{report}",
                    w.name()
                );
            }
        }
    }
}
