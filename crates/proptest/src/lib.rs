#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! A self-contained, std-only stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the subset of proptest's API its tests actually use:
//! the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, integer /
//! float range strategies, `any::<T>()`, tuple strategies,
//! [`collection::vec`], and the `prop_map` / `prop_flat_map` combinators.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   the panic message (via the assert macros) but is not minimized.
//! * **Deterministic.** The RNG is seeded from the test function's name,
//!   so failures reproduce across runs. Set `PROPTEST_CASES` to override
//!   the case count.

use std::ops::{Range, RangeInclusive};

/// Per-test configuration (case count only).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count, honoring a `PROPTEST_CASES` env override.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic test RNG (xorshift64*, seeded from the test name).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed from an arbitrary string (the macro passes the test fn name).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a, mixed so that similar names diverge quickly.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h | 1)
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift bound; bias is negligible for test generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator. The real crate's strategies also shrink; here a
/// strategy is just a deterministic-RNG-driven generator.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` derives from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy producing one fixed value (clone per case).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(width) as i128) as $t
            }
        }
    )*};
}
int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Values any `T: Arbitrary` can take; see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The whole-domain strategy for `T` (with a bias toward edge values).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a full-domain generator.
pub trait Arbitrary {
    /// Produce one random value of the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // 1-in-8 cases draw from the edge set, like real proptest's
                // bias toward special values.
                if rng.below(8) == 0 {
                    match rng.below(4) {
                        0 => 0 as $t,
                        1 => 1 as $t,
                        2 => <$t>::MAX,
                        _ => <$t>::MIN,
                    }
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    /// `Vec` of values from `elem`, sized within `len`.
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, len: len.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.min + rng.below((self.len.max - self.len.min + 1) as u64) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Assert inside a property (panics — no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ [$crate::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.effective_cases() {
                let _ = __case;
                $(let $pat = $crate::Strategy::generate(&$strat, &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_impl!{ [$cfg] $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let w = (3i64..=3).generate(&mut rng);
            assert_eq!(w, 3);
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = TestRng::from_name("lens");
        for _ in 0..200 {
            let v = crate::collection::vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
            let w = crate::collection::vec(any::<u8>(), 7..=7).generate(&mut rng);
            assert_eq!(w.len(), 7);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::from_name("same");
        let mut b = TestRng::from_name("same");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: bindings, tuples, flat_map, trailing comma.
        #[test]
        fn macro_surface((a, b) in (0u8..10, 0u8..10), n in (1usize..4).prop_flat_map(|n| n..=n),) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!((1..4).contains(&n));
        }
    }
}
