//! Full-system tests: assemble real SPMD kernels, run them on named
//! configurations, verify results *and* timing-shape properties.

use vlt_isa::asm::assemble;
use vlt_isa::Program;

use crate::config::SystemConfig;
use crate::result::SimResult;
use crate::system::{CycleView, DriverMode, NullObserver, RepartitionEvent, SimObserver, System};

const MAX: u64 = 20_000_000;

/// A vectorized SPMD daxpy: setup (region 0) fills `xs` with global element
/// ids as floats; the measured loop (region 1) computes `y[i] += 2 * x[i]`
/// in chunks of `vl`, with `scalar_work` extra dependent scalar adds per
/// iteration standing in for the application's non-vectorized fraction.
fn daxpy(npt: usize, vl: usize, threads: usize, scalar_work: usize) -> Program {
    daxpy_passes(npt, vl, threads, scalar_work, 3)
}

/// Hierarchical daxpy: same kernel, but the `vltcfg` operand carries an
/// explicit thread × cluster spread (DESIGN.md §11).
fn daxpy_hier(
    npt: usize,
    vl: usize,
    threads: usize,
    clusters: usize,
    scalar_work: usize,
) -> Program {
    daxpy_operand(
        npt,
        vl,
        threads,
        vlt_isa::vltcfg::operand(threads as u8, clusters as u8) as usize,
        scalar_work,
        3,
    )
}

/// `passes` repetitions of the measured loop (apps iterate over resident
/// data, so steady-state behaviour dominates the one-time cold fill).
fn daxpy_passes(
    npt: usize,
    vl: usize,
    threads: usize,
    scalar_work: usize,
    passes: usize,
) -> Program {
    daxpy_operand(npt, vl, threads, threads, scalar_work, passes)
}

/// The daxpy kernel with an explicit `vltcfg` operand (flat thread counts
/// or packed hierarchical encodings alike).
fn daxpy_operand(
    npt: usize,
    vl: usize,
    threads: usize,
    cfg_operand: usize,
    scalar_work: usize,
    passes: usize,
) -> Program {
    let total = npt * threads;
    let sw: String = vec!["add x25, x25, x26"; scalar_work].join("\n        ");
    let xs_data: Vec<String> = (0..total).map(|i| format!("{}.0", i)).collect();
    let src = format!(
        r#"
        .eq VL, {vl}
        .eq NPT, {npt}
        .data
    xs:
        .double {xs}
    ys:
        .zero {bytes}
        .text
        li      x9, {cfg_operand}
        vltcfg  x9
        tid     x10
        li      x12, NPT
        mul     x13, x10, x12      # start element
        slli    x14, x13, 3
        la      x15, xs
        add     x15, x15, x14      # &x[start]
        la      x16, ys
        add     x16, x16, x14      # &y[start]

        # --- setup (region 0): touch xs, zero ys; warms the L2 (the
        # paper's workloads are cache-resident) ---
        mv      x27, x15
        mv      x28, x16
        li      x17, 0
        vxor.vv v2, v2, v2
    setup:
        sub     x3, x12, x17
        setvl   x2, x3
        vld     v1, x27
        vst     v2, x28
        slli    x7, x2, 3
        add     x27, x27, x7
        add     x28, x28, x7
        add     x17, x17, x2
        blt     x17, x12, setup
        barrier

        # --- measured loop (region 1): y += a*x in VL chunks, repeated
        # over the resident arrays for `passes` passes ---
        region  1
        li      x18, 2
        fcvt.f.x f1, x18           # a = 2.0
        li      x6, VL
        li      x26, 1
        li      x29, {passes}
    pass_loop:
        la      x15, xs
        add     x15, x15, x14
        la      x16, ys
        add     x16, x16, x14
        li      x17, 0
    loop:
        sub     x3, x12, x17
        blt     x3, x6, small
        mv      x4, x6
        j       doit
    small:
        mv      x4, x3
    doit:
        setvl   x2, x4
        vld     v1, x15            # x
        vld     v2, x16            # y
        vfma.vs v2, v1, f1         # y += a*x
        vst     v2, x16
        {sw}
        slli    x7, x2, 3
        add     x15, x15, x7
        add     x16, x16, x7
        add     x17, x17, x2
        blt     x17, x12, loop
        addi    x29, x29, -1
        bnez    x29, pass_loop
        region  0
        barrier
        halt
    "#,
        xs = xs_data.join(", "),
        bytes = 8 * total,
        passes = passes,
    );
    assemble(&src).unwrap()
}

/// Back-compat helper for tests without a scalar fraction.
fn daxpy_kernel(npt: usize, vl: usize, threads: usize) -> Program {
    daxpy(npt, vl, threads, 0)
}

/// Verify the daxpy result in the final memory image (default 3 passes:
/// y accumulates 2x per pass).
fn verify_daxpy(sys: &System, total: usize) {
    let base = sys.funcsim().prog.program.symbol("ys").unwrap();
    for i in (0..total).step_by((total / 17).max(1)) {
        let got = sys.funcsim().mem.read_f64(base + 8 * i as u64);
        assert_eq!(got, 6.0 * i as f64, "y[{i}]");
    }
}

/// A scalar SPMD kernel: thread t sums integers [t*n, (t+1)*n) and stores
/// the result in out[t]; then barriers and halts.
fn scalar_sum_kernel(n: usize, threads: usize) -> Program {
    let src = format!(
        r#"
        .data
    out:
        .zero {out_bytes}
        .text
        region  1
        tid     x10
        li      x11, {n}
        mul     x12, x10, x11     # start
        add     x13, x12, x11     # end
        li      x14, 0            # acc
    loop:
        add     x14, x14, x12
        addi    x12, x12, 1
        blt     x12, x13, loop
        la      x15, out
        slli    x16, x10, 3
        add     x15, x15, x16
        sd      x14, 0(x15)
        region  0
        barrier
        halt
    "#,
        out_bytes = 8 * threads,
        n = n
    );
    assemble(&src).unwrap()
}

fn verify_scalar_sum(sys: &System, n: u64, threads: usize) {
    let base = sys.funcsim().prog.program.symbol("out").unwrap();
    for t in 0..threads as u64 {
        let start = t * n;
        let expect: u64 = (start..start + n).sum();
        assert_eq!(sys.funcsim().mem.read_u64(base + 8 * t), expect, "thread {t}");
    }
}

#[test]
fn base_system_runs_vector_code_correctly() {
    let prog = daxpy_kernel(512, 64, 1);
    let mut sys = System::new(SystemConfig::base(8), &prog, 1);
    let r = sys.run(MAX).unwrap();
    verify_daxpy(&sys, 512);
    assert!(r.cycles > 0);
    assert!(r.committed > 0);
    // Figure-4 invariant: every datapath-cycle is classified.
    assert_eq!(r.utilization.total(), 3 * 8 * r.cycles);
    // The measured loop is a substantial marked region (the setup phase
    // is unmarked, so this sits near half).
    assert!(r.opportunity() > 35.0, "opportunity: {}", r.opportunity());
}

#[test]
fn determinism() {
    let prog = daxpy_kernel(256, 64, 1);
    let r1 = System::new(SystemConfig::base(8), &prog, 1).run(MAX).unwrap();
    let r2 = System::new(SystemConfig::base(8), &prog, 1).run(MAX).unwrap();
    assert_eq!(r1.cycles, r2.cycles);
    assert_eq!(r1.committed, r2.committed);
    assert_eq!(r1.utilization, r2.utilization);
}

#[test]
fn long_vectors_scale_with_lanes() {
    // Figure 1, long-vector shape: 8 lanes much faster than 1 lane.
    let prog = daxpy_kernel(2048, 64, 1);
    let c1 = System::new(SystemConfig::base(1), &prog, 1).run(MAX).unwrap().cycles;
    let c8 = System::new(SystemConfig::base(8), &prog, 1).run(MAX).unwrap().cycles;
    let speedup = c1 as f64 / c8 as f64;
    assert!(speedup > 2.5, "long vectors should profit from 8 lanes: {speedup:.2} ({c1} vs {c8})");
}

#[test]
fn short_vectors_do_not_scale_with_lanes() {
    // Figure 1, short-vector shape: VL=8 gains little beyond 8 lanes.
    let prog = daxpy_kernel(2048, 8, 1);
    let c4 = System::new(SystemConfig::base(4), &prog, 1).run(MAX).unwrap().cycles;
    let c8 = System::new(SystemConfig::base(8), &prog, 1).run(MAX).unwrap().cycles;
    let speedup = c4 as f64 / c8 as f64;
    assert!(speedup < 1.25, "short vectors cannot use extra lanes: {speedup:.2} ({c4} vs {c8})");
}

#[test]
fn vlt_two_threads_speed_up_short_vectors() {
    // The headline effect (Figure 3): a short-VL, partially-vectorized
    // workload on V2-CMP with two VLT threads beats the base run.
    let total = 4096;
    let base_prog = daxpy(total, 8, 1, 12);
    let vlt_prog = daxpy(total / 2, 8, 2, 12);
    let cb = System::new(SystemConfig::base(8), &base_prog, 1).run(MAX).unwrap().cycles;
    let mut sys = System::new(SystemConfig::v2_cmp(), &vlt_prog, 2);
    let cv = sys.run(MAX).unwrap().cycles;
    verify_daxpy(&sys, total);
    let speedup = cb as f64 / cv as f64;
    assert!(speedup > 1.4, "VLT should accelerate short vectors: {speedup:.2} ({cb} vs {cv})");
}

#[test]
fn vlt_four_threads_help_more() {
    let total = 4096;
    let v2 = daxpy(total / 2, 8, 2, 12);
    let v4 = daxpy(total / 4, 8, 4, 12);
    let c2 = System::new(SystemConfig::v2_cmp(), &v2, 2).run(MAX).unwrap().cycles;
    let c4 = System::new(SystemConfig::v4_cmp(), &v4, 4).run(MAX).unwrap().cycles;
    assert!(
        (c4 as f64) < 0.75 * c2 as f64,
        "4 VLT threads should beat 2 on partially-vectorized work: {c4} vs {c2}"
    );
}

#[test]
fn smt_su_matches_replicated_su_for_two_threads() {
    // Paper Figure 5: V2-SMT performs close to V2-CMP.
    let prog = daxpy(2048, 8, 2, 8);
    let c_smt = System::new(SystemConfig::v2_smt(), &prog, 2).run(MAX).unwrap().cycles;
    let c_cmp = System::new(SystemConfig::v2_cmp(), &prog, 2).run(MAX).unwrap().cycles;
    let ratio = c_smt as f64 / c_cmp as f64;
    assert!(ratio < 1.35, "V2-SMT should be close to V2-CMP: {ratio:.2} ({c_smt} vs {c_cmp})");
}

#[test]
fn cmt_runs_scalar_threads() {
    let prog = scalar_sum_kernel(5000, 4);
    let mut sys = System::new(SystemConfig::cmt(), &prog, 4);
    let r = sys.run(MAX).unwrap();
    verify_scalar_sum(&sys, 5000, 4);
    assert_eq!(r.utilization.total(), 0, "no vector unit in CMT");
    assert!(r.opportunity() > 50.0);
}

#[test]
fn lane_threads_run_eight_scalar_threads() {
    let prog = scalar_sum_kernel(5000, 8);
    let mut sys = System::new(SystemConfig::v4_cmt_lane_threads(), &prog, 8);
    let r = sys.run(MAX).unwrap();
    verify_scalar_sum(&sys, 5000, 8);
    assert!(r.committed > 8 * 3 * 5000, "all lane threads committed: {}", r.committed);
}

#[test]
fn lane_threads_beat_cmt_on_abundant_tlp() {
    // Figure 6 shape: 8 simple lane cores beat 4 SMT contexts on 2 OOO
    // cores when per-thread ILP is low and TLP is abundant.
    let work = 40_000;
    let cmt_prog = scalar_sum_kernel(work / 4, 4);
    let lane_prog = scalar_sum_kernel(work / 8, 8);
    let c_cmt = System::new(SystemConfig::cmt(), &cmt_prog, 4).run(MAX).unwrap().cycles;
    let c_lane =
        System::new(SystemConfig::v4_cmt_lane_threads(), &lane_prog, 8).run(MAX).unwrap().cycles;
    let speedup = c_cmt as f64 / c_lane as f64;
    assert!(
        speedup > 1.0,
        "8 lane threads should beat the 2-core CMT here: {speedup:.2} ({c_cmt} vs {c_lane})"
    );
}

#[test]
fn thread_count_validation() {
    let prog = scalar_sum_kernel(10, 1);
    let result = std::panic::catch_unwind(|| {
        System::new(SystemConfig::base(8), &prog, 2); // base has 1 context
    });
    assert!(result.is_err());
}

#[test]
fn timeout_reported() {
    let prog = assemble("loop:\nj loop\n").unwrap();
    let err = System::new(SystemConfig::base(8), &prog, 1).run(10_000).unwrap_err();
    assert!(matches!(err, crate::result::SimError::Timeout { .. }));
}

/// Dynamic per-phase repartitioning (paper §3.3): a program that runs a
/// long-vector phase on the full lane set (thread 0 only, `vltcfg 1`) and
/// then a short-vector phase across 2 partitions.
#[test]
fn dynamic_vltcfg_switches_phases() {
    let src = r#"
        .data
    xs:
        .zero 8192
    ys:
        .zero 8192
        .text
        tid     x10
        # ---- phase A: thread 0 sweeps all 1024 elements at VL 64 on the
        # full 8-lane unit; thread 1 idles at the barrier ----
        li      x9, 1
        vltcfg  x9
        bnez    x10, phase_a_done
        la      x15, xs
        li      x17, 0
        li      x12, 1024
    wide:
        sub     x3, x12, x17
        setvl   x2, x3
        vid     v1
        vadd.vs v1, v1, x17
        vst     v1, x15
        slli    x7, x2, 3
        add     x15, x15, x7
        add     x17, x17, x2
        blt     x17, x12, wide
    phase_a_done:
        barrier
        # ---- phase B: both threads, 2 partitions, VL <= 32 ----
        li      x9, 2
        vltcfg  x9
        li      x12, 512           # elements per thread
        mul     x13, x10, x12
        slli    x14, x13, 3
        la      x15, xs
        add     x15, x15, x14
        la      x16, ys
        add     x16, x16, x14
        li      x17, 0
    narrow:
        sub     x3, x12, x17
        setvl   x2, x3
        vld     v1, x15
        vadd.vv v2, v1, v1
        vst     v2, x16
        slli    x7, x2, 3
        add     x15, x15, x7
        add     x16, x16, x7
        add     x17, x17, x2
        blt     x17, x12, narrow
        barrier
        halt
    "#;
    let prog = assemble(src).unwrap();
    let mut sys = System::new(SystemConfig::v2_cmp(), &prog, 2);
    let r = sys.run(MAX).unwrap();
    // Results: xs[i] = i, ys[i] = 2i.
    let xs = sys.funcsim().prog.program.symbol("xs").unwrap();
    let ys = sys.funcsim().prog.program.symbol("ys").unwrap();
    for i in (0..1024u64).step_by(97) {
        assert_eq!(sys.funcsim().mem.read_u64(xs + 8 * i), i, "xs[{i}]");
        assert_eq!(sys.funcsim().mem.read_u64(ys + 8 * i), 2 * i, "ys[{i}]");
    }
    assert!(r.cycles > 0);
    // The wide phase used VL 64 (only possible on an undivided lane set).
    // Verify through the functional MVL history: thread 0 ended phase A
    // with vl up to 64.
    assert_eq!(r.utilization.total(), 3 * 8 * r.cycles);
}

/// The same two-phase program forced to a fixed 2-way partition for the
/// wide phase must be slower: the single active thread only gets 4 lanes.
#[test]
fn dynamic_vltcfg_beats_fixed_partitioning() {
    // Same program as above but WITHOUT the vltcfg 1 (stays at 2).
    let wide_insts = |cfg1: bool| {
        format!(
            r#"
        .data
    xs:
        .zero 32768
        .text
        tid     x10
        {maybe_cfg}
        bnez    x10, skip
        la      x15, xs
        li      x17, 0
        li      x12, 4096
    wide:
        sub     x3, x12, x17
        setvl   x2, x3
        vid     v1
        vadd.vs v1, v1, x17
        vfsplat v2, f1
        vadd.vv v1, v1, v1
        vst     v1, x15
        slli    x7, x2, 3
        add     x15, x15, x7
        add     x17, x17, x2
        blt     x17, x12, wide
    skip:
        barrier
        halt
    "#,
            maybe_cfg =
                if cfg1 { "li x9, 1\n        vltcfg x9" } else { "li x9, 2\n        vltcfg x9" }
        )
    };
    let adaptive = assemble(&wide_insts(true)).unwrap();
    let fixed = assemble(&wide_insts(false)).unwrap();
    let ca = System::new(SystemConfig::v2_cmp(), &adaptive, 2).run(MAX).unwrap().cycles;
    let cf = System::new(SystemConfig::v2_cmp(), &fixed, 2).run(MAX).unwrap().cycles;
    assert!(
        (ca as f64) < 0.8 * cf as f64,
        "adaptive vltcfg must reclaim the idle partition: {ca} vs {cf}"
    );
}

/// `run_sampled` produces monotone cumulative counters that end at the
/// final result's values.
#[test]
fn sampled_run_matches_plain_run() {
    let prog = daxpy(256, 16, 1, 4);
    let plain = System::new(SystemConfig::base(8), &prog, 1).run(MAX).unwrap();
    let (sampled, samples) =
        System::new(SystemConfig::base(8), &prog, 1).run_sampled(MAX, 256).unwrap();
    assert_eq!(plain.cycles, sampled.cycles);
    assert_eq!(plain.committed, sampled.committed);
    assert!(!samples.is_empty());
    // Monotonicity.
    for w in samples.windows(2) {
        assert!(w[1].cycle > w[0].cycle);
        assert!(w[1].committed >= w[0].committed);
        assert!(w[1].utilization.busy >= w[0].utilization.busy);
        assert!(w[1].utilization.total() >= w[0].utilization.total());
    }
    // Final sample does not exceed the end state.
    let last = samples.last().unwrap();
    assert!(last.committed <= sampled.committed);
    assert!(last.cycle < sampled.cycles);
}

/// A `vltcfg` fetched while vector work is in flight must drain the
/// machine before applying: the driver refuses new dispatches meanwhile and
/// reports the drain latency through `on_repartition_applied`.
#[test]
fn repartition_backpressure() {
    // Long dependent divides keep the VU busy when `vltcfg 1` is fetched,
    // so the repartition provably waits for the drain.
    let src = "
        li      x9, 2
        vltcfg  x9
        li      x1, 32
        setvl   x2, x1
        vfdiv.vv v1, v2, v3
        vfdiv.vv v4, v1, v3
        li      x9, 1
        vltcfg  x9
        tid     x10
        bnez    x10, skip
        vfadd.vv v5, v2, v3
    skip:
        barrier
        halt
    ";
    let prog = assemble(src).unwrap();
    let mut rec = Recorder::default();
    System::new(SystemConfig::v2_cmp(), &prog, 2).run_observed(MAX, &mut rec).unwrap();
    // The vltcfg 2 matches the running shape (no drain); the vltcfg 1
    // shrinks it and must wait for the in-flight divides.
    assert!(!rec.applies.is_empty(), "the vltcfg 1 never took effect");
    assert!(
        rec.applies.iter().any(|&(_, latency)| latency > 0),
        "shrinking amid in-flight work must report a non-zero drain: {:?}",
        rec.applies
    );
    for ev in &rec.reparts {
        assert!(!ev.clamped, "all requests are valid here: {ev:?}");
        assert_eq!(ev.applied, ev.requested as usize);
    }
}

/// Records every observer callback, for driver-spine tests.
#[derive(Default)]
struct Recorder {
    cycles_seen: u64,
    reparts: Vec<RepartitionEvent>,
    applies: Vec<(u64, u64)>,
    barrier_releases: u64,
    barrier_events: u64,
    finishes: u32,
}

impl SimObserver for Recorder {
    fn on_cycle(&mut self, _now: u64, _view: &CycleView<'_>) {
        self.cycles_seen += 1;
    }

    fn on_barrier(&mut self, _now: u64, releases: u64, _view: &CycleView<'_>) {
        self.barrier_releases = releases;
        self.barrier_events += 1;
    }

    fn on_repartition(&mut self, _now: u64, ev: &RepartitionEvent) {
        self.reparts.push(*ev);
    }

    fn on_repartition_applied(&mut self, now: u64, drain_latency: u64) {
        self.applies.push((now, drain_latency));
    }

    fn on_finish(&mut self, _result: &SimResult) {
        self.finishes += 1;
    }
}

/// The plain, sampled, and observed entry points all go through the same
/// driver and must return identical results.
#[test]
fn all_entry_points_share_one_driver() {
    let prog = daxpy(256, 16, 1, 4);
    let plain = System::new(SystemConfig::base(8), &prog, 1).run(MAX).unwrap();
    let (sampled, _) = System::new(SystemConfig::base(8), &prog, 1).run_sampled(MAX, 1).unwrap();
    let observed =
        System::new(SystemConfig::base(8), &prog, 1).run_observed(MAX, &mut NullObserver).unwrap();
    assert_eq!(plain, sampled);
    assert_eq!(plain, observed);
}

/// The cycle-by-cycle oracle presents every cycle to the observer exactly
/// once, plus one `on_finish`.
#[test]
fn observer_sees_every_cycle() {
    let prog = daxpy(128, 16, 1, 0);
    let mut rec = Recorder::default();
    let r = System::new(SystemConfig::base(8), &prog, 1)
        .with_driver(DriverMode::CycleByCycle)
        .run_observed(MAX, &mut rec)
        .unwrap();
    assert_eq!(rec.cycles_seen, r.cycles);
    assert_eq!(rec.finishes, 1);
}

/// A dependent pointer-chase: one in-flight load at a time, so the machine
/// is provably idle for most of each access — guaranteed skippable spans
/// for the event-driven driver tests.
fn chase_kernel(hops: usize) -> Program {
    let lds = vec!["ld x1, 0(x1)"; hops].join("\n        ");
    let src = format!(
        r#"
        .data
    cell:
        .dword cell
        .text
        la x1, cell
        {lds}
        halt
    "#
    );
    assemble(&src).unwrap()
}

/// The event-driven driver elides provably-idle cycles for observers with
/// no deadline — but an observer that declares a deadline of `now` still
/// sees every cycle, and the results agree either way.
#[test]
fn event_driver_skips_only_what_observers_allow() {
    struct EveryCycle(Recorder);
    impl SimObserver for EveryCycle {
        fn on_cycle(&mut self, now: u64, view: &CycleView<'_>) {
            self.0.on_cycle(now, view);
        }
        fn next_deadline(&self, now: u64) -> Option<u64> {
            Some(now)
        }
    }

    let prog = chase_kernel(24);
    let mut passive = Recorder::default();
    let r = System::new(SystemConfig::base(8), &prog, 1).run_observed(MAX, &mut passive).unwrap();
    assert!(
        passive.cycles_seen < r.cycles / 2,
        "memory waits should be skipped: saw {} of {} cycles",
        passive.cycles_seen,
        r.cycles
    );
    assert_eq!(passive.finishes, 1);

    let mut every = EveryCycle(Recorder::default());
    let r2 = System::new(SystemConfig::base(8), &prog, 1).run_observed(MAX, &mut every).unwrap();
    assert_eq!(every.0.cycles_seen, r2.cycles);
    assert_eq!(r, r2);
}

/// Event-driven vs cycle-by-cycle equality across every machine family:
/// vector (with VU), SMT, scalar CMT, and lane-thread configurations.
#[test]
fn event_driver_matches_naive_all_config_families() {
    let checks: Vec<(SystemConfig, Program, usize)> = vec![
        (SystemConfig::base(8), daxpy(256, 16, 1, 4), 1),
        (SystemConfig::base(8), chase_kernel(24), 1),
        (SystemConfig::v2_cmp(), daxpy(128, 8, 2, 4), 2),
        (SystemConfig::v2_smt(), daxpy(128, 8, 2, 4), 2),
        (SystemConfig::cmt(), scalar_sum_kernel(2000, 4), 4),
        (SystemConfig::v4_cmt_lane_threads(), scalar_sum_kernel(1000, 8), 8),
        (SystemConfig::v8_clustered(2), daxpy_hier(64, 16, 8, 2, 4), 8),
    ];
    for (cfg, prog, threads) in checks {
        let name = cfg.name.clone();
        let event = System::new(cfg.clone(), &prog, threads).run(MAX).unwrap();
        let naive = System::new(cfg, &prog, threads)
            .with_driver(DriverMode::CycleByCycle)
            .run(MAX)
            .unwrap();
        assert_eq!(event, naive, "driver divergence on {name} x{threads}");
    }
}

/// Satellite coverage: `SamplingObserver` under skipping — samples land on
/// exactly the same cycles, with the same values, as the naive driver.
#[test]
fn sampling_matches_naive_driver_under_skipping() {
    for interval in [1u64, 7, 64, 1024] {
        let prog = chase_kernel(24);
        let (re, se) =
            System::new(SystemConfig::base(8), &prog, 1).run_sampled(MAX, interval).unwrap();
        let (rn, sn) = System::new(SystemConfig::base(8), &prog, 1)
            .with_driver(DriverMode::CycleByCycle)
            .run_sampled(MAX, interval)
            .unwrap();
        assert_eq!(re, rn, "result divergence at interval {interval}");
        assert_eq!(se, sn, "sample divergence at interval {interval}");
    }
}

/// A would-be hang times out at exactly the same cycle in both modes (the
/// skip horizon is capped at the cycle budget).
#[test]
fn timeout_identical_across_drivers() {
    let prog = assemble("loop:\nj loop\n").unwrap();
    for mode in [DriverMode::EventDriven, DriverMode::CycleByCycle] {
        let err =
            System::new(SystemConfig::base(8), &prog, 1).with_driver(mode).run(10_000).unwrap_err();
        assert!(matches!(err, crate::result::SimError::Timeout { cycles: 10_000 }));
    }
}

/// `vltcfg 8` is architecturally valid (the funcsim accepts 1/2/4/8) but
/// exceeds the base machine's single lane partition: the driver clamps it,
/// counts it in the result, and reports it to the observer.
#[test]
fn clamped_vltcfg_counted_and_reported() {
    let src = r#"
        li      x9, 8
        vltcfg  x9
        li      x1, 8
        setvl   x2, x1
        vid     v1
        halt
    "#;
    let prog = assemble(src).unwrap();
    let mut rec = Recorder::default();
    let r = System::new(SystemConfig::base(8), &prog, 1).run_observed(MAX, &mut rec).unwrap();
    assert_eq!(r.clamped_repartitions, 1);
    assert_eq!(rec.reparts.len(), 1);
    let ev = rec.reparts[0];
    assert!(ev.clamped);
    assert_eq!(ev.requested, 8);
    assert_eq!(ev.applied, 1);
}

/// A `vltcfg` matching the machine passes through unclamped.
#[test]
fn valid_vltcfg_is_not_counted_as_clamped() {
    let prog = daxpy(256, 8, 2, 0); // starts with vltcfg 2
    let mut rec = Recorder::default();
    let mut sys = System::new(SystemConfig::v2_cmp(), &prog, 2);
    let r = sys.run_observed(MAX, &mut rec).unwrap();
    assert_eq!(r.clamped_repartitions, 0);
    // One event per thread: both threads execute the vltcfg.
    assert_eq!(rec.reparts.len(), 2);
    for ev in &rec.reparts {
        assert!(!ev.clamped);
        assert_eq!(ev.requested, 2);
        assert_eq!(ev.applied, 2);
    }
}

/// The ultra-wide machine (DESIGN.md §11): 8 VLT threads spread over two
/// 8-lane clusters run daxpy correctly, classify every datapath-cycle in
/// every cluster, route vector memory traffic through the inter-cluster
/// network, and keep stall-cause conservation exact.
#[test]
fn two_cluster_machine_runs_daxpy_correctly() {
    let prog = daxpy_hier(256, 16, 8, 2, 0); // effective MVL = 64*2/8 = 16
    let mut sys = System::new(SystemConfig::v8_clustered(2), &prog, 8);
    let r = sys.run(MAX).unwrap();
    verify_daxpy(&sys, 2048);
    // Figure-4 invariant across clusters: 3 datapaths x 16 total lanes.
    assert_eq!(r.utilization.total(), 3 * 16 * r.cycles);
    let net = r.mem.net.as_ref().expect("multi-cluster runs carry network stats");
    assert!(net.transfers > 0, "vector memory traffic crosses the network");
    r.check_stall_conservation().unwrap();
}

/// Every ultra-wide design point (16/32/64 total lanes) runs the kernel
/// correctly with conservation intact.
#[test]
fn cluster_sweep_runs_correctly() {
    for clusters in [2usize, 4, 8] {
        let mvl = 8 * clusters; // 64 * clusters / 8 threads
        let prog = daxpy_hier(8 * mvl, mvl, 8, clusters, 2);
        let mut sys = System::new(SystemConfig::v8_clustered(clusters), &prog, 8);
        let r = sys.run(MAX).unwrap();
        verify_daxpy(&sys, 8 * 8 * mvl);
        assert_eq!(
            r.utilization.total(),
            3 * 8 * clusters as u64 * r.cycles,
            "{clusters} clusters"
        );
        r.check_stall_conservation().unwrap_or_else(|e| panic!("{clusters} clusters: {e}"));
    }
}

/// A repartition that crosses cluster boundaries — 8 threads × 2 clusters
/// down to 4 threads × 1 cluster — drains the whole machine first, applies
/// exactly once, and stays byte-identical across drivers.
#[test]
fn cross_cluster_repartition_drains_and_applies() {
    let op82 = vlt_isa::vltcfg::operand(8, 2);
    let op41 = vlt_isa::vltcfg::operand(4, 1);
    let src = format!(
        "
        li      x9, {op82}
        vltcfg  x9
        li      x1, 16
        setvl   x2, x1
        vfdiv.vv v1, v2, v3
        barrier
        li      x9, {op41}
        vltcfg  x9
        tid     x10
        li      x11, 4
        blt     x10, x11, dovec
        j       join
    dovec:
        setvl   x2, x1
        vfadd.vv v4, v2, v3
    join:
        barrier
        halt
    "
    );
    let prog = assemble(&src).unwrap();
    let mut rec = Recorder::default();
    let r =
        System::new(SystemConfig::v8_clustered(2), &prog, 8).run_observed(MAX, &mut rec).unwrap();
    // The opening (8,2) matches the machine's initial shape (no drain);
    // only the cross-cluster shrink to (4,1) applies.
    assert!(!rec.applies.is_empty(), "the (4,1) repartition never took effect");
    for ev in &rec.reparts {
        assert!(!ev.clamped, "all requests are valid on this machine: {ev:?}");
    }
    assert!(rec.reparts.iter().any(|ev| ev.applied == 4 && ev.applied_clusters == 1));
    r.check_stall_conservation().unwrap();
    let naive = System::new(SystemConfig::v8_clustered(2), &prog, 8)
        .with_driver(DriverMode::CycleByCycle)
        .run(MAX)
        .unwrap();
    assert_eq!(r, naive, "driver divergence across a cross-cluster repartition");
}

/// Barrier-release accounting stays exact when a thread halts before the
/// rendezvous: 3 of 4 threads meet at two barriers. The historical
/// `fetches / nthreads` accounting reports 6/4 = 1 release here and would
/// skip a coherence flush; the exact counter reports 2.
#[test]
fn barrier_releases_exact_with_early_halt() {
    let src = r#"
        .data
    out:
        .zero 32
        .text
        tid   x1
        bnez  x1, worker
        halt
    worker:
        barrier
        la    x2, out
        slli  x3, x1, 3
        add   x2, x2, x3
        sd    x1, 0(x2)
        barrier
        halt
    "#;
    let prog = assemble(src).unwrap();
    let mut rec = Recorder::default();
    let mut sys = System::new(SystemConfig::cmt(), &prog, 4);
    sys.run_observed(MAX, &mut rec).unwrap();
    assert_eq!(rec.barrier_releases, 2, "exactly two rendezvous completed");
    // Every surviving thread's store is visible post-barrier.
    let base = sys.funcsim().prog.program.symbol("out").unwrap();
    for t in 1..4u64 {
        assert_eq!(sys.funcsim().mem.read_u64(base + 8 * t), t);
    }
}

/// The dividing case still counts one release per rendezvous, not one per
/// arriving thread.
#[test]
fn barrier_releases_count_rendezvous_not_arrivals() {
    let src = r#"
        barrier
        barrier
        barrier
        halt
    "#;
    let prog = assemble(src).unwrap();
    let mut rec = Recorder::default();
    System::new(SystemConfig::cmt(), &prog, 4).run_observed(MAX, &mut rec).unwrap();
    assert_eq!(rec.barrier_releases, 3);
    // Events report the cumulative count once per cycle, so several
    // rendezvous completing in one cycle coalesce into one callback.
    assert!(rec.barrier_events >= 1 && rec.barrier_events <= 3);
}
