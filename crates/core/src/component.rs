//! The component abstraction the timing driver iterates over.
//!
//! Every timed unit in the machine — out-of-order scalar units, in-order
//! lane cores, the per-cluster vector units, the inter-cluster network, and
//! the banked memory system — implements one [`Component`] trait. The
//! driver in `system.rs` walks a registered component list for *every*
//! per-unit concern:
//!
//! * **ticking** (advance one cycle),
//! * **quiescence** (`next_event` for the event-driven skip horizon —
//!   registering a component automatically includes it in the poll, so a
//!   new unit type cannot be silently skipped over),
//! * **progress fingerprinting** (the cheap has-anything-happened gate),
//! * **bulk idle-span crediting** (byte-identical accounting for skipped
//!   spans), and
//! * **observer event hooks** (opt-in logging + per-cycle drains).
//!
//! Components differ wildly in what they need each cycle (a core needs the
//! fetch source and a vector sink; a vector unit needs the memory system,
//! the network, and park state; the network needs nothing at all), so the
//! driver hands every call a [`TickCtx`] and each implementation takes the
//! capabilities it uses. The driver constructs the context per component
//! class — a capability a component expects but the driver did not provide
//! is a wiring bug and panics loudly rather than silently mistiming.

use vlt_exec::{AddrArena, ExecError};
use vlt_mem::{ClusterNet, MemSystem};
use vlt_scalar::{FetchSource, InOrderCore, OooCore, VectorSink};

use crate::system::SimObserver;
use crate::vu::VectorUnit;

/// Identity of a registered component — an index into the [`crate::System`]
/// unit storage, used by the driver to borrow the unit and build its
/// [`TickCtx`] without holding the whole machine mutably.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompId {
    /// Out-of-order scalar unit `i`.
    Core(usize),
    /// In-order lane core `i` (VLT scalar-thread mode).
    Lane(usize),
    /// Vector unit of lane cluster `i`.
    Vu(usize),
    /// The inter-cluster network (multi-cluster machines only).
    Net,
    /// The memory hierarchy (passive; participates in the skip horizon).
    Mem,
}

/// Per-call capabilities handed to a [`Component`]. Fields a component does
/// not use are `None`/default; a component unwraps what it requires.
pub struct TickCtx<'a> {
    /// The shared memory hierarchy.
    pub mem: Option<&'a mut MemSystem>,
    /// The inter-cluster network (multi-cluster machines only).
    pub net: Option<&'a mut ClusterNet>,
    /// The instruction stream (front-end components only).
    pub fetch: Option<&'a mut dyn FetchSource>,
    /// Where vector work is dispatched (scalar units only).
    pub sink: Option<&'a mut dyn VectorSink>,
    /// Resolved vector element addresses (vector units only).
    pub arena: Option<&'a AddrArena>,
    /// Bitmask of software threads parked at a barrier.
    pub parked: u64,
    /// Software thread count.
    pub nthreads: usize,
    /// A repartition is pending machine-wide (vector dispatch is refused
    /// and vector-unit idling attributes as `Drain`).
    pub draining: bool,
}

impl<'a> TickCtx<'a> {
    /// A context carrying only the cheap scalar state; the driver fills in
    /// the borrowed capabilities each component class needs.
    pub fn new(parked: u64, nthreads: usize, draining: bool) -> Self {
        TickCtx {
            mem: None,
            net: None,
            fetch: None,
            sink: None,
            arena: None,
            parked,
            nthreads,
            draining,
        }
    }
}

/// One timed unit under the system driver. Defaults make a passive,
/// always-done component (the memory system and network override only
/// `next_event` and, for the L2, the event hooks), so adding a unit type
/// means implementing exactly the concerns it has.
pub trait Component {
    /// Advance one cycle. Passive components (whose state only changes
    /// inside other components' accesses) keep the no-op default.
    fn tick(&mut self, _now: u64, _ctx: &mut TickCtx<'_>) -> Result<(), ExecError> {
        Ok(())
    }

    /// Earliest cycle `>= from` at which this component can change state;
    /// `None` when it is fully blocked on another component. `Some(t)` with
    /// `t <= from` means "cannot skip at all". Passive components answer
    /// advisorily (always `> from`): their answer can only shorten a skip,
    /// never veto one.
    fn next_event(&self, from: u64, src: &dyn FetchSource) -> Option<u64>;

    /// Monotone progress digest contribution; the driver sums these (plus
    /// the functional simulator's counters) into the cheap did-anything-
    /// happen gate for the horizon scan.
    fn fingerprint(&self) -> u64 {
        0
    }

    /// Bulk-credit a skipped `[from, from + span)` quiescent window to this
    /// component's per-cycle counters, exactly as `span` ticks would have.
    fn credit_idle_span(&mut self, _from: u64, _span: u64, _ctx: &mut TickCtx<'_>) {}

    /// This component has drained (run-termination vote). Components with
    /// no notion of pending work stay `true`.
    fn done(&self) -> bool {
        true
    }

    /// Enable/disable observer event recording for this run (`vec` =
    /// vector-issue events, `mem` = L2 bank events). Off by default so the
    /// plain run path pays nothing.
    fn set_event_logging(&mut self, _vec: bool, _mem: bool) {}

    /// Deliver and clear events recorded since the last drain. Only the
    /// `on_vec_issue` / `on_mem_access` observer hooks may be invoked here
    /// (the driver wraps the caller's observer in a shim forwarding exactly
    /// those two).
    fn drain_events(&mut self, _now: u64, _obs: &mut dyn SimObserver) {}
}

impl Component for OooCore {
    fn tick(&mut self, now: u64, ctx: &mut TickCtx<'_>) -> Result<(), ExecError> {
        let mem = ctx.mem.as_deref_mut().expect("scalar unit tick needs the memory system");
        let fetch = ctx.fetch.as_deref_mut().expect("scalar unit tick needs the fetch source");
        let sink = ctx.sink.as_deref_mut().expect("scalar unit tick needs a vector sink");
        self.tick(now, mem, fetch, sink)
    }

    fn next_event(&self, from: u64, src: &dyn FetchSource) -> Option<u64> {
        self.next_event(from, src)
    }

    fn fingerprint(&self) -> u64 {
        self.stats.committed + self.stats.issued + self.stats.vec_dispatched
    }

    fn credit_idle_span(&mut self, from: u64, span: u64, _ctx: &mut TickCtx<'_>) {
        self.credit_idle_span(from, span);
    }

    fn done(&self) -> bool {
        self.done()
    }
}

impl Component for InOrderCore {
    fn tick(&mut self, now: u64, ctx: &mut TickCtx<'_>) -> Result<(), ExecError> {
        let mem = ctx.mem.as_deref_mut().expect("lane core tick needs the memory system");
        let fetch = ctx.fetch.as_deref_mut().expect("lane core tick needs the fetch source");
        self.tick(now, mem, fetch)
    }

    fn next_event(&self, from: u64, src: &dyn FetchSource) -> Option<u64> {
        self.next_event(from, src)
    }

    fn fingerprint(&self) -> u64 {
        self.stats.committed
    }

    fn credit_idle_span(&mut self, from: u64, span: u64, ctx: &mut TickCtx<'_>) {
        let parked = ctx.fetch.as_deref().is_some_and(|f| f.parked(self.thread()));
        self.credit_idle_span(from, span, parked);
    }

    fn done(&self) -> bool {
        self.done()
    }
}

impl Component for VectorUnit {
    fn tick(&mut self, now: u64, ctx: &mut TickCtx<'_>) -> Result<(), ExecError> {
        let mem = ctx.mem.as_deref_mut().expect("vector unit tick needs the memory system");
        let arena = ctx.arena.expect("vector unit tick needs the address arena");
        self.tick(now, mem, ctx.net.as_deref_mut(), arena, ctx.parked, ctx.nthreads, ctx.draining);
        Ok(())
    }

    fn next_event(&self, from: u64, _src: &dyn FetchSource) -> Option<u64> {
        self.next_event(from)
    }

    fn fingerprint(&self) -> u64 {
        self.issued
    }

    fn credit_idle_span(&mut self, from: u64, span: u64, ctx: &mut TickCtx<'_>) {
        self.account_idle_span(from, span, ctx.parked, ctx.nthreads, ctx.draining);
    }

    fn set_event_logging(&mut self, vec: bool, _mem: bool) {
        self.set_issue_logging(vec);
    }

    fn drain_events(&mut self, now: u64, obs: &mut dyn SimObserver) {
        for i in 0..self.issue_log().len() {
            let e = self.issue_log()[i];
            obs.on_vec_issue(now, &e);
        }
        self.clear_issue_log();
    }
}

impl Component for MemSystem {
    fn next_event(&self, from: u64, _src: &dyn FetchSource) -> Option<u64> {
        self.next_event(from) // advisory: always > from
    }

    fn set_event_logging(&mut self, _vec: bool, mem: bool) {
        self.l2.set_recording(mem);
    }

    fn drain_events(&mut self, now: u64, obs: &mut dyn SimObserver) {
        for i in 0..self.l2.recorded_events().len() {
            let e = self.l2.recorded_events()[i];
            obs.on_mem_access(now, &e);
        }
        self.l2.clear_events();
    }
}

impl Component for ClusterNet {
    fn next_event(&self, from: u64, _src: &dyn FetchSource) -> Option<u64> {
        self.next_event(from) // advisory: always > from
    }
}
