//! Simulation results and errors.

use std::collections::BTreeMap;

use vlt_exec::ExecError;
use vlt_mem::MemStats;
use vlt_scalar::inorder::LaneStats;
use vlt_scalar::{CoreStats, StallBreakdown};

/// Datapath utilization in the Figure-4 taxonomy, in datapath-cycles.
/// The invariant `busy + partly_idle + stalled + all_idle ==
/// 3 * lanes * cycles` holds for any run with a vector unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Utilization {
    /// Datapath executing an element operation.
    pub busy: u64,
    /// Datapath idle inside an occupied functional unit (vector length
    /// shorter than the lane partition).
    pub partly_idle: u64,
    /// Functional unit idle while vector instructions were pending
    /// (dependences or insufficient issue bandwidth).
    pub stalled: u64,
    /// No vector instructions in flight at all.
    pub all_idle: u64,
}

impl Utilization {
    /// Total datapath-cycles accounted.
    pub fn total(&self) -> u64 {
        self.busy + self.partly_idle + self.stalled + self.all_idle
    }

    /// Fraction of datapath-cycles doing element work.
    pub fn busy_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.busy as f64 / t as f64
        }
    }
}

/// Everything a full-system run reports.
///
/// `PartialEq` is intentional: the observer refactor is validated by
/// asserting byte-identical results across driver entry points.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Wall-clock cycles until every thread drained.
    pub cycles: u64,
    /// Instructions committed, summed over scalar units and lane cores.
    pub committed: u64,
    /// Vector-datapath utilization (zeros without a vector unit).
    pub utilization: Utilization,
    /// Per-scalar-unit statistics.
    pub cores: Vec<CoreStats>,
    /// Per-lane-core statistics (empty outside VLT scalar-thread mode).
    pub lanes: Vec<LaneStats>,
    /// Vector-unit stall-cause breakdown, in datapath-cycles: attributes
    /// `utilization.stalled + utilization.all_idle` by cause (zeros without
    /// a vector unit).
    pub vu_stalls: StallBreakdown,
    /// Memory-hierarchy statistics.
    pub mem: MemStats,
    /// Cycles attributed to each `region` marker (region 0 = unannotated).
    pub region_cycles: BTreeMap<u32, u64>,
    /// Per-physical-lane busy datapath-cycles on the vector unit's
    /// arithmetic pipes, concatenated across clusters (empty without a
    /// vector unit). Sums to `utilization.busy`.
    pub lane_busy: Vec<u64>,
    /// Per-physical-lane partly-idle datapath-cycles (occupied pipe, lane
    /// masked off by a short VL). Sums to `utilization.partly_idle`.
    pub lane_partly: Vec<u64>,
    /// `vltcfg` requests whose thread count was invalid for this
    /// configuration and got clamped to `vlt_threads`. Nonzero means the
    /// workload was built for a different machine shape than it ran on.
    pub clamped_repartitions: u64,
}

impl SimResult {
    /// Fraction of cycles spent inside regions `>= 1` — the paper's
    /// "% opportunity" (Table 4) when workloads mark their VLT-eligible
    /// parallel phases with `region 1`.
    pub fn opportunity(&self) -> f64 {
        let total: u64 = self.region_cycles.values().sum();
        if total == 0 {
            return 0.0;
        }
        let eligible: u64 =
            self.region_cycles.iter().filter(|(r, _)| **r >= 1).map(|(_, c)| *c).sum();
        100.0 * eligible as f64 / total as f64
    }

    /// Machine-wide stall-cause composition: the vector unit's breakdown
    /// merged with every scalar unit's and lane core's. Contributors use
    /// different units (datapath-cycles vs core cycles) — a profile shape,
    /// not a single count.
    pub fn stalls(&self) -> StallBreakdown {
        let mut b = self.vu_stalls;
        for c in &self.cores {
            b.merge(&c.stalls);
        }
        for l in &self.lanes {
            b.merge(&l.stalls);
        }
        b
    }

    /// Check the stall-cause conservation invariants: per unit, the sum of
    /// attributed cycles equals the unit's untagged stall/idle counters
    /// (the vector unit's Figure-4 `stalled + all_idle`, each scalar
    /// unit's `fetch_stall_cycles`, each lane core's `stall_cycles`).
    /// Returns a description of the first violation, if any.
    pub fn check_stall_conservation(&self) -> Result<(), String> {
        let vu_lost = self.utilization.stalled + self.utilization.all_idle;
        if self.vu_stalls.total() != vu_lost {
            return Err(format!(
                "vector unit: attributed {} datapath-cycles, stalled+all_idle is {vu_lost}",
                self.vu_stalls.total(),
            ));
        }
        for (i, c) in self.cores.iter().enumerate() {
            if c.stalls.total() != c.fetch_stall_cycles {
                return Err(format!(
                    "scalar unit {i}: attributed {} cycles, fetch_stall_cycles is {}",
                    c.stalls.total(),
                    c.fetch_stall_cycles,
                ));
            }
        }
        for (i, l) in self.lanes.iter().enumerate() {
            if l.stalls.total() != l.stall_cycles {
                return Err(format!(
                    "lane core {i}: attributed {} cycles, stall_cycles is {}",
                    l.stalls.total(),
                    l.stall_cycles,
                ));
            }
        }
        self.check_occupancy_conservation()
    }

    /// Check the lane-occupancy conservation invariant: the per-lane busy
    /// and partly-idle counters decompose the Figure-4 aggregate exactly —
    /// their sums equal `utilization.busy` and `utilization.partly_idle`.
    pub fn check_occupancy_conservation(&self) -> Result<(), String> {
        let busy: u64 = self.lane_busy.iter().sum();
        if busy != self.utilization.busy {
            return Err(format!(
                "lane occupancy: per-lane busy sums to {busy}, aggregate busy is {}",
                self.utilization.busy,
            ));
        }
        let partly: u64 = self.lane_partly.iter().sum();
        if partly != self.utilization.partly_idle {
            return Err(format!(
                "lane occupancy: per-lane partly-idle sums to {partly}, aggregate is {}",
                self.utilization.partly_idle,
            ));
        }
        Ok(())
    }
}

/// Full-system simulation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The functional layer faulted (wild PC, bad `vltcfg`, ...).
    Exec(ExecError),
    /// The cycle budget ran out before all threads drained.
    Timeout {
        /// Cycles executed before giving up.
        cycles: u64,
    },
}

impl From<ExecError> for SimError {
    fn from(e: ExecError) -> Self {
        SimError::Exec(e)
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Exec(e) => write!(f, "functional fault: {e}"),
            SimError::Timeout { cycles } => write!(f, "timed out after {cycles} cycles"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_fractions() {
        let u = Utilization { busy: 30, partly_idle: 10, stalled: 40, all_idle: 20 };
        assert_eq!(u.total(), 100);
        assert!((u.busy_fraction() - 0.3).abs() < 1e-12);
        assert_eq!(Utilization::default().busy_fraction(), 0.0);
    }

    #[test]
    fn opportunity_counts_marked_regions() {
        let mut r = SimResult {
            cycles: 100,
            committed: 0,
            utilization: Utilization::default(),
            cores: vec![],
            lanes: vec![],
            vu_stalls: StallBreakdown::default(),
            mem: MemStats::default(),
            region_cycles: BTreeMap::new(),
            lane_busy: vec![],
            lane_partly: vec![],
            clamped_repartitions: 0,
        };
        r.region_cycles.insert(0, 25);
        r.region_cycles.insert(1, 50);
        r.region_cycles.insert(2, 25);
        assert!((r.opportunity() - 75.0).abs() < 1e-12);
    }
}
