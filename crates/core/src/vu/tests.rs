//! Vector-unit timing tests (unit level: hand-built dispatches).

use vlt_exec::{AddrArena, AddrRange, DecodedProgram};
use vlt_isa::asm::assemble;
use vlt_isa::OpClass;
use vlt_mem::{MemConfig, MemSystem};
use vlt_scalar::{VecDispatch, VectorSink};

use crate::vu::{VectorUnit, VuConfig};

/// A program whose instructions stand in for each class; `disp` picks the
/// matching static index so opcode-dependent costs (divide vs pipelined)
/// are exercised.
const CLASS_PROG: &str = "\
vfadd.vv v1, v2, v3
vfmul.vv v1, v2, v3
vfdiv.vv v1, v2, v3
vld v1, x1
vst v1, x1
vmset
halt
";

fn sidx_for(class: OpClass) -> u32 {
    match class {
        OpClass::VAdd => 0,
        OpClass::VMul => 1,
        OpClass::VDiv => 2,
        OpClass::VLoad => 3,
        OpClass::VStore => 4,
        _ => 5,
    }
}

fn unit(lanes: usize, threads: usize) -> VectorUnit {
    let prog = DecodedProgram::new(&assemble(CLASS_PROG).unwrap());
    VectorUnit::new(VuConfig::base(lanes).with_threads(threads), prog)
}

fn mem() -> MemSystem {
    MemSystem::new(MemConfig::default(), 1, 8)
}

/// A standalone address arena for hand-built dispatches (4 threads covers
/// every partitioning these tests use).
fn arena() -> AddrArena {
    AddrArena::new(4)
}

fn disp(vthread: usize, seq: u64, class: OpClass, vl: u16) -> VecDispatch {
    VecDispatch {
        vthread,
        sidx: sidx_for(class),
        vl,
        class,
        addrs: AddrRange::EMPTY,
        seq,
        deps: vec![],
        scalar_deps: vec![],
        ready_base: 0,
    }
}

/// Drive the VU until `token` completes; returns the completion cycle.
fn run_until_done(
    vu: &mut VectorUnit,
    mem: &mut MemSystem,
    arena: &AddrArena,
    token: vlt_scalar::VecToken,
    start: u64,
) -> u64 {
    for now in start..start + 10_000 {
        vu.tick(now, mem, None, arena, 0, 1, false);
        if let Some(t) = vu.poll(token) {
            return t;
        }
    }
    panic!("vector instruction never completed");
}

#[test]
fn arith_occupancy_scales_with_vl_over_lanes() {
    // VL 64 on 8 lanes: 8 occupancy cycles (+4 startup for the add unit).
    let mut vu = unit(8, 1);
    let mut m = mem();
    let ar = arena();
    let tok = vu.try_dispatch(disp(0, 0, OpClass::VAdd, 64), 0).unwrap();
    let done = run_until_done(&mut vu, &mut m, &ar, tok, 0);
    // Issues at cycle 1 (dispatched at 0): 1 + 2 (startup) + 8 = 11.
    assert_eq!(done, 11);

    // Same instruction on 1 lane: 64 occupancy cycles.
    let mut vu1 = unit(1, 1);
    let tok = vu1.try_dispatch(disp(0, 0, OpClass::VAdd, 64), 0).unwrap();
    let done1 = run_until_done(&mut vu1, &mut m, &ar, tok, 0);
    assert_eq!(done1, 1 + 2 + 64);
}

#[test]
fn short_vectors_waste_lanes() {
    // VL 4 on 8 lanes still costs one occupancy cycle, wasting 4 datapaths.
    let mut vu = unit(8, 1);
    let mut m = mem();
    let ar = arena();
    let tok = vu.try_dispatch(disp(0, 0, OpClass::VAdd, 4), 0).unwrap();
    run_until_done(&mut vu, &mut m, &ar, tok, 0);
    assert!(vu.util.partly_idle >= 4, "partial idling not recorded: {:?}", vu.util);
}

#[test]
fn division_is_expensive() {
    let mut vu = unit(8, 1);
    let mut m = mem();
    let ar = arena();
    let tok = vu.try_dispatch(disp(0, 0, OpClass::VDiv, 64), 0).unwrap();
    let done = run_until_done(&mut vu, &mut m, &ar, tok, 0);
    // 8 groups x 4 cycles each + startup 6 + issue at 1.
    assert_eq!(done, 1 + 6 + 32);
}

#[test]
fn independent_ops_use_different_fus_in_parallel() {
    let mut vu = unit(8, 1);
    let mut m = mem();
    let ar = arena();
    let t_add = vu.try_dispatch(disp(0, 0, OpClass::VAdd, 64), 0).unwrap();
    let t_mul = vu.try_dispatch(disp(0, 1, OpClass::VMul, 64), 0).unwrap();
    // Both issue at cycle 1 (2-way issue, different FUs).
    for now in 0..100 {
        vu.tick(now, &mut m, None, &ar, 0, 1, false);
    }
    let a = vu.poll(t_add).unwrap();
    let b = vu.poll(t_mul).unwrap();
    assert_eq!(a, 1 + 2 + 8);
    assert_eq!(b, 1 + 3 + 8);
}

#[test]
fn same_fu_ops_serialize() {
    let mut vu = unit(8, 1);
    let mut m = mem();
    let ar = arena();
    let t1 = vu.try_dispatch(disp(0, 0, OpClass::VAdd, 64), 0).unwrap();
    let t2 = vu.try_dispatch(disp(0, 1, OpClass::VAdd, 64), 0).unwrap();
    for now in 0..100 {
        vu.tick(now, &mut m, None, &ar, 0, 1, false);
    }
    let a = vu.poll(t1).unwrap();
    let b = vu.poll(t2).unwrap();
    // Second add waits for the FU: issues at 1+8=9.
    assert_eq!(a, 11);
    assert_eq!(b, 9 + 2 + 8);
}

#[test]
fn dependences_block_issue_until_resolved() {
    let mut vu = unit(8, 1);
    let mut m = mem();
    let ar = arena();
    let mut d = disp(0, 1, OpClass::VAdd, 64);
    d.deps = vec![0]; // producer seq 0, not yet resolved
    let tok = vu.try_dispatch(d, 0).unwrap();
    for now in 0..50 {
        vu.tick(now, &mut m, None, &ar, 0, 1, false);
    }
    assert_eq!(vu.poll(tok), None, "must wait for the producer");
    vu.resolve(0, 0, 60);
    let done = run_until_done(&mut vu, &mut m, &ar, tok, 50);
    assert!(done >= 60 + 2 + 8, "issue cannot precede the producer: {done}");
}

#[test]
fn window_capacity_limits_dispatch() {
    let mut vu = unit(8, 1); // window 32
    for i in 0..32 {
        assert!(vu.try_dispatch(disp(0, i, OpClass::VAdd, 64), 0).is_some());
    }
    assert!(vu.try_dispatch(disp(0, 32, OpClass::VAdd, 64), 0).is_none());
}

#[test]
fn partitions_split_window_and_lanes() {
    let mut vu = unit(8, 2); // 2 threads: 16-entry windows, 4 lanes each
    for i in 0..16 {
        assert!(vu.try_dispatch(disp(0, i, OpClass::VAdd, 32), 0).is_some());
    }
    assert!(vu.try_dispatch(disp(0, 16, OpClass::VAdd, 32), 0).is_none());
    // The other partition is unaffected.
    assert!(vu.try_dispatch(disp(1, 0, OpClass::VAdd, 32), 0).is_some());
}

#[test]
fn two_partitions_execute_concurrently() {
    // One VL-32 add per thread on a 2-way partition (4 lanes each):
    // both complete at the same cycle — the whole point of VLT.
    let mut vu = unit(8, 2);
    let mut m = mem();
    let ar = arena();
    let t0 = vu.try_dispatch(disp(0, 0, OpClass::VAdd, 32), 0).unwrap();
    let t1 = vu.try_dispatch(disp(1, 0, OpClass::VAdd, 32), 0).unwrap();
    for now in 0..100 {
        vu.tick(now, &mut m, None, &ar, 0, 1, false);
    }
    let a = vu.poll(t0).unwrap();
    let b = vu.poll(t1).unwrap();
    assert_eq!(a, 1 + 2 + 8); // 32 elems / 4 lanes = 8 cycles
    assert_eq!(a, b);
}

#[test]
fn vector_loads_contend_for_banks() {
    let mut vu = unit(8, 1);
    let mut m = mem();
    let mut ar = arena();
    // Unit-stride: 64 addresses over all banks.
    let unit_addrs: Vec<u64> = (0..64u64).map(|e| 0x10000 + 8 * e).collect();
    let mut d = disp(0, 0, OpClass::VLoad, 64);
    d.addrs = ar.alloc(0, &unit_addrs);
    let t_unit = vu.try_dispatch(d, 0).unwrap();
    let unit_done = run_until_done(&mut vu, &mut m, &ar, t_unit, 0);

    // Same-bank stride: every address hits bank 0.
    let mut vu2 = unit(8, 1);
    let conf_addrs: Vec<u64> = (0..64u64).map(|e| 0x40000 + 8 * 16 * e).collect();
    let mut d2 = disp(0, 0, OpClass::VLoad, 64);
    d2.addrs = ar.alloc(0, &conf_addrs);
    let t_conf = vu2.try_dispatch(d2, 0).unwrap();
    let conf_done = run_until_done(&mut vu2, &mut m, &ar, t_conf, 0);

    assert!(
        conf_done > unit_done + 32,
        "bank conflicts must slow the strided access: {conf_done} vs {unit_done}"
    );
}

#[test]
fn mask_ops_bypass_the_lanes() {
    let mut vu = unit(8, 1);
    let mut m = mem();
    let ar = arena();
    let tok = vu.try_dispatch(disp(0, 0, OpClass::VMask, 8), 0).unwrap();
    let done = run_until_done(&mut vu, &mut m, &ar, tok, 0);
    assert_eq!(done, 2); // issue at 1, done at 2
}

#[test]
fn utilization_invariant_holds() {
    let mut vu = unit(8, 1);
    let mut m = mem();
    let ar = arena();
    let tok = vu.try_dispatch(disp(0, 0, OpClass::VAdd, 20), 0).unwrap();
    let cycles = 50u64;
    for now in 0..cycles {
        vu.tick(now, &mut m, None, &ar, 0, 1, false);
    }
    assert!(vu.poll(tok).is_some());
    let u = vu.util;
    assert_eq!(u.total(), 3 * 8 * cycles, "3 datapath classes x 8 lanes x cycles: {u:?}");
    assert_eq!(u.busy, 20, "exactly vl element ops on the add unit");
    // VL 20 on 8 lanes: 3 occupancy cycles, 24 lane-slots, 4 partly idle.
    assert_eq!(u.partly_idle, 4);
}

#[test]
fn issue_bandwidth_is_partitioned_for_four_threads() {
    // 4 threads share 2 issue slots: 4 simultaneous VMask ops need 2 cycles
    // of issue, not 1.
    let mut vu = unit(8, 4);
    let mut m = mem();
    let ar = arena();
    let toks: Vec<_> =
        (0..4).map(|t| vu.try_dispatch(disp(t, 0, OpClass::VMask, 4), 0).unwrap()).collect();
    for now in 0..10 {
        vu.tick(now, &mut m, None, &ar, 0, 1, false);
    }
    let dones: Vec<u64> = toks.into_iter().map(|t| vu.poll(t).unwrap()).collect();
    let earliest = *dones.iter().min().unwrap();
    let latest = *dones.iter().max().unwrap();
    assert!(latest > earliest, "4 threads cannot all issue in one cycle: {dones:?}");
}

#[test]
fn drained_reports_empty_windows() {
    let mut vu = unit(8, 1);
    let mut m = mem();
    let ar = arena();
    assert!(vu.drained());
    let tok = vu.try_dispatch(disp(0, 0, OpClass::VAdd, 8), 0).unwrap();
    assert!(!vu.drained());
    run_until_done(&mut vu, &mut m, &ar, tok, 0);
    vu.tick(10_001, &mut m, None, &ar, 0, 1, false); // retire the reported entry
    assert!(vu.drained());
}
