//! The full-system timing simulator: scalar units + vector unit (or lane
//! cores) + memory hierarchy, driven cycle by cycle over the functional
//! simulator's instruction streams.
//!
//! There is exactly **one** driver loop, [`System::run_observed`]. Every
//! public entry point (`run`, `run_sampled`) is a thin wrapper that plugs a
//! different [`SimObserver`] into it, so sampling, progress heartbeats, and
//! any future instrumentation cannot drift from the plain run path.
//!
//! Time advances event-driven by default: when a cycle makes no progress,
//! the driver queries every unit's `next_event` and jumps straight to the
//! earliest future one, bulk-crediting the skipped span — with results
//! byte-identical to the naive cycle-by-cycle oracle, which stays
//! selectable via [`DriverMode::CycleByCycle`].

use std::collections::BTreeMap;
use std::sync::Arc;

use vlt_exec::{DecodedProgram, DynKind, ExecError, FuncSim, Step};
use vlt_isa::{Op, Program};
use vlt_mem::{BankEvent, MemSystem};
use vlt_scalar::{
    FetchResult, FetchSource, InOrderCore, LaneCoreConfig, NullVectorSink, OooCore, StallBreakdown,
};

use crate::config::SystemConfig;
use crate::result::{SimError, SimResult, Utilization};
use crate::vu::{VecIssue, VectorUnit, VuConfig};

/// Wraps the functional simulator as a [`FetchSource`], tracking the current
/// `region` marker (for % opportunity attribution) and any `vltcfg` observed
/// this cycle.
struct TrackedSource {
    sim: FuncSim,
    prog: Arc<DecodedProgram>,
    cur_region: u32,
    /// A `vltcfg` observed this cycle: requested lane-partition count.
    vlt_request: Option<u8>,
}

impl FetchSource for TrackedSource {
    fn fetch(&mut self, thread: usize) -> Result<FetchResult, ExecError> {
        Ok(match self.sim.step_thread(thread)? {
            Step::Inst(d) => {
                if let DynKind::VltCfg { threads } = d.kind {
                    self.vlt_request = Some(threads);
                }
                if thread == 0 {
                    let si = self.prog.get(d.sidx as usize);
                    if si.inst.op == Op::Region {
                        self.cur_region = si.inst.imm as u32;
                    }
                }
                FetchResult::Inst(d)
            }
            Step::AtBarrier => FetchResult::AtBarrier,
            Step::Halted => FetchResult::Halted,
        })
    }

    fn parked(&self, thread: usize) -> bool {
        self.sim.thread_parked(thread)
    }
}

/// How [`System::run_observed`] advances simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DriverMode {
    /// Skip provably-quiescent spans: query every unit's `next_event`,
    /// jump straight to the earliest one, and credit the skipped cycles in
    /// bulk. Produces byte-identical [`SimResult`]s (and sample streams) to
    /// [`DriverMode::CycleByCycle`]; `tests/driver_props.rs` enforces it.
    #[default]
    EventDriven,
    /// Tick every unit on every cycle — the naive oracle the event-driven
    /// fast path is validated against.
    CycleByCycle,
}

/// A `vltcfg` repartition observed by the driver, after validation against
/// the machine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepartitionEvent {
    /// Lane-partition count the instruction asked for.
    pub requested: u8,
    /// Partition count actually handed to the vector unit.
    pub applied: usize,
    /// Whether the request was invalid for this machine and got clamped.
    pub clamped: bool,
}

/// Events one call to `System::step` produced, reported back to the driver
/// so observer hooks fire outside the mutable-borrow of the machine.
#[derive(Debug, Default, Clone, Copy)]
struct CycleEvents {
    /// Cumulative barrier-release count, if a rendezvous completed.
    barrier_releases: Option<u64>,
    /// A `vltcfg` reached the vector unit this cycle.
    repartition: Option<RepartitionEvent>,
    /// Bitmask of software threads parked at a barrier after this cycle.
    parked: u64,
}

/// Read-only view of the machine handed to [`SimObserver::on_cycle`].
/// Aggregates (`committed`, `utilization`) are computed lazily so a no-op
/// observer pays nothing per cycle.
pub struct CycleView<'a> {
    sys: &'a System,
}

impl CycleView<'_> {
    /// Cumulative committed instructions across scalar units and lane cores.
    pub fn committed(&self) -> u64 {
        self.sys.cores.iter().map(|c| c.stats.committed).sum::<u64>()
            + self.sys.lane_cores.iter().map(|c| c.stats.committed).sum::<u64>()
    }

    /// Cumulative datapath utilization (zeros without a vector unit).
    pub fn utilization(&self) -> Utilization {
        self.sys.vu.as_ref().map(|v| v.util).unwrap_or_default()
    }

    /// Region marker active on thread 0.
    pub fn region(&self) -> u32 {
        self.sys.src.cur_region
    }

    /// Cumulative machine-wide stall-cause breakdown: the vector unit's
    /// datapath-cycles merged with every scalar unit's and lane core's
    /// stall cycles. Units differ across contributors (datapath-cycles vs
    /// core cycles), so treat this as a composition profile, not a single
    /// count; per-unit breakdowns are on the final [`SimResult`].
    pub fn stalls(&self) -> StallBreakdown {
        let mut b = self.sys.vu.as_ref().map(|v| v.stalls).unwrap_or_default();
        for c in &self.sys.cores {
            b.merge(&c.stats.stalls);
        }
        for l in &self.sys.lane_cores {
            b.merge(&l.stats.stalls);
        }
        b
    }
}

/// Hooks into the driver loop. All methods default to no-ops, so an
/// implementation only pays for what it overrides.
///
/// Ordering contract, per simulated cycle:
/// 1. `on_cycle(now, view)` — *before* the machine advances, so a snapshot
///    at cycle `n` sees the state entering `n` (this is what keeps
///    `run_sampled` byte-compatible with the historical implementation);
/// 2. the machine steps;
/// 3. `on_barrier` / `on_repartition` for events that cycle produced.
///
/// `on_finish` fires once, after the machine drains, with the final result.
///
/// Under the default [`DriverMode::EventDriven`] driver, cycles inside a
/// provably-quiescent span are *not* simulated, so `on_cycle` does not fire
/// for them. An observer that must see specific cycles declares them via
/// [`SimObserver::next_deadline`]; the driver never skips past a deadline,
/// and the machine state at a deadline cycle is identical to what the
/// cycle-by-cycle driver would present (nothing happens in a skipped span
/// by construction). Barriers and repartitions are machine activity, so
/// `on_barrier` / `on_repartition` are never elided.
pub trait SimObserver {
    /// Start of a simulated cycle, before any unit ticks.
    fn on_cycle(&mut self, _now: u64, _view: &CycleView<'_>) {}
    /// The next cycle (`>= now`) at which this observer needs `on_cycle` to
    /// fire even if the machine is idle; the event-driven driver caps every
    /// skip at it. `Some(now)` forbids skipping entirely (the observer sees
    /// every cycle); `None` (the default) lets the driver skip freely.
    fn next_deadline(&self, _now: u64) -> Option<u64> {
        None
    }
    /// A barrier rendezvous completed; `releases` is the cumulative count.
    fn on_barrier(&mut self, _now: u64, _releases: u64) {}
    /// A `vltcfg` was requested (possibly clamped) of the vector unit; the
    /// unit drains before applying it (see
    /// [`SimObserver::on_repartition_applied`]).
    fn on_repartition(&mut self, _now: u64, _ev: &RepartitionEvent) {}
    /// A requested repartition finished draining and took effect this
    /// cycle; `drain_latency` is the cycles it waited for the vector unit
    /// to drain.
    fn on_repartition_applied(&mut self, _now: u64, _drain_latency: u64) {}
    /// Thread 0 entered a new region (the `region` marker changed). Fires
    /// at the region boundary with the machine state entering the new
    /// region, so cumulative counters snapshot per-region deltas exactly.
    fn on_region(&mut self, _now: u64, _region: u32, _view: &CycleView<'_>) {}
    /// Software thread `thread` parked at a barrier (`parked == true`) or
    /// resumed from one (`parked == false`). Fires on transitions only.
    fn on_park(&mut self, _now: u64, _thread: usize, _parked: bool) {}
    /// A vector instruction issued to a functional unit. Only delivered
    /// when [`SimObserver::wants_vec_events`] returned true at run start.
    fn on_vec_issue(&mut self, _now: u64, _ev: &VecIssue) {}
    /// Opt-in for [`SimObserver::on_vec_issue`] delivery. Checked once per
    /// run; event logging in the vector unit is off otherwise so the plain
    /// run path pays nothing.
    fn wants_vec_events(&self) -> bool {
        false
    }
    /// An L2 bank serviced an access. Only delivered when
    /// [`SimObserver::wants_mem_events`] returned true at run start.
    fn on_mem_access(&mut self, _now: u64, _ev: &BankEvent) {}
    /// Opt-in for [`SimObserver::on_mem_access`] delivery. Checked once per
    /// run; the L2 records no events otherwise.
    fn wants_mem_events(&self) -> bool {
        false
    }
    /// The run completed; `result` is what the caller will receive.
    fn on_finish(&mut self, _result: &SimResult) {}
}

/// The do-nothing observer; `System::run` is `run_observed` with this.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl SimObserver for NullObserver {}

/// A point-in-time snapshot emitted by [`System::run_sampled`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Cycle at which the snapshot was taken.
    pub cycle: u64,
    /// Cumulative committed instructions.
    pub committed: u64,
    /// Cumulative datapath utilization (Figure-4 categories).
    pub utilization: Utilization,
    /// Region active at the snapshot (thread 0's marker).
    pub region: u32,
}

/// Records a [`Sample`] every `interval` cycles — the raw material for
/// utilization-over-time plots and phase analyses.
#[derive(Debug)]
pub struct SamplingObserver {
    interval: u64,
    next: u64,
    samples: Vec<Sample>,
}

impl SamplingObserver {
    /// Sample every `interval` cycles, starting at cycle 0.
    pub fn new(interval: u64) -> Self {
        assert!(interval > 0);
        SamplingObserver { interval, next: 0, samples: Vec::new() }
    }

    /// The samples collected so far.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Consume the observer, yielding the collected samples.
    pub fn into_samples(self) -> Vec<Sample> {
        self.samples
    }
}

impl SimObserver for SamplingObserver {
    fn on_cycle(&mut self, now: u64, view: &CycleView<'_>) {
        if now >= self.next {
            self.samples.push(Sample {
                cycle: now,
                committed: view.committed(),
                utilization: view.utilization(),
                region: view.region(),
            });
            self.next += self.interval;
        }
    }

    fn next_deadline(&self, _now: u64) -> Option<u64> {
        // Never skip past a sample boundary: samples land on exactly the
        // same cycles (with the same values) as under the naive driver.
        Some(self.next)
    }
}

/// Heartbeat for long runs under a cycle budget: prints progress to stderr
/// every `every` cycles, and warns when a `vltcfg` had to be clamped.
#[derive(Debug)]
pub struct ProgressObserver {
    every: u64,
    budget: u64,
    next: u64,
}

impl ProgressObserver {
    /// Report every `every` cycles against a `budget`-cycle allowance.
    pub fn new(every: u64, budget: u64) -> Self {
        assert!(every > 0);
        // Skip the cycle-0 heartbeat: nothing has happened yet.
        ProgressObserver { every, budget, next: every }
    }
}

impl SimObserver for ProgressObserver {
    fn on_cycle(&mut self, now: u64, view: &CycleView<'_>) {
        if now >= self.next {
            eprintln!(
                "[vlt] cycle {now}/{} ({:.1}% of budget), {} committed",
                self.budget,
                100.0 * now as f64 / self.budget.max(1) as f64,
                view.committed(),
            );
            self.next += self.every;
        }
    }

    fn next_deadline(&self, _now: u64) -> Option<u64> {
        Some(self.next) // keep heartbeats on their exact cycles
    }

    fn on_repartition(&mut self, now: u64, ev: &RepartitionEvent) {
        if ev.clamped {
            eprintln!(
                "[vlt] cycle {now}: vltcfg {} invalid for this machine, clamped to {}",
                ev.requested, ev.applied,
            );
        }
    }

    fn on_finish(&mut self, result: &SimResult) {
        eprintln!(
            "[vlt] done: {} cycles, {} committed, {} clamped repartition(s)",
            result.cycles, result.committed, result.clamped_repartitions,
        );
    }
}

/// A configured machine ready to run one program.
pub struct System {
    cfg: SystemConfig,
    src: TrackedSource,
    cores: Vec<OooCore>,
    lane_cores: Vec<InOrderCore>,
    vu: Option<VectorUnit>,
    mem: MemSystem,
    /// Software threads loaded into the functional simulator.
    nthreads: usize,
    /// Barrier releases already flushed, against the funcsim's exact count.
    flushed_releases: u64,
    driver: DriverMode,
}

impl System {
    /// Build the machine for `cfg`, loading `prog` with `nthreads` SPMD
    /// threads. Vector-mode configurations require
    /// `nthreads <= cfg.vlt_threads` (one lane partition per thread);
    /// lane-thread mode requires `nthreads <= lanes`.
    pub fn new(cfg: SystemConfig, prog: &Program, nthreads: usize) -> Self {
        assert!(
            nthreads <= cfg.max_threads(),
            "{} threads exceed the {} contexts of {}",
            nthreads,
            cfg.max_threads(),
            cfg.name
        );
        if cfg.has_vu {
            assert!(
                nthreads <= cfg.vlt_threads,
                "{} vector threads need {} lane partitions ({} configured)",
                nthreads,
                nthreads,
                cfg.vlt_threads
            );
        }

        let sim = FuncSim::new(prog, nthreads);
        let decoded = Arc::clone(&sim.prog);
        let mem = MemSystem::new(cfg.mem, cfg.cores.len(), cfg.lanes);

        let mut cores: Vec<OooCore> = cfg
            .cores
            .iter()
            .enumerate()
            .map(|(i, cc)| OooCore::new(*cc, i, Arc::clone(&decoded)))
            .collect();
        let mut lane_cores = Vec::new();

        if cfg.lane_threads {
            // Threads run on the lanes; the SUs only serve I-cache misses.
            for t in 0..nthreads {
                let owner = t * cfg.cores.len() / cfg.lanes.max(1);
                lane_cores.push(InOrderCore::new(
                    LaneCoreConfig::default(),
                    t,
                    owner.min(cfg.cores.len() - 1),
                    t,
                    Arc::clone(&decoded),
                ));
            }
        } else {
            // Bind software thread t to hardware context t (core-major).
            let mut flat = 0usize;
            'outer: for (ci, cc) in cfg.cores.iter().enumerate() {
                for ctx in 0..cc.smt_contexts {
                    if flat >= nthreads {
                        break 'outer;
                    }
                    cores[ci].bind(ctx, flat, flat);
                    flat += 1;
                }
            }
        }

        let vu = if cfg.has_vu {
            let vcfg = VuConfig {
                lanes: cfg.lanes,
                threads: cfg.vlt_threads,
                issue_width: cfg.vcl.issue_width,
                window: cfg.vcl.window,
                chaining: cfg.vcl.chaining,
            };
            Some(VectorUnit::new(vcfg, Arc::clone(&decoded)))
        } else {
            None
        };

        System {
            cfg,
            src: TrackedSource { sim, prog: decoded, cur_region: 0, vlt_request: None },
            cores,
            lane_cores,
            vu,
            mem,
            nthreads,
            flushed_releases: 0,
            driver: DriverMode::default(),
        }
    }

    /// Bitmask of software threads currently parked at a barrier.
    fn parked_mask(&self) -> u64 {
        let mut m = 0u64;
        for t in 0..self.nthreads.min(64) {
            if self.src.sim.thread_parked(t) {
                m |= 1u64 << t;
            }
        }
        m
    }

    /// The configuration this machine was built from.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Select how the driver advances time (default:
    /// [`DriverMode::EventDriven`]). [`DriverMode::CycleByCycle`] is the
    /// naive oracle — kept selectable so tests and benchmarks can compare.
    pub fn set_driver(&mut self, mode: DriverMode) {
        self.driver = mode;
    }

    /// Builder-style [`System::set_driver`].
    pub fn with_driver(mut self, mode: DriverMode) -> Self {
        self.driver = mode;
        self
    }

    /// The driver mode in force.
    pub fn driver_mode(&self) -> DriverMode {
        self.driver
    }

    /// The functional simulator (memory image and architectural state) —
    /// for result verification after a run.
    pub fn funcsim(&self) -> &FuncSim {
        &self.src.sim
    }

    /// Every hardware context has drained.
    fn done(&self) -> bool {
        self.cores.iter().all(|c| c.done()) && self.lane_cores.iter().all(|c| c.done())
    }

    /// Run to completion (all threads halted and pipelines drained).
    pub fn run(&mut self, max_cycles: u64) -> Result<SimResult, SimError> {
        self.run_observed(max_cycles, &mut NullObserver)
    }

    /// Like [`System::run`], but additionally records a [`Sample`] every
    /// `interval` cycles — the raw material for utilization-over-time plots
    /// and phase analyses.
    pub fn run_sampled(
        &mut self,
        max_cycles: u64,
        interval: u64,
    ) -> Result<(SimResult, Vec<Sample>), SimError> {
        let mut obs = SamplingObserver::new(interval);
        let result = self.run_observed(max_cycles, &mut obs)?;
        Ok((result, obs.into_samples()))
    }

    /// The one driver loop: run to completion (all threads halted and
    /// pipelines drained) with `obs` hooked into every simulated cycle.
    ///
    /// Under [`DriverMode::EventDriven`] (the default), whenever a simulated
    /// cycle makes no observable progress the driver asks every unit for its
    /// next event cycle and jumps straight to the earliest one, crediting
    /// the skipped span in bulk to the per-cycle counters (region
    /// attribution, VU utilization, core busy/stall counters). The skip is
    /// sound because a `next_event` answer is never *later* than the unit's
    /// true next state change, so nothing that would have happened in the
    /// span is lost — and results stay byte-identical to
    /// [`DriverMode::CycleByCycle`] (see DESIGN.md §"Time advancement").
    pub fn run_observed<O: SimObserver + ?Sized>(
        &mut self,
        max_cycles: u64,
        obs: &mut O,
    ) -> Result<SimResult, SimError> {
        let mut region_cycles: BTreeMap<u32, u64> = BTreeMap::new();
        // Region time accrues into a (region, count) accumulator flushed on
        // region change, not a per-cycle BTreeMap probe.
        let mut acc_region = self.src.cur_region;
        let mut acc_cycles = 0u64;
        let mut clamped_repartitions = 0u64;
        let mut now = 0u64;
        let skipping = self.driver == DriverMode::EventDriven;
        let mut fingerprint = self.progress_fingerprint();
        // Event delivery is opt-in per run: the producing units record
        // nothing unless this observer asked, so `run` pays nothing.
        let vec_events = obs.wants_vec_events();
        if let Some(v) = &mut self.vu {
            v.set_issue_logging(vec_events);
        }
        let mem_events = obs.wants_mem_events();
        self.mem.l2.set_recording(mem_events);
        // Park transitions are reported by diffing against the previous
        // cycle's mask (threads start running, so the baseline is empty).
        let mut parked_prev = 0u64;
        loop {
            if self.done() {
                break;
            }
            if now >= max_cycles {
                return Err(SimError::Timeout { cycles: now });
            }
            obs.on_cycle(now, &CycleView { sys: self });
            let ev = self.step(now)?;
            if let Some(releases) = ev.barrier_releases {
                obs.on_barrier(now, releases);
            }
            if let Some(rp) = &ev.repartition {
                if rp.clamped {
                    clamped_repartitions += 1;
                }
                obs.on_repartition(now, rp);
            }
            if let Some(v) = &mut self.vu {
                if let Some(latency) = v.take_applied_repartition() {
                    obs.on_repartition_applied(now, latency);
                }
            }
            if ev.parked != parked_prev {
                let diff = ev.parked ^ parked_prev;
                for t in 0..self.nthreads.min(64) {
                    if diff & (1u64 << t) != 0 {
                        obs.on_park(now, t, ev.parked & (1u64 << t) != 0);
                    }
                }
                parked_prev = ev.parked;
            }
            if vec_events {
                if let Some(v) = &self.vu {
                    for i in 0..v.issue_log().len() {
                        let e = v.issue_log()[i];
                        obs.on_vec_issue(now, &e);
                    }
                }
                if let Some(v) = &mut self.vu {
                    v.clear_issue_log();
                }
            }
            if mem_events {
                for i in 0..self.mem.l2.recorded_events().len() {
                    let e = self.mem.l2.recorded_events()[i];
                    obs.on_mem_access(now, &e);
                }
                self.mem.l2.clear_events();
            }
            if self.src.cur_region != acc_region {
                if acc_cycles > 0 {
                    *region_cycles.entry(acc_region).or_insert(0) += acc_cycles;
                }
                acc_region = self.src.cur_region;
                acc_cycles = 0;
                obs.on_region(now, acc_region, &CycleView { sys: self });
            }
            acc_cycles += 1;
            now += 1;
            if skipping {
                let fp = self.progress_fingerprint();
                let quiet = fp == fingerprint;
                fingerprint = fp;
                // Only a cycle that made no progress is worth a horizon
                // scan (a gate, not a soundness condition: a false "busy"
                // just defers the scan one cycle).
                if quiet && !self.done() {
                    if let Some(target) = self.quiescent_horizon(now, max_cycles, obs) {
                        let span = target - now;
                        self.credit_idle_span(now, span);
                        acc_cycles += span;
                        now = target;
                    }
                }
            }
        }
        if acc_cycles > 0 {
            *region_cycles.entry(acc_region).or_insert(0) += acc_cycles;
        }
        let result = self.finish(now, region_cycles, clamped_repartitions);
        obs.on_finish(&result);
        Ok(result)
    }

    /// The latest cycle `> from` the driver may jump to without simulating
    /// the span in between, or `None` when no skip is possible: the minimum
    /// over every unit's `next_event`, the observer's deadline, and the
    /// cycle budget (so a would-be hang times out at exactly `max_cycles`,
    /// like the naive driver).
    fn quiescent_horizon<O: SimObserver + ?Sized>(
        &self,
        from: u64,
        max_cycles: u64,
        obs: &O,
    ) -> Option<u64> {
        let mut horizon = match obs.next_deadline(from) {
            Some(d) if d <= from => return None,
            Some(d) => d.min(max_cycles),
            None => max_cycles,
        };
        for c in &self.cores {
            match c.next_event(from, &self.src) {
                Some(t) if t <= from => return None,
                Some(t) => horizon = horizon.min(t),
                None => {}
            }
        }
        for l in &self.lane_cores {
            match l.next_event(from, &self.src) {
                Some(t) if t <= from => return None,
                Some(t) => horizon = horizon.min(t),
                None => {}
            }
        }
        if let Some(v) = &self.vu {
            match v.next_event(from) {
                Some(t) if t <= from => return None,
                Some(t) => horizon = horizon.min(t),
                None => {}
            }
        }
        if let Some(t) = self.mem.next_event(from) {
            horizon = horizon.min(t); // advisory, always > from
        }
        (horizon > from).then_some(horizon)
    }

    /// Bulk-credit a skipped `[from, from + span)` window to every
    /// per-cycle counter, exactly as `span` naive ticks would have. Park
    /// state cannot change inside a quiescent span (parking and resuming
    /// are front-end activity), so one mask covers the whole window.
    fn credit_idle_span(&mut self, from: u64, span: u64) {
        let parked = self.parked_mask();
        for c in &mut self.cores {
            c.credit_idle_span(from, span);
        }
        {
            let System { lane_cores, src, .. } = self;
            for l in lane_cores.iter_mut() {
                l.credit_idle_span(from, span, src.sim.thread_parked(l.thread()));
            }
        }
        if let Some(v) = &mut self.vu {
            v.account_idle_span(from, span, parked, self.nthreads);
        }
    }

    /// A cheap monotone digest of total forward progress; unchanged across
    /// a step means the machine (very likely) idled that cycle. Only a gate
    /// for the horizon scan — correctness rests on `quiescent_horizon`.
    fn progress_fingerprint(&self) -> u64 {
        let mut fp = self.src.sim.executed + self.src.sim.barrier_releases();
        for c in &self.cores {
            fp += c.stats.committed + c.stats.issued + c.stats.vec_dispatched;
        }
        for l in &self.lane_cores {
            fp += l.stats.committed;
        }
        if let Some(v) = &self.vu {
            fp += v.issued;
        }
        fp
    }

    /// Advance the whole machine by one cycle.
    fn step(&mut self, now: u64) -> Result<CycleEvents, SimError> {
        let mut ev = CycleEvents::default();
        for i in 0..self.cores.len() {
            let System { cores, mem, src, vu, .. } = self;
            match vu {
                Some(v) => cores[i].tick(now, mem, src, v)?,
                None => {
                    let mut null = NullVectorSink;
                    cores[i].tick(now, mem, src, &mut null)?;
                }
            }
        }
        for i in 0..self.lane_cores.len() {
            let System { lane_cores, mem, src, .. } = self;
            lane_cores[i].tick(now, mem, src)?;
        }
        // Park state after the front ends ran (observation inputs: VU
        // stall-cause attribution and the on_park transition hook).
        let parked = self.parked_mask();
        ev.parked = parked;
        if let Some(v) = &mut self.vu {
            // Per-phase lane repartitioning (paper §3.3): a fetched
            // `vltcfg` requests it; the VU applies it once drained and
            // refuses new dispatches meanwhile.
            if let Some(t) = self.src.vlt_request.take() {
                let clamped = !matches!(t, 1 | 2 | 4) || t as usize > self.cfg.vlt_threads;
                // Lane-partition counts beyond the configured maximum
                // (e.g. a scalar-thread build's vltcfg 8) are clamped.
                let applied = if clamped { self.cfg.vlt_threads } else { t as usize };
                v.request_repartition(applied, now);
                ev.repartition = Some(RepartitionEvent { requested: t, applied, clamped });
            }
            v.tick(now, &mut self.mem, self.src.sim.arena(), parked, self.nthreads);
        }

        // Barrier rendezvous completed: flush L1 data caches so post-barrier
        // reads observe other threads' writes. The functional simulator
        // counts releases exactly (once per rendezvous, at the moment the
        // waiting flags clear), so this is correct for thread counts that
        // don't divide the barrier population and for mid-run halts.
        let releases = self.src.sim.barrier_releases();
        if releases > self.flushed_releases {
            self.flushed_releases = releases;
            self.mem.barrier_flush();
            ev.barrier_releases = Some(releases);
        }

        Ok(ev)
    }

    /// Assemble the final result after the machine drains.
    fn finish(
        &self,
        cycles: u64,
        region_cycles: BTreeMap<u32, u64>,
        clamped_repartitions: u64,
    ) -> SimResult {
        let committed = self.cores.iter().map(|c| c.stats.committed).sum::<u64>()
            + self.lane_cores.iter().map(|c| c.stats.committed).sum::<u64>();
        SimResult {
            cycles,
            committed,
            utilization: self.vu.as_ref().map(|v| v.util).unwrap_or_default(),
            cores: self.cores.iter().map(|c| c.stats.clone()).collect(),
            lanes: self.lane_cores.iter().map(|c| c.stats.clone()).collect(),
            vu_stalls: self.vu.as_ref().map(|v| v.stalls).unwrap_or_default(),
            mem: self.mem.stats(),
            region_cycles,
            clamped_repartitions,
        }
    }
}

/// Convenience: build and run in one call.
pub fn run_program(
    cfg: SystemConfig,
    prog: &Program,
    nthreads: usize,
    max_cycles: u64,
) -> Result<SimResult, SimError> {
    System::new(cfg, prog, nthreads).run(max_cycles)
}

#[cfg(test)]
mod tests;
