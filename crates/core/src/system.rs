//! The full-system timing simulator: scalar units + vector unit (or lane
//! cores) + memory hierarchy, driven cycle by cycle over the functional
//! simulator's instruction streams.
//!
//! There is exactly **one** driver loop, [`System::run_observed`]. Every
//! public entry point (`run`, `run_sampled`) is a thin wrapper that plugs a
//! different [`SimObserver`] into it, so sampling, progress heartbeats, and
//! any future instrumentation cannot drift from the plain run path.
//!
//! Time advances event-driven by default: when a cycle makes no progress,
//! the driver queries every unit's `next_event` and jumps straight to the
//! earliest future one, bulk-crediting the skipped span — with results
//! byte-identical to the naive cycle-by-cycle oracle, which stays
//! selectable via [`DriverMode::CycleByCycle`].

use std::collections::BTreeMap;
use std::sync::Arc;

use vlt_exec::{DecodedProgram, DynKind, ExecError, FuncSim, Step};
use vlt_isa::{Op, Program};
use vlt_mem::{BankEvent, ClusterNet, MemSystem};
use vlt_scalar::{
    FetchResult, FetchSource, InOrderCore, LaneCoreConfig, NullVectorSink, OooCore, StallBreakdown,
    VecDispatch, VecToken, VectorSink,
};

use crate::component::{CompId, Component, TickCtx};
use crate::config::SystemConfig;
use crate::result::{SimError, SimResult, Utilization};
use crate::vu::{VecIssue, VectorUnit, VuConfig};

/// Wraps the functional simulator as a [`FetchSource`], tracking the current
/// `region` marker (for % opportunity attribution) and any `vltcfg` observed
/// this cycle.
struct TrackedSource {
    sim: FuncSim,
    prog: Arc<DecodedProgram>,
    cur_region: u32,
    /// A `vltcfg` observed this cycle: requested `(threads, clusters)`
    /// hierarchy (clusters `0` = unspecified).
    vlt_request: Option<(u8, u8)>,
}

impl FetchSource for TrackedSource {
    fn fetch(&mut self, thread: usize) -> Result<FetchResult, ExecError> {
        Ok(match self.sim.step_thread(thread)? {
            Step::Inst(d) => {
                if let DynKind::VltCfg { threads, clusters } = d.kind {
                    self.vlt_request = Some((threads, clusters));
                }
                if thread == 0 {
                    let si = self.prog.get(d.sidx as usize);
                    if si.inst.op == Op::Region {
                        self.cur_region = si.inst.imm as u32;
                    }
                }
                FetchResult::Inst(d)
            }
            Step::AtBarrier => FetchResult::AtBarrier,
            Step::Halted => FetchResult::Halted,
        })
    }

    fn parked(&self, thread: usize) -> bool {
        self.sim.thread_parked(thread)
    }
}

/// How [`System::run_observed`] advances simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DriverMode {
    /// Skip provably-quiescent spans: query every unit's `next_event`,
    /// jump straight to the earliest one, and credit the skipped cycles in
    /// bulk. Produces byte-identical [`SimResult`]s (and sample streams) to
    /// [`DriverMode::CycleByCycle`]; `tests/driver_props.rs` enforces it.
    #[default]
    EventDriven,
    /// Tick every unit on every cycle — the naive oracle the event-driven
    /// fast path is validated against.
    CycleByCycle,
}

/// A `vltcfg` repartition observed by the driver, after validation against
/// the machine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepartitionEvent {
    /// VLT thread count the instruction asked for.
    pub requested: u8,
    /// Cluster spread the instruction asked for (`0` = unspecified — the
    /// machine picks; see [`vlt_isa::vltcfg`]).
    pub requested_clusters: u8,
    /// Total VLT thread count actually handed to the vector unit(s).
    pub applied: usize,
    /// Active cluster count actually applied (1 on single-cluster
    /// machines).
    pub applied_clusters: usize,
    /// Whether the request was invalid for this machine and got clamped.
    pub clamped: bool,
}

/// Events one call to `System::step` produced, reported back to the driver
/// so observer hooks fire outside the mutable-borrow of the machine.
#[derive(Debug, Default, Clone, Copy)]
struct CycleEvents {
    /// Cumulative barrier-release count, if a rendezvous completed.
    barrier_releases: Option<u64>,
    /// A `vltcfg` reached the vector unit this cycle.
    repartition: Option<RepartitionEvent>,
    /// Bitmask of software threads parked at a barrier after this cycle.
    parked: u64,
}

/// Read-only view of the machine handed to [`SimObserver::on_cycle`].
/// Aggregates (`committed`, `utilization`) are computed lazily so a no-op
/// observer pays nothing per cycle.
pub struct CycleView<'a> {
    sys: &'a System,
}

impl CycleView<'_> {
    /// Cumulative committed instructions across scalar units and lane cores.
    pub fn committed(&self) -> u64 {
        self.sys.cores.iter().map(|c| c.stats.committed).sum::<u64>()
            + self.sys.lane_cores.iter().map(|c| c.stats.committed).sum::<u64>()
    }

    /// Cumulative datapath utilization, summed across lane clusters (zeros
    /// without a vector unit).
    pub fn utilization(&self) -> Utilization {
        self.sys.vu_utilization()
    }

    /// Region marker active on thread 0.
    pub fn region(&self) -> u32 {
        self.sys.src.cur_region
    }

    /// Cumulative machine-wide stall-cause breakdown: the vector unit's
    /// datapath-cycles merged with every scalar unit's and lane core's
    /// stall cycles. Units differ across contributors (datapath-cycles vs
    /// core cycles), so treat this as a composition profile, not a single
    /// count; per-unit breakdowns are on the final [`SimResult`].
    pub fn stalls(&self) -> StallBreakdown {
        let mut b = self.sys.vu_stalls();
        for c in &self.sys.cores {
            b.merge(&c.stats.stalls);
        }
        for l in &self.sys.lane_cores {
            b.merge(&l.stats.stalls);
        }
        b
    }

    /// Cumulative vector-unit stall-cause breakdown, merged across lane
    /// clusters (zeros without a vector unit). Datapath-cycles.
    pub fn vu_stalls(&self) -> StallBreakdown {
        self.sys.vu_stalls()
    }

    /// Datapath slots the vector units charge per machine cycle: three
    /// arithmetic datapath groups × lanes, summed over clusters. The
    /// Figure-4 budget — `utilization().total()` grows by exactly this
    /// much per simulated cycle. Zero without a vector unit.
    pub fn vu_datapaths(&self) -> u64 {
        self.sys.vus.iter().map(|v| 3 * v.config().lanes as u64).sum()
    }

    /// Per-scalar-unit `(fetch_stall_cycles, stalls)` snapshots, in core
    /// order — the raw material for windowed CPI stacks.
    pub fn core_stalls(&self) -> Vec<(u64, StallBreakdown)> {
        self.sys.cores.iter().map(|c| (c.stats.fetch_stall_cycles, c.stats.stalls)).collect()
    }

    /// Per-lane-core `(stall_cycles, stalls)` snapshots, in lane order
    /// (empty outside VLT scalar-thread mode).
    pub fn lane_stalls(&self) -> Vec<(u64, StallBreakdown)> {
        self.sys.lane_cores.iter().map(|l| (l.stats.stall_cycles, l.stats.stalls)).collect()
    }
}

/// Hooks into the driver loop. All methods default to no-ops, so an
/// implementation only pays for what it overrides.
///
/// Ordering contract, per simulated cycle:
/// 1. `on_cycle(now, view)` — *before* the machine advances, so a snapshot
///    at cycle `n` sees the state entering `n` (this is what keeps
///    `run_sampled` byte-compatible with the historical implementation);
/// 2. the machine steps;
/// 3. `on_barrier` / `on_repartition` for events that cycle produced.
///
/// `on_finish` fires once, after the machine drains, with the final result.
///
/// Under the default [`DriverMode::EventDriven`] driver, cycles inside a
/// provably-quiescent span are *not* simulated, so `on_cycle` does not fire
/// for them. An observer that must see specific cycles declares them via
/// [`SimObserver::next_deadline`]; the driver never skips past a deadline,
/// and the machine state at a deadline cycle is identical to what the
/// cycle-by-cycle driver would present (nothing happens in a skipped span
/// by construction). Barriers and repartitions are machine activity, so
/// `on_barrier` / `on_repartition` are never elided.
pub trait SimObserver {
    /// Start of a simulated cycle, before any unit ticks.
    fn on_cycle(&mut self, _now: u64, _view: &CycleView<'_>) {}
    /// The next cycle (`>= now`) at which this observer needs `on_cycle` to
    /// fire even if the machine is idle; the event-driven driver caps every
    /// skip at it. `Some(now)` forbids skipping entirely (the observer sees
    /// every cycle); `None` (the default) lets the driver skip freely.
    fn next_deadline(&self, _now: u64) -> Option<u64> {
        None
    }
    /// A barrier rendezvous completed; `releases` is the cumulative count.
    /// The view snapshots the machine *after* the releasing cycle — the
    /// epoch boundary for barrier-epoch CPI windows.
    fn on_barrier(&mut self, _now: u64, _releases: u64, _view: &CycleView<'_>) {}
    /// A `vltcfg` was requested (possibly clamped) of the vector unit; the
    /// unit drains before applying it (see
    /// [`SimObserver::on_repartition_applied`]).
    fn on_repartition(&mut self, _now: u64, _ev: &RepartitionEvent) {}
    /// A requested repartition finished draining and took effect this
    /// cycle; `drain_latency` is the cycles it waited for the vector unit
    /// to drain.
    fn on_repartition_applied(&mut self, _now: u64, _drain_latency: u64) {}
    /// Thread 0 entered a new region (the `region` marker changed). Fires
    /// at the region boundary with the machine state entering the new
    /// region, so cumulative counters snapshot per-region deltas exactly.
    fn on_region(&mut self, _now: u64, _region: u32, _view: &CycleView<'_>) {}
    /// Software thread `thread` parked at a barrier (`parked == true`) or
    /// resumed from one (`parked == false`). Fires on transitions only.
    fn on_park(&mut self, _now: u64, _thread: usize, _parked: bool) {}
    /// A vector instruction issued to a functional unit. Only delivered
    /// when [`SimObserver::wants_vec_events`] returned true at run start.
    fn on_vec_issue(&mut self, _now: u64, _ev: &VecIssue) {}
    /// Opt-in for [`SimObserver::on_vec_issue`] delivery. Checked once per
    /// run; event logging in the vector unit is off otherwise so the plain
    /// run path pays nothing.
    fn wants_vec_events(&self) -> bool {
        false
    }
    /// An L2 bank serviced an access. Only delivered when
    /// [`SimObserver::wants_mem_events`] returned true at run start.
    fn on_mem_access(&mut self, _now: u64, _ev: &BankEvent) {}
    /// Opt-in for [`SimObserver::on_mem_access`] delivery. Checked once per
    /// run; the L2 records no events otherwise.
    fn wants_mem_events(&self) -> bool {
        false
    }
    /// The run completed; `result` is what the caller will receive.
    fn on_finish(&mut self, _result: &SimResult) {}
}

/// The do-nothing observer; `System::run` is `run_observed` with this.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl SimObserver for NullObserver {}

/// A point-in-time snapshot emitted by [`System::run_sampled`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Cycle at which the snapshot was taken.
    pub cycle: u64,
    /// Cumulative committed instructions.
    pub committed: u64,
    /// Cumulative datapath utilization (Figure-4 categories).
    pub utilization: Utilization,
    /// Region active at the snapshot (thread 0's marker).
    pub region: u32,
}

/// Records a [`Sample`] every `interval` cycles — the raw material for
/// utilization-over-time plots and phase analyses.
#[derive(Debug)]
pub struct SamplingObserver {
    interval: u64,
    next: u64,
    samples: Vec<Sample>,
}

impl SamplingObserver {
    /// Sample every `interval` cycles, starting at cycle 0.
    pub fn new(interval: u64) -> Self {
        assert!(interval > 0);
        SamplingObserver { interval, next: 0, samples: Vec::new() }
    }

    /// The samples collected so far.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Consume the observer, yielding the collected samples.
    pub fn into_samples(self) -> Vec<Sample> {
        self.samples
    }
}

impl SimObserver for SamplingObserver {
    fn on_cycle(&mut self, now: u64, view: &CycleView<'_>) {
        if now >= self.next {
            self.samples.push(Sample {
                cycle: now,
                committed: view.committed(),
                utilization: view.utilization(),
                region: view.region(),
            });
            self.next += self.interval;
        }
    }

    fn next_deadline(&self, _now: u64) -> Option<u64> {
        // Never skip past a sample boundary: samples land on exactly the
        // same cycles (with the same values) as under the naive driver.
        Some(self.next)
    }
}

/// Heartbeat for long runs under a cycle budget: prints progress to stderr
/// every `every` cycles, and warns when a `vltcfg` had to be clamped.
#[derive(Debug)]
pub struct ProgressObserver {
    every: u64,
    budget: u64,
    next: u64,
}

impl ProgressObserver {
    /// Report every `every` cycles against a `budget`-cycle allowance.
    pub fn new(every: u64, budget: u64) -> Self {
        assert!(every > 0);
        // Skip the cycle-0 heartbeat: nothing has happened yet.
        ProgressObserver { every, budget, next: every }
    }
}

impl SimObserver for ProgressObserver {
    fn on_cycle(&mut self, now: u64, view: &CycleView<'_>) {
        if now >= self.next {
            eprintln!(
                "[vlt] cycle {now}/{} ({:.1}% of budget), {} committed",
                self.budget,
                100.0 * now as f64 / self.budget.max(1) as f64,
                view.committed(),
            );
            self.next += self.every;
        }
    }

    fn next_deadline(&self, _now: u64) -> Option<u64> {
        Some(self.next) // keep heartbeats on their exact cycles
    }

    fn on_repartition(&mut self, now: u64, ev: &RepartitionEvent) {
        if ev.clamped {
            eprintln!(
                "[vlt] cycle {now}: vltcfg {} threads x {} clusters invalid for this machine, \
                 clamped to {} x {}",
                ev.requested, ev.requested_clusters, ev.applied, ev.applied_clusters,
            );
        }
    }

    fn on_finish(&mut self, result: &SimResult) {
        eprintln!(
            "[vlt] done: {} cycles, {} committed, {} clamped repartition(s)",
            result.cycles, result.committed, result.clamped_repartitions,
        );
    }
}

/// A repartition accepted by the driver, waiting for every vector unit to
/// drain before it takes effect machine-wide.
#[derive(Debug, Clone, Copy)]
struct PendingRepartition {
    /// Total VLT thread count to apply.
    threads: usize,
    /// Active cluster count to apply.
    clusters: usize,
    /// Cycle the request was accepted (drain-latency attribution).
    since: u64,
}

/// Routes scalar-unit vector traffic to the per-cluster vector units:
/// thread `t` lives in cluster `t % active` under local id `t / active`
/// (injective per cluster). Tokens carry the cluster in their top byte, so
/// on a single-cluster machine (`active == 1`) every field — local ids and
/// tokens alike — is bit-identical to the pre-cluster driver.
struct VecRouter<'a> {
    vus: &'a mut [VectorUnit],
    active: usize,
    /// A repartition is draining: refuse dispatch machine-wide (the natural
    /// backpressure on the scalar units).
    pending: bool,
}

/// Bits of a [`VecToken`] holding the within-cluster token.
const TOKEN_MASK: u64 = (1u64 << 56) - 1;

impl VectorSink for VecRouter<'_> {
    fn try_dispatch(&mut self, mut d: VecDispatch, now: u64) -> Option<VecToken> {
        if self.pending {
            return None; // draining toward a repartition
        }
        let c = d.vthread % self.active;
        d.vthread /= self.active;
        let t = self.vus[c].try_dispatch(d, now)?;
        debug_assert!(t.0 <= TOKEN_MASK);
        Some(VecToken(((c as u64) << 56) | t.0))
    }

    fn resolve(&mut self, vthread: usize, seq: u64, done_at: u64) {
        let c = vthread % self.active;
        self.vus[c].resolve(vthread / self.active, seq, done_at);
    }

    fn poll(&mut self, token: VecToken) -> Option<u64> {
        let c = (token.0 >> 56) as usize;
        self.vus[c].poll(VecToken(token.0 & TOKEN_MASK))
    }
}

/// Forwards exactly the event-delivery hooks ([`SimObserver::on_vec_issue`],
/// [`SimObserver::on_mem_access`]) to a possibly-unsized observer, so
/// [`Component::drain_events`] can take a `&mut dyn SimObserver` without
/// requiring `O: Sized` in the driver.
struct ObsRef<'a, O: SimObserver + ?Sized>(&'a mut O);

impl<O: SimObserver + ?Sized> SimObserver for ObsRef<'_, O> {
    fn on_vec_issue(&mut self, now: u64, ev: &VecIssue) {
        self.0.on_vec_issue(now, ev);
    }

    fn on_mem_access(&mut self, now: u64, ev: &BankEvent) {
        self.0.on_mem_access(now, ev);
    }
}

/// A configured machine ready to run one program.
pub struct System {
    cfg: SystemConfig,
    src: TrackedSource,
    cores: Vec<OooCore>,
    lane_cores: Vec<InOrderCore>,
    /// One vector unit per lane cluster (empty without a vector unit).
    vus: Vec<VectorUnit>,
    /// Inter-cluster network (multi-cluster machines only).
    net: Option<ClusterNet>,
    mem: MemSystem,
    /// Every timed unit, in tick order: scalar units, lane cores, vector
    /// units, network, memory. The driver iterates this list for ticking,
    /// the skip horizon, fingerprinting, idle-span crediting, and event
    /// drains — registering here is all a new unit type needs.
    components: Vec<CompId>,
    /// Clusters currently holding VLT threads (`vus[..active_clusters]`).
    active_clusters: usize,
    /// An accepted repartition draining toward application.
    vu_pending: Option<PendingRepartition>,
    /// Drain latency of a repartition applied this cycle (observer pickup).
    applied_latency: Option<u64>,
    /// Software threads loaded into the functional simulator.
    nthreads: usize,
    /// Barrier releases already flushed, against the funcsim's exact count.
    flushed_releases: u64,
    driver: DriverMode,
}

impl System {
    /// Build the machine for `cfg`, loading `prog` with `nthreads` SPMD
    /// threads. Vector-mode configurations require
    /// `nthreads <= cfg.vlt_threads` (one lane partition per thread);
    /// lane-thread mode requires `nthreads <= lanes`.
    pub fn new(cfg: SystemConfig, prog: &Program, nthreads: usize) -> Self {
        assert!(
            nthreads <= cfg.max_threads(),
            "{} threads exceed the {} contexts of {}",
            nthreads,
            cfg.max_threads(),
            cfg.name
        );
        if cfg.has_vu {
            assert!(
                nthreads <= cfg.vlt_threads,
                "{} vector threads need {} lane partitions ({} configured)",
                nthreads,
                nthreads,
                cfg.vlt_threads
            );
        }
        assert!(cfg.clusters >= 1, "at least one lane cluster is required");
        if cfg.clusters > 1 {
            assert!(cfg.clusters.is_power_of_two(), "cluster count must be a power of two");
            assert!(cfg.has_vu, "multi-cluster machines require a vector unit");
            assert!(!cfg.lane_threads, "lane-thread mode is single-cluster only");
        }

        let sim = FuncSim::new(prog, nthreads);
        let decoded = Arc::clone(&sim.prog);
        let mut mem = MemSystem::new(cfg.mem, cfg.cores.len(), cfg.lanes);
        if cfg.ideal.zero_conflict_l2 {
            mem.l2.set_ideal(true);
        }

        let mut cores: Vec<OooCore> = cfg
            .cores
            .iter()
            .enumerate()
            .map(|(i, cc)| OooCore::new(*cc, i, Arc::clone(&decoded)))
            .collect();
        let mut lane_cores = Vec::new();

        if cfg.lane_threads {
            // Threads run on the lanes; the SUs only serve I-cache misses.
            for t in 0..nthreads {
                let owner = t * cfg.cores.len() / cfg.lanes.max(1);
                lane_cores.push(InOrderCore::new(
                    LaneCoreConfig::default(),
                    t,
                    owner.min(cfg.cores.len() - 1),
                    t,
                    Arc::clone(&decoded),
                ));
            }
        } else {
            // Bind software thread t to hardware context t (core-major).
            let mut flat = 0usize;
            'outer: for (ci, cc) in cfg.cores.iter().enumerate() {
                for ctx in 0..cc.smt_contexts {
                    if flat >= nthreads {
                        break 'outer;
                    }
                    cores[ci].bind(ctx, flat, flat);
                    flat += 1;
                }
            }
        }

        let mut vus = Vec::new();
        let mut net = None;
        let mut active_clusters = 1;
        if cfg.has_vu {
            // Initial partitioning: spread the configured VLT threads over
            // as many clusters as can hold them, local thread counts equal
            // across active clusters. Clusters beyond the active set start
            // undivided (and idle until a `vltcfg` pulls them in).
            active_clusters = cfg.clusters.min(cfg.vlt_threads).max(1);
            assert!(
                cfg.vlt_threads.is_multiple_of(active_clusters)
                    && matches!(cfg.vlt_threads / active_clusters, 1 | 2 | 4),
                "{} VLT threads do not partition evenly over {} clusters",
                cfg.vlt_threads,
                cfg.clusters
            );
            let t0 = cfg.vlt_threads / active_clusters;
            for c in 0..cfg.clusters {
                // Each cluster replicates the full VCL (per-cluster window
                // and issue bandwidth) — replication is priced by the area
                // model, not hidden.
                let vcfg = VuConfig {
                    lanes: cfg.lanes,
                    threads: if c < active_clusters { t0 } else { 1 },
                    // `infinite_issue` idealization: lift the VCL issue
                    // limit far beyond any window size; functional-unit
                    // structural hazards still bound issue.
                    issue_width: if cfg.ideal.infinite_issue {
                        1 << 20
                    } else {
                        cfg.vcl.issue_width
                    },
                    window: cfg.vcl.window,
                    chaining: cfg.vcl.chaining,
                };
                let mut v = VectorUnit::new(vcfg, Arc::clone(&decoded));
                v.set_thread_map(active_clusters, c);
                vus.push(v);
            }
            if cfg.clusters > 1 {
                let mut n = ClusterNet::new(&cfg.net, cfg.clusters);
                if cfg.ideal.zero_hop_net {
                    n.set_ideal(true);
                }
                net = Some(n);
            }
        }

        let mut components: Vec<CompId> = (0..cores.len()).map(CompId::Core).collect();
        components.extend((0..lane_cores.len()).map(CompId::Lane));
        components.extend((0..vus.len()).map(CompId::Vu));
        if net.is_some() {
            components.push(CompId::Net);
        }
        components.push(CompId::Mem);

        System {
            cfg,
            src: TrackedSource { sim, prog: decoded, cur_region: 0, vlt_request: None },
            cores,
            lane_cores,
            vus,
            net,
            mem,
            components,
            active_clusters,
            vu_pending: None,
            applied_latency: None,
            nthreads,
            flushed_releases: 0,
            driver: DriverMode::default(),
        }
    }

    /// Borrow a registered component read-only.
    fn component(&self, id: CompId) -> &dyn Component {
        match id {
            CompId::Core(i) => &self.cores[i],
            CompId::Lane(i) => &self.lane_cores[i],
            CompId::Vu(i) => &self.vus[i],
            CompId::Net => self.net.as_ref().expect("network registered but absent"),
            CompId::Mem => &self.mem,
        }
    }

    /// Borrow a registered component mutably.
    fn component_mut(&mut self, id: CompId) -> &mut dyn Component {
        match id {
            CompId::Core(i) => &mut self.cores[i],
            CompId::Lane(i) => &mut self.lane_cores[i],
            CompId::Vu(i) => &mut self.vus[i],
            CompId::Net => self.net.as_mut().expect("network registered but absent"),
            CompId::Mem => &mut self.mem,
        }
    }

    /// Datapath utilization summed across lane clusters.
    fn vu_utilization(&self) -> Utilization {
        let mut u = Utilization::default();
        for v in &self.vus {
            u.busy += v.util.busy;
            u.partly_idle += v.util.partly_idle;
            u.stalled += v.util.stalled;
            u.all_idle += v.util.all_idle;
        }
        u
    }

    /// Vector stall-cause breakdown merged across lane clusters.
    fn vu_stalls(&self) -> StallBreakdown {
        let mut b = StallBreakdown::default();
        for v in &self.vus {
            b.merge(&v.stalls);
        }
        b
    }

    /// Bitmask of software threads currently parked at a barrier.
    fn parked_mask(&self) -> u64 {
        let mut m = 0u64;
        for t in 0..self.nthreads.min(64) {
            if self.src.sim.thread_parked(t) {
                m |= 1u64 << t;
            }
        }
        m
    }

    /// The configuration this machine was built from.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Select how the driver advances time (default:
    /// [`DriverMode::EventDriven`]). [`DriverMode::CycleByCycle`] is the
    /// naive oracle — kept selectable so tests and benchmarks can compare.
    pub fn set_driver(&mut self, mode: DriverMode) {
        self.driver = mode;
    }

    /// Builder-style [`System::set_driver`].
    pub fn with_driver(mut self, mode: DriverMode) -> Self {
        self.driver = mode;
        self
    }

    /// The driver mode in force.
    pub fn driver_mode(&self) -> DriverMode {
        self.driver
    }

    /// Select the functional execution engine (default:
    /// [`vlt_exec::EngineMode::Block`]). [`vlt_exec::EngineMode::Interp`]
    /// is the cross-validation oracle, mirroring
    /// [`DriverMode::CycleByCycle`] on the timing side.
    pub fn set_engine(&mut self, engine: vlt_exec::EngineMode) {
        self.src.sim.set_engine(engine);
    }

    /// Builder-style [`System::set_engine`].
    pub fn with_engine(mut self, engine: vlt_exec::EngineMode) -> Self {
        self.set_engine(engine);
        self
    }

    /// The functional simulator (memory image and architectural state) —
    /// for result verification after a run.
    pub fn funcsim(&self) -> &FuncSim {
        &self.src.sim
    }

    /// Every hardware context has drained (components with no notion of
    /// pending work vote `true`).
    fn done(&self) -> bool {
        self.components.iter().all(|&id| self.component(id).done())
    }

    /// Run to completion (all threads halted and pipelines drained).
    pub fn run(&mut self, max_cycles: u64) -> Result<SimResult, SimError> {
        self.run_observed(max_cycles, &mut NullObserver)
    }

    /// Like [`System::run`], but additionally records a [`Sample`] every
    /// `interval` cycles — the raw material for utilization-over-time plots
    /// and phase analyses.
    pub fn run_sampled(
        &mut self,
        max_cycles: u64,
        interval: u64,
    ) -> Result<(SimResult, Vec<Sample>), SimError> {
        let mut obs = SamplingObserver::new(interval);
        let result = self.run_observed(max_cycles, &mut obs)?;
        Ok((result, obs.into_samples()))
    }

    /// The one driver loop: run to completion (all threads halted and
    /// pipelines drained) with `obs` hooked into every simulated cycle.
    ///
    /// Under [`DriverMode::EventDriven`] (the default), whenever a simulated
    /// cycle makes no observable progress the driver asks every unit for its
    /// next event cycle and jumps straight to the earliest one, crediting
    /// the skipped span in bulk to the per-cycle counters (region
    /// attribution, VU utilization, core busy/stall counters). The skip is
    /// sound because a `next_event` answer is never *later* than the unit's
    /// true next state change, so nothing that would have happened in the
    /// span is lost — and results stay byte-identical to
    /// [`DriverMode::CycleByCycle`] (see DESIGN.md §"Time advancement").
    pub fn run_observed<O: SimObserver + ?Sized>(
        &mut self,
        max_cycles: u64,
        obs: &mut O,
    ) -> Result<SimResult, SimError> {
        let mut region_cycles: BTreeMap<u32, u64> = BTreeMap::new();
        // Region time accrues into a (region, count) accumulator flushed on
        // region change, not a per-cycle BTreeMap probe.
        let mut acc_region = self.src.cur_region;
        let mut acc_cycles = 0u64;
        let mut clamped_repartitions = 0u64;
        let mut now = 0u64;
        let skipping = self.driver == DriverMode::EventDriven;
        let mut fingerprint = self.progress_fingerprint();
        // Event delivery is opt-in per run: the producing units record
        // nothing unless this observer asked, so `run` pays nothing.
        let vec_events = obs.wants_vec_events();
        let mem_events = obs.wants_mem_events();
        for i in 0..self.components.len() {
            let id = self.components[i];
            self.component_mut(id).set_event_logging(vec_events, mem_events);
        }
        // Park transitions are reported by diffing against the previous
        // cycle's mask (threads start running, so the baseline is empty).
        let mut parked_prev = 0u64;
        loop {
            if self.done() {
                break;
            }
            if now >= max_cycles {
                return Err(SimError::Timeout { cycles: now });
            }
            obs.on_cycle(now, &CycleView { sys: self });
            let ev = self.step(now)?;
            if let Some(releases) = ev.barrier_releases {
                obs.on_barrier(now, releases, &CycleView { sys: self });
            }
            if let Some(rp) = &ev.repartition {
                if rp.clamped {
                    clamped_repartitions += 1;
                }
                obs.on_repartition(now, rp);
            }
            if let Some(latency) = self.applied_latency.take() {
                obs.on_repartition_applied(now, latency);
            }
            if ev.parked != parked_prev {
                let diff = ev.parked ^ parked_prev;
                for t in 0..self.nthreads.min(64) {
                    if diff & (1u64 << t) != 0 {
                        obs.on_park(now, t, ev.parked & (1u64 << t) != 0);
                    }
                }
                parked_prev = ev.parked;
            }
            if vec_events || mem_events {
                // Component order delivers vector issues before L2 bank
                // events, matching the historical drain order; units whose
                // logging is off hold empty logs, so the combined gate is
                // free for them.
                for i in 0..self.components.len() {
                    let id = self.components[i];
                    self.component_mut(id).drain_events(now, &mut ObsRef(&mut *obs));
                }
            }
            if self.src.cur_region != acc_region {
                if acc_cycles > 0 {
                    *region_cycles.entry(acc_region).or_insert(0) += acc_cycles;
                }
                acc_region = self.src.cur_region;
                acc_cycles = 0;
                obs.on_region(now, acc_region, &CycleView { sys: self });
            }
            acc_cycles += 1;
            now += 1;
            if skipping {
                let fp = self.progress_fingerprint();
                let quiet = fp == fingerprint;
                fingerprint = fp;
                // Only a cycle that made no progress is worth a horizon
                // scan (a gate, not a soundness condition: a false "busy"
                // just defers the scan one cycle).
                if quiet && !self.done() {
                    if let Some(target) = self.quiescent_horizon(now, max_cycles, obs) {
                        let span = target - now;
                        self.credit_idle_span(now, span);
                        acc_cycles += span;
                        now = target;
                    }
                }
            }
        }
        if acc_cycles > 0 {
            *region_cycles.entry(acc_region).or_insert(0) += acc_cycles;
        }
        let result = self.finish(now, region_cycles, clamped_repartitions);
        obs.on_finish(&result);
        Ok(result)
    }

    /// The latest cycle `> from` the driver may jump to without simulating
    /// the span in between, or `None` when no skip is possible: the minimum
    /// over every unit's `next_event`, the observer's deadline, and the
    /// cycle budget (so a would-be hang times out at exactly `max_cycles`,
    /// like the naive driver).
    fn quiescent_horizon<O: SimObserver + ?Sized>(
        &self,
        from: u64,
        max_cycles: u64,
        obs: &O,
    ) -> Option<u64> {
        let mut horizon = match obs.next_deadline(from) {
            Some(d) if d <= from => return None,
            Some(d) => d.min(max_cycles),
            None => max_cycles,
        };
        // A pending repartition over fully-drained vector units applies at
        // the very next step — driver-owned state the per-unit polls cannot
        // see, so it is guarded here.
        if self.vu_pending.is_some() && self.vus.iter().all(|v| v.drained()) {
            return None;
        }
        // One uniform poll over the registered component list: a new unit
        // type registers once and is automatically part of the horizon (it
        // cannot be silently skipped over). Passive components answer
        // advisorily (always > `from`), so they only ever shorten a skip.
        for &id in &self.components {
            match self.component(id).next_event(from, &self.src) {
                Some(t) if t <= from => return None,
                Some(t) => horizon = horizon.min(t),
                None => {}
            }
        }
        (horizon > from).then_some(horizon)
    }

    /// Bulk-credit a skipped `[from, from + span)` window to every
    /// per-cycle counter, exactly as `span` naive ticks would have. Park
    /// state cannot change inside a quiescent span (parking and resuming
    /// are front-end activity), so one mask covers the whole window.
    fn credit_idle_span(&mut self, from: u64, span: u64) {
        let parked = self.parked_mask();
        let draining = self.vu_pending.is_some();
        let System { cores, lane_cores, vus, src, components, nthreads, .. } = self;
        for &id in components.iter() {
            let mut ctx = TickCtx::new(parked, *nthreads, draining);
            match id {
                CompId::Core(i) => Component::credit_idle_span(&mut cores[i], from, span, &mut ctx),
                CompId::Lane(i) => {
                    ctx.fetch = Some(src);
                    Component::credit_idle_span(&mut lane_cores[i], from, span, &mut ctx);
                }
                CompId::Vu(i) => Component::credit_idle_span(&mut vus[i], from, span, &mut ctx),
                // Passive components hold no per-cycle counters.
                CompId::Net | CompId::Mem => {}
            }
        }
    }

    /// A cheap monotone digest of total forward progress; unchanged across
    /// a step means the machine (very likely) idled that cycle. Only a gate
    /// for the horizon scan — correctness rests on `quiescent_horizon`.
    fn progress_fingerprint(&self) -> u64 {
        let mut fp = self.src.sim.executed + self.src.sim.barrier_releases();
        for &id in &self.components {
            fp += self.component(id).fingerprint();
        }
        fp
    }

    /// Advance the whole machine by one cycle: tick every registered
    /// component in order. The front-end components (scalar units, lane
    /// cores) run first; at the boundary to the back-end components the
    /// driver snapshots park state and processes `vltcfg` requests
    /// ([`System::pre_backend`]), preserving the historical intra-cycle
    /// ordering exactly.
    fn step(&mut self, now: u64) -> Result<CycleEvents, SimError> {
        let mut ev = CycleEvents::default();
        let mut backend = false;
        for i in 0..self.components.len() {
            let id = self.components[i];
            if !backend && !matches!(id, CompId::Core(_) | CompId::Lane(_)) {
                backend = true;
                self.pre_backend(now, &mut ev);
            }
            self.tick_component(id, now, &ev)?;
        }

        // Barrier rendezvous completed: flush L1 data caches so post-barrier
        // reads observe other threads' writes. The functional simulator
        // counts releases exactly (once per rendezvous, at the moment the
        // waiting flags clear), so this is correct for thread counts that
        // don't divide the barrier population and for mid-run halts.
        let releases = self.src.sim.barrier_releases();
        if releases > self.flushed_releases {
            self.flushed_releases = releases;
            // `free_barriers` idealization: skip the coherence flush (the
            // post-barrier cold-miss cost), keeping the rendezvous itself —
            // residual BarrierWait is then pure software imbalance.
            if !self.cfg.ideal.free_barriers {
                self.mem.barrier_flush();
            }
            ev.barrier_releases = Some(releases);
        }

        Ok(ev)
    }

    /// Front-end/back-end boundary work, once per cycle: snapshot park
    /// state (observation inputs: VU stall-cause attribution and the
    /// `on_park` transition hook) and process per-phase lane repartitioning
    /// (paper §3.3, hierarchical per DESIGN.md §11): a fetched `vltcfg`
    /// requests it; the machine applies it once every vector unit has
    /// drained and refuses new dispatches meanwhile.
    fn pre_backend(&mut self, now: u64, ev: &mut CycleEvents) {
        ev.parked = self.parked_mask();
        if self.vus.is_empty() {
            return; // scalar machines never consume vltcfg requests
        }
        if let Some((t_req, c_req)) = self.src.vlt_request.take() {
            let rp = self.validate_request(t_req, c_req);
            let current = (self.active_clusters * self.vus[0].threads(), self.active_clusters);
            if (rp.applied, rp.applied_clusters) != current {
                self.vu_pending = Some(PendingRepartition {
                    threads: rp.applied,
                    clusters: rp.applied_clusters,
                    since: now,
                });
            }
            ev.repartition = Some(rp);
        }
        if let Some(p) = self.vu_pending {
            if self.vus.iter().all(|v| v.drained()) {
                self.apply_partition(p.threads, p.clusters);
                self.applied_latency = Some(now.saturating_sub(p.since));
                self.vu_pending = None;
            }
        }
    }

    /// Validate a fetched `vltcfg` request against the machine shape.
    /// `c_req == 0` (a flat, pre-hierarchical operand) lets the machine
    /// pick: threads spread over as many clusters as can hold them.
    /// Invalid requests clamp to the machine's full configuration.
    fn validate_request(&self, t_req: u8, c_req: u8) -> RepartitionEvent {
        let t = t_req as usize;
        let c_active = if c_req == 0 { self.cfg.clusters.min(t.max(1)) } else { c_req as usize };
        let ok = c_active >= 1
            && c_active <= self.cfg.clusters
            && t <= self.cfg.vlt_threads
            && c_active <= t
            && t.is_multiple_of(c_active)
            && matches!(t / c_active, 1 | 2 | 4)
            && self.cfg.lanes.is_multiple_of(t / c_active);
        let (applied, applied_clusters) = if ok {
            (t, c_active)
        } else {
            // Thread counts or spreads beyond the configured machine (e.g.
            // a scalar-thread build's vltcfg 8) clamp to the machine's full
            // initial shape.
            (self.cfg.vlt_threads, self.cfg.clusters.min(self.cfg.vlt_threads).max(1))
        };
        RepartitionEvent {
            requested: t_req,
            requested_clusters: c_req,
            applied,
            applied_clusters,
            clamped: !ok,
        }
    }

    /// Apply a drained repartition machine-wide: `t_total` VLT threads over
    /// `c_active` clusters, local thread counts equal across active
    /// clusters; clusters outside the active set revert to one undivided
    /// (idle) partition. Callers gate on every unit being drained.
    fn apply_partition(&mut self, t_total: usize, c_active: usize) {
        let t_local = t_total / c_active;
        for (c, v) in self.vus.iter_mut().enumerate() {
            v.repartition(if c < c_active { t_local } else { 1 });
            v.set_thread_map(c_active, c);
        }
        self.active_clusters = c_active;
    }

    /// Tick one component, assembling the [`TickCtx`] capabilities its
    /// class needs from disjoint borrows of the machine.
    fn tick_component(&mut self, id: CompId, now: u64, ev: &CycleEvents) -> Result<(), SimError> {
        let System { cores, lane_cores, vus, net, mem, src, nthreads, active_clusters, .. } = self;
        let draining = self.vu_pending.is_some();
        let mut ctx = TickCtx::new(ev.parked, *nthreads, draining);
        match id {
            CompId::Core(i) => {
                let mut null = NullVectorSink;
                let mut router;
                let sink: &mut dyn VectorSink = if vus.is_empty() {
                    &mut null
                } else {
                    router = VecRouter { vus, active: *active_clusters, pending: draining };
                    &mut router
                };
                ctx.mem = Some(mem);
                ctx.fetch = Some(src);
                ctx.sink = Some(sink);
                Component::tick(&mut cores[i], now, &mut ctx)?;
            }
            CompId::Lane(i) => {
                ctx.mem = Some(mem);
                ctx.fetch = Some(src);
                Component::tick(&mut lane_cores[i], now, &mut ctx)?;
            }
            CompId::Vu(i) => {
                ctx.mem = Some(mem);
                ctx.net = net.as_mut();
                ctx.arena = Some(src.sim.arena());
                Component::tick(&mut vus[i], now, &mut ctx)?;
            }
            CompId::Net => {
                Component::tick(
                    net.as_mut().expect("network registered but absent"),
                    now,
                    &mut ctx,
                )?;
            }
            CompId::Mem => {
                Component::tick(mem, now, &mut ctx)?;
            }
        }
        Ok(())
    }

    /// Assemble the final result after the machine drains.
    fn finish(
        &self,
        cycles: u64,
        region_cycles: BTreeMap<u32, u64>,
        clamped_repartitions: u64,
    ) -> SimResult {
        let committed = self.cores.iter().map(|c| c.stats.committed).sum::<u64>()
            + self.lane_cores.iter().map(|c| c.stats.committed).sum::<u64>();
        let mut mem = self.mem.stats();
        mem.net = self.net.as_ref().map(|n| n.stats.clone());
        let mut lane_busy = Vec::new();
        let mut lane_partly = Vec::new();
        for v in &self.vus {
            let (b, p) = v.lane_occupancy();
            lane_busy.extend_from_slice(b);
            lane_partly.extend_from_slice(p);
        }
        SimResult {
            cycles,
            committed,
            utilization: self.vu_utilization(),
            cores: self.cores.iter().map(|c| c.stats.clone()).collect(),
            lanes: self.lane_cores.iter().map(|c| c.stats.clone()).collect(),
            vu_stalls: self.vu_stalls(),
            mem,
            region_cycles,
            lane_busy,
            lane_partly,
            clamped_repartitions,
        }
    }
}

/// Convenience: build and run in one call.
pub fn run_program(
    cfg: SystemConfig,
    prog: &Program,
    nthreads: usize,
    max_cycles: u64,
) -> Result<SimResult, SimError> {
    System::new(cfg, prog, nthreads).run(max_cycles)
}

#[cfg(test)]
mod tests;
