//! The full-system timing simulator: scalar units + vector unit (or lane
//! cores) + memory hierarchy, driven cycle by cycle over the functional
//! simulator's instruction streams.

use std::collections::BTreeMap;
use std::sync::Arc;

use vlt_exec::{DecodedProgram, DynKind, ExecError, FuncSim, Step};
use vlt_isa::{Op, Program};
use vlt_mem::MemSystem;
use vlt_scalar::{
    FetchResult, FetchSource, InOrderCore, LaneCoreConfig, NullVectorSink, OooCore,
};

use crate::config::SystemConfig;
use crate::result::{SimError, SimResult, Utilization};
use crate::vu::{VectorUnit, VuConfig};

/// Wraps the functional simulator as a [`FetchSource`], tracking barrier
/// rendezvous counts (for L1 coherence flushes) and the current `region`
/// marker (for % opportunity attribution).
struct TrackedSource {
    sim: FuncSim,
    prog: Arc<DecodedProgram>,
    nthreads: usize,
    barrier_fetches: u64,
    cur_region: u32,
    /// A `vltcfg` observed this cycle: requested lane-partition count.
    vlt_request: Option<u8>,
}

impl FetchSource for TrackedSource {
    fn fetch(&mut self, thread: usize) -> Result<FetchResult, ExecError> {
        Ok(match self.sim.step_thread(thread)? {
            Step::Inst(d) => {
                if d.kind == DynKind::Barrier {
                    self.barrier_fetches += 1;
                }
                if let DynKind::VltCfg { threads } = d.kind {
                    self.vlt_request = Some(threads);
                }
                if thread == 0 {
                    let si = self.prog.get(d.sidx as usize);
                    if si.inst.op == Op::Region {
                        self.cur_region = si.inst.imm as u32;
                    }
                }
                FetchResult::Inst(d)
            }
            Step::AtBarrier => FetchResult::AtBarrier,
            Step::Halted => FetchResult::Halted,
        })
    }
}

/// A configured machine ready to run one program.
pub struct System {
    cfg: SystemConfig,
    src: TrackedSource,
    cores: Vec<OooCore>,
    lane_cores: Vec<InOrderCore>,
    vu: Option<VectorUnit>,
    mem: MemSystem,
    barrier_releases: u64,
    region_cycles: BTreeMap<u32, u64>,
}

impl System {
    /// Build the machine for `cfg`, loading `prog` with `nthreads` SPMD
    /// threads. Vector-mode configurations require
    /// `nthreads <= cfg.vlt_threads` (one lane partition per thread);
    /// lane-thread mode requires `nthreads <= lanes`.
    pub fn new(cfg: SystemConfig, prog: &Program, nthreads: usize) -> Self {
        assert!(
            nthreads <= cfg.max_threads(),
            "{} threads exceed the {} contexts of {}",
            nthreads,
            cfg.max_threads(),
            cfg.name
        );
        if cfg.has_vu {
            assert!(
                nthreads <= cfg.vlt_threads,
                "{} vector threads need {} lane partitions ({} configured)",
                nthreads,
                nthreads,
                cfg.vlt_threads
            );
        }

        let sim = FuncSim::new(prog, nthreads);
        let decoded = Arc::clone(&sim.prog);
        let mem = MemSystem::new(cfg.mem, cfg.cores.len(), cfg.lanes);

        let mut cores: Vec<OooCore> = cfg
            .cores
            .iter()
            .enumerate()
            .map(|(i, cc)| OooCore::new(*cc, i, Arc::clone(&decoded)))
            .collect();
        let mut lane_cores = Vec::new();

        if cfg.lane_threads {
            // Threads run on the lanes; the SUs only serve I-cache misses.
            for t in 0..nthreads {
                let owner = t * cfg.cores.len() / cfg.lanes.max(1);
                lane_cores.push(InOrderCore::new(
                    LaneCoreConfig::default(),
                    t,
                    owner.min(cfg.cores.len() - 1),
                    t,
                    Arc::clone(&decoded),
                ));
            }
        } else {
            // Bind software thread t to hardware context t (core-major).
            let mut flat = 0usize;
            'outer: for (ci, cc) in cfg.cores.iter().enumerate() {
                for ctx in 0..cc.smt_contexts {
                    if flat >= nthreads {
                        break 'outer;
                    }
                    cores[ci].bind(ctx, flat, flat);
                    flat += 1;
                }
            }
        }

        let vu = if cfg.has_vu {
            let vcfg = VuConfig {
                lanes: cfg.lanes,
                threads: cfg.vlt_threads,
                issue_width: cfg.vcl.issue_width,
                window: cfg.vcl.window,
                chaining: cfg.vcl.chaining,
            };
            Some(VectorUnit::new(vcfg, Arc::clone(&decoded)))
        } else {
            None
        };

        System {
            cfg,
            src: TrackedSource {
                sim,
                prog: decoded,
                nthreads,
                barrier_fetches: 0,
                cur_region: 0,
                vlt_request: None,
            },
            cores,
            lane_cores,
            vu,
            mem,
            barrier_releases: 0,
            region_cycles: BTreeMap::new(),
        }
    }

    /// The configuration this machine was built from.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The functional simulator (memory image and architectural state) —
    /// for result verification after a run.
    pub fn funcsim(&self) -> &FuncSim {
        &self.src.sim
    }

    /// Run to completion (all threads halted and pipelines drained).
    pub fn run(&mut self, max_cycles: u64) -> Result<SimResult, SimError> {
        let mut now = 0u64;
        loop {
            let done = self.cores.iter().all(|c| c.done())
                && self.lane_cores.iter().all(|c| c.done());
            if done {
                break;
            }
            if now >= max_cycles {
                return Err(SimError::Timeout { cycles: now });
            }
            self.step(now)?;
            now += 1;
        }
        Ok(self.finish(now))
    }

    /// Advance the whole machine by one cycle.
    fn step(&mut self, now: u64) -> Result<(), SimError> {
        for i in 0..self.cores.len() {
            let System { cores, mem, src, vu, .. } = self;
            match vu {
                Some(v) => cores[i].tick(now, mem, src, v)?,
                None => {
                    let mut null = NullVectorSink;
                    cores[i].tick(now, mem, src, &mut null)?;
                }
            }
        }
        for i in 0..self.lane_cores.len() {
            let System { lane_cores, mem, src, .. } = self;
            lane_cores[i].tick(now, mem, src)?;
        }
        if let Some(v) = &mut self.vu {
            // Per-phase lane repartitioning (paper §3.3): a fetched
            // `vltcfg` requests it; the VU applies it once drained and
            // refuses new dispatches meanwhile.
            if let Some(t) = self.src.vlt_request.take() {
                if !matches!(t, 1 | 2 | 4) || t as usize > self.cfg.vlt_threads {
                    // Lane-partition counts beyond the configured maximum
                    // (e.g. a scalar-thread build's vltcfg 8) are clamped.
                    v.request_repartition(self.cfg.vlt_threads);
                } else {
                    v.request_repartition(t as usize);
                }
            }
            v.tick(now, &mut self.mem);
        }

        // Barrier rendezvous completed: flush L1 data caches so
        // post-barrier reads observe other threads' writes.
        let releases = self.src.barrier_fetches / self.src.nthreads.max(1) as u64;
        if releases > self.barrier_releases {
            self.barrier_releases = releases;
            self.mem.barrier_flush();
        }

        *self.region_cycles.entry(self.src.cur_region).or_insert(0) += 1;
        Ok(())
    }

    /// Assemble the final result after the machine drains.
    fn finish(&self, cycles: u64) -> SimResult {
        let committed = self.cores.iter().map(|c| c.stats.committed).sum::<u64>()
            + self.lane_cores.iter().map(|c| c.stats.committed).sum::<u64>();
        SimResult {
            cycles,
            committed,
            utilization: self.vu.as_ref().map(|v| v.util).unwrap_or(Utilization::default()),
            cores: self.cores.iter().map(|c| c.stats.clone()).collect(),
            mem: self.mem.stats(),
            region_cycles: self.region_cycles.clone(),
        }
    }
}

/// A point-in-time snapshot emitted by [`System::run_sampled`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Cycle at which the snapshot was taken.
    pub cycle: u64,
    /// Cumulative committed instructions.
    pub committed: u64,
    /// Cumulative datapath utilization (Figure-4 categories).
    pub utilization: Utilization,
    /// Region active at the snapshot (thread 0's marker).
    pub region: u32,
}

impl System {
    /// Like [`System::run`], but additionally records a [`Sample`] every
    /// `interval` cycles — the raw material for utilization-over-time plots
    /// and phase analyses.
    pub fn run_sampled(
        &mut self,
        max_cycles: u64,
        interval: u64,
    ) -> Result<(SimResult, Vec<Sample>), SimError> {
        assert!(interval > 0);
        let mut samples = Vec::new();
        let mut next_sample = 0u64;
        let mut now = 0u64;
        loop {
            let done = self.cores.iter().all(|c| c.done())
                && self.lane_cores.iter().all(|c| c.done());
            if done {
                break;
            }
            if now >= max_cycles {
                return Err(SimError::Timeout { cycles: now });
            }
            if now >= next_sample {
                samples.push(Sample {
                    cycle: now,
                    committed: self.cores.iter().map(|c| c.stats.committed).sum::<u64>()
                        + self.lane_cores.iter().map(|c| c.stats.committed).sum::<u64>(),
                    utilization: self
                        .vu
                        .as_ref()
                        .map(|v| v.util)
                        .unwrap_or(Utilization::default()),
                    region: self.src.cur_region,
                });
                next_sample += interval;
            }
            self.step(now)?;
            now += 1;
        }
        Ok((self.finish(now), samples))
    }
}

/// Convenience: build and run in one call.
pub fn run_program(
    cfg: SystemConfig,
    prog: &Program,
    nthreads: usize,
    max_cycles: u64,
) -> Result<SimResult, SimError> {
    System::new(cfg, prog, nthreads).run(max_cycles)
}

#[cfg(test)]
mod tests;
