//! The vector unit: vector control logic + lanes, with VLT partitioning.
//!
//! With `threads == 1` this is the base vector unit of Table 3: a 32-entry
//! window fed by the SU, 2-way out-of-order issue, and `lanes` lanes each
//! holding three arithmetic datapaths (add/logical, multiply, divide/misc)
//! and two memory ports into the banked L2.
//!
//! With `threads ∈ {2, 4}` the unit is statically partitioned (paper §3.2):
//! each VLT thread owns `lanes/threads` lanes, `window/threads` window
//! entries, and a share of the 2-per-cycle issue bandwidth — the
//! "multiplexed VCL" the paper finds performs as well as a replicated one.
//!
//! On a multi-cluster machine (DESIGN.md §11) one `VectorUnit` models one
//! lane *cluster*: the system instantiates several and routes each VLT
//! thread to `cluster = thread % active_clusters`. The unit then works in
//! *local* thread indices (`thread / active_clusters`); the mapping is set
//! with [`VectorUnit::set_thread_map`] and global observation inputs (the
//! parked mask, the thread count) are translated internally. Vector memory
//! traffic of a clustered unit crosses the inter-cluster network
//! ([`ClusterNet`]) on its way to the shared L2.
//!
//! Per-cycle utilization of every arithmetic datapath is classified as
//! busy / partly-idle (short VL) / stalled / all-idle, reproducing the
//! taxonomy of Figure 4.

use std::sync::Arc;

use vlt_exec::{AddrArena, AddrRange, DecodedProgram};
use vlt_isa::{Op, OpClass};
use vlt_mem::{ClusterNet, MemSystem};
use vlt_scalar::{fold_event, StallBreakdown, StallCause, VecDispatch, VecToken, VectorSink};

use crate::result::Utilization;

/// Vector-unit configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VuConfig {
    /// Total vector lanes (8 in the base design).
    pub lanes: usize,
    /// VLT threads the lanes are partitioned across (1, 2, or 4).
    pub threads: usize,
    /// Total VCL issue bandwidth per cycle (2 in the base design).
    pub issue_width: usize,
    /// Total vector instruction window entries (32 in the base design).
    pub window: usize,
    /// Chain dependent vector instructions element-wise (Cray-style). When
    /// false, consumers wait for the producer's full completion — the
    /// ablation for DESIGN.md §4.
    pub chaining: bool,
}

impl VuConfig {
    /// The base (Table 3) vector unit with a given lane count.
    pub fn base(lanes: usize) -> Self {
        VuConfig { lanes, threads: 1, issue_width: 2, window: 32, chaining: true }
    }

    /// Partition for `threads` VLT threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(matches!(threads, 1 | 2 | 4), "VLT vector threads must be 1, 2, or 4");
        assert!(self.lanes.is_multiple_of(threads), "lanes must divide evenly across threads");
        self.threads = threads;
        self
    }

    /// Lanes owned by each partition.
    pub fn lanes_per_thread(&self) -> usize {
        self.lanes / self.threads
    }

    /// Window entries per partition.
    pub fn window_per_thread(&self) -> usize {
        (self.window / self.threads).max(1)
    }
}

/// Pipeline startup latency per arithmetic class. Kept small: the modeled
/// machine chains dependent vector instructions (Cray X1 style), so the
/// effective dead time between dependent ops is a few cycles, not the full
/// pipeline depth.
fn startup(class: OpClass) -> u64 {
    match class {
        OpClass::VAdd => 2,
        OpClass::VMul => 3,
        OpClass::VDiv => 6,
        _ => 1,
    }
}

/// Per-element occupancy cost. Only true divides and square roots are
/// multi-cycle; everything else on the divide/misc unit (conversions,
/// reductions, inserts/extracts) is pipelined at one element per cycle.
fn elem_cost(op: Op) -> u64 {
    match op {
        Op::VfdivVV | Op::VfdivVS | Op::Vfsqrt => 4,
        _ => 1,
    }
}

/// Index of the arithmetic datapath class (0 = add, 1 = mul, 2 = div/misc).
fn fu_index(class: OpClass) -> Option<usize> {
    match class {
        OpClass::VAdd => Some(0),
        OpClass::VMul => Some(1),
        OpClass::VDiv => Some(2),
        _ => None,
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum St {
    Waiting,
    Done(u64),
    Reported,
}

/// What kind of producer a dep-free entry's future `ready_base` traces back
/// to — attribution metadata only (timing reads `ready_base` alone).
#[derive(Debug, Clone, Copy, PartialEq)]
enum WaitSrc {
    /// A scalar producer (the dispatch-time snapshot, or a scalar-unit
    /// resolution of a scalar instruction).
    Scalar,
    /// An in-flight vector arithmetic producer (chaining position).
    Vector,
    /// An in-flight vector memory producer (bank-bound wait).
    VectorMem,
    /// An in-flight vector memory producer whose access waited for a busy
    /// inter-cluster link (network-bound wait).
    VectorNet,
}

#[derive(Debug)]
struct VuEntry {
    token: VecToken,
    /// Originating VLT thread (dep scoping — seqs are only unique per SU).
    vthread: usize,
    seq: u64,
    sidx: u32,
    class: OpClass,
    vl: u16,
    addrs: AddrRange,
    deps: Vec<u64>,
    /// Subset of `deps` with scalar producers (attribution only).
    scalar_deps: Vec<u64>,
    ready_base: u64,
    dispatched_at: u64,
    state: St,
    /// Producer kind behind the current `ready_base` (attribution only).
    wait: WaitSrc,
}

/// One functional-unit pipeline inside a partition: occupied for a window
/// of cycles by the vector instruction it is executing.
#[derive(Debug, Clone, Copy, Default)]
struct Fu {
    busy_until: u64,
    /// (start, duration, vl, per-element-group cost) of the current op.
    cur: Option<(u64, u64, u16, u64)>,
}

impl Fu {
    /// Datapaths of this unit doing element work at cycle `now`, given the
    /// partition owns `lanes` lanes.
    fn busy_datapaths(&self, now: u64, lanes: usize) -> Option<usize> {
        let (start, dur, vl, step) = self.cur?;
        if now < start || now >= start + dur {
            return None;
        }
        // Elements retire `lanes` per `step` cycles; the final group may
        // use fewer than `lanes` datapaths (short-VL partial idling).
        let group = ((now - start) / step) as usize;
        let done_before = group * lanes;
        Some((vl as usize - done_before.min(vl as usize)).min(lanes))
    }
}

#[derive(Debug)]
struct Partition {
    lanes: usize,
    window: Vec<VuEntry>,
    arith: [Fu; 3],
    vmem: [Fu; 2],
}

/// One vector instruction issued to a functional unit this cycle — logged
/// (when event logging is on) for the observability layer; never read by
/// the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VecIssue {
    /// Lane cluster the instruction issued in (0 on single-cluster
    /// machines).
    pub cluster: u32,
    /// Lane partition (within the cluster) the instruction issued in.
    pub partition: u32,
    /// Originating VLT thread (global software thread id).
    pub vthread: u32,
    /// Static instruction index.
    pub sidx: u32,
    /// Effective vector length.
    pub vl: u16,
    /// Lane count of the issuing partition (fixes the per-lane track
    /// geometry: lane `j` of the partition is active iff `j < vl`).
    pub lanes: u16,
    /// Resource class.
    pub class: OpClass,
    /// Issue cycle.
    pub start: u64,
    /// Full-completion cycle.
    pub done: u64,
}

/// The vector unit.
#[derive(Debug)]
pub struct VectorUnit {
    cfg: VuConfig,
    partitions: Vec<Partition>,
    /// Global VLT threads with `thread % stride == offset` feed this unit;
    /// `(1, 0)` (the default) is the single-cluster identity mapping.
    /// `offset >= stride` marks a cluster outside the active set (its lanes
    /// idle). See [`VectorUnit::set_thread_map`].
    stride: usize,
    /// This unit's cluster id in the thread mapping.
    offset: usize,
    next_token: u64,
    /// Aggregate datapath utilization (Figure 4 categories).
    pub util: Utilization,
    /// Why each stalled/all-idle datapath-cycle was lost. Conservation
    /// invariant: `stalls.total() == util.stalled + util.all_idle` at all
    /// times, under both drivers.
    pub stalls: StallBreakdown,
    /// Total vector instructions issued to functional units.
    pub issued: u64,
    /// Per-physical-lane busy datapath-cycles on the arithmetic pipes,
    /// credited inside the same per-cycle accounting pass as the aggregate
    /// taxonomy (idle-skipped spans carry no arithmetic occupancy, so the
    /// bulk-credit path never touches these). Indexed by physical lane;
    /// survives repartitioning. Conservation: sums to `util.busy`.
    lane_busy: Vec<u64>,
    /// Per-physical-lane partly-idle datapath-cycles (occupied arithmetic
    /// pipe, lane masked off by a short VL). Sums to `util.partly_idle`.
    lane_partly: Vec<u64>,
    /// When true, every functional-unit issue is appended to `issue_log`
    /// (drained by the system driver each cycle). Observation only.
    log_issues: bool,
    /// Issues logged since the driver last drained them.
    issue_log: Vec<VecIssue>,
    prog: Arc<DecodedProgram>,
}

impl VectorUnit {
    /// Build the unit for the given configuration.
    pub fn new(cfg: VuConfig, prog: Arc<DecodedProgram>) -> Self {
        let partitions = (0..cfg.threads)
            .map(|_| Partition {
                lanes: cfg.lanes_per_thread(),
                window: Vec::new(),
                arith: [Fu::default(); 3],
                vmem: [Fu::default(); 2],
            })
            .collect();
        VectorUnit {
            cfg,
            partitions,
            stride: 1,
            offset: 0,
            next_token: 0,
            util: Utilization::default(),
            stalls: StallBreakdown::default(),
            issued: 0,
            lane_busy: vec![0; cfg.lanes],
            lane_partly: vec![0; cfg.lanes],
            log_issues: false,
            issue_log: Vec::new(),
            prog,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &VuConfig {
        &self.cfg
    }

    /// Enable or disable functional-unit issue logging (observer support).
    pub fn set_issue_logging(&mut self, on: bool) {
        self.log_issues = on;
        if !on {
            self.issue_log.clear();
        }
    }

    /// Issues logged since the last [`VectorUnit::clear_issue_log`] call.
    pub fn issue_log(&self) -> &[VecIssue] {
        &self.issue_log
    }

    /// Discard consumed issue events, keeping the buffer capacity.
    pub fn clear_issue_log(&mut self) {
        self.issue_log.clear();
    }

    /// Per-physical-lane arithmetic-datapath occupancy counters, as
    /// `(busy, partly_idle)` slices of length `lanes` in datapath-cycles.
    /// Busy sums to `util.busy` and partly-idle to `util.partly_idle`
    /// over the whole unit (the per-lane decomposition of Figure 4's
    /// occupied categories).
    pub fn lane_occupancy(&self) -> (&[u64], &[u64]) {
        (&self.lane_busy, &self.lane_partly)
    }

    /// Map global VLT threads onto this unit: threads with
    /// `thread % stride == offset` feed it, renumbered locally as
    /// `thread / stride`. The system driver keeps this in sync with the
    /// active cluster count; `offset >= stride` parks the whole cluster
    /// outside the active set.
    pub fn set_thread_map(&mut self, stride: usize, offset: usize) {
        assert!(stride >= 1, "thread-map stride must be at least 1");
        self.stride = stride;
        self.offset = offset;
    }

    /// This unit's cluster id in the thread mapping.
    pub fn cluster(&self) -> usize {
        self.offset
    }

    /// Translate the global parked mask and thread count into this unit's
    /// local thread space (identity on single-cluster machines; empty for a
    /// cluster outside the active set).
    fn localize(&self, parked_threads: u64, nthreads: usize) -> (u64, usize) {
        if self.stride == 1 {
            return (parked_threads, nthreads);
        }
        if self.offset >= self.stride {
            return (0, 0);
        }
        let ln =
            if nthreads > self.offset { (nthreads - self.offset).div_ceil(self.stride) } else { 0 };
        let mut lp = 0u64;
        for j in 0..ln.min(64) {
            let g = j * self.stride + self.offset;
            if g < 64 && parked_threads & (1u64 << g) != 0 {
                lp |= 1u64 << j;
            }
        }
        (lp, ln)
    }

    /// Advance one cycle: issue ready entries, then account utilization
    /// (so work started this cycle is classified as busy, not stalled).
    ///
    /// The multiplexed VCL time-shares its issue bandwidth: `issue_width`
    /// slots total per cycle, offered to the partitions in rotating priority
    /// order, work-conserving — an idle partition's slots flow to the
    /// others. This is the paper's finding that a multiplexed VCL performs
    /// as fast as a replicated one (§3.2).
    ///
    /// `net` is the inter-cluster network on multi-cluster machines (`None`
    /// routes vector memory traffic straight into the L2, the classic
    /// single-cluster path). `parked_threads` is a bitmask of software
    /// threads currently parked at a barrier and `nthreads` the software
    /// thread count — observation-only inputs for stall-cause attribution
    /// (a partition whose feeding threads are all parked idles as
    /// `BarrierWait`, not `NoDlp`). `draining` marks a machine-wide pending
    /// repartition (idling attributes as `Drain`); the repartition itself
    /// is applied by the system driver via [`VectorUnit::repartition`].
    #[allow(clippy::too_many_arguments)]
    pub fn tick(
        &mut self,
        now: u64,
        mem: &mut MemSystem,
        mut net: Option<&mut ClusterNet>,
        arena: &AddrArena,
        parked_threads: u64,
        nthreads: usize,
        draining: bool,
    ) {
        let t = self.cfg.threads;
        let mut budget = self.cfg.issue_width;
        for k in 0..t {
            if budget == 0 {
                break;
            }
            let pi = (now as usize + k) % t;
            budget = self.issue_partition(pi, budget, now, mem, net.as_deref_mut(), arena);
        }

        let (parked_local, local_threads) = self.localize(parked_threads, nthreads);
        self.account(now, parked_local, local_threads, draining);

        for p in &mut self.partitions {
            p.window.retain(|e| e.state != St::Reported);
        }
    }

    /// Issue from one partition; returns the unused budget.
    fn issue_partition(
        &mut self,
        pi: usize,
        mut budget: usize,
        now: u64,
        mem: &mut MemSystem,
        mut net: Option<&mut ClusterNet>,
        arena: &AddrArena,
    ) -> usize {
        let mut resolutions: Vec<(usize, u64, u64, WaitSrc)> = Vec::new();
        {
            let prog = Arc::clone(&self.prog);
            let p = &mut self.partitions[pi];
            let lanes = p.lanes;
            for i in 0..p.window.len() {
                if budget == 0 {
                    break;
                }
                let e = &p.window[i];
                if e.state != St::Waiting
                    || !e.deps.is_empty()
                    || e.ready_base > now
                    || e.dispatched_at >= now
                {
                    continue;
                }
                let class = e.class;
                let op = prog.get(e.sidx as usize).inst.op;
                let mut net_contended = false;
                // `done` is full completion (what the SU polls and what the
                // ROB retires on); `chain_ready` is when the first element
                // group is available — dependent vector instructions in the
                // same partition chain from it, Cray-style (the consumer's
                // own occupancy then finishes no earlier than the producer).
                let (done, chain_ready) = match class {
                    OpClass::VMask => (now + 1, now + 1),
                    OpClass::VAdd | OpClass::VMul | OpClass::VDiv => {
                        let f = fu_index(class).unwrap();
                        if p.arith[f].busy_until > now {
                            continue;
                        }
                        let vl = e.vl.max(1) as u64;
                        let step = elem_cost(op);
                        let dur = vl.div_ceil(lanes as u64) * step;
                        p.arith[f].busy_until = now + dur;
                        p.arith[f].cur = Some((now, dur, e.vl, step));
                        (now + startup(class) + dur, now + startup(class) + step)
                    }
                    OpClass::VLoad | OpClass::VStore => {
                        let Some(f) = p.vmem.iter().position(|f| f.busy_until <= now) else {
                            continue;
                        };
                        let addrs = arena.slice(e.addrs);
                        let n = addrs.len().max(1) as u64;
                        let dur = n.div_ceil(lanes as u64);
                        let write = class == OpClass::VStore;
                        let mut last = now + dur;
                        let mut first_group = now + 1;
                        for (i, a) in addrs.iter().enumerate() {
                            let at = now + (i / lanes) as u64;
                            let t = match net.as_deref_mut() {
                                Some(n) => {
                                    let (t, contended) = n.access(mem, self.offset, *a, write, at);
                                    net_contended |= contended;
                                    t
                                }
                                None => mem.l2_access(*a, write, at),
                            };
                            if !write {
                                last = last.max(t);
                                if i < lanes {
                                    first_group = first_group.max(t);
                                }
                            }
                        }
                        p.vmem[f].busy_until = now + dur;
                        p.vmem[f].cur = Some((now, dur, e.vl, 1));
                        (last + 1, first_group + 1)
                    }
                    other => unreachable!("non-vector class {other:?} in the vector unit"),
                };
                budget -= 1;
                self.issued += 1;
                let seq = e.seq;
                let vthread = e.vthread;
                if self.log_issues {
                    self.issue_log.push(VecIssue {
                        cluster: self.offset as u32,
                        partition: pi as u32,
                        // Entries hold local thread ids; log the global one.
                        vthread: (vthread * self.stride + self.offset) as u32,
                        sidx: e.sidx,
                        vl: e.vl,
                        lanes: lanes as u16,
                        class,
                        start: now,
                        done,
                    });
                }
                let src = if matches!(class, OpClass::VLoad | OpClass::VStore) {
                    if net_contended {
                        WaitSrc::VectorNet
                    } else {
                        WaitSrc::VectorMem
                    }
                } else {
                    WaitSrc::Vector
                };
                p.window[i].state = St::Done(done);
                resolutions.push((
                    vthread,
                    seq,
                    if self.cfg.chaining { chain_ready } else { done },
                    src,
                ));
            }
        }
        // Wake same-partition consumers (vector-vector chaining through the
        // window happens at completion granularity).
        for (vthread, seq, done, src) in resolutions {
            self.resolve_from(vthread, seq, done, Some(src));
        }
        budget
    }

    /// Per-cycle Figure-4 accounting across all arithmetic datapaths, with
    /// stall-cause attribution: each non-busy datapath group charges
    /// `lanes` datapath-cycles both to the coarse stalled/all-idle bucket
    /// and to this cycle's partition-level [`StallCause`].
    fn account(&mut self, now: u64, parked_threads: u64, nthreads: usize, draining: bool) {
        let pcount = self.partitions.len();
        for pi in 0..pcount {
            let parked = Self::partition_parked(pi, pcount, parked_threads, nthreads);
            let p = &self.partitions[pi];
            let waiting = p.window.iter().any(|e| matches!(e.state, St::Waiting));
            let mut cause = None;
            for f in 0..3 {
                match p.arith[f].busy_datapaths(now, p.lanes) {
                    Some(busy) => {
                        self.util.busy += busy as u64;
                        self.util.partly_idle += (p.lanes - busy) as u64;
                        // Per-lane occupancy, credited in the same pass: an
                        // element group occupies the partition's first `busy`
                        // physical lanes (lane `j` executes element
                        // `g * lanes + j`, in range exactly when `j < busy`),
                        // so the split conserves against the aggregate by
                        // construction — including spans truncated by run end
                        // or a repartition, which simulate (and charge) only
                        // the cycles that actually elapsed.
                        let base = pi * p.lanes;
                        for j in 0..busy {
                            self.lane_busy[base + j] += 1;
                        }
                        for j in busy..p.lanes {
                            self.lane_partly[base + j] += 1;
                        }
                    }
                    None => {
                        if waiting {
                            self.util.stalled += p.lanes as u64;
                        } else {
                            self.util.all_idle += p.lanes as u64;
                        }
                        let c = *cause
                            .get_or_insert_with(|| Self::partition_cause(p, now, draining, parked));
                        self.stalls.add(c, p.lanes as u64);
                    }
                }
            }
        }
    }

    /// True when partition `pi` has at least one feeding software thread and
    /// all of them are parked at a barrier. Thread `t` feeds partition
    /// `t % pcount` (the [`VectorSink::try_dispatch`] mapping).
    fn partition_parked(pi: usize, pcount: usize, parked_threads: u64, nthreads: usize) -> bool {
        let mut any = false;
        let mut t = pi;
        while t < nthreads.min(64) {
            any = true;
            if parked_threads & (1u64 << t) == 0 {
                return false;
            }
            t += pcount;
        }
        any
    }

    /// Why a partition's non-busy datapath groups are losing this cycle.
    /// Every input is constant across a quiescent span (window membership,
    /// deps, `ready_base`, `wait`, the pending repartition, and park state
    /// only change inside driver steps; a dep-free entry that is ready right
    /// now forces `Some(from)` in [`VectorUnit::next_event`]), so the
    /// per-cycle and bulk-credit paths tag identically.
    fn partition_cause(p: &Partition, now: u64, draining: bool, parked: bool) -> StallCause {
        let mut ready_now = false;
        let mut scalar_dep = false;
        let mut any_dep = false;
        let mut mem_wait = false;
        let mut net_wait = false;
        let mut waiting = false;
        for e in &p.window {
            if !matches!(e.state, St::Waiting) {
                continue;
            }
            waiting = true;
            if e.deps.is_empty() {
                if e.ready_base <= now && e.dispatched_at < now {
                    ready_now = true;
                } else {
                    match e.wait {
                        WaitSrc::VectorMem => mem_wait = true,
                        WaitSrc::VectorNet => net_wait = true,
                        WaitSrc::Scalar => scalar_dep = true,
                        WaitSrc::Vector => {}
                    }
                }
            } else {
                any_dep = true;
                if !e.scalar_deps.is_empty() {
                    scalar_dep = true;
                }
            }
        }
        if waiting {
            // Stalled: fixed priority so attribution is deterministic.
            if ready_now {
                StallCause::IssueWidth
            } else if scalar_dep {
                StallCause::ScalarDep
            } else if net_wait {
                StallCause::NetworkContention
            } else if mem_wait {
                StallCause::BankConflict
            } else if any_dep {
                StallCause::ChainDepth
            } else {
                // Dep-free entries waiting out a vector producer's chain
                // position (or their own dispatch cycle).
                StallCause::ChainDepth
            }
        } else if draining {
            StallCause::Drain
        } else if parked {
            StallCause::BarrierWait
        } else {
            StallCause::NoDlp
        }
    }

    /// Earliest cycle `>= from` at which the vector unit can change state:
    /// an in-flight arithmetic op's per-cycle datapath occupancy is still
    /// evolving (no skip — the utilization taxonomy varies cycle to
    /// cycle), a completed entry awaits the scalar unit's poll, or a
    /// dep-free entry can issue. `None` when every window entry is blocked
    /// on an unresolved producer — the wake then comes from the producing
    /// unit's own event. Never later than the true next change; `Some(from)`
    /// means "cannot skip". (A pending repartition over a drained unit is
    /// the system driver's event, guarded in its horizon scan.)
    pub fn next_event(&self, from: u64) -> Option<u64> {
        let mut ev: Option<u64> = None;
        for p in &self.partitions {
            for f in &p.arith {
                if let Some((start, dur, _, _)) = f.cur {
                    if start + dur > from {
                        return Some(from);
                    }
                }
            }
            for e in &p.window {
                match e.state {
                    // The SU consumes completions at its next poll.
                    St::Done(_) | St::Reported => return Some(from),
                    St::Waiting if e.deps.is_empty() => {
                        fold_event(&mut ev, from.max(e.ready_base).max(e.dispatched_at + 1));
                    }
                    St::Waiting => {}
                }
            }
        }
        ev
    }

    /// Credit `cycles` provably-idle cycles starting at `from` to the
    /// utilization taxonomy, exactly as per-cycle [`VectorUnit::tick`]
    /// accounting would have: no datapath does element work during a skipped
    /// span ([`VectorUnit::next_event`] refuses to skip while any arithmetic
    /// pipeline is occupied), so each partition's three datapath groups
    /// accrue `stalled` when work is waiting in its window and `all_idle`
    /// otherwise, all under one [`StallCause`] — every attribution input is
    /// constant over a quiescent span (see [`VectorUnit`]'s
    /// `partition_cause`).
    pub fn account_idle_span(
        &mut self,
        from: u64,
        cycles: u64,
        parked_threads: u64,
        nthreads: usize,
        draining: bool,
    ) {
        let (parked_threads, nthreads) = self.localize(parked_threads, nthreads);
        let pcount = self.partitions.len();
        for pi in 0..pcount {
            let parked = Self::partition_parked(pi, pcount, parked_threads, nthreads);
            let p = &self.partitions[pi];
            let waiting = p.window.iter().any(|e| matches!(e.state, St::Waiting));
            let add = 3 * p.lanes as u64 * cycles;
            if waiting {
                self.util.stalled += add;
            } else {
                self.util.all_idle += add;
            }
            let cause = Self::partition_cause(p, from, draining, parked);
            self.stalls.add(cause, add);
        }
    }

    /// True when no vector instructions are in flight.
    pub fn drained(&self) -> bool {
        self.partitions.iter().all(|p| p.window.is_empty())
    }

    /// Repartition the lanes across a new VLT thread count (paper §3.3:
    /// programs switch the partition at region boundaries where the unit
    /// is drained and the vector registers hold no live values).
    ///
    /// Panics if instructions are still in flight — callers gate on
    /// [`VectorUnit::drained`].
    pub fn repartition(&mut self, threads: usize) {
        assert!(self.drained(), "repartition requires a drained vector unit");
        assert!(matches!(threads, 1 | 2 | 4), "VLT vector threads must be 1, 2, or 4");
        assert!(self.cfg.lanes.is_multiple_of(threads));
        self.cfg.threads = threads;
        self.partitions = (0..threads)
            .map(|_| Partition {
                lanes: self.cfg.lanes_per_thread(),
                window: Vec::new(),
                arith: [Fu::default(); 3],
                vmem: [Fu::default(); 2],
            })
            .collect();
    }

    /// The current number of lane partitions.
    pub fn threads(&self) -> usize {
        self.cfg.threads
    }

    /// Producer-completion broadcast with an attribution hint: `src` is the
    /// producer kind when the resolver knows it (the VU's own issue loop),
    /// `None` for scalar-unit broadcasts (classified per consumer through
    /// its `scalar_deps` snapshot). The hint never affects timing.
    fn resolve_from(&mut self, vthread: usize, seq: u64, done_at: u64, src: Option<WaitSrc>) {
        let pi = vthread % self.partitions.len();
        for e in self.partitions[pi].window.iter_mut() {
            if e.state == St::Waiting && e.vthread == vthread {
                if let Some(pos) = e.deps.iter().position(|d| *d == seq) {
                    e.deps.swap_remove(pos);
                    let kind = src.unwrap_or(if e.scalar_deps.contains(&seq) {
                        WaitSrc::Scalar
                    } else {
                        WaitSrc::Vector
                    });
                    if let Some(pos) = e.scalar_deps.iter().position(|d| *d == seq) {
                        e.scalar_deps.swap_remove(pos);
                    }
                    if done_at >= e.ready_base {
                        e.wait = kind;
                    }
                    e.ready_base = e.ready_base.max(done_at);
                }
            }
        }
    }
}

impl VectorSink for VectorUnit {
    fn try_dispatch(&mut self, d: VecDispatch, now: u64) -> Option<VecToken> {
        // NOTE: dispatch backpressure while a repartition drains is enforced
        // by the system driver's router (it spans all clusters), not here.
        let cap = self.cfg.window_per_thread();
        // Under a narrower partitioning than the thread count (a wide-DLP
        // phase after `vltcfg 1`), thread groups share a partition.
        let pi = d.vthread % self.partitions.len();
        let p = &mut self.partitions[pi];
        if p.window.len() >= cap {
            return None;
        }
        let token = VecToken(self.next_token);
        self.next_token += 1;
        p.window.push(VuEntry {
            token,
            vthread: d.vthread,
            seq: d.seq,
            sidx: d.sidx,
            class: d.class,
            vl: d.vl,
            addrs: d.addrs,
            deps: d.deps,
            scalar_deps: d.scalar_deps,
            ready_base: d.ready_base,
            dispatched_at: now,
            state: St::Waiting,
            wait: WaitSrc::Scalar,
        });
        Some(token)
    }

    fn resolve(&mut self, vthread: usize, seq: u64, done_at: u64) {
        self.resolve_from(vthread, seq, done_at, None);
    }

    fn poll(&mut self, token: VecToken) -> Option<u64> {
        for p in &mut self.partitions {
            for e in p.window.iter_mut() {
                if e.token == token {
                    if let St::Done(t) = e.state {
                        e.state = St::Reported;
                        return Some(t);
                    }
                    return None;
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests;
