//! The vector unit: vector control logic + lanes, with VLT partitioning.
//!
//! With `threads == 1` this is the base vector unit of Table 3: a 32-entry
//! window fed by the SU, 2-way out-of-order issue, and `lanes` lanes each
//! holding three arithmetic datapaths (add/logical, multiply, divide/misc)
//! and two memory ports into the banked L2.
//!
//! With `threads ∈ {2, 4}` the unit is statically partitioned (paper §3.2):
//! each VLT thread owns `lanes/threads` lanes, `window/threads` window
//! entries, and a share of the 2-per-cycle issue bandwidth — the
//! "multiplexed VCL" the paper finds performs as well as a replicated one.
//!
//! Per-cycle utilization of every arithmetic datapath is classified as
//! busy / partly-idle (short VL) / stalled / all-idle, reproducing the
//! taxonomy of Figure 4.

use std::sync::Arc;

use vlt_exec::{AddrArena, AddrRange, DecodedProgram};
use vlt_isa::{Op, OpClass};
use vlt_mem::MemSystem;
use vlt_scalar::{fold_event, VecDispatch, VecToken, VectorSink};

use crate::result::Utilization;

/// Vector-unit configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VuConfig {
    /// Total vector lanes (8 in the base design).
    pub lanes: usize,
    /// VLT threads the lanes are partitioned across (1, 2, or 4).
    pub threads: usize,
    /// Total VCL issue bandwidth per cycle (2 in the base design).
    pub issue_width: usize,
    /// Total vector instruction window entries (32 in the base design).
    pub window: usize,
    /// Chain dependent vector instructions element-wise (Cray-style). When
    /// false, consumers wait for the producer's full completion — the
    /// ablation for DESIGN.md §4.
    pub chaining: bool,
}

impl VuConfig {
    /// The base (Table 3) vector unit with a given lane count.
    pub fn base(lanes: usize) -> Self {
        VuConfig { lanes, threads: 1, issue_width: 2, window: 32, chaining: true }
    }

    /// Partition for `threads` VLT threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(matches!(threads, 1 | 2 | 4), "VLT vector threads must be 1, 2, or 4");
        assert!(self.lanes.is_multiple_of(threads), "lanes must divide evenly across threads");
        self.threads = threads;
        self
    }

    /// Lanes owned by each partition.
    pub fn lanes_per_thread(&self) -> usize {
        self.lanes / self.threads
    }

    /// Window entries per partition.
    pub fn window_per_thread(&self) -> usize {
        (self.window / self.threads).max(1)
    }
}

/// Pipeline startup latency per arithmetic class. Kept small: the modeled
/// machine chains dependent vector instructions (Cray X1 style), so the
/// effective dead time between dependent ops is a few cycles, not the full
/// pipeline depth.
fn startup(class: OpClass) -> u64 {
    match class {
        OpClass::VAdd => 2,
        OpClass::VMul => 3,
        OpClass::VDiv => 6,
        _ => 1,
    }
}

/// Per-element occupancy cost. Only true divides and square roots are
/// multi-cycle; everything else on the divide/misc unit (conversions,
/// reductions, inserts/extracts) is pipelined at one element per cycle.
fn elem_cost(op: Op) -> u64 {
    match op {
        Op::VfdivVV | Op::VfdivVS | Op::Vfsqrt => 4,
        _ => 1,
    }
}

/// Index of the arithmetic datapath class (0 = add, 1 = mul, 2 = div/misc).
fn fu_index(class: OpClass) -> Option<usize> {
    match class {
        OpClass::VAdd => Some(0),
        OpClass::VMul => Some(1),
        OpClass::VDiv => Some(2),
        _ => None,
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum St {
    Waiting,
    Done(u64),
    Reported,
}

#[derive(Debug)]
struct VuEntry {
    token: VecToken,
    /// Originating VLT thread (dep scoping — seqs are only unique per SU).
    vthread: usize,
    seq: u64,
    sidx: u32,
    class: OpClass,
    vl: u16,
    addrs: AddrRange,
    deps: Vec<u64>,
    ready_base: u64,
    dispatched_at: u64,
    state: St,
}

/// One functional-unit pipeline inside a partition: occupied for a window
/// of cycles by the vector instruction it is executing.
#[derive(Debug, Clone, Copy, Default)]
struct Fu {
    busy_until: u64,
    /// (start, duration, vl, per-element-group cost) of the current op.
    cur: Option<(u64, u64, u16, u64)>,
}

impl Fu {
    /// Datapaths of this unit doing element work at cycle `now`, given the
    /// partition owns `lanes` lanes.
    fn busy_datapaths(&self, now: u64, lanes: usize) -> Option<usize> {
        let (start, dur, vl, step) = self.cur?;
        if now < start || now >= start + dur {
            return None;
        }
        // Elements retire `lanes` per `step` cycles; the final group may
        // use fewer than `lanes` datapaths (short-VL partial idling).
        let group = ((now - start) / step) as usize;
        let done_before = group * lanes;
        Some((vl as usize - done_before.min(vl as usize)).min(lanes))
    }
}

#[derive(Debug)]
struct Partition {
    lanes: usize,
    window: Vec<VuEntry>,
    arith: [Fu; 3],
    vmem: [Fu; 2],
}

/// The vector unit.
#[derive(Debug)]
pub struct VectorUnit {
    cfg: VuConfig,
    partitions: Vec<Partition>,
    /// A requested repartition waiting for the unit to drain; while set,
    /// dispatch is refused (natural backpressure on the scalar units).
    pending_threads: Option<usize>,
    next_token: u64,
    /// Aggregate datapath utilization (Figure 4 categories).
    pub util: Utilization,
    /// Total vector instructions issued to functional units.
    pub issued: u64,
    prog: Arc<DecodedProgram>,
}

impl VectorUnit {
    /// Build the unit for the given configuration.
    pub fn new(cfg: VuConfig, prog: Arc<DecodedProgram>) -> Self {
        let partitions = (0..cfg.threads)
            .map(|_| Partition {
                lanes: cfg.lanes_per_thread(),
                window: Vec::new(),
                arith: [Fu::default(); 3],
                vmem: [Fu::default(); 2],
            })
            .collect();
        VectorUnit {
            cfg,
            partitions,
            pending_threads: None,
            next_token: 0,
            util: Utilization::default(),
            issued: 0,
            prog,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &VuConfig {
        &self.cfg
    }

    /// Advance one cycle: issue ready entries, then account utilization
    /// (so work started this cycle is classified as busy, not stalled).
    ///
    /// The multiplexed VCL time-shares its issue bandwidth: `issue_width`
    /// slots total per cycle, offered to the partitions in rotating priority
    /// order, work-conserving — an idle partition's slots flow to the
    /// others. This is the paper's finding that a multiplexed VCL performs
    /// as fast as a replicated one (§3.2).
    pub fn tick(&mut self, now: u64, mem: &mut MemSystem, arena: &AddrArena) {
        if let Some(t) = self.pending_threads {
            if self.drained() {
                self.repartition(t);
                self.pending_threads = None;
            }
        }
        let t = self.cfg.threads;
        let mut budget = self.cfg.issue_width;
        for k in 0..t {
            if budget == 0 {
                break;
            }
            let pi = (now as usize + k) % t;
            budget = self.issue_partition(pi, budget, now, mem, arena);
        }

        self.account(now);

        for p in &mut self.partitions {
            p.window.retain(|e| e.state != St::Reported);
        }
    }

    /// Issue from one partition; returns the unused budget.
    fn issue_partition(
        &mut self,
        pi: usize,
        mut budget: usize,
        now: u64,
        mem: &mut MemSystem,
        arena: &AddrArena,
    ) -> usize {
        let mut resolutions: Vec<(usize, u64, u64)> = Vec::new();
        {
            let prog = Arc::clone(&self.prog);
            let p = &mut self.partitions[pi];
            let lanes = p.lanes;
            for i in 0..p.window.len() {
                if budget == 0 {
                    break;
                }
                let e = &p.window[i];
                if e.state != St::Waiting
                    || !e.deps.is_empty()
                    || e.ready_base > now
                    || e.dispatched_at >= now
                {
                    continue;
                }
                let class = e.class;
                let op = prog.get(e.sidx as usize).inst.op;
                // `done` is full completion (what the SU polls and what the
                // ROB retires on); `chain_ready` is when the first element
                // group is available — dependent vector instructions in the
                // same partition chain from it, Cray-style (the consumer's
                // own occupancy then finishes no earlier than the producer).
                let (done, chain_ready) = match class {
                    OpClass::VMask => (now + 1, now + 1),
                    OpClass::VAdd | OpClass::VMul | OpClass::VDiv => {
                        let f = fu_index(class).unwrap();
                        if p.arith[f].busy_until > now {
                            continue;
                        }
                        let vl = e.vl.max(1) as u64;
                        let step = elem_cost(op);
                        let dur = vl.div_ceil(lanes as u64) * step;
                        p.arith[f].busy_until = now + dur;
                        p.arith[f].cur = Some((now, dur, e.vl, step));
                        (now + startup(class) + dur, now + startup(class) + step)
                    }
                    OpClass::VLoad | OpClass::VStore => {
                        let Some(f) = p.vmem.iter().position(|f| f.busy_until <= now) else {
                            continue;
                        };
                        let addrs = arena.slice(e.addrs);
                        let n = addrs.len().max(1) as u64;
                        let dur = n.div_ceil(lanes as u64);
                        let write = class == OpClass::VStore;
                        let mut last = now + dur;
                        let mut first_group = now + 1;
                        for (i, a) in addrs.iter().enumerate() {
                            let at = now + (i / lanes) as u64;
                            let t = mem.l2_access(*a, write, at);
                            if !write {
                                last = last.max(t);
                                if i < lanes {
                                    first_group = first_group.max(t);
                                }
                            }
                        }
                        p.vmem[f].busy_until = now + dur;
                        p.vmem[f].cur = Some((now, dur, e.vl, 1));
                        (last + 1, first_group + 1)
                    }
                    other => unreachable!("non-vector class {other:?} in the vector unit"),
                };
                budget -= 1;
                self.issued += 1;
                let seq = e.seq;
                let vthread = e.vthread;
                p.window[i].state = St::Done(done);
                resolutions.push((
                    vthread,
                    seq,
                    if self.cfg.chaining { chain_ready } else { done },
                ));
            }
        }
        // Wake same-partition consumers (vector-vector chaining through the
        // window happens at completion granularity).
        for (vthread, seq, done) in resolutions {
            self.resolve(vthread, seq, done);
        }
        budget
    }

    /// Per-cycle Figure-4 accounting across all arithmetic datapaths.
    fn account(&mut self, now: u64) {
        for p in &self.partitions {
            let waiting = p.window.iter().any(|e| matches!(e.state, St::Waiting));
            for f in 0..3 {
                match p.arith[f].busy_datapaths(now, p.lanes) {
                    Some(busy) => {
                        self.util.busy += busy as u64;
                        self.util.partly_idle += (p.lanes - busy) as u64;
                    }
                    None => {
                        if waiting {
                            self.util.stalled += p.lanes as u64;
                        } else {
                            self.util.all_idle += p.lanes as u64;
                        }
                    }
                }
            }
        }
    }

    /// Earliest cycle `>= from` at which the vector unit can change state:
    /// a drained repartition can apply, an in-flight arithmetic op's
    /// per-cycle datapath occupancy is still evolving (no skip — the
    /// utilization taxonomy varies cycle to cycle), a completed entry
    /// awaits the scalar unit's poll, or a dep-free entry can issue.
    /// `None` when every window entry is blocked on an unresolved producer
    /// — the wake then comes from the producing unit's own event. Never
    /// later than the true next change; `Some(from)` means "cannot skip".
    pub fn next_event(&self, from: u64) -> Option<u64> {
        if self.pending_threads.is_some() && self.drained() {
            return Some(from); // repartition applies at the next tick
        }
        let mut ev: Option<u64> = None;
        for p in &self.partitions {
            for f in &p.arith {
                if let Some((start, dur, _, _)) = f.cur {
                    if start + dur > from {
                        return Some(from);
                    }
                }
            }
            for e in &p.window {
                match e.state {
                    // The SU consumes completions at its next poll.
                    St::Done(_) | St::Reported => return Some(from),
                    St::Waiting if e.deps.is_empty() => {
                        fold_event(&mut ev, from.max(e.ready_base).max(e.dispatched_at + 1));
                    }
                    St::Waiting => {}
                }
            }
        }
        ev
    }

    /// Credit `cycles` provably-idle cycles to the utilization taxonomy,
    /// exactly as per-cycle [`VectorUnit::tick`] accounting would have: no
    /// datapath does element work during a skipped span
    /// ([`VectorUnit::next_event`] refuses to skip while any arithmetic
    /// pipeline is occupied), so each partition's three datapath groups
    /// accrue `stalled` when work is waiting in its window and `all_idle`
    /// otherwise.
    pub fn account_idle_span(&mut self, cycles: u64) {
        for p in &self.partitions {
            let waiting = p.window.iter().any(|e| matches!(e.state, St::Waiting));
            let add = 3 * p.lanes as u64 * cycles;
            if waiting {
                self.util.stalled += add;
            } else {
                self.util.all_idle += add;
            }
        }
    }

    /// True when no vector instructions are in flight.
    pub fn drained(&self) -> bool {
        self.partitions.iter().all(|p| p.window.is_empty())
    }

    /// Repartition the lanes across a new VLT thread count (paper §3.3:
    /// programs switch the partition at region boundaries where the unit
    /// is drained and the vector registers hold no live values).
    ///
    /// Panics if instructions are still in flight — callers gate on
    /// [`VectorUnit::drained`].
    pub fn repartition(&mut self, threads: usize) {
        assert!(self.drained(), "repartition requires a drained vector unit");
        assert!(matches!(threads, 1 | 2 | 4), "VLT vector threads must be 1, 2, or 4");
        assert!(self.cfg.lanes.is_multiple_of(threads));
        self.cfg.threads = threads;
        self.partitions = (0..threads)
            .map(|_| Partition {
                lanes: self.cfg.lanes_per_thread(),
                window: Vec::new(),
                arith: [Fu::default(); 3],
                vmem: [Fu::default(); 2],
            })
            .collect();
    }

    /// The current number of lane partitions.
    pub fn threads(&self) -> usize {
        self.cfg.threads
    }

    /// Request a repartition (paper §3.3: per-phase `vltcfg`). Applied at
    /// the next cycle the unit is drained; until then dispatch is refused.
    /// No-op when the partitioning already matches.
    pub fn request_repartition(&mut self, threads: usize) {
        assert!(matches!(threads, 1 | 2 | 4));
        if threads != self.cfg.threads {
            self.pending_threads = Some(threads);
        }
    }
}

impl VectorSink for VectorUnit {
    fn try_dispatch(&mut self, d: VecDispatch, now: u64) -> Option<VecToken> {
        if self.pending_threads.is_some() {
            return None; // draining toward a repartition
        }
        let cap = self.cfg.window_per_thread();
        // Under a narrower partitioning than the thread count (a wide-DLP
        // phase after `vltcfg 1`), thread groups share a partition.
        let pi = d.vthread % self.partitions.len();
        let p = &mut self.partitions[pi];
        if p.window.len() >= cap {
            return None;
        }
        let token = VecToken(self.next_token);
        self.next_token += 1;
        p.window.push(VuEntry {
            token,
            vthread: d.vthread,
            seq: d.seq,
            sidx: d.sidx,
            class: d.class,
            vl: d.vl,
            addrs: d.addrs,
            deps: d.deps,
            ready_base: d.ready_base,
            dispatched_at: now,
            state: St::Waiting,
        });
        Some(token)
    }

    fn resolve(&mut self, vthread: usize, seq: u64, done_at: u64) {
        let pi = vthread % self.partitions.len();
        for e in self.partitions[pi].window.iter_mut() {
            if e.state == St::Waiting && e.vthread == vthread {
                if let Some(pos) = e.deps.iter().position(|d| *d == seq) {
                    e.deps.swap_remove(pos);
                    e.ready_base = e.ready_base.max(done_at);
                }
            }
        }
    }

    fn poll(&mut self, token: VecToken) -> Option<u64> {
        for p in &mut self.partitions {
            for e in p.window.iter_mut() {
                if e.token == token {
                    if let St::Done(t) = e.state {
                        e.state = St::Reported;
                        return Some(t);
                    }
                    return None;
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests;
