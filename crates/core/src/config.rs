//! Named system design points (paper §4.1, Table 2, §5, §7).
//!
//! Naming follows the paper: `Vn-{SMT,CMP,CMT}{-h}` is a VLT vector
//! processor supporting `n` vector threads with a multiplexed (`SMT`),
//! replicated (`CMP`), or hybrid (`CMT` — replicated multithreaded) scalar
//! unit; `-h` marks heterogeneous scalar units (one 4-way + 2-way others).
//! `CMT` alone is the scalar baseline: the V4-CMT scalar units *without*
//! the vector unit.

use vlt_mem::{MemConfig, NetConfig};
use vlt_scalar::{CoreConfig, StallCause};

/// What-if component idealizations (causal profiling, DESIGN.md §15).
///
/// Each knob removes one source of lost cycles from the timing model
/// while leaving the functional semantics untouched; `vlprof --whatif`
/// measures the speedup each one buys and cross-checks it against the
/// cycles the CPI stack attributes to the corresponding [`StallCause`].
/// All knobs default to off, and with every knob off the timing model is
/// byte-identical to a build without this struct.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdealizeConfig {
    /// L2 bank conflicts never delay an access (bank arbitration is
    /// free; hit/miss latency and DRAM channel contention remain).
    pub zero_conflict_l2: bool,
    /// The inter-cluster network has zero hop latency and never queues
    /// (multi-cluster machines only).
    pub zero_hop_net: bool,
    /// Barriers skip the coherence flush (the L1 invalidation that makes
    /// post-barrier reads miss); the synchronization itself remains, so
    /// residual `BarrierWait` is pure software imbalance.
    pub free_barriers: bool,
    /// Unbounded vector issue bandwidth (the VCL dual-issue limit is
    /// lifted; functional-unit structural hazards remain).
    pub infinite_issue: bool,
}

impl IdealizeConfig {
    /// True when any knob is on.
    pub fn any(&self) -> bool {
        self.zero_conflict_l2 || self.zero_hop_net || self.free_barriers || self.infinite_issue
    }

    /// The single-knob idealization that targets `cause`, or `None` for
    /// causes with no removable hardware component (`no-dlp`, `drain`,
    /// `chain-depth`, and `scalar-dep` are program properties).
    pub fn for_cause(cause: StallCause) -> Option<Self> {
        let mut i = IdealizeConfig::default();
        match cause {
            StallCause::BankConflict => i.zero_conflict_l2 = true,
            StallCause::NetworkContention => i.zero_hop_net = true,
            StallCause::BarrierWait => i.free_barriers = true,
            StallCause::IssueWidth => i.infinite_issue = true,
            _ => return None,
        }
        Some(i)
    }
}

/// Vector-control-logic sizing (kept separate from lane count so the VCL
/// ablations can vary it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VclConfig {
    /// Total vector issue bandwidth per cycle.
    pub issue_width: usize,
    /// Vector instruction window entries.
    pub window: usize,
    /// Element-wise chaining of dependent vector instructions.
    pub chaining: bool,
}

impl Default for VclConfig {
    fn default() -> Self {
        VclConfig { issue_width: 2, window: 32, chaining: true }
    }
}

/// A full design point.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Configuration name as used in the paper's figures.
    pub name: String,
    /// Vector lanes *per cluster*.
    pub lanes: usize,
    /// VLT vector-thread partitions machine-wide (1 = base single-thread
    /// operation). Spread over clusters at run time (DESIGN.md §11).
    pub vlt_threads: usize,
    /// Lane clusters, each a full vector unit (1 = the paper's machines;
    /// >1 is the ultra-wide extension study, DESIGN.md §11).
    pub clusters: usize,
    /// Scalar units, in order; SMT contexts are configured per core.
    pub cores: Vec<CoreConfig>,
    /// Run scalar threads directly on the lanes (paper §5, Figure 6).
    pub lane_threads: bool,
    /// Whether the vector unit exists (false for the CMT scalar baseline).
    pub has_vu: bool,
    /// VCL sizing.
    pub vcl: VclConfig,
    /// Memory hierarchy parameters.
    pub mem: MemConfig,
    /// Inter-cluster network parameters (unused when `clusters == 1`).
    pub net: NetConfig,
    /// What-if idealization knobs (all off for faithful simulation).
    pub ideal: IdealizeConfig,
}

impl SystemConfig {
    fn mk(name: &str, lanes: usize, vlt_threads: usize, cores: Vec<CoreConfig>) -> Self {
        SystemConfig {
            name: name.to_string(),
            lanes,
            vlt_threads,
            cores,
            clusters: 1,
            lane_threads: false,
            has_vu: true,
            vcl: VclConfig::default(),
            mem: MemConfig::default(),
            net: NetConfig::default(),
            ideal: IdealizeConfig::default(),
        }
    }

    /// The base vector processor (Table 3) with a given lane count
    /// (Figure 1 sweeps 1, 2, 4, 8).
    pub fn base(lanes: usize) -> Self {
        Self::mk("base", lanes, 1, vec![CoreConfig::four_way()])
    }

    /// 2 VLT threads, 1 SMT scalar unit.
    pub fn v2_smt() -> Self {
        Self::mk("V2-SMT", 8, 2, vec![CoreConfig::four_way().with_smt(2)])
    }

    /// 2 VLT threads, 2 replicated 4-way scalar units.
    pub fn v2_cmp() -> Self {
        Self::mk("V2-CMP", 8, 2, vec![CoreConfig::four_way(); 2])
    }

    /// 2 VLT threads, heterogeneous scalar units (4-way + 2-way).
    pub fn v2_cmp_h() -> Self {
        Self::mk("V2-CMP-h", 8, 2, vec![CoreConfig::four_way(), CoreConfig::two_way()])
    }

    /// 4 VLT threads, one 4-context SMT scalar unit.
    pub fn v4_smt() -> Self {
        Self::mk("V4-SMT", 8, 4, vec![CoreConfig::four_way().with_smt(4)])
    }

    /// 4 VLT threads, two 2-way-threaded 4-way scalar units (the paper's
    /// sweet spot: full performance at 13% area).
    pub fn v4_cmt() -> Self {
        Self::mk("V4-CMT", 8, 4, vec![CoreConfig::four_way().with_smt(2); 2])
    }

    /// 4 VLT threads, four replicated 4-way scalar units.
    pub fn v4_cmp() -> Self {
        Self::mk("V4-CMP", 8, 4, vec![CoreConfig::four_way(); 4])
    }

    /// 4 VLT threads, heterogeneous (one 4-way + three 2-way).
    pub fn v4_cmp_h() -> Self {
        Self::mk(
            "V4-CMP-h",
            8,
            4,
            vec![
                CoreConfig::four_way(),
                CoreConfig::two_way(),
                CoreConfig::two_way(),
                CoreConfig::two_way(),
            ],
        )
    }

    /// The scalar CMP baseline of Figure 6: the V4-CMT scalar units with no
    /// vector unit — two 4-way cores, each 2-way threaded (4 threads).
    pub fn cmt() -> Self {
        let mut c = Self::mk("CMT", 0, 1, vec![CoreConfig::four_way().with_smt(2); 2]);
        c.has_vu = false;
        c
    }

    /// VLT scalar-thread mode (Figure 6): 8 scalar threads on the 8 lanes,
    /// each lane a 2-way in-order core. The V4-CMT scalar units serve lane
    /// I-cache misses but run no threads (paper §7.2 runs 8 = power-of-two
    /// threads, leaving the SUs idle).
    pub fn v4_cmt_lane_threads() -> Self {
        let mut c = Self::mk("V4-CMT-lanes", 8, 1, vec![CoreConfig::four_way().with_smt(2); 2]);
        c.lane_threads = true;
        c.has_vu = false; // lanes are re-engineered as scalar cores
        c
    }

    /// Total hardware thread contexts across the scalar units.
    pub fn contexts(&self) -> usize {
        self.cores.iter().map(|c| c.smt_contexts).sum()
    }

    /// Maximum software threads this configuration can run.
    pub fn max_threads(&self) -> usize {
        if self.lane_threads {
            self.lanes
        } else {
            self.contexts()
        }
    }

    /// Scale the lane count (the paper's §9: "manufacturers ... continue
    /// increasing the number of lanes"; 16-lane extension study).
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        assert!(lanes.is_power_of_two() && lanes >= self.vlt_threads);
        self.lanes = lanes;
        self.name = format!("{}-{}L", self.name, lanes);
        self
    }

    /// Replicate the vector unit across `clusters` lane clusters (the
    /// multi-cluster ultra-wide extension, DESIGN.md §11). `lanes` stays
    /// per-cluster, so total datapath width is `lanes * clusters`.
    pub fn with_clusters(mut self, clusters: usize) -> Self {
        assert!(clusters.is_power_of_two(), "cluster count must be a power of two");
        assert!(self.has_vu, "multi-cluster machines require a vector unit");
        assert!(!self.lane_threads, "lane-thread mode is single-cluster only");
        self.clusters = clusters;
        if clusters > 1 {
            self.name = format!("{}-{}x{}", self.name, clusters, self.lanes);
        }
        self
    }

    /// The ultra-wide VLT design point: `clusters` × 8-lane clusters with 8
    /// machine-wide VLT threads over four 2-way-threaded 4-way scalar units
    /// (the V4-CMT recipe scaled up; 16/32/64 total lanes at 2/4/8
    /// clusters).
    pub fn v8_clustered(clusters: usize) -> Self {
        assert!(matches!(clusters, 2 | 4 | 8), "ultra-wide points use 2, 4, or 8 clusters");
        let mut c = Self::mk(
            &format!("V8-CMT-{}x8", clusters),
            8,
            8,
            vec![CoreConfig::four_way().with_smt(2); 4],
        );
        c.clusters = clusters;
        c
    }

    /// Total vector lanes across all clusters.
    pub fn total_lanes(&self) -> usize {
        self.lanes * self.clusters
    }

    /// All design points evaluated in Figure 5, in presentation order.
    pub fn figure5_points() -> Vec<SystemConfig> {
        vec![
            Self::v2_smt(),
            Self::v2_cmp(),
            Self::v4_smt(),
            Self::v4_cmt(),
            Self::v4_cmp(),
            Self::v4_cmp_h(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_matches_table3() {
        let c = SystemConfig::base(8);
        assert_eq!(c.lanes, 8);
        assert_eq!(c.vlt_threads, 1);
        assert_eq!(c.cores.len(), 1);
        assert_eq!(c.cores[0].width, 4);
        assert_eq!(c.vcl.issue_width, 2);
        assert_eq!(c.vcl.window, 32);
        assert!(c.has_vu);
    }

    #[test]
    fn context_counts() {
        assert_eq!(SystemConfig::base(8).contexts(), 1);
        assert_eq!(SystemConfig::v2_smt().contexts(), 2);
        assert_eq!(SystemConfig::v2_cmp().contexts(), 2);
        assert_eq!(SystemConfig::v4_smt().contexts(), 4);
        assert_eq!(SystemConfig::v4_cmt().contexts(), 4);
        assert_eq!(SystemConfig::v4_cmp().contexts(), 4);
        assert_eq!(SystemConfig::v4_cmp_h().contexts(), 4);
        assert_eq!(SystemConfig::cmt().contexts(), 4);
    }

    #[test]
    fn lane_mode_supports_eight_threads() {
        let c = SystemConfig::v4_cmt_lane_threads();
        assert_eq!(c.max_threads(), 8);
        assert!(c.lane_threads);
        assert!(!c.has_vu);
    }

    #[test]
    fn cmt_has_no_vector_unit() {
        assert!(!SystemConfig::cmt().has_vu);
        assert_eq!(SystemConfig::cmt().max_threads(), 4);
    }

    #[test]
    fn clustered_points_shape() {
        for (clusters, total) in [(2, 16), (4, 32), (8, 64)] {
            let c = SystemConfig::v8_clustered(clusters);
            assert_eq!(c.clusters, clusters);
            assert_eq!(c.lanes, 8);
            assert_eq!(c.total_lanes(), total);
            assert_eq!(c.vlt_threads, 8);
            assert_eq!(c.contexts(), 8);
            assert!(c.has_vu);
            assert_eq!(c.name, format!("V8-CMT-{clusters}x8"));
        }
    }

    #[test]
    fn with_clusters_renames() {
        let c = SystemConfig::v4_cmt().with_clusters(2);
        assert_eq!(c.clusters, 2);
        assert_eq!(c.name, "V4-CMT-2x8");
        // clusters == 1 keeps the paper's name untouched.
        assert_eq!(SystemConfig::v4_cmt().with_clusters(1).name, "V4-CMT");
        assert_eq!(SystemConfig::base(8).clusters, 1);
    }

    #[test]
    fn figure5_has_six_points() {
        let pts = SystemConfig::figure5_points();
        assert_eq!(pts.len(), 6);
        let names: Vec<&str> = pts.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["V2-SMT", "V2-CMP", "V4-SMT", "V4-CMT", "V4-CMP", "V4-CMP-h"]);
    }
}
