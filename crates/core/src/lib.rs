#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! # vlt-core — Vector Lane Threading
//!
//! The paper's primary contribution: a multi-lane vector unit whose lanes
//! can be **partitioned across threads** (VLT), plus the full-system timing
//! simulator that composes it with the scalar units and memory hierarchy.
//!
//! * [`VuConfig`] / [`VectorUnit`] — the vector control logic (VIQ, window,
//!   2-way out-of-order issue) and the lanes (3 arithmetic datapaths + 2
//!   memory ports each). With `threads > 1`, the lanes, register file, VIQ,
//!   window, and issue bandwidth are statically partitioned (paper §3.2).
//! * [`SystemConfig`] — named design points: `base`, `V2-SMT`, `V2-CMP`,
//!   `V2-CMP-h`, `V4-SMT`, `V4-CMT`, `V4-CMP`, `V4-CMP-h`, the `CMT`
//!   scalar baseline, and VLT scalar-thread mode on the lanes (§4–§5).
//! * [`System`] — the machine: scalar units, vector unit or lane cores,
//!   shared L2, SPMD barriers, and per-region cycle attribution.
//!
//! ```no_run
//! use vlt_core::{System, SystemConfig};
//! use vlt_isa::asm::assemble;
//!
//! let prog = assemble("li x1, 8\nsetvl x2, x1\nvid v1\nhalt\n").unwrap();
//! let result = System::new(SystemConfig::base(8), &prog, 1).run(1_000_000).unwrap();
//! println!("{} cycles", result.cycles);
//! ```

pub mod component;
pub mod config;
pub mod result;
pub mod system;
pub mod vu;

pub use component::{CompId, Component, TickCtx};
pub use config::{IdealizeConfig, SystemConfig, VclConfig};
pub use result::{SimError, SimResult, Utilization};
pub use system::{
    CycleView, DriverMode, NullObserver, ProgressObserver, RepartitionEvent, Sample,
    SamplingObserver, SimObserver, System,
};
pub use vlt_exec::EngineMode;
pub use vlt_mem::{NetConfig, NetStats};
pub use vlt_scalar::{CpiStack, StallBreakdown, StallCause};
pub use vu::{VecIssue, VectorUnit, VuConfig};
