//! Property test on the driver spine: every public entry point is a thin
//! wrapper over the same observed loop, so `run`, `run_sampled(interval=1)`,
//! and `run_observed` with a no-op observer must produce identical
//! `SimResult`s for any workload shape.

use proptest::prelude::*;
use vlt_core::{NullObserver, System, SystemConfig};
use vlt_isa::asm::assemble;
use vlt_isa::Program;

const MAX: u64 = 20_000_000;

/// A small vectorized SPMD daxpy, parameterized over elements-per-thread,
/// vector length, thread count, and interleaved scalar work.
fn daxpy(npt: usize, vl: usize, threads: usize, scalar_work: usize) -> Program {
    let total = npt * threads;
    let sw: String = vec!["add x25, x25, x26"; scalar_work].join("\n        ");
    let xs_data: Vec<String> = (0..total).map(|i| format!("{}.0", i)).collect();
    let src = format!(
        r#"
        .data
    xs:
        .double {xs}
    ys:
        .zero {bytes}
        .text
        li      x9, {threads}
        vltcfg  x9
        tid     x10
        li      x12, {npt}
        mul     x13, x10, x12
        slli    x14, x13, 3
        la      x15, xs
        add     x15, x15, x14
        la      x16, ys
        add     x16, x16, x14
        li      x18, 2
        fcvt.f.x f1, x18
        li      x6, {vl}
        li      x26, 1
        li      x17, 0
        region  1
    loop:
        sub     x3, x12, x17
        blt     x3, x6, small
        mv      x4, x6
        j       doit
    small:
        mv      x4, x3
    doit:
        setvl   x2, x4
        vld     v1, x15
        vld     v2, x16
        vfma.vs v2, v1, f1
        vst     v2, x16
        {sw}
        slli    x7, x2, 3
        add     x15, x15, x7
        add     x16, x16, x7
        add     x17, x17, x2
        blt     x17, x12, loop
        region  0
        barrier
        halt
    "#,
        xs = xs_data.join(", "),
        bytes = 8 * total,
        npt = npt,
        vl = vl,
        threads = threads,
        sw = sw,
    );
    assemble(&src).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn entry_points_produce_identical_results(
        npt in 16usize..96,
        vl_pick in 0usize..3,
        threads_pick in 0usize..2,
        scalar_work in 0usize..5,
    ) {
        let vl = [8usize, 16, 64][vl_pick];
        let threads = [1usize, 2][threads_pick];
        // 2-thread runs need two lane partitions and two scalar units.
        let cfg = || if threads == 2 { SystemConfig::v2_cmp() } else { SystemConfig::base(8) };
        let vl = vl.min(64 / threads);
        let prog = daxpy(npt, vl, threads, scalar_work);

        let plain = System::new(cfg(), &prog, threads).run(MAX).unwrap();
        let (sampled, samples) =
            System::new(cfg(), &prog, threads).run_sampled(MAX, 1).unwrap();
        let observed = System::new(cfg(), &prog, threads)
            .run_observed(MAX, &mut NullObserver)
            .unwrap();

        prop_assert_eq!(&plain, &sampled);
        prop_assert_eq!(&plain, &observed);

        // Interval 1 snapshots every cycle, pre-step: 0 ..= cycles-1.
        prop_assert_eq!(samples.len() as u64, plain.cycles);
        prop_assert_eq!(samples.first().unwrap().cycle, 0);
        prop_assert_eq!(samples.last().unwrap().cycle, plain.cycles - 1);
    }
}
