//! Property tests on the driver spine.
//!
//! 1. Every public entry point is a thin wrapper over the same observed
//!    loop, so `run`, `run_sampled(interval=1)`, and `run_observed` with a
//!    no-op observer must produce identical `SimResult`s for any workload.
//! 2. The event-driven driver (idle-cycle skipping) must be **byte
//!    identical** — `SimResult` and sample stream — to the cycle-by-cycle
//!    oracle across randomized workload/config/thread matrices, including
//!    mid-run `vltcfg` repartitions and barrier flushes.

use proptest::prelude::*;
use vlt_core::{DriverMode, NullObserver, System, SystemConfig};
use vlt_isa::asm::assemble;
use vlt_isa::Program;

const MAX: u64 = 20_000_000;

/// A small vectorized SPMD daxpy, parameterized over elements-per-thread,
/// vector length, thread count, and interleaved scalar work.
fn daxpy(npt: usize, vl: usize, threads: usize, scalar_work: usize) -> Program {
    daxpy_with_operand(npt, vl, threads, scalar_work, threads as u64)
}

/// `daxpy` with an explicit `vltcfg` operand — the hierarchical packed
/// encoding spreads the partitions over lane clusters.
fn daxpy_with_operand(
    npt: usize,
    vl: usize,
    threads: usize,
    scalar_work: usize,
    operand: u64,
) -> Program {
    let total = npt * threads;
    let sw: String = vec!["add x25, x25, x26"; scalar_work].join("\n        ");
    let xs_data: Vec<String> = (0..total).map(|i| format!("{}.0", i)).collect();
    let src = format!(
        r#"
        .data
    xs:
        .double {xs}
    ys:
        .zero {bytes}
        .text
        li      x9, {operand}
        vltcfg  x9
        tid     x10
        li      x12, {npt}
        mul     x13, x10, x12
        slli    x14, x13, 3
        la      x15, xs
        add     x15, x15, x14
        la      x16, ys
        add     x16, x16, x14
        li      x18, 2
        fcvt.f.x f1, x18
        li      x6, {vl}
        li      x26, 1
        li      x17, 0
        region  1
    loop:
        sub     x3, x12, x17
        blt     x3, x6, small
        mv      x4, x6
        j       doit
    small:
        mv      x4, x3
    doit:
        setvl   x2, x4
        vld     v1, x15
        vld     v2, x16
        vfma.vs v2, v1, f1
        vst     v2, x16
        {sw}
        slli    x7, x2, 3
        add     x15, x15, x7
        add     x16, x16, x7
        add     x17, x17, x2
        blt     x17, x12, loop
        region  0
        barrier
        halt
    "#,
        xs = xs_data.join(", "),
        bytes = 8 * total,
        npt = npt,
        vl = vl,
        operand = operand,
        sw = sw,
    );
    assemble(&src).unwrap()
}

/// An 8-thread two-phase kernel for the 2-cluster machine: phase A runs
/// all 8 threads spread over both clusters (`vltcfg` operand `(8,2)`,
/// per-thread MVL 16); phase B repartitions across the cluster boundary
/// to `op_b` with only the low `threads_b` threads doing vector work (the
/// multi-cluster software contract after a shrink). Exercises drain-gated
/// cross-cluster repartitions and barrier flushes under both drivers.
fn cross_cluster_two_phase(npt_a: usize, npt_b: usize, op_b: u64, threads_b: usize) -> Program {
    let total = 8 * npt_a.max(npt_b);
    let op_a = vlt_isa::vltcfg::operand(8, 2);
    let src = format!(
        r#"
        .data
    xs:
        .zero {bytes}
    ys:
        .zero {bytes}
        .text
        tid     x10
        li      x9, {op_a}
        vltcfg  x9
        li      x12, {npt_a}
        mul     x13, x10, x12
        slli    x14, x13, 3
        la      x15, xs
        add     x15, x15, x14
        li      x17, 0
    loopa:
        sub     x3, x12, x17
        setvl   x2, x3
        vid     v1
        vadd.vs v1, v1, x13
        vst     v1, x15
        slli    x7, x2, 3
        add     x15, x15, x7
        add     x17, x17, x2
        blt     x17, x12, loopa
        barrier
        li      x9, {op_b}
        vltcfg  x9
        li      x11, {threads_b}
        blt     x10, x11, dovec
        j       join
    dovec:
        li      x12, {npt_b}
        mul     x13, x10, x12
        slli    x14, x13, 3
        la      x15, xs
        add     x15, x15, x14
        la      x16, ys
        add     x16, x16, x14
        li      x17, 0
    loopb:
        sub     x3, x12, x17
        setvl   x2, x3
        vld     v1, x15
        vadd.vv v2, v1, v1
        vst     v2, x16
        slli    x7, x2, 3
        add     x16, x16, x7
        add     x15, x15, x7
        add     x17, x17, x2
        blt     x17, x12, loopb
    join:
        barrier
        halt
    "#,
        bytes = 8 * total,
        op_a = op_a,
        op_b = op_b,
        npt_a = npt_a,
        npt_b = npt_b,
        threads_b = threads_b,
    );
    assemble(&src).unwrap()
}

/// A scalar SPMD kernel: thread t sums integers [t*n, (t+1)*n) into out[t]
/// — exercises the CMT and lane-thread machines (no vector unit).
fn scalar_sum(n: usize, threads: usize) -> Program {
    let src = format!(
        r#"
        .data
    out:
        .zero {out_bytes}
        .text
        tid     x10
        li      x11, {n}
        mul     x12, x10, x11
        add     x13, x12, x11
        li      x14, 0
    loop:
        add     x14, x14, x12
        addi    x12, x12, 1
        blt     x12, x13, loop
        la      x15, out
        slli    x16, x10, 3
        add     x15, x15, x16
        sd      x14, 0(x15)
        barrier
        halt
    "#,
        out_bytes = 8 * threads,
        n = n
    );
    assemble(&src).unwrap()
}

/// A two-phase program with a mid-run repartition: phase A runs wide
/// vectors on thread 0 alone (`vltcfg 1`, thread 1 parked at the barrier),
/// phase B switches to 2 partitions (`vltcfg 2`) and both threads sweep
/// short vectors. Exercises drain-gated repartitions, barrier flushes, and
/// long parked spans under the event-driven driver.
fn two_phase(wide: usize, narrow_npt: usize) -> Program {
    let total = 2 * narrow_npt.max(wide);
    let src = format!(
        r#"
        .data
    xs:
        .zero {xs_bytes}
    ys:
        .zero {xs_bytes}
        .text
        tid     x10
        li      x9, 1
        vltcfg  x9
        bnez    x10, phase_a_done
        la      x15, xs
        li      x17, 0
        li      x12, {wide}
    wide:
        sub     x3, x12, x17
        setvl   x2, x3
        vid     v1
        vadd.vs v1, v1, x17
        vst     v1, x15
        slli    x7, x2, 3
        add     x15, x15, x7
        add     x17, x17, x2
        blt     x17, x12, wide
    phase_a_done:
        barrier
        li      x9, 2
        vltcfg  x9
        li      x12, {narrow_npt}
        mul     x13, x10, x12
        slli    x14, x13, 3
        la      x15, xs
        add     x15, x15, x14
        la      x16, ys
        add     x16, x16, x14
        li      x17, 0
    narrow:
        sub     x3, x12, x17
        setvl   x2, x3
        vld     v1, x15
        vadd.vv v2, v1, v1
        vst     v2, x16
        slli    x7, x2, 3
        add     x15, x15, x7
        add     x16, x16, x7
        add     x17, x17, x2
        blt     x17, x12, narrow
        barrier
        halt
    "#,
        xs_bytes = 8 * total,
        wide = wide,
        narrow_npt = narrow_npt,
    );
    assemble(&src).unwrap()
}

/// Run the same machine under both drivers; the results (and, when
/// `interval` is given, the sample streams) must match byte for byte.
/// Panics on mismatch (the vendored proptest has no shrinking, so a
/// panic is exactly how properties fail).
fn assert_drivers_agree(mk: impl Fn() -> System, max: u64, interval: Option<u64>) {
    match interval {
        Some(iv) => {
            let (re, se) = mk().run_sampled(max, iv).unwrap();
            let (rn, sn) = mk().with_driver(DriverMode::CycleByCycle).run_sampled(max, iv).unwrap();
            assert_eq!(re, rn, "SimResult diverged (interval {iv})");
            assert_eq!(se, sn, "sample stream diverged (interval {iv})");
        }
        None => {
            let re = mk().run(max).unwrap();
            let rn = mk().with_driver(DriverMode::CycleByCycle).run(max).unwrap();
            assert_eq!(re, rn, "SimResult diverged");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn entry_points_produce_identical_results(
        npt in 16usize..96,
        vl_pick in 0usize..3,
        threads_pick in 0usize..2,
        scalar_work in 0usize..5,
    ) {
        let vl = [8usize, 16, 64][vl_pick];
        let threads = [1usize, 2][threads_pick];
        // 2-thread runs need two lane partitions and two scalar units.
        let cfg = || if threads == 2 { SystemConfig::v2_cmp() } else { SystemConfig::base(8) };
        let vl = vl.min(64 / threads);
        let prog = daxpy(npt, vl, threads, scalar_work);

        let plain = System::new(cfg(), &prog, threads).run(MAX).unwrap();
        let (sampled, samples) =
            System::new(cfg(), &prog, threads).run_sampled(MAX, 1).unwrap();
        let observed = System::new(cfg(), &prog, threads)
            .run_observed(MAX, &mut NullObserver)
            .unwrap();

        prop_assert_eq!(&plain, &sampled);
        prop_assert_eq!(&plain, &observed);

        // Interval 1 snapshots every cycle, pre-step: 0 ..= cycles-1.
        prop_assert_eq!(samples.len() as u64, plain.cycles);
        prop_assert_eq!(samples.first().unwrap().cycle, 0);
        prop_assert_eq!(samples.last().unwrap().cycle, plain.cycles - 1);
    }

    /// Tentpole guarantee: the event-driven driver is byte-identical to the
    /// cycle-by-cycle oracle — SimResult *and* sample stream — over random
    /// daxpy shapes, vector lengths, thread counts, and sample intervals.
    #[test]
    fn event_driver_is_byte_identical_to_naive(
        npt in 16usize..96,
        vl_pick in 0usize..3,
        threads_pick in 0usize..2,
        scalar_work in 0usize..5,
        interval_pick in 0usize..4,
    ) {
        let vl = [8usize, 16, 64][vl_pick];
        let threads = [1usize, 2][threads_pick];
        let interval = [None, Some(1u64), Some(61), Some(509)][interval_pick];
        let cfg = || if threads == 2 { SystemConfig::v2_cmp() } else { SystemConfig::base(8) };
        let vl = vl.min(64 / threads);
        let prog = daxpy(npt, vl, threads, scalar_work);
        assert_drivers_agree(|| System::new(cfg(), &prog, threads), MAX, interval);
    }

    /// Mid-run `vltcfg` repartitions and barrier flushes: phase A parks one
    /// thread at a barrier for a long span (the driver's best skipping
    /// opportunity), phase B re-splits the lanes two ways.
    #[test]
    fn event_driver_survives_repartitions_and_barriers(
        wide in 32usize..256,
        narrow_npt in 8usize..64,
        interval_pick in 0usize..3,
    ) {
        let interval = [None, Some(1u64), Some(97)][interval_pick];
        let prog = two_phase(wide, narrow_npt);
        assert_drivers_agree(|| System::new(SystemConfig::v2_cmp(), &prog, 2), MAX, interval);
    }

    /// Hierarchical `vltcfg` on the 2-cluster ultra-wide machine: flat and
    /// packed operands at 2/4/8 threads must drive both drivers to byte
    /// identical results, samples included.
    #[test]
    fn event_driver_matches_naive_on_clustered_machines(
        npt in 16usize..64,
        threads_pick in 0usize..3,
        clusters_pick in 0usize..2,
        scalar_work in 0usize..4,
        interval_pick in 0usize..3,
    ) {
        let threads = [2usize, 4, 8][threads_pick];
        let clusters = [1usize, 2][clusters_pick];
        let interval = [None, Some(1u64), Some(61)][interval_pick];
        // Flat operands keep the legacy MVL = 64/t; packed ones spread to
        // both clusters for MVL = 128/t.
        let (op, mvl) = if clusters > 1 {
            (vlt_isa::vltcfg::operand(threads as u8, clusters as u8), 128 / threads)
        } else {
            (threads as u64, 64 / threads)
        };
        let vl = mvl.min(16);
        let prog = daxpy_with_operand(npt, vl, threads, scalar_work, op);
        assert_drivers_agree(
            || System::new(SystemConfig::v8_clustered(2), &prog, threads),
            MAX,
            interval,
        );
    }

    /// Mid-run repartitions that cross the cluster boundary: from 8
    /// threads over 2 clusters down to a flat split, an explicit
    /// single-cluster collapse, or one thread per cluster at full MVL.
    #[test]
    fn event_driver_survives_cross_cluster_repartitions(
        npt_a in 16usize..64,
        npt_b in 8usize..48,
        op_pick in 0usize..3,
        interval_pick in 0usize..3,
    ) {
        let interval = [None, Some(1u64), Some(97)][interval_pick];
        let (op_b, threads_b) = [
            (4u64, 4usize),                      // flat: the machine keeps both clusters
            (vlt_isa::vltcfg::operand(4, 1), 4), // explicit collapse to one cluster
            (vlt_isa::vltcfg::operand(2, 2), 2), // one thread per cluster, MVL 64
        ][op_pick];
        let prog = cross_cluster_two_phase(npt_a, npt_b, op_b, threads_b);
        assert_drivers_agree(
            || System::new(SystemConfig::v8_clustered(2), &prog, 8),
            MAX,
            interval,
        );
    }

    /// Scalar machines: the CMT baseline (in-order scalar cores, no VU) and
    /// VLT lane-thread mode (scalar threads on the lane cores).
    #[test]
    fn event_driver_matches_naive_on_scalar_machines(
        n in 32usize..256,
        cfg_pick in 0usize..2,
        interval_pick in 0usize..3,
    ) {
        let interval = [None, Some(1u64), Some(61)][interval_pick];
        let cfg: fn() -> SystemConfig =
            [SystemConfig::cmt, SystemConfig::v4_cmt_lane_threads][cfg_pick];
        // CMT runs on the 4 SMT contexts; lane-thread mode on the 8 lanes.
        let threads = [4usize, 8][cfg_pick];
        let prog = scalar_sum(n, threads);
        assert_drivers_agree(|| System::new(cfg(), &prog, threads), MAX, interval);
    }
}

/// At-scale equivalence run for CI's release-mode step: big enough that a
/// debug build would crawl, so it is `#[ignore]`d by default and run with
/// `cargo test --release -- --include-ignored`.
#[test]
#[ignore = "release-mode CI step: large inputs, slow under debug builds"]
fn event_driver_matches_naive_at_scale() {
    let prog = daxpy(4096, 64, 2, 12);
    assert_drivers_agree(|| System::new(SystemConfig::v2_cmp(), &prog, 2), MAX, Some(1024));

    let prog = two_phase(2048, 512);
    assert_drivers_agree(|| System::new(SystemConfig::v2_cmp(), &prog, 2), MAX, Some(257));

    let prog = scalar_sum(4096, 8);
    assert_drivers_agree(|| System::new(SystemConfig::v4_cmt_lane_threads(), &prog, 8), MAX, None);

    // Multi-cluster at scale: 8 threads spread over 2 clusters, then a
    // long run with a mid-run collapse across the cluster boundary.
    let prog = daxpy_with_operand(2048, 16, 8, 6, vlt_isa::vltcfg::operand(8, 2));
    assert_drivers_agree(|| System::new(SystemConfig::v8_clustered(2), &prog, 8), MAX, Some(513));

    let prog = cross_cluster_two_phase(1024, 256, vlt_isa::vltcfg::operand(4, 1), 4);
    assert_drivers_agree(|| System::new(SystemConfig::v8_clustered(2), &prog, 8), MAX, None);
}
