//! Property tests on the vector unit: for any dispatch sequence, the
//! utilization accounting stays exact, completions are sane, and window
//! capacity is respected.

use proptest::prelude::*;
use std::sync::Arc;
use vlt_core::{VectorUnit, VuConfig};

use vlt_exec::{AddrArena, AddrRange, DecodedProgram};
use vlt_isa::asm::assemble;
use vlt_isa::OpClass;
use vlt_mem::{MemConfig, MemSystem};
use vlt_scalar::{VecDispatch, VecToken, VectorSink};

const CLASS_PROG: &str = "\
vfadd.vv v1, v2, v3
vfmul.vv v1, v2, v3
vfdiv.vv v1, v2, v3
vld v1, x1
vst v1, x1
vmset
halt
";

fn sidx_for(class: OpClass) -> u32 {
    match class {
        OpClass::VAdd => 0,
        OpClass::VMul => 1,
        OpClass::VDiv => 2,
        OpClass::VLoad => 3,
        OpClass::VStore => 4,
        _ => 5,
    }
}

fn prog() -> Arc<DecodedProgram> {
    DecodedProgram::new(&assemble(CLASS_PROG).unwrap())
}

#[derive(Debug, Clone)]
struct Req {
    class_pick: u8,
    vl: u16,
    vthread: u8,
}

fn class_of(pick: u8) -> OpClass {
    match pick % 6 {
        0 => OpClass::VAdd,
        1 => OpClass::VMul,
        2 => OpClass::VDiv,
        3 => OpClass::VLoad,
        4 => OpClass::VStore,
        _ => OpClass::VMask,
    }
}

fn arb_req() -> impl Strategy<Value = Req> {
    (any::<u8>(), 1u16..=64, 0u8..4).prop_map(|(class_pick, vl, vthread)| Req {
        class_pick,
        vl,
        vthread,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dispatch a random stream of independent vector instructions at 1, 2,
    /// and 4 partitions: every accepted instruction completes, completions
    /// never precede dispatch, and the Figure-4 accounting covers exactly
    /// 3 * lanes datapath-slots per cycle.
    #[test]
    fn random_streams_complete_exactly(reqs in proptest::collection::vec(arb_req(), 1..60)) {
        for threads in [1usize, 2, 4] {
            let cfg = VuConfig::base(8).with_threads(threads);
            let mut vu = VectorUnit::new(cfg, prog());
            let mut mem = MemSystem::new(MemConfig::default(), 1, 8);
            let mut arena = AddrArena::new(4);
            let mut pending: Vec<(VecToken, u64)> = Vec::new();
            let mut next = 0usize;
            let mut seq = 0u64;
            let mut now = 0u64;
            let mut done_count = 0usize;
            let mut accepted = 0usize;

            while (next < reqs.len() || !pending.is_empty()) && now < 200_000 {
                // Try to dispatch the next request.
                if next < reqs.len() {
                    let r = &reqs[next];
                    let vthread = (r.vthread as usize) % threads;
                    let class = class_of(r.class_pick);
                    let vl = r.vl.min((64 / threads) as u16);
                    let d = VecDispatch {
                        vthread,
                        sidx: sidx_for(class),
                        vl,
                        class,
                        addrs: if class.is_mem() {
                            let elems: Vec<u64> =
                                (0..vl as u64).map(|e| 0x10000 + 8 * e).collect();
                            arena.alloc(vthread, &elems)
                        } else {
                            AddrRange::EMPTY
                        },
                        seq,
                        deps: vec![],
                        scalar_deps: vec![],
                        ready_base: 0,
                    };
                    if let Some(tok) = vu.try_dispatch(d, now) {
                        pending.push((tok, now));
                        next += 1;
                        seq += 1;
                        accepted += 1;
                    }
                }
                vu.tick(now, &mut mem, None, &arena, 0, threads, false);
                let mut bad_completion = None;
                pending.retain(|(tok, dispatched)| match vu.poll(*tok) {
                    Some(t) => {
                        if t <= *dispatched {
                            bad_completion = Some((t, *dispatched));
                        }
                        done_count += 1;
                        false
                    }
                    None => true,
                });
                prop_assert!(bad_completion.is_none(), "completion before dispatch: {bad_completion:?}");
                now += 1;
            }
            prop_assert_eq!(done_count, accepted, "every accepted instruction completes");
            prop_assert_eq!(next, reqs.len(), "every request eventually dispatches");
            // Figure-4 invariant.
            prop_assert_eq!(vu.util.total(), 3 * 8 * now, "utilization accounting exact");
            // Busy element-cycles never exceed the 24 datapaths.
            prop_assert!(vu.util.busy <= 24 * now);
        }
    }
}

#[test]
fn window_capacity_is_partition_scoped() {
    let mut vu = VectorUnit::new(VuConfig::base(8).with_threads(4), prog());
    // Each partition holds window/4 = 8 entries.
    for p in 0..4usize {
        for i in 0..8 {
            let d = VecDispatch {
                vthread: p,
                sidx: 0,
                vl: 8,
                class: OpClass::VAdd,
                addrs: AddrRange::EMPTY,
                seq: (p * 8 + i) as u64,
                deps: vec![],
                scalar_deps: vec![],
                ready_base: 0,
            };
            assert!(vu.try_dispatch(d, 0).is_some(), "partition {p} entry {i}");
        }
        let d = VecDispatch {
            vthread: p,
            sidx: 0,
            vl: 8,
            class: OpClass::VAdd,
            addrs: AddrRange::EMPTY,
            seq: 1000 + p as u64,
            deps: vec![],
            scalar_deps: vec![],
            ready_base: 0,
        };
        assert!(vu.try_dispatch(d, 0).is_none(), "partition {p} must be full");
    }
}
