#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # vlt-stats — reporting utilities for the experiment harness
//!
//! * [`table::Table`] — aligned ASCII tables matching the paper's layout,
//! * [`speedup`] — speedup/geomean helpers,
//! * [`report`] — machine-readable per-experiment records (JSON), written
//!   next to the text output so EXPERIMENTS.md can be regenerated and
//!   diffed.

pub mod json;
pub mod metrics;
pub mod report;
pub mod speedup;
pub mod table;

pub use metrics::{Histogram, MetricsRegistry, METRICS_SCHEMA_VERSION};
pub use report::{Experiment, Series};
pub use table::Table;
