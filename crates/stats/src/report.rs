//! Machine-readable experiment records.
//!
//! Each figure/table harness writes one JSON file under `results/` holding
//! both the measured values and the paper's reference values, so
//! EXPERIMENTS.md can be regenerated mechanically and regressions diffed.

use std::fs;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

/// One measured series (e.g. one application across configurations).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Series label (application or configuration name).
    pub label: String,
    /// X labels (lane counts, configuration names, ...).
    pub x: Vec<String>,
    /// Measured values.
    pub values: Vec<f64>,
    /// The paper's reference values where the paper reports them
    /// (empty when the paper only shows a chart without numbers).
    #[serde(default)]
    pub paper: Vec<f64>,
}

impl Series {
    /// Build a series, checking arity.
    pub fn new(label: impl Into<String>, x: &[String], values: Vec<f64>) -> Self {
        let label = label.into();
        assert_eq!(x.len(), values.len(), "series `{label}` arity mismatch");
        Series { label, x: x.to_vec(), values, paper: Vec::new() }
    }

    /// Attach the paper's reference values.
    pub fn with_paper(mut self, paper: Vec<f64>) -> Self {
        assert_eq!(self.values.len(), paper.len(), "paper arity mismatch");
        self.paper = paper;
        self
    }
}

/// One experiment (a figure or table of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Experiment {
    /// Identifier, e.g. `fig3` or `table4`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// What quantity `values` holds (e.g. "speedup over base").
    pub metric: String,
    /// Measured series.
    pub series: Vec<Series>,
}

impl Experiment {
    /// Create an empty experiment record.
    pub fn new(id: &str, title: &str, metric: &str) -> Self {
        Experiment {
            id: id.to_string(),
            title: title.to_string(),
            metric: metric.to_string(),
            series: Vec::new(),
        }
    }

    /// Append a series.
    pub fn push(&mut self, s: Series) -> &mut Self {
        self.series.push(s);
        self
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("experiment serializes")
    }

    /// Write to `dir/<id>.json`, creating the directory.
    pub fn write_to(&self, dir: &Path) -> io::Result<std::path::PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Read back a record.
    pub fn read_from(path: &Path) -> io::Result<Self> {
        let text = fs::read_to_string(path)?;
        serde_json::from_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let mut e = Experiment::new("fig3", "VLT speedup", "speedup over base");
        let x = vec!["2 threads".to_string(), "4 threads".to_string()];
        e.push(Series::new("mpenc", &x, vec![1.6, 1.8]).with_paper(vec![1.8, 2.0]));
        let json = e.to_json();
        let back: Experiment = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("vlt-stats-test-{}", std::process::id()));
        let mut e = Experiment::new("t", "x", "y");
        e.push(Series::new("a", &["i".to_string()], vec![1.0]));
        let path = e.write_to(&dir).unwrap();
        let back = Experiment::read_from(&path).unwrap();
        assert_eq!(back, e);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        Series::new("a", &["one".to_string()], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic]
    fn paper_arity_checked() {
        let x = vec!["one".to_string()];
        let _ = Series::new("a", &x, vec![1.0]).with_paper(vec![1.0, 2.0]);
    }
}
