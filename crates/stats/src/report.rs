//! Machine-readable experiment records.
//!
//! Each figure/table harness writes one JSON file under `results/` holding
//! both the measured values and the paper's reference values, so
//! EXPERIMENTS.md can be regenerated mechanically and regressions diffed.

use std::fs;
use std::io;
use std::path::Path;

use crate::json::Json;

/// One measured series (e.g. one application across configurations).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Series label (application or configuration name).
    pub label: String,
    /// X labels (lane counts, configuration names, ...).
    pub x: Vec<String>,
    /// Measured values.
    pub values: Vec<f64>,
    /// The paper's reference values where the paper reports them
    /// (empty when the paper only shows a chart without numbers).
    pub paper: Vec<f64>,
}

impl Series {
    /// Build a series, checking arity.
    pub fn new(label: impl Into<String>, x: &[String], values: Vec<f64>) -> Self {
        let label = label.into();
        assert_eq!(x.len(), values.len(), "series `{label}` arity mismatch");
        Series { label, x: x.to_vec(), values, paper: Vec::new() }
    }

    /// Attach the paper's reference values.
    pub fn with_paper(mut self, paper: Vec<f64>) -> Self {
        assert_eq!(self.values.len(), paper.len(), "paper arity mismatch");
        self.paper = paper;
        self
    }

    fn to_json(&self) -> Json {
        let mut m = std::collections::BTreeMap::new();
        m.insert("label".to_string(), Json::Str(self.label.clone()));
        m.insert("x".to_string(), Json::Arr(self.x.iter().map(|s| Json::Str(s.clone())).collect()));
        m.insert(
            "values".to_string(),
            Json::Arr(self.values.iter().map(|&v| Json::Num(v)).collect()),
        );
        m.insert(
            "paper".to_string(),
            Json::Arr(self.paper.iter().map(|&v| Json::Num(v)).collect()),
        );
        Json::Obj(m)
    }

    fn from_json(v: &Json) -> Result<Self, &'static str> {
        let label =
            v.get("label").and_then(Json::as_str).ok_or("series missing `label`")?.to_string();
        let x = v
            .get("x")
            .and_then(Json::as_arr)
            .ok_or("series missing `x`")?
            .iter()
            .map(|s| s.as_str().map(str::to_string).ok_or("non-string x label"))
            .collect::<Result<Vec<_>, _>>()?;
        let values = num_array(v.get("values"), "series missing `values`")?;
        // `paper` is optional and defaults to empty, matching the old
        // #[serde(default)] behavior.
        let paper = match v.get("paper") {
            Some(p) => num_array(Some(p), "non-numeric paper value")?,
            None => Vec::new(),
        };
        Ok(Series { label, x, values, paper })
    }
}

fn num_array(v: Option<&Json>, msg: &'static str) -> Result<Vec<f64>, &'static str> {
    v.and_then(Json::as_arr).ok_or(msg)?.iter().map(|n| n.as_f64().ok_or(msg)).collect()
}

/// One experiment (a figure or table of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct Experiment {
    /// Identifier, e.g. `fig3` or `table4`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// What quantity `values` holds (e.g. "speedup over base").
    pub metric: String,
    /// Measured series.
    pub series: Vec<Series>,
}

impl Experiment {
    /// Create an empty experiment record.
    pub fn new(id: &str, title: &str, metric: &str) -> Self {
        Experiment {
            id: id.to_string(),
            title: title.to_string(),
            metric: metric.to_string(),
            series: Vec::new(),
        }
    }

    /// Append a series.
    pub fn push(&mut self, s: Series) -> &mut Self {
        self.series.push(s);
        self
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        let mut m = std::collections::BTreeMap::new();
        m.insert("id".to_string(), Json::Str(self.id.clone()));
        m.insert("title".to_string(), Json::Str(self.title.clone()));
        m.insert("metric".to_string(), Json::Str(self.metric.clone()));
        m.insert(
            "series".to_string(),
            Json::Arr(self.series.iter().map(Series::to_json).collect()),
        );
        Json::Obj(m).pretty()
    }

    /// Parse a record back from JSON text.
    pub fn from_json(text: &str) -> io::Result<Self> {
        let invalid =
            |e: &dyn std::fmt::Display| io::Error::new(io::ErrorKind::InvalidData, e.to_string());
        let v = Json::parse(text).map_err(|e| invalid(&e))?;
        let field = |k: &str| {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| invalid(&format!("experiment missing `{k}`")))
        };
        let series = v
            .get("series")
            .and_then(Json::as_arr)
            .ok_or_else(|| invalid(&"experiment missing `series`"))?
            .iter()
            .map(|s| Series::from_json(s).map_err(|e| invalid(&e)))
            .collect::<io::Result<Vec<_>>>()?;
        Ok(Experiment {
            id: field("id")?,
            title: field("title")?,
            metric: field("metric")?,
            series,
        })
    }

    /// Write to `dir/<id>.json`, creating the directory.
    pub fn write_to(&self, dir: &Path) -> io::Result<std::path::PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Read back a record.
    pub fn read_from(path: &Path) -> io::Result<Self> {
        Self::from_json(&fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let mut e = Experiment::new("fig3", "VLT speedup", "speedup over base");
        let x = vec!["2 threads".to_string(), "4 threads".to_string()];
        e.push(Series::new("mpenc", &x, vec![1.6, 1.8]).with_paper(vec![1.8, 2.0]));
        let json = e.to_json();
        let back = Experiment::from_json(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn missing_paper_defaults_to_empty() {
        let text = r#"{
            "id": "t", "title": "x", "metric": "y",
            "series": [{"label": "a", "x": ["i"], "values": [1.5]}]
        }"#;
        let e = Experiment::from_json(text).unwrap();
        assert_eq!(e.series[0].paper, Vec::<f64>::new());
        assert_eq!(e.series[0].values, vec![1.5]);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("vlt-stats-test-{}", std::process::id()));
        let mut e = Experiment::new("t", "x", "y");
        e.push(Series::new("a", &["i".to_string()], vec![1.0]));
        let path = e.write_to(&dir).unwrap();
        let back = Experiment::read_from(&path).unwrap();
        assert_eq!(back, e);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        Series::new("a", &["one".to_string()], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic]
    fn paper_arity_checked() {
        let x = vec!["one".to_string()];
        let _ = Series::new("a", &x, vec![1.0]).with_paper(vec![1.0, 2.0]);
    }
}
