//! Minimal JSON value, parser, and pretty-printer.
//!
//! The build environment cannot fetch serde, and the experiment records
//! only need flat objects of strings, numbers, and arrays — so this
//! module hand-rolls the subset: a [`Json`] tree, a recursive-descent
//! parser, and a pretty writer whose output is stable for diffing.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64; integers print without a fraction).
    Num(f64),
    /// String
    Str(String),
    /// Array
    Arr(Vec<Json>),
    /// Object (sorted keys — insertion order is not preserved).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Member lookup, if this is an `Obj`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; degrade to null like serde_json's lossy modes.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
        out.push_str(".0");
    } else {
        // {:?} prints the shortest representation that round-trips.
        let _ = write!(out, "{n:?}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub msg: &'static str,
    /// Byte offset into the input.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { msg, at: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let v = self.value()?;
            members.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for our records.
                            s.push(char::from_u32(code).ok_or(self.err("invalid \\u codepoint"))?);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let src = r#"{"a": [1.0, -2.5, 3e2], "b": {"c": "hi\nthere", "d": null}, "e": true}"#;
        let v = Json::parse(src).unwrap();
        let back = Json::parse(&v.pretty()).unwrap();
        assert_eq!(v, back);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("hi\nthere"));
    }

    #[test]
    fn floats_print_shortest_roundtrip() {
        let v = Json::Arr(vec![Json::Num(0.1), Json::Num(2.0), Json::Num(1.0 / 3.0)]);
        let text = v.pretty();
        assert!(text.contains("0.1"), "{text}");
        assert!(text.contains("2.0"), "{text}");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("{} extra").is_err());
    }

    #[test]
    fn escapes_control_chars() {
        let v = Json::Str("a\"b\\c\u{1}".into());
        let text = v.pretty();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }
}
