//! Aligned ASCII tables.

use std::fmt;

/// A simple right-padded text table.
///
/// ```
/// use vlt_stats::Table;
/// let mut t = Table::new("Speedups", &["app", "x"]);
/// t.row(&["mxm".into(), "6.0".into()]);
/// assert!(t.to_string().contains("mxm | 6.0"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: append a row of displayable items.
    pub fn rowd(&mut self, cells: &[&dyn fmt::Display]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let total: usize = widths.iter().sum::<usize>() + 3 * (ncol - 1);
        writeln!(f, "{}", self.title)?;
        writeln!(f, "{}", "=".repeat(total.max(self.title.len())))?;
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{h:<w$}", w = widths[i])?;
        }
        writeln!(f)?;
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{c:<w$}", w = widths[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer-name".into(), "22".into()]);
        let s = t.to_string();
        assert!(s.contains("Demo"));
        assert!(s.contains("longer-name | 22"));
        assert!(s.contains("a           | 1"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
