//! Aligned ASCII tables, with a versioned JSON record form so table
//! experiments persist to `results/` the same way figures do.

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use crate::json::Json;

/// Version stamped into every serialized table (`"version"` field).
pub const TABLE_SCHEMA_VERSION: u64 = 1;

/// The `"schema"` field value identifying a table record.
pub const TABLE_SCHEMA_NAME: &str = "vlt-table";

/// A simple right-padded text table.
///
/// ```
/// use vlt_stats::Table;
/// let mut t = Table::new("Speedups", &["app", "x"]);
/// t.row(&["mxm".into(), "6.0".into()]);
/// assert!(t.to_string().contains("mxm | 6.0"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: append a row of displayable items.
    pub fn rowd(&mut self, cells: &[&dyn fmt::Display]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Serialize as a versioned JSON record: `{schema, version, id, title,
    /// headers, rows}` with string cells. `id` names the record (the
    /// `results/<id>.json` basename), mirroring `Experiment::id`.
    pub fn to_json(&self, id: &str) -> Json {
        let strs = |v: &[String]| Json::Arr(v.iter().map(|s| Json::Str(s.clone())).collect());
        let mut m = BTreeMap::new();
        m.insert("schema".into(), Json::Str(TABLE_SCHEMA_NAME.into()));
        m.insert("version".into(), Json::Num(TABLE_SCHEMA_VERSION as f64));
        m.insert("id".into(), Json::Str(id.into()));
        m.insert("title".into(), Json::Str(self.title.clone()));
        m.insert("headers".into(), strs(&self.headers));
        m.insert("rows".into(), Json::Arr(self.rows.iter().map(|r| strs(r)).collect()));
        Json::Obj(m)
    }

    /// Write the JSON record to `<dir>/<id>.json`, returning the path.
    pub fn write_to(&self, dir: &Path, id: &str) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{id}.json"));
        std::fs::write(&path, self.to_json(id).pretty())?;
        Ok(path)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let total: usize = widths.iter().sum::<usize>() + 3 * (ncol - 1);
        writeln!(f, "{}", self.title)?;
        writeln!(f, "{}", "=".repeat(total.max(self.title.len())))?;
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{h:<w$}", w = widths[i])?;
        }
        writeln!(f)?;
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{c:<w$}", w = widths[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer-name".into(), "22".into()]);
        let s = t.to_string();
        assert!(s.contains("Demo"));
        assert!(s.contains("longer-name | 22"));
        assert!(s.contains("a           | 1"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn json_record_roundtrips() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        let doc = t.to_json("demo");
        let back = Json::parse(&doc.pretty()).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("schema").and_then(Json::as_str), Some(TABLE_SCHEMA_NAME));
        assert_eq!(back.get("id").and_then(Json::as_str), Some("demo"));
        let rows = back.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].as_arr().unwrap()[1].as_str(), Some("1"));
    }
}
