//! Speedup arithmetic.

/// Speedup of `cycles` relative to `base_cycles` (higher is better).
///
/// ```
/// assert_eq!(vlt_stats::speedup::speedup(200, 100), 2.0);
/// ```
pub fn speedup(base_cycles: u64, cycles: u64) -> f64 {
    assert!(cycles > 0, "zero cycle count");
    base_cycles as f64 / cycles as f64
}

/// Geometric mean of a set of speedups (the conventional summary).
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty());
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_speedup() {
        assert_eq!(speedup(100, 50), 2.0);
        assert_eq!(speedup(100, 100), 1.0);
        assert!(speedup(50, 100) < 1.0);
    }

    #[test]
    fn geomean_of_equal_values() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_balances_reciprocals() {
        assert!((geomean(&[2.0, 0.5]) - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn geomean_bounded_by_extremes(vals in proptest::collection::vec(0.1f64..10.0, 1..20)) {
            let g = geomean(&vals);
            let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = vals.iter().cloned().fold(0.0f64, f64::max);
            prop_assert!(g >= min - 1e-9 && g <= max + 1e-9);
        }
    }
}
