//! Metrics registry: named counters and fixed-bucket histograms.
//!
//! Observers (the `vlt-obs` crate) publish into a [`MetricsRegistry`]
//! while a simulation runs; this module owns the *schema* so every
//! producer serializes the same way and CI can validate the output
//! without running a simulation. The JSON layout is versioned
//! ([`METRICS_SCHEMA_VERSION`]) — bump it on any incompatible change
//! and teach [`validate_metrics_json`] about the new shape.
//!
//! Buckets are fixed at histogram-creation time (no dynamic resizing):
//! recording is a binary search plus an increment, so it is cheap
//! enough to sit on the per-cycle observer path.

use std::collections::BTreeMap;

use crate::json::Json;

/// Version stamped into every serialized registry (`"version"` field).
pub const METRICS_SCHEMA_VERSION: u64 = 1;

/// The `"schema"` field value identifying a metrics document.
pub const METRICS_SCHEMA_NAME: &str = "vlt-metrics";

/// A fixed-bucket histogram of `u64` samples.
///
/// Bucket `i` counts samples `v <= bounds[i]` (and greater than the
/// previous bound); one implicit overflow bucket counts samples above
/// the last bound. Exact `count`, `sum`, `min`, and `max` are kept
/// alongside the buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// A histogram with the given inclusive upper bounds, which must be
    /// strictly increasing. An overflow bucket is added automatically.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must be strictly increasing");
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` identical samples (bulk crediting from idle-span skips).
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = self.bounds.partition_point(|b| *b < v);
        self.counts[idx] += n;
        self.count += n;
        self.sum += v * n;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The inclusive upper bounds (without the overflow bucket).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; one longer than `bounds()` (overflow last).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    fn to_json(&self) -> Json {
        let mut m = BTreeMap::new();
        m.insert(
            "bounds".into(),
            Json::Arr(self.bounds.iter().map(|b| Json::Num(*b as f64)).collect()),
        );
        m.insert(
            "counts".into(),
            Json::Arr(self.counts.iter().map(|c| Json::Num(*c as f64)).collect()),
        );
        m.insert("count".into(), Json::Num(self.count as f64));
        m.insert("sum".into(), Json::Num(self.sum as f64));
        m.insert("min".into(), Json::Num(self.min().unwrap_or(0) as f64));
        m.insert("max".into(), Json::Num(self.max().unwrap_or(0) as f64));
        Json::Obj(m)
    }
}

/// A registry of named counters and histograms.
///
/// Names are free-form but the convention is dotted paths with the
/// subsystem first, e.g. `vu.issue.vl.region1` or `l2.conflicts.bank3`
/// — the serialized object sorts lexicographically, so related metrics
/// group together in the output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The histogram `name`, created with `bounds` on first use.
    /// An existing histogram keeps its original bounds.
    pub fn histogram(&mut self, name: &str, bounds: &[u64]) -> &mut Histogram {
        self.histograms.entry(name.to_string()).or_insert_with(|| Histogram::new(bounds))
    }

    /// The histogram `name`, if it exists.
    pub fn get_histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterate histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Serialize as a versioned JSON document (see module docs).
    pub fn to_json(&self) -> Json {
        let mut doc = BTreeMap::new();
        doc.insert("schema".into(), Json::Str(METRICS_SCHEMA_NAME.into()));
        doc.insert("version".into(), Json::Num(METRICS_SCHEMA_VERSION as f64));
        doc.insert(
            "counters".into(),
            Json::Obj(
                self.counters.iter().map(|(k, v)| (k.clone(), Json::Num(*v as f64))).collect(),
            ),
        );
        doc.insert(
            "histograms".into(),
            Json::Obj(self.histograms.iter().map(|(k, h)| (k.clone(), h.to_json())).collect()),
        );
        Json::Obj(doc)
    }
}

/// Validate that `doc` is a well-formed version-1 metrics document:
/// schema/version stamp, numeric counters, and histograms whose
/// `counts` array is one longer than `bounds` and sums to `count`.
/// Returns a description of the first violation.
pub fn validate_metrics_json(doc: &Json) -> Result<(), String> {
    if doc.get("schema").and_then(Json::as_str) != Some(METRICS_SCHEMA_NAME) {
        return Err("missing or wrong \"schema\" field".into());
    }
    if doc.get("version").and_then(Json::as_f64) != Some(METRICS_SCHEMA_VERSION as f64) {
        return Err(format!("\"version\" is not {METRICS_SCHEMA_VERSION}"));
    }
    let counters = match doc.get("counters") {
        Some(Json::Obj(m)) => m,
        _ => return Err("\"counters\" is not an object".into()),
    };
    for (k, v) in counters {
        if v.as_f64().is_none() {
            return Err(format!("counter {k:?} is not a number"));
        }
    }
    let hists = match doc.get("histograms") {
        Some(Json::Obj(m)) => m,
        _ => return Err("\"histograms\" is not an object".into()),
    };
    for (k, h) in hists {
        let bounds =
            h.get("bounds").and_then(Json::as_arr).ok_or(format!("histogram {k:?}: no bounds"))?;
        let counts =
            h.get("counts").and_then(Json::as_arr).ok_or(format!("histogram {k:?}: no counts"))?;
        if counts.len() != bounds.len() + 1 {
            return Err(format!("histogram {k:?}: counts/bounds length mismatch"));
        }
        let total =
            h.get("count").and_then(Json::as_f64).ok_or(format!("histogram {k:?}: no count"))?;
        let sum: f64 = counts.iter().filter_map(Json::as_f64).sum();
        if sum != total {
            return Err(format!("histogram {k:?}: bucket counts sum to {sum}, count says {total}"));
        }
        for field in ["sum", "min", "max"] {
            if h.get(field).and_then(Json::as_f64).is_none() {
                return Err(format!("histogram {k:?}: no {field}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = Histogram::new(&[4, 16, 64]);
        h.record(1); // bucket 0 (<= 4)
        h.record(4); // bucket 0
        h.record(5); // bucket 1
        h.record_n(100, 3); // overflow
        assert_eq!(h.bucket_counts(), &[2, 1, 0, 3]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1 + 4 + 5 + 300);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
    }

    #[test]
    fn registry_roundtrips_and_validates() {
        let mut r = MetricsRegistry::new();
        r.add("l2.conflicts.bank0", 7);
        r.add("l2.conflicts.bank0", 3);
        r.histogram("vu.issue.vl", &[8, 16, 32, 64]).record_n(32, 5);
        assert_eq!(r.counter("l2.conflicts.bank0"), 10);
        let doc = r.to_json();
        validate_metrics_json(&doc).unwrap();
        let back = Json::parse(&doc.pretty()).unwrap();
        validate_metrics_json(&back).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn validator_rejects_malformed() {
        assert!(validate_metrics_json(&Json::parse("{}").unwrap()).is_err());
        let bad = r#"{"schema": "vlt-metrics", "version": 1.0,
            "counters": {}, "histograms": {"h": {"bounds": [1.0], "counts": [1.0],
            "count": 1.0, "sum": 1.0, "min": 1.0, "max": 1.0}}}"#;
        let err = validate_metrics_json(&Json::parse(bad).unwrap()).unwrap_err();
        assert!(err.contains("length mismatch"), "{err}");
    }

    #[test]
    fn histogram_keeps_first_bounds() {
        let mut r = MetricsRegistry::new();
        r.histogram("h", &[10]).record(3);
        r.histogram("h", &[99, 100]).record(3);
        assert_eq!(r.get_histogram("h").unwrap().bounds(), &[10]);
        assert_eq!(r.get_histogram("h").unwrap().count(), 2);
    }
}
