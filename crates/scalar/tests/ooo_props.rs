//! Property tests on the out-of-order core: random straight-line programs
//! always complete, commit exactly their dynamic instruction count, run
//! deterministically, and respect throughput bounds.

use proptest::prelude::*;
use std::sync::Arc;

use vlt_exec::{ExecError, FuncSim, Step};
use vlt_isa::asm::assemble;
use vlt_mem::{MemConfig, MemSystem};
use vlt_scalar::{CoreConfig, FetchResult, FetchSource, NullVectorSink, OooCore};

struct SimSource(FuncSim);

impl FetchSource for SimSource {
    fn fetch(&mut self, thread: usize) -> Result<FetchResult, ExecError> {
        Ok(match self.0.step_thread(thread)? {
            Step::Inst(d) => FetchResult::Inst(d),
            Step::AtBarrier => FetchResult::AtBarrier,
            Step::Halted => FetchResult::Halted,
        })
    }
}

/// Generate a random but always-valid straight-line scalar program.
fn arb_program() -> impl Strategy<Value = String> {
    let inst = (0u8..7, 1u8..8, 1u8..8, 1u8..8).prop_map(|(op, rd, rs1, rs2)| match op {
        0 => format!("add x{rd}, x{rs1}, x{rs2}"),
        1 => format!("sub x{rd}, x{rs1}, x{rs2}"),
        2 => format!("mul x{rd}, x{rs1}, x{rs2}"),
        3 => format!("xor x{rd}, x{rs1}, x{rs2}"),
        4 => format!("slli x{rd}, x{rs1}, 3"),
        5 => format!("addi x{rd}, x{rs1}, 7"),
        _ => format!("sltu x{rd}, x{rs1}, x{rs2}"),
    });
    proptest::collection::vec(inst, 1..120)
        .prop_map(|insts| format!("li x1, 3\nli x2, 5\n{}\nhalt\n", insts.join("\n")))
}

fn run_core(src: &str, cfg: CoreConfig) -> (u64, u64) {
    let prog = assemble(src).unwrap();
    let sim = FuncSim::new(&prog, 1);
    let decoded = Arc::clone(&sim.prog);
    let mut source = SimSource(sim);
    let mut mem = MemSystem::new(MemConfig::default(), 1, 0);
    let mut core = OooCore::new(cfg, 0, decoded);
    core.bind(0, 0, 0);
    let mut vu = NullVectorSink;
    let mut now = 0u64;
    while !core.done() {
        core.tick(now, &mut mem, &mut source, &mut vu).unwrap();
        now += 1;
        assert!(now < 1_000_000, "core wedged");
    }
    (now, core.stats.committed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every dynamic instruction commits exactly once, on both core widths.
    #[test]
    fn commits_match_dynamic_count(src in arb_program()) {
        let n_insts = src.lines().filter(|l| !l.trim().is_empty()).count() as u64;
        for cfg in [CoreConfig::four_way(), CoreConfig::two_way()] {
            let (_, committed) = run_core(&src, cfg);
            prop_assert_eq!(committed, n_insts);
        }
    }

    /// Timing is deterministic and bounded: at least `n/width` cycles
    /// (can't beat the front end) and at most a generous serial bound.
    #[test]
    fn cycles_are_deterministic_and_bounded(src in arb_program()) {
        let cfg = CoreConfig::four_way();
        let (c1, n) = run_core(&src, cfg);
        let (c2, _) = run_core(&src, cfg);
        prop_assert_eq!(c1, c2);
        prop_assert!(c1 as f64 >= n as f64 / cfg.width as f64);
        // Serial worst case: every instruction a 12-cycle divide plus cold
        // I-cache misses.
        prop_assert!(c1 < n * 16 + 2_000, "{c1} cycles for {n} insts");
    }

    /// The 4-way core is never slower than the 2-way core.
    #[test]
    fn wider_is_never_slower(src in arb_program()) {
        let (c4, _) = run_core(&src, CoreConfig::four_way());
        let (c2, _) = run_core(&src, CoreConfig::two_way());
        prop_assert!(c4 <= c2 + 2, "4-way {c4} vs 2-way {c2}");
    }
}
