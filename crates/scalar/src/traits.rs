//! Interfaces between the scalar cores, the instruction source (the
//! functional simulator), and the vector unit.

use vlt_exec::{AddrRange, DynInst, ExecError};
use vlt_isa::OpClass;

/// What the front end got when it asked for the next instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FetchResult {
    /// The next correct-path instruction.
    Inst(DynInst),
    /// The thread is parked at a barrier; retry next cycle.
    AtBarrier,
    /// The thread has halted; no more instructions.
    Halted,
}

/// Supplies the correct-path dynamic instruction stream for one software
/// thread. Implemented over [`vlt_exec::FuncSim`] by the system simulator.
pub trait FetchSource {
    /// Pull the next instruction for software thread `thread`.
    fn fetch(&mut self, thread: usize) -> Result<FetchResult, ExecError>;

    /// Non-consuming probe: true when `thread`'s next [`FetchSource::fetch`]
    /// is guaranteed to return [`FetchResult::AtBarrier`] — the thread is
    /// parked at an unopened barrier and only another thread's progress can
    /// wake it. The event-driven driver uses this to prove a front end
    /// quiescent without pulling from the stream. The default ("never
    /// parked") is always safe: it only forfeits skipping.
    fn parked(&self, _thread: usize) -> bool {
        false
    }
}

/// Fold a candidate event cycle into a running `Option<u64>` minimum —
/// shared by the timed units' `next_event` implementations.
#[inline]
pub fn fold_event(ev: &mut Option<u64>, t: u64) {
    *ev = Some(match *ev {
        Some(e) => e.min(t),
        None => t,
    });
}

/// Opaque handle for a vector instruction in flight in the vector unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VecToken(pub u64);

/// A vector instruction handed from a scalar unit to the vector unit at
/// dispatch. Dependences on in-flight producers (scalar *or* vector) are
/// carried as `(seq)` handles scoped to `vthread`; the scalar unit reports
/// each producer's completion cycle through [`VectorSink::resolve`], letting
/// dependent vector instructions wait *inside* the VU window while younger
/// independent ones issue around them (the paper's out-of-order VCL, §2).
#[derive(Debug, Clone)]
pub struct VecDispatch {
    /// VLT thread (lane-partition) this instruction belongs to.
    pub vthread: usize,
    /// Static instruction index (the VU resolves opcode detail through its
    /// own copy of the decoded program).
    pub sidx: u32,
    /// Effective vector length.
    pub vl: u16,
    /// Resource class (`VAdd`/`VMul`/`VDiv`/`VMask`/`VLoad`/`VStore`).
    pub class: OpClass,
    /// Arena handle to the element addresses of vector memory operations
    /// (post-mask); [`AddrRange::EMPTY`] for arithmetic.
    pub addrs: AddrRange,
    /// Program-order sequence number within `vthread` (also identifies this
    /// instruction as a producer for later `resolve` calls).
    pub seq: u64,
    /// Sequence numbers of in-flight producers this instruction reads.
    pub deps: Vec<u64>,
    /// The subset of `deps` produced by *scalar* instructions (the rest are
    /// in-flight vector producers). Purely observational — used by the
    /// vector unit's stall-cause attribution to distinguish
    /// scalar-dependence waits from chaining waits; timing reads `deps`.
    pub scalar_deps: Vec<u64>,
    /// Earliest issue cycle from producers that had already completed at
    /// dispatch time.
    pub ready_base: u64,
}

/// The scalar unit's view of the vector unit.
pub trait VectorSink {
    /// Try to enqueue into the vector instruction queue; `None` if the
    /// per-thread VIQ partition is full this cycle (retry next cycle).
    fn try_dispatch(&mut self, d: VecDispatch, now: u64) -> Option<VecToken>;

    /// A producer (`vthread`-scoped `seq`) now has a known completion cycle;
    /// the VU folds it into any waiting consumers.
    fn resolve(&mut self, vthread: usize, seq: u64, done_at: u64);

    /// Completion cycle, once the instruction has fully executed. Reports
    /// each token at most once (the VU may then retire the entry).
    fn poll(&mut self, token: VecToken) -> Option<u64>;
}

/// A vector sink for configurations without a vector unit (the CMP/CMT
/// baselines). Dispatching panics: scalar-only workloads never emit vector
/// instructions.
#[derive(Debug, Default)]
pub struct NullVectorSink;

impl VectorSink for NullVectorSink {
    fn try_dispatch(&mut self, d: VecDispatch, _now: u64) -> Option<VecToken> {
        panic!("vector instruction (sidx {}) on a configuration without a vector unit", d.sidx)
    }

    fn resolve(&mut self, _vthread: usize, _seq: u64, _done_at: u64) {}

    fn poll(&mut self, _token: VecToken) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic]
    fn null_sink_rejects_vectors() {
        let mut s = NullVectorSink;
        let _ = s.try_dispatch(
            VecDispatch {
                vthread: 0,
                sidx: 0,
                vl: 8,
                class: OpClass::VAdd,
                addrs: AddrRange::EMPTY,
                seq: 0,
                deps: vec![],
                scalar_deps: vec![],
                ready_base: 0,
            },
            0,
        );
    }
}
