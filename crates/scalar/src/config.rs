//! Core configuration parameters (paper Table 3 and §4.1).

/// Out-of-order scalar unit parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Fetch/issue/retire width.
    pub width: usize,
    /// Instruction window entries (shared by the ROB in this model).
    pub window: usize,
    /// Number of arithmetic functional units.
    pub arith_units: usize,
    /// Number of memory ports.
    pub mem_ports: usize,
    /// Hardware thread contexts (1, or 2 for the SMT variants).
    pub smt_contexts: usize,
    /// Front-end redirect penalty on a branch misprediction.
    pub mispredict_penalty: u64,
    /// Extra drain penalty for serializing instructions (`vltcfg`).
    pub serialize_penalty: u64,
}

impl CoreConfig {
    /// The base 4-way superscalar SU (Table 3).
    pub fn four_way() -> Self {
        CoreConfig {
            width: 4,
            window: 64,
            arith_units: 4,
            mem_ports: 2,
            smt_contexts: 1,
            mispredict_penalty: 10,
            serialize_penalty: 20,
        }
    }

    /// The smaller 2-way SU used by heterogeneous configurations (§4.1:
    /// "identical caches but half the resources of the 4-way unit").
    pub fn two_way() -> Self {
        CoreConfig { width: 2, window: 32, arith_units: 2, mem_ports: 1, ..Self::four_way() }
    }

    /// Enable SMT on this core (2-way for the CMT configs; the V4-SMT design
    /// point runs 4 contexts on one SU — paper §4.1, Table 2).
    pub fn with_smt(mut self, contexts: usize) -> Self {
        assert!(matches!(contexts, 1 | 2 | 4), "SMT supports 1, 2, or 4 contexts");
        self.smt_contexts = contexts;
        self
    }

    /// Window entries available to each hardware context.
    pub fn window_per_ctx(&self) -> usize {
        self.window / self.smt_contexts
    }
}

/// In-order lane-core parameters (paper §5: "each lane can operate
/// independently as a 2-way in-order processor").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneCoreConfig {
    /// Issue width (2).
    pub width: usize,
    /// Outstanding loads allowed (decoupling queues, §5).
    pub load_queue: usize,
    /// Taken-branch redirect penalty (shallow pipeline).
    pub branch_penalty: u64,
    /// Arithmetic datapaths usable per cycle (3 exist; fetch width limits
    /// utilization to 2).
    pub arith_units: usize,
}

impl Default for LaneCoreConfig {
    fn default() -> Self {
        LaneCoreConfig { width: 2, load_queue: 4, branch_penalty: 4, arith_units: 3 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_parameters() {
        let c = CoreConfig::four_way();
        assert_eq!(c.width, 4);
        assert_eq!(c.window, 64);
        assert_eq!(c.arith_units, 4);
        assert_eq!(c.mem_ports, 2);
        assert_eq!(c.smt_contexts, 1);
    }

    #[test]
    fn two_way_is_half() {
        let c = CoreConfig::two_way();
        assert_eq!(c.width, 2);
        assert_eq!(c.arith_units, 2);
        assert_eq!(c.mem_ports, 1);
    }

    #[test]
    fn smt_partitions_window() {
        let c = CoreConfig::four_way().with_smt(2);
        assert_eq!(c.window_per_ctx(), 32);
    }

    #[test]
    fn four_context_smt_allowed() {
        let c = CoreConfig::four_way().with_smt(4);
        assert_eq!(c.window_per_ctx(), 16);
    }

    #[test]
    #[should_panic]
    fn smt_rejects_bad_counts() {
        CoreConfig::four_way().with_smt(3);
    }
}
