//! The stall-cause attribution taxonomy.
//!
//! The paper's Figure 4 decomposes datapath utilization into busy /
//! partly-idle / stalled / all-idle, but says nothing about *why* a cycle
//! was lost. Every timed unit in the simulator (scalar units, lane cores,
//! vector-unit partitions) tags each stalled or idle cycle it accounts with
//! one [`StallCause`], under a conservation invariant checked in tests:
//! the per-cause totals sum exactly to the unit's untagged stall/idle
//! counters, under both the cycle-by-cycle and the event-driven driver.

/// Why a unit lost a cycle (or a datapath-cycle, for the vector unit).
///
/// One fixed, closed taxonomy shared by every unit; not every cause can
/// occur on every unit (e.g. only the vector unit attributes [`NoDlp`]).
///
/// [`NoDlp`]: StallCause::NoDlp
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum StallCause {
    /// No data-level parallelism available: the unit had nothing queued at
    /// all (vector unit only — the all-idle half of Figure 4's taxonomy
    /// when no barrier or repartition explains the emptiness).
    NoDlp,
    /// Lost to memory-system backpressure: a full load queue or exhausted
    /// memory ports on a lane core, an L2-bank-bound wait in the vector
    /// unit, or a scalar unit's window full behind a memory access.
    BankConflict,
    /// Waiting on an in-flight *vector* producer (chaining position or
    /// full completion, depending on the chaining configuration).
    ChainDepth,
    /// Parked at a barrier waiting for other threads to arrive.
    BarrierWait,
    /// Waiting on a *scalar* producer (operand not yet computed, or a
    /// scalar unit's window full behind a scalar dependence chain).
    ScalarDep,
    /// Draining toward a serialize point: a pending `vltcfg` repartition.
    Drain,
    /// Work was ready but issue/fetch bandwidth (or a busy functional
    /// unit, or a front-end redirect penalty) did not admit it this cycle.
    IssueWidth,
    /// Waiting on an in-flight vector memory producer whose latency came
    /// from inter-cluster network contention (a busy cluster link), not an
    /// L2 bank. Only occurs on multi-cluster machines; single-cluster runs
    /// keep attributing memory waits to [`BankConflict`].
    ///
    /// [`BankConflict`]: StallCause::BankConflict
    NetworkContention,
}

impl StallCause {
    /// Every cause, in declaration order (the [`StallBreakdown`] index
    /// order).
    pub const ALL: [StallCause; 8] = [
        StallCause::NoDlp,
        StallCause::BankConflict,
        StallCause::ChainDepth,
        StallCause::BarrierWait,
        StallCause::ScalarDep,
        StallCause::Drain,
        StallCause::IssueWidth,
        StallCause::NetworkContention,
    ];

    /// Stable machine-readable name (used as JSON keys and trace labels).
    pub fn name(self) -> &'static str {
        match self {
            StallCause::NoDlp => "no-dlp",
            StallCause::BankConflict => "bank-conflict",
            StallCause::ChainDepth => "chain-depth",
            StallCause::BarrierWait => "barrier-wait",
            StallCause::ScalarDep => "scalar-dep",
            StallCause::Drain => "drain",
            StallCause::IssueWidth => "issue-width",
            StallCause::NetworkContention => "network-contention",
        }
    }
}

/// Per-cause cycle counts: a tiny fixed-size accumulator indexed by
/// [`StallCause`]. Units are whatever the owning counter uses — core
/// cycles for the scalar units and lane cores, datapath-cycles for the
/// vector unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    counts: [u64; StallCause::ALL.len()],
}

impl StallBreakdown {
    /// Credit `cycles` to `cause`.
    #[inline]
    pub fn add(&mut self, cause: StallCause, cycles: u64) {
        self.counts[cause as usize] += cycles;
    }

    /// Cycles attributed to `cause` so far.
    #[inline]
    pub fn get(&self, cause: StallCause) -> u64 {
        self.counts[cause as usize]
    }

    /// Total attributed cycles across all causes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Accumulate another breakdown into this one.
    pub fn merge(&mut self, other: &StallBreakdown) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Per-cause difference `self - earlier` (saturating; both snapshots
    /// of one monotone accumulator, so saturation never fires in practice).
    pub fn since(&self, earlier: &StallBreakdown) -> StallBreakdown {
        let mut out = StallBreakdown::default();
        for (i, (a, b)) in self.counts.iter().zip(earlier.counts.iter()).enumerate() {
            out.counts[i] = a.saturating_sub(*b);
        }
        out
    }

    /// `(cause, cycles)` pairs in declaration order, including zeros.
    pub fn iter(&self) -> impl Iterator<Item = (StallCause, u64)> + '_ {
        StallCause::ALL.iter().map(move |&c| (c, self.get(c)))
    }

    /// Causes sorted by descending cycle count, zeros omitted.
    pub fn ranked(&self) -> Vec<(StallCause, u64)> {
        let mut v: Vec<(StallCause, u64)> = self.iter().filter(|(_, n)| *n > 0).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_total() {
        let mut b = StallBreakdown::default();
        b.add(StallCause::NoDlp, 3);
        b.add(StallCause::IssueWidth, 5);
        b.add(StallCause::NoDlp, 2);
        assert_eq!(b.get(StallCause::NoDlp), 5);
        assert_eq!(b.get(StallCause::IssueWidth), 5);
        assert_eq!(b.get(StallCause::Drain), 0);
        assert_eq!(b.total(), 10);
    }

    #[test]
    fn merge_and_since_are_inverses() {
        let mut a = StallBreakdown::default();
        a.add(StallCause::ChainDepth, 7);
        let mut b = a;
        b.add(StallCause::ScalarDep, 4);
        b.add(StallCause::ChainDepth, 1);
        let delta = b.since(&a);
        assert_eq!(delta.get(StallCause::ChainDepth), 1);
        assert_eq!(delta.get(StallCause::ScalarDep), 4);
        let mut back = a;
        back.merge(&delta);
        assert_eq!(back, b);
    }

    #[test]
    fn ranked_sorts_descending_without_zeros() {
        let mut b = StallBreakdown::default();
        b.add(StallCause::BarrierWait, 2);
        b.add(StallCause::BankConflict, 9);
        let r = b.ranked();
        assert_eq!(r, vec![(StallCause::BankConflict, 9), (StallCause::BarrierWait, 2)]);
    }

    #[test]
    fn names_are_unique_and_stable() {
        let names: std::collections::BTreeSet<&str> =
            StallCause::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), StallCause::ALL.len());
        assert!(names.contains("no-dlp") && names.contains("issue-width"));
    }
}
