//! Branch prediction: gshare-style 2-bit counters, a BTB for indirect
//! targets, and a return-address stack for `call`/`ret` pairs.

use vlt_isa::Op;

/// Direction + target predictor consulted once per fetched control
/// instruction. `observe` returns whether the prediction was correct and
/// updates all structures with the actual outcome.
///
/// ```
/// use vlt_scalar::Predictor;
/// use vlt_isa::Op;
/// let mut p = Predictor::default_su();
/// for _ in 0..64 {
///     p.observe(0x1000, Op::Bne, true, 0xF00); // always-taken loop branch
/// }
/// assert!(p.mispredict_rate() < 0.5); // learned after warmup
/// ```
#[derive(Debug, Clone)]
pub struct Predictor {
    /// 2-bit saturating counters.
    counters: Vec<u8>,
    /// Global history register.
    history: u64,
    history_bits: u32,
    /// BTB: (tag, target) pairs, direct-mapped.
    btb: Vec<(u64, u64)>,
    /// Return-address stack.
    ras: Vec<u64>,
    ras_depth: usize,
    /// Statistics: (lookups, mispredictions).
    pub lookups: u64,
    /// Mispredictions observed.
    pub mispredicts: u64,
}

impl Predictor {
    /// `table_bits` sizes the counter table (2^bits entries); `btb_entries`
    /// must be a power of two.
    pub fn new(table_bits: u32, btb_entries: usize, ras_depth: usize) -> Self {
        assert!(btb_entries.is_power_of_two());
        Predictor {
            counters: vec![1; 1 << table_bits], // weakly not-taken
            history: 0,
            history_bits: table_bits.min(12),
            btb: vec![(u64::MAX, 0); btb_entries],
            ras: Vec::new(),
            ras_depth,
            lookups: 0,
            mispredicts: 0,
        }
    }

    /// Default sizing for the 4-way SU.
    pub fn default_su() -> Self {
        Predictor::new(12, 512, 16)
    }

    /// Small sizing for an in-order lane core.
    pub fn small() -> Self {
        Predictor::new(9, 64, 8)
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        let h = self.history & ((1 << self.history_bits) - 1);
        (((pc >> 2) ^ h) as usize) & (self.counters.len() - 1)
    }

    #[inline]
    fn btb_slot(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.btb.len() - 1)
    }

    /// Consult and train on one control instruction; returns `true` when
    /// the front end predicted correctly (no redirect needed).
    ///
    /// * Conditional branches: direction from the counters; the target of a
    ///   direct branch is computable at decode, so a correctly-predicted
    ///   direction implies a correct target.
    /// * `j`/`jal`: always correct (direct, unconditional).
    /// * `jr x31` (`ret`): predicted via the return-address stack.
    /// * `jalr`/other `jr`: predicted via the BTB.
    pub fn observe(&mut self, pc: u64, op: Op, taken: bool, target: u64) -> bool {
        self.lookups += 1;
        let correct = match op {
            Op::J => true,
            Op::Jal => {
                self.push_ras(pc + 4);
                true
            }
            Op::Jalr => {
                self.push_ras(pc + 4);
                let slot = self.btb_slot(pc);
                let hit = self.btb[slot] == (pc, target);
                self.btb[slot] = (pc, target);
                hit
            }
            Op::Jr => {
                let predicted = self.pop_ras();
                match predicted {
                    Some(t) if t == target => true,
                    _ => {
                        let slot = self.btb_slot(pc);
                        let hit = self.btb[slot] == (pc, target);
                        self.btb[slot] = (pc, target);
                        hit
                    }
                }
            }
            _ => {
                // Conditional branch.
                let idx = self.index(pc);
                let pred_taken = self.counters[idx] >= 2;
                let c = &mut self.counters[idx];
                if taken {
                    *c = (*c + 1).min(3);
                } else {
                    *c = c.saturating_sub(1);
                }
                self.history = (self.history << 1) | taken as u64;
                pred_taken == taken
            }
        };
        if !correct {
            self.mispredicts += 1;
        }
        correct
    }

    fn push_ras(&mut self, ret: u64) {
        if self.ras.len() == self.ras_depth {
            self.ras.remove(0);
        }
        self.ras.push(ret);
    }

    fn pop_ras(&mut self) -> Option<u64> {
        self.ras.pop()
    }

    /// Misprediction rate so far.
    pub fn mispredict_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_biased_branch() {
        let mut p = Predictor::default_su();
        // Always-taken loop branch: mispredicts only while the global
        // history warms up (it walks through fresh counter entries), then
        // predicts perfectly.
        let mut wrong_total = 0;
        let mut wrong_late = 0;
        for i in 0..200 {
            if !p.observe(0x1000, Op::Bne, true, 0x0F00) {
                wrong_total += 1;
                if i >= 100 {
                    wrong_late += 1;
                }
            }
        }
        assert!(wrong_total <= 20, "warmup too long: {wrong_total} wrong");
        assert_eq!(wrong_late, 0, "steady state must be perfect");
    }

    #[test]
    fn direct_jumps_never_mispredict() {
        let mut p = Predictor::default_su();
        for _ in 0..10 {
            assert!(p.observe(0x1000, Op::J, true, 0x9999));
        }
        assert_eq!(p.mispredicts, 0);
    }

    #[test]
    fn call_ret_pairs_use_ras() {
        let mut p = Predictor::default_su();
        // call f (jal) then ret (jr) back to pc+4: the RAS nails it.
        assert!(p.observe(0x1000, Op::Jal, true, 0x2000));
        assert!(p.observe(0x2000, Op::Jr, true, 0x1004));
        // Nested calls.
        p.observe(0x1100, Op::Jal, true, 0x2000);
        p.observe(0x1200, Op::Jal, true, 0x3000); // pretend nested
        assert!(p.observe(0x3000, Op::Jr, true, 0x1204));
        assert!(p.observe(0x2000, Op::Jr, true, 0x1104));
    }

    #[test]
    fn indirect_jumps_learn_via_btb() {
        let mut p = Predictor::default_su();
        // First occurrence mispredicts; the second (same target) hits.
        assert!(!p.observe(0x1000, Op::Jalr, true, 0x4000));
        assert!(p.observe(0x1000, Op::Jalr, true, 0x4000));
        // Target change mispredicts again.
        assert!(!p.observe(0x1000, Op::Jalr, true, 0x5000));
    }

    #[test]
    fn alternating_branch_is_learned_by_history() {
        // A strict alternation is exactly what global history captures:
        // after warmup the predictor should be near-perfect.
        let mut p = Predictor::default_su();
        let mut wrong_late = 0;
        for i in 0..400 {
            if !p.observe(0x40, Op::Beq, i % 2 == 0, 0x80) && i >= 200 {
                wrong_late += 1;
            }
        }
        assert!(wrong_late <= 4, "history should learn alternation: {wrong_late}");
    }

    #[test]
    fn random_branch_mispredicts() {
        // A pattern with no structure: expect a substantial miss rate.
        let mut p = Predictor::default_su();
        let mut state = 0x12345678u64;
        let mut wrong = 0;
        for _ in 0..500 {
            // xorshift
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if !p.observe(0x40, Op::Beq, state & 1 == 1, 0x80) {
                wrong += 1;
            }
        }
        assert!(wrong > 100, "random outcomes cannot be predicted: {wrong}");
    }

    #[test]
    fn stats_track() {
        let mut p = Predictor::default_su();
        p.observe(0x10, Op::Beq, true, 0x20);
        assert_eq!(p.lookups, 1);
        assert!(p.mispredict_rate() <= 1.0);
    }
}
