#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # vlt-scalar — scalar-unit timing models
//!
//! Two core models drive the evaluation:
//!
//! * [`OooCore`] — the scalar unit (SU) of the vector processor: a wide-issue
//!   out-of-order superscalar with branch prediction, a unified instruction
//!   window + ROB, L1 caches, and optional 2-way SMT (paper §2, §4.1,
//!   Table 3). It fetches *both* scalar and vector instructions; vector
//!   instructions are dispatched to the vector unit through the
//!   [`VectorSink`] trait and tracked in the ROB for in-order retirement.
//! * [`InOrderCore`] — a vector lane re-engineered as a 2-way in-order
//!   processor with a 4 KB I-cache for VLT scalar threads (paper §5).
//!
//! Both consume the correct-path dynamic instruction stream of
//! [`vlt_exec::FuncSim`] through the [`FetchSource`] trait; branch
//! mispredictions charge a front-end redirect penalty (DESIGN.md §8).

pub mod config;
pub mod cpi;
pub mod inorder;
pub mod ooo;
pub mod predictor;
pub mod stall;
pub mod traits;

pub use config::{CoreConfig, LaneCoreConfig};
pub use cpi::CpiStack;
pub use inorder::InOrderCore;
pub use ooo::{CoreStats, OooCore};
pub use predictor::Predictor;
pub use stall::{StallBreakdown, StallCause};
pub use traits::{
    fold_event, FetchResult, FetchSource, NullVectorSink, VecDispatch, VecToken, VectorSink,
};
