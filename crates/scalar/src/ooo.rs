//! The out-of-order superscalar scalar unit (SU).
//!
//! Pipeline model (one `tick` per cycle):
//!
//! 1. **Poll** — vector instructions in the ROB check the vector unit for
//!    completion; completions resolve dependent consumers.
//! 2. **Commit** — in-order per context, total width shared across SMT
//!    contexts.
//! 3. **Issue** — oldest-ready-first across contexts, bounded by issue
//!    width, arithmetic units, memory ports, and an unpipelined divider.
//! 4. **Fetch/dispatch** — one context per cycle (ICOUNT-style choice),
//!    up to `width` instructions; branch predictor consulted against the
//!    known outcome, charging a redirect penalty on mispredicts; vector
//!    instructions are handed to the vector unit in program order with a
//!    dependence snapshot.
//!
//! Register renaming is modeled as unlimited physical registers: only true
//! (RAW) dependences constrain issue, while the window bounds run-ahead
//! (DESIGN.md §8).

use std::collections::VecDeque;
use std::sync::Arc;

use vlt_exec::{DecodedProgram, DynInst, DynKind, ExecError};
use vlt_isa::{OpClass, RegRef};
use vlt_mem::MemSystem;

use crate::config::CoreConfig;
use crate::predictor::Predictor;
use crate::stall::{StallBreakdown, StallCause};
use crate::traits::{fold_event, FetchResult, FetchSource, VecDispatch, VecToken, VectorSink};

/// Execution latency by class (cycles from issue to result availability).
pub fn latency(class: OpClass) -> u64 {
    match class {
        OpClass::IntAlu | OpClass::Sys => 1,
        OpClass::IntMul => 3,
        OpClass::IntDiv => 12,
        OpClass::FpAdd => 4,
        OpClass::FpMul => 4,
        OpClass::FpDiv => 16,
        OpClass::Branch | OpClass::Jump => 1,
        // Memory and vector classes are timed elsewhere.
        _ => 1,
    }
}

/// Aggregated per-core statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Instructions committed (all contexts).
    pub committed: u64,
    /// Instructions issued to functional units.
    pub issued: u64,
    /// Vector instructions dispatched to the vector unit.
    pub vec_dispatched: u64,
    /// Cycles the front end was stalled on redirects or I-cache misses.
    pub fetch_stall_cycles: u64,
    /// Cycles with at least one in-flight instruction.
    pub busy_cycles: u64,
    /// Branch mispredictions charged.
    pub mispredicts: u64,
    /// Why each fetch-stall cycle was lost. Conservation invariant:
    /// `stalls.total() == fetch_stall_cycles` at all times, under both
    /// drivers.
    pub stalls: StallBreakdown,
}

#[derive(Debug, Clone, PartialEq)]
enum EKind {
    /// Scalar computation, branches, system ops.
    Alu,
    /// Scalar memory access.
    Mem { addr: u64, write: bool },
    /// Vector instruction in flight in the vector unit. `early` marks
    /// entries that retire from the ROB at dispatch (no scalar destination;
    /// the VIQ/window tracks them — paper §2's decoupled vector execution);
    /// their register effects are published when the VU completes them.
    Vector { token: VecToken, early: bool },
    /// Barrier marker (completes immediately; fetch gating enforces order).
    Barrier,
    /// Serializing instruction (`vltcfg`): drains the ROB.
    Serialize,
    /// Commits immediately (halt marker).
    Done,
}

#[derive(Debug, Clone)]
struct Entry {
    seq: u64,
    sidx: u32,
    class: OpClass,
    kind: EKind,
    /// In-flight producers still unresolved (core-global seqs).
    deps: Vec<u64>,
    /// Max completion cycle of already-resolved producers.
    ready_base: u64,
    issued: bool,
    done_at: Option<u64>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Producer {
    Ready(u64),
    InFlight(u64),
}

#[derive(Debug)]
struct Ctx {
    /// Bound software thread (None = context unused).
    thread: Option<usize>,
    /// VLT thread id for vector-unit scoping.
    vthread: usize,
    rob: VecDeque<Entry>,
    /// Latest producer per architectural register.
    reg_map: Vec<Producer>,
    fetch_ready: u64,
    last_fetch_line: u64,
    /// An instruction pulled from the source but not yet accepted
    /// (window full, I-cache miss, or VIQ full).
    pending: Option<DynInst>,
    halted: bool,
    draining: bool,
}

/// Flatten a register reference into the `reg_map` index space.
#[inline]
fn reg_index(r: RegRef) -> usize {
    match r {
        RegRef::I(i) => i as usize,
        RegRef::F(i) => 32 + i as usize,
        RegRef::V(i) => 64 + i as usize,
        RegRef::Vl => 96,
        RegRef::Vm => 97,
    }
}
const REG_SPACE: usize = 98;

impl Ctx {
    fn new() -> Self {
        Ctx {
            thread: None,
            vthread: 0,
            rob: VecDeque::new(),
            reg_map: vec![Producer::Ready(0); REG_SPACE],
            fetch_ready: 0,
            last_fetch_line: u64::MAX,
            pending: None,
            halted: false,
            draining: false,
        }
    }

    fn active(&self) -> bool {
        self.thread.is_some() && !(self.halted && self.rob.is_empty() && self.pending.is_none())
    }
}

/// The out-of-order scalar unit.
#[derive(Debug)]
pub struct OooCore {
    cfg: CoreConfig,
    core_id: usize,
    prog: Arc<DecodedProgram>,
    pred: Predictor,
    ctxs: Vec<Ctx>,
    /// Early-retired vector instructions awaiting VU completion:
    /// (context, seq, token).
    pending_vec: Vec<(usize, u64, VecToken)>,
    seq_next: u64,
    div_free: u64,
    /// Statistics counters.
    pub stats: CoreStats,
}

impl OooCore {
    /// Build a core; contexts are bound with [`OooCore::bind`].
    pub fn new(cfg: CoreConfig, core_id: usize, prog: Arc<DecodedProgram>) -> Self {
        let ctxs = (0..cfg.smt_contexts).map(|_| Ctx::new()).collect();
        OooCore {
            cfg,
            core_id,
            prog,
            pred: Predictor::default_su(),
            ctxs,
            pending_vec: Vec::new(),
            seq_next: 0,
            div_free: 0,
            stats: CoreStats::default(),
        }
    }

    /// Bind hardware context `ctx` to software thread `thread`, tagged with
    /// VLT thread id `vthread` for vector-unit scoping.
    pub fn bind(&mut self, ctx: usize, thread: usize, vthread: usize) {
        let c = &mut self.ctxs[ctx];
        assert!(c.thread.is_none(), "context already bound");
        c.thread = Some(thread);
        c.vthread = vthread;
    }

    /// True when every bound context has drained and halted (including
    /// early-retired vector instructions still executing in the VU).
    pub fn done(&self) -> bool {
        self.pending_vec.is_empty() && self.ctxs.iter().all(|c| !c.active())
    }

    /// The core's configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Branch predictor statistics access.
    pub fn predictor(&self) -> &Predictor {
        &self.pred
    }

    /// Earliest cycle `>= from` at which this core can next change state:
    /// a head entry becomes committable, a dep-free entry becomes an issue
    /// candidate, a redirect/I-cache penalty expires, or the front end can
    /// pull a new instruction. `None` means the core is inert until some
    /// other unit acts (drained, or every context parked at a barrier).
    ///
    /// The contract shared by all `next_event` implementations: the returned
    /// cycle is never *later* than the true first state change — reporting
    /// too early merely shortens a skip (`Some(from)` means "cannot skip").
    /// Completed non-head ROB entries are inert here because producers
    /// broadcast their completion cycle at issue time, not at commit.
    /// `fetch_ready` is reported for every bound context so the
    /// fetch-eligibility predicate (and with it the `fetch_stall_cycles`
    /// accounting in [`OooCore::credit_idle_span`]) is constant over any
    /// skipped span.
    pub fn next_event(&self, from: u64, src: &dyn FetchSource) -> Option<u64> {
        if self.done() {
            return None;
        }
        let mut ev: Option<u64> = None;
        for c in &self.ctxs {
            let Some(thread) = c.thread else { continue };
            if let Some(head) = c.rob.front() {
                if let Some(d) = head.done_at {
                    fold_event(&mut ev, d.max(from));
                }
            }
            for e in &c.rob {
                if !e.issued && e.deps.is_empty() {
                    // Issue candidate at `ready_base`; entries still carrying
                    // deps wake through their producer's own event.
                    fold_event(&mut ev, e.ready_base.max(from));
                }
            }
            if c.halted {
                continue; // drains through commit events alone
            }
            if c.fetch_ready > from {
                fold_event(&mut ev, c.fetch_ready);
                continue;
            }
            if c.draining {
                continue; // cleared by the Serialize commit (head event)
            }
            if c.pending.is_some() {
                // Stashed instruction retried while the window has room (a
                // VIQ-full retry depends on VU state not modeled here).
                if c.rob.len() < self.cfg.window_per_ctx() {
                    fold_event(&mut ev, from);
                }
                continue;
            }
            if c.rob.len() < self.cfg.window_per_ctx() && !src.parked(thread) {
                fold_event(&mut ev, from); // front end can fetch right now
            }
        }
        ev
    }

    /// Credit a provably-idle span of `cycles` cycles starting at `from` to
    /// the per-cycle counters, exactly as cycle-by-cycle ticks would have:
    /// `busy_cycles` accrues while any context holds in-flight work, and
    /// `fetch_stall_cycles` accrues while no context is fetch-eligible but
    /// some context is still active. Both predicates are constant across a
    /// quiescent span — [`OooCore::next_event`] caps the span at anything
    /// that could flip them.
    pub fn credit_idle_span(&mut self, from: u64, cycles: u64) {
        if self.ctxs.iter().any(|c| !c.rob.is_empty()) {
            self.stats.busy_cycles += cycles;
        }
        let any_eligible = self.ctxs.iter().any(|c| {
            c.thread.is_some()
                && !c.halted
                && !c.draining
                && c.fetch_ready <= from
                && (c.rob.len() < self.cfg.window_per_ctx() || c.pending.is_some())
        });
        if !any_eligible && self.ctxs.iter().any(|c| c.active()) {
            self.stats.fetch_stall_cycles += cycles;
            self.stats.stalls.add(self.fetch_stall_cause(from), cycles);
        }
    }

    /// Classify *why* no context is fetch-eligible this cycle, for
    /// stall-cause attribution. Called from the per-cycle fetch stage and
    /// from [`OooCore::credit_idle_span`]; every predicate it reads is
    /// constant across a quiescent span ([`OooCore::next_event`] folds each
    /// context's `fetch_ready`, the head entry's completion, and every
    /// issue-candidate wake-up, and ROB membership only changes inside
    /// `tick`), so both paths tag identically.
    ///
    /// Priority (fixed, so attribution is deterministic): a draining
    /// context ([`StallCause::Drain`]), then a front-end redirect/I-cache
    /// penalty ([`StallCause::IssueWidth`]), then a full window classified
    /// by the oldest uncompleted entry — an in-flight vector producer
    /// ([`StallCause::ChainDepth`]), a memory access
    /// ([`StallCause::BankConflict`]), or a scalar dependence chain
    /// ([`StallCause::ScalarDep`]). A full window of *completed* entries is
    /// commit-bandwidth pressure and tags [`StallCause::IssueWidth`].
    fn fetch_stall_cause(&self, now: u64) -> StallCause {
        let (mut drain, mut redirect, mut chain, mut bank, mut scalar, mut commit_bw) =
            (false, false, false, false, false, false);
        for c in &self.ctxs {
            if c.thread.is_none() || !c.active() {
                continue;
            }
            if c.draining {
                drain = true;
                continue;
            }
            if !c.halted && c.fetch_ready > now {
                redirect = true;
                continue;
            }
            // Window full (or halted and draining through commit): classify
            // by the oldest entry that has not completed yet.
            match c.rob.iter().find(|e| e.done_at.is_none_or(|d| d > now)) {
                Some(e) => match e.kind {
                    EKind::Vector { .. } => chain = true,
                    EKind::Mem { .. } => bank = true,
                    _ => scalar = true,
                },
                None => commit_bw = true,
            }
        }
        if drain {
            StallCause::Drain
        } else if redirect {
            StallCause::IssueWidth
        } else if chain {
            StallCause::ChainDepth
        } else if bank {
            StallCause::BankConflict
        } else if scalar {
            StallCause::ScalarDep
        } else if commit_bw {
            StallCause::IssueWidth
        } else {
            // Unreachable when the caller established an active context with
            // none fetch-eligible; keep the counters conserved regardless.
            StallCause::ScalarDep
        }
    }

    /// Advance one cycle.
    pub fn tick(
        &mut self,
        now: u64,
        mem: &mut MemSystem,
        src: &mut dyn FetchSource,
        vu: &mut dyn VectorSink,
    ) -> Result<(), ExecError> {
        if self.ctxs.iter().any(|c| !c.rob.is_empty()) {
            self.stats.busy_cycles += 1;
        }
        self.poll_vector(vu);
        self.commit(now);
        self.issue(now, mem, vu);
        self.fetch(now, mem, src, vu)?;
        Ok(())
    }

    /// Stage 1: pick up vector-unit completions, both for ROB-resident
    /// vector instructions (scalar destinations) and early-retired ones.
    fn poll_vector(&mut self, vu: &mut dyn VectorSink) {
        for ci in 0..self.ctxs.len() {
            let vthread = self.ctxs[ci].vthread;
            let mut resolved: Vec<(u64, u64)> = Vec::new();
            for e in self.ctxs[ci].rob.iter_mut() {
                if e.done_at.is_none() {
                    if let EKind::Vector { token, .. } = e.kind {
                        if let Some(t) = vu.poll(token) {
                            e.done_at = Some(t);
                            resolved.push((e.seq, t));
                        }
                    }
                }
            }
            for (seq, t) in resolved {
                self.resolve_producer(ci, seq, t, vthread, vu);
            }
        }
        let mut completed: Vec<(usize, u64, u64)> = Vec::new();
        self.pending_vec.retain(|(ci, seq, token)| match vu.poll(*token) {
            Some(t) => {
                completed.push((*ci, *seq, t));
                false
            }
            None => true,
        });
        for (ci, seq, t) in completed {
            // Publish register effects now that the completion is known.
            let vthread = self.ctxs[ci].vthread;
            for r in 0..REG_SPACE {
                if self.ctxs[ci].reg_map[r] == Producer::InFlight(seq) {
                    self.ctxs[ci].reg_map[r] = Producer::Ready(t);
                }
            }
            self.resolve_producer(ci, seq, t, vthread, vu);
        }
    }

    /// Broadcast a producer's completion to waiting consumers (this core's
    /// window and the vector unit's window).
    fn resolve_producer(
        &mut self,
        ci: usize,
        seq: u64,
        done_at: u64,
        vthread: usize,
        vu: &mut dyn VectorSink,
    ) {
        for e in self.ctxs[ci].rob.iter_mut() {
            if !e.issued || e.done_at.is_none() {
                if let Some(pos) = e.deps.iter().position(|d| *d == seq) {
                    e.deps.swap_remove(pos);
                    e.ready_base = e.ready_base.max(done_at);
                }
            }
        }
        vu.resolve(vthread, seq, done_at);
    }

    /// Stage 2: in-order commit per context, shared width.
    fn commit(&mut self, now: u64) {
        let mut budget = self.cfg.width;
        let n = self.ctxs.len();
        for k in 0..n {
            let ci = (now as usize + k) % n;
            while budget > 0 {
                let Some(head) = self.ctxs[ci].rob.front() else { break };
                let Some(done) = head.done_at else { break };
                if done > now {
                    break;
                }
                let e = self.ctxs[ci].rob.pop_front().unwrap();
                // Retire register state: later fetches read Ready(done).
                // Early-retired vector entries publish at VU completion
                // (their `done` here is only the dispatch cycle).
                if !matches!(e.kind, EKind::Vector { early: true, .. }) {
                    let si = self.prog.get(e.sidx as usize);
                    for d in &si.defs {
                        let idx = reg_index(*d);
                        if self.ctxs[ci].reg_map[idx] == Producer::InFlight(e.seq) {
                            self.ctxs[ci].reg_map[idx] = Producer::Ready(done);
                        }
                    }
                }
                if e.kind == EKind::Serialize {
                    // Pipeline drained; pay the reconfiguration penalty.
                    self.ctxs[ci].draining = false;
                    self.ctxs[ci].fetch_ready =
                        self.ctxs[ci].fetch_ready.max(now + self.cfg.serialize_penalty);
                }
                self.stats.committed += 1;
                budget -= 1;
            }
        }
    }

    /// Stage 3: issue ready scalar instructions, oldest first.
    fn issue(&mut self, now: u64, mem: &mut MemSystem, vu: &mut dyn VectorSink) {
        let mut slots = self.cfg.width;
        let mut arith = self.cfg.arith_units;
        let mut ports = self.cfg.mem_ports;

        // Candidate (ctx, seq) pairs in global age order.
        let mut cands: Vec<(u64, usize)> = Vec::new();
        for (ci, c) in self.ctxs.iter().enumerate() {
            for e in c.rob.iter() {
                if !e.issued && e.deps.is_empty() && e.ready_base <= now {
                    cands.push((e.seq, ci));
                }
            }
        }
        cands.sort_unstable();

        for (seq, ci) in cands {
            if slots == 0 {
                break;
            }
            let vthread = self.ctxs[ci].vthread;
            // Locate the entry (indices shift only on commit, not here).
            let Some(pos) = self.ctxs[ci].rob.iter().position(|e| e.seq == seq) else {
                continue;
            };
            let (class, kind) = {
                let e = &self.ctxs[ci].rob[pos];
                (e.class, e.kind.clone())
            };
            let done = match kind {
                EKind::Alu => {
                    if arith == 0 {
                        continue;
                    }
                    if matches!(class, OpClass::IntDiv | OpClass::FpDiv) {
                        if self.div_free > now {
                            continue;
                        }
                        self.div_free = now + latency(class);
                    }
                    arith -= 1;
                    now + latency(class)
                }
                EKind::Mem { addr, write } => {
                    if ports == 0 {
                        continue;
                    }
                    ports -= 1;
                    let t = mem.data_access(self.core_id, addr, write, now);
                    if write {
                        now + 1 // stores complete via the store buffer
                    } else {
                        t
                    }
                }
                EKind::Barrier | EKind::Done => now,
                EKind::Serialize => now + 1,
                EKind::Vector { .. } => continue, // completes via poll
            };
            slots -= 1;
            self.stats.issued += 1;
            {
                let e = &mut self.ctxs[ci].rob[pos];
                e.issued = true;
                e.done_at = Some(done);
            }
            self.resolve_producer(ci, seq, done, vthread, vu);
        }
    }

    /// Stage 4: fetch and dispatch. ICOUNT-ordered, 2.4-style: up to two
    /// contexts share the fetch width each cycle (Tullsen-style fetch
    /// partitioning, which is what lets an SMT SU keep two vector threads
    /// fed nearly as well as replicated SUs — paper §7.1).
    fn fetch(
        &mut self,
        now: u64,
        mem: &mut MemSystem,
        src: &mut dyn FetchSource,
        vu: &mut dyn VectorSink,
    ) -> Result<(), ExecError> {
        // Eligible contexts, fewest in-flight first.
        let mut order: Vec<usize> = (0..self.ctxs.len())
            .filter(|&ci| {
                let c = &self.ctxs[ci];
                c.thread.is_some()
                    && !c.halted
                    && !c.draining
                    && c.fetch_ready <= now
                    && (c.rob.len() < self.cfg.window_per_ctx() || c.pending.is_some())
            })
            .collect();
        order.sort_by_key(|&ci| self.ctxs[ci].rob.len());
        if order.is_empty() {
            if self.ctxs.iter().any(|c| c.active()) {
                self.stats.fetch_stall_cycles += 1;
                self.stats.stalls.add(self.fetch_stall_cause(now), 1);
            }
            return Ok(());
        }

        // Up to two *productive* contexts share the width each cycle. A
        // context parked at a barrier (empty ROB, fetch yields AtBarrier)
        // must not count toward the limit, or it would starve the contexts
        // still working toward that barrier.
        let mut budget = self.cfg.width;
        let mut productive = 0usize;
        for &ci in order.iter() {
            if productive == 2 || budget == 0 {
                break;
            }
            let budget_before = budget;
            let thread = self.ctxs[ci].thread.unwrap();
            while budget > 0 {
                if self.ctxs[ci].rob.len() >= self.cfg.window_per_ctx() {
                    break;
                }
                if self.ctxs[ci].fetch_ready > now || self.ctxs[ci].draining {
                    break;
                }
                // Take the stashed instruction or pull a new one.
                let d = if let Some(p) = self.ctxs[ci].pending.take() {
                    p
                } else {
                    match src.fetch(thread)? {
                        FetchResult::Inst(d) => d,
                        FetchResult::AtBarrier => break,
                        FetchResult::Halted => {
                            self.ctxs[ci].halted = true;
                            break;
                        }
                    }
                };

                // Instruction cache: one access per line transition.
                let line = d.pc >> 6;
                if line != self.ctxs[ci].last_fetch_line {
                    let t = mem.inst_fetch(self.core_id, d.pc, now);
                    self.ctxs[ci].last_fetch_line = line;
                    if t > now + 1 {
                        self.ctxs[ci].fetch_ready = t;
                        self.ctxs[ci].pending = Some(d);
                        break;
                    }
                }

                if !self.dispatch(ci, d, now, vu) {
                    // VIQ full: retry next cycle.
                    break;
                }
                budget -= 1;
            }
            if budget < budget_before {
                productive += 1;
            }
        }
        Ok(())
    }

    /// Rename + dispatch one instruction into the window (and the VU for
    /// vector instructions). Returns false if the VU refused (VIQ full);
    /// the instruction is stashed for retry.
    fn dispatch(&mut self, ci: usize, d: DynInst, now: u64, vu: &mut dyn VectorSink) -> bool {
        let si = self.prog.get(d.sidx as usize);
        let seq = self.seq_next;

        // Dependence snapshot. An in-flight producer may already have issued
        // (completion cycle known): fold it into `ready_base` instead of
        // recording a dependence whose resolution broadcast already happened.
        let mut deps = Vec::new();
        let mut scalar_deps = Vec::new();
        let mut ready_base = 0u64;
        for u in &si.uses {
            match self.ctxs[ci].reg_map[reg_index(*u)] {
                Producer::Ready(c) => ready_base = ready_base.max(c),
                Producer::InFlight(s) => {
                    let rob_entry = self.ctxs[ci].rob.iter().find(|e| e.seq == s);
                    let completion_pending = rob_entry.is_none_or(|e| {
                        // Early-retired vector producers have a placeholder
                        // done_at (dispatch cycle); wait for the VU instead.
                        matches!(e.kind, EKind::Vector { early: true, .. }) || e.done_at.is_none()
                    });
                    match rob_entry {
                        Some(e) if !completion_pending => {
                            ready_base = ready_base.max(e.done_at.unwrap())
                        }
                        _ => {
                            debug_assert!(
                                rob_entry.is_some()
                                    || self.pending_vec.iter().any(|(c, q, _)| *c == ci && *q == s),
                                "in-flight producer {s} is neither in the ROB nor pending in the VU"
                            );
                            if !deps.contains(&s) {
                                deps.push(s);
                                // Producers absent from the ROB retired early
                                // into the VU; ROB-resident vector entries are
                                // vector producers too. Everything else is a
                                // scalar producer (attribution metadata only).
                                let vector_producer = rob_entry
                                    .is_none_or(|e| matches!(e.kind, EKind::Vector { .. }));
                                if !vector_producer {
                                    scalar_deps.push(s);
                                }
                            }
                        }
                    }
                }
            }
        }

        let kind = match (&d.kind, si.class) {
            (DynKind::Barrier, _) => EKind::Barrier,
            (DynKind::Halt, _) => {
                self.ctxs[ci].halted = true;
                EKind::Done
            }
            (DynKind::VltCfg { .. }, _) => {
                self.ctxs[ci].draining = true;
                EKind::Serialize
            }
            (DynKind::Mem { addr, size: _ }, _) => {
                EKind::Mem { addr: *addr, write: si.class == OpClass::Store }
            }
            (_, c) if c.is_vector() => {
                let addrs = match &d.kind {
                    DynKind::VMem { addrs } => *addrs,
                    _ => vlt_exec::AddrRange::EMPTY,
                };
                let disp = VecDispatch {
                    vthread: self.ctxs[ci].vthread,
                    sidx: d.sidx,
                    vl: d.vl,
                    class: si.class,
                    addrs,
                    seq,
                    deps: deps.clone(),
                    scalar_deps: scalar_deps.clone(),
                    ready_base,
                };
                match vu.try_dispatch(disp, now) {
                    Some(token) => {
                        self.stats.vec_dispatched += 1;
                        // All vector instructions retire from the ROB at
                        // dispatch (Cray X1-style: past the point of no
                        // exception, the VU tracks them); register effects
                        // — including scalar destinations of reductions —
                        // publish when the VU completes (poll_vector).
                        self.pending_vec.push((ci, seq, token));
                        EKind::Vector { token, early: true }
                    }
                    None => {
                        self.ctxs[ci].pending = Some(d);
                        return false;
                    }
                }
            }
            (DynKind::Branch { taken, target }, _) => {
                let correct = self.pred.observe(d.pc, si.inst.op, *taken, *target);
                if !correct {
                    self.stats.mispredicts += 1;
                    self.ctxs[ci].fetch_ready = now + self.cfg.mispredict_penalty;
                    self.ctxs[ci].last_fetch_line = u64::MAX;
                } else if *taken {
                    // Taken branch ends the fetch group and moves the line.
                    self.ctxs[ci].last_fetch_line = *target >> 6;
                    let t = d.pc >> 6;
                    if t != *target >> 6 {
                        // Force an I-cache probe at the target next cycle.
                        self.ctxs[ci].last_fetch_line = u64::MAX;
                    }
                }
                EKind::Alu
            }
            _ => EKind::Alu,
        };

        self.seq_next += 1;
        for def in &si.defs {
            self.ctxs[ci].reg_map[reg_index(*def)] = Producer::InFlight(seq);
        }
        let done_at = match kind {
            EKind::Barrier | EKind::Done => Some(now),
            EKind::Vector { early: true, .. } => Some(now),
            _ => None,
        };
        let issued = done_at.is_some();
        self.ctxs[ci].rob.push_back(Entry {
            seq,
            sidx: d.sidx,
            class: si.class,
            kind,
            deps,
            ready_base,
            issued,
            done_at,
        });
        true
    }
}

#[cfg(test)]
mod tests;
