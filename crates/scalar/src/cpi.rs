//! CPI stacks: top-down cycle attribution built from [`StallBreakdown`].
//!
//! A [`CpiStack`] explains where one unit's cycles went over one
//! measurement window (a region visit, a barrier epoch, or a whole run):
//! a `base` component for cycles the unit made progress, an optional
//! `partly_idle` component (vector units only — datapaths idled by a
//! short vector length inside an occupied functional unit), and one
//! component per [`StallCause`]. The defining property is **exact
//! conservation**: the components sum to the measured cycle budget, per
//! unit, under both timing drivers — checked by [`CpiStack::check`] and
//! enforced across the whole kernel suite in `vlt-obs`'s conservation
//! tests.
//!
//! Units differ in what a "cycle" is (see [`CpiStack::cycles`]): scalar
//! units and lane cores budget one cycle per machine cycle, the vector
//! unit budgets `3 * lanes` datapath-cycles per machine cycle (three
//! arithmetic datapaths per lane, the Figure-4 taxonomy). Stacks are
//! only comparable within a unit.

use crate::stall::{StallBreakdown, StallCause};

/// One unit's cycle attribution over one measurement window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpiStack {
    /// Unit label (`"vu"`, `"core0"`, `"lane3"`, ...).
    pub unit: String,
    /// Measured cycle budget of the window: elapsed cycles for scalar
    /// units and lane cores, elapsed cycles × `3 * lanes` datapath slots
    /// for the vector unit.
    pub cycles: u64,
    /// Cycles the unit made forward progress (committed/fetched without
    /// stalling; element work on a vector datapath).
    pub base: u64,
    /// Datapath-cycles idled by a short vector length inside an occupied
    /// functional unit (vector unit only; zero elsewhere).
    pub partly_idle: u64,
    /// Lost cycles, attributed by cause.
    pub stalls: StallBreakdown,
}

impl CpiStack {
    /// An empty stack for `unit` (zero budget, nothing attributed).
    pub fn empty(unit: impl Into<String>) -> Self {
        CpiStack {
            unit: unit.into(),
            cycles: 0,
            base: 0,
            partly_idle: 0,
            stalls: StallBreakdown::default(),
        }
    }

    /// Sum of every component (what conservation compares to `cycles`).
    pub fn attributed(&self) -> u64 {
        self.base + self.partly_idle + self.stalls.total()
    }

    /// The conservation invariant: components sum exactly to the measured
    /// budget. Returns a description of the discrepancy when violated.
    pub fn check(&self) -> Result<(), String> {
        let got = self.attributed();
        if got != self.cycles {
            return Err(format!(
                "{}: attributed {} of {} cycles (base {} + partly-idle {} + stalls {})",
                self.unit,
                got,
                self.cycles,
                self.base,
                self.partly_idle,
                self.stalls.total(),
            ));
        }
        Ok(())
    }

    /// Accumulate another window of the same unit into this one.
    pub fn merge(&mut self, other: &CpiStack) {
        self.cycles += other.cycles;
        self.base += other.base;
        self.partly_idle += other.partly_idle;
        self.stalls.merge(&other.stalls);
    }

    /// Cycles attributed to one cause.
    pub fn get(&self, cause: StallCause) -> u64 {
        self.stalls.get(cause)
    }

    /// Components as `(label, cycles)` pairs, top-down: `base`, then
    /// `partly-idle` (when nonzero), then each nonzero stall cause by
    /// descending weight. Labels are the stable kebab-case names used in
    /// metrics and JSON.
    pub fn components(&self) -> Vec<(&'static str, u64)> {
        let mut v = vec![("base", self.base)];
        if self.partly_idle > 0 {
            v.push(("partly-idle", self.partly_idle));
        }
        v.extend(self.stalls.ranked().into_iter().map(|(c, n)| (c.name(), n)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack() -> CpiStack {
        let mut s = CpiStack::empty("vu");
        s.cycles = 100;
        s.base = 60;
        s.partly_idle = 10;
        s.stalls.add(StallCause::BankConflict, 20);
        s.stalls.add(StallCause::BarrierWait, 10);
        s
    }

    #[test]
    fn conservation_checks() {
        let mut s = stack();
        s.check().unwrap();
        s.cycles = 99;
        let err = s.check().unwrap_err();
        assert!(err.contains("attributed 100 of 99"), "{err}");
    }

    #[test]
    fn merge_preserves_conservation() {
        let mut a = stack();
        let b = stack();
        a.merge(&b);
        assert_eq!(a.cycles, 200);
        assert_eq!(a.base, 120);
        assert_eq!(a.get(StallCause::BankConflict), 40);
        a.check().unwrap();
    }

    #[test]
    fn components_are_top_down() {
        let s = stack();
        let c = s.components();
        assert_eq!(c[0], ("base", 60));
        assert_eq!(c[1], ("partly-idle", 10));
        assert_eq!(c[2], ("bank-conflict", 20));
        assert_eq!(c[3], ("barrier-wait", 10));
        assert_eq!(c.iter().map(|(_, n)| n).sum::<u64>(), s.cycles);
    }

    #[test]
    fn empty_stack_conserves_trivially() {
        CpiStack::empty("core0").check().unwrap();
    }
}
