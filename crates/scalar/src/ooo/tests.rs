//! OOO core timing tests, driven end-to-end: assemble → functional sim →
//! core timing model.

use std::sync::Arc;

use vlt_exec::{DecodedProgram, ExecError, FuncSim, Step};
use vlt_isa::asm::assemble;
use vlt_mem::{MemConfig, MemSystem};

use crate::config::CoreConfig;
use crate::ooo::OooCore;
use crate::traits::{FetchResult, FetchSource, NullVectorSink};

/// Adapter: the functional simulator as a fetch source.
struct SimSource(FuncSim);

impl FetchSource for SimSource {
    fn fetch(&mut self, thread: usize) -> Result<FetchResult, ExecError> {
        Ok(match self.0.step_thread(thread)? {
            Step::Inst(d) => FetchResult::Inst(d),
            Step::AtBarrier => FetchResult::AtBarrier,
            Step::Halted => FetchResult::Halted,
        })
    }
}

/// Run `src` on a single core with `threads` software threads bound to its
/// SMT contexts; returns (cycles, committed).
fn run_core(asm: &str, cfg: CoreConfig, threads: usize) -> (u64, u64) {
    let prog = assemble(asm).unwrap();
    let sim = FuncSim::new(&prog, threads);
    let decoded = Arc::clone(&sim.prog);
    let mut source = SimSource(sim);
    let mut mem = MemSystem::new(MemConfig::default(), 1, 0);
    let mut core = OooCore::new(cfg, 0, decoded);
    for t in 0..threads {
        core.bind(t, t, t);
    }
    let mut vu = NullVectorSink;
    let mut now = 0u64;
    while !core.done() {
        core.tick(now, &mut mem, &mut source, &mut vu).unwrap();
        now += 1;
        assert!(now < 2_000_000, "core did not finish");
    }
    (now, core.stats.committed)
}

fn straightline(body: &str, n: usize) -> String {
    let mut s = String::from("li x2, 3\nli x3, 4\nli x4, 1\n");
    for _ in 0..n {
        s.push_str(body);
        s.push('\n');
    }
    s.push_str("halt\n");
    s
}

/// A loop repeating `body` (one instruction per line) `iters` times; the
/// I-cache is warm after the first iteration, exposing steady-state IPC.
fn looped(body: &str, iters: usize) -> String {
    format!(
        "li x2, 3\nli x3, 4\nli x20, 0\nli x21, {iters}\nloop:\n{body}\naddi x20, x20, 1\nblt x20, x21, loop\nhalt\n"
    )
}

#[test]
fn commits_every_instruction() {
    let src = straightline("add x1, x2, x3", 50);
    let (_, committed) = run_core(&src, CoreConfig::four_way(), 1);
    assert_eq!(committed, 54); // 3 li + 50 adds + halt
}

/// 16 independent adds per iteration (WAW removed by renaming).
fn indep_body() -> String {
    vec!["add x1, x2, x3"; 16].join("\n")
}

#[test]
fn independent_adds_reach_high_ipc() {
    let src = looped(&indep_body(), 200);
    let (cycles, committed) = run_core(&src, CoreConfig::four_way(), 1);
    let ipc = committed as f64 / cycles as f64;
    assert!(ipc > 2.2, "expected near-width IPC, got {ipc:.2} ({committed} in {cycles})");
}

#[test]
fn dependent_chain_is_serial() {
    // Each add reads its own output: at most 1 IPC on the chain.
    let src = looped(&vec!["add x2, x2, x3"; 16].join("\n"), 100);
    let (cycles, committed) = run_core(&src, CoreConfig::four_way(), 1);
    assert!(cycles >= 1600, "dependent chain must serialize: {committed} insts in {cycles} cycles");
}

#[test]
fn two_way_core_is_slower() {
    let src = looped(&indep_body(), 200);
    let (c4, _) = run_core(&src, CoreConfig::four_way(), 1);
    let (c2, _) = run_core(&src, CoreConfig::two_way(), 1);
    assert!(c2 as f64 > 1.4 * c4 as f64, "2-way ({c2}) should be much slower than 4-way ({c4})");
}

#[test]
fn div_serializes_on_one_unit() {
    let src = straightline("div x1, x2, x3", 20);
    let (cycles, _) = run_core(&src, CoreConfig::four_way(), 1);
    // Unpipelined divider: >= 20 * 12 cycles.
    assert!(cycles >= 20 * 12, "divider must be unpipelined: {cycles}");
}

#[test]
fn fp_latency_respected() {
    // Dependent FMA chain: >= n * 4 cycles.
    let src = straightline("fma f1, f2, f3", 50);
    let (cycles, _) = run_core(&src, CoreConfig::four_way(), 1);
    assert!(cycles >= 200, "dependent FP chain too fast: {cycles}");
}

#[test]
fn load_use_latency() {
    // Pointer-chase: 64 dependent loads, all L1 hits after the first.
    let src = r#"
        .data
    cell:
        .dword cell
        .text
        la x1, cell
        ld x1, 0(x1)
        ld x1, 0(x1)
        ld x1, 0(x1)
        ld x1, 0(x1)
        ld x1, 0(x1)
        ld x1, 0(x1)
        ld x1, 0(x1)
        ld x1, 0(x1)
        halt
    "#;
    let (cycles, _) = run_core(src, CoreConfig::four_way(), 1);
    // 8 dependent loads at >= 2 cycles each plus a cold miss.
    assert!(cycles >= 16, "load-use latency ignored: {cycles}");
}

/// A loop that branches on successive bytes of a data table; identical code
/// for both variants, only the table contents differ.
fn data_branch_loop(bytes: &[u8]) -> String {
    let data: Vec<String> = bytes.iter().map(|b| b.to_string()).collect();
    format!(
        r#"
        .data
    tbl:
        .byte {}
        .text
        li   x1, 0
        li   x2, {}
        la   x3, tbl
    loop:
        add  x4, x3, x1
        lbu  x5, 0(x4)
        beqz x5, skip
        addi x6, x6, 1
    skip:
        addi x1, x1, 1
        blt  x1, x2, loop
        halt
    "#,
        data.join(", "),
        bytes.len()
    )
}

#[test]
fn random_branches_cost_redirects() {
    // Pseudo-random outcomes are unpredictable; an all-ones table is free.
    let mut state = 0x9E3779B97F4A7C15u64;
    let random: Vec<u8> = (0..600)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state & 1) as u8
        })
        .collect();
    let biased = vec![1u8; 600];
    let (cr, nr) = run_core(&data_branch_loop(&random), CoreConfig::four_way(), 1);
    let (cb, nb) = run_core(&data_branch_loop(&biased), CoreConfig::four_way(), 1);
    let cpi_r = cr as f64 / nr as f64;
    let cpi_b = cb as f64 / nb as f64;
    assert!(cpi_r > 1.3 * cpi_b, "random branches should cost redirects: {cpi_r:.2} vs {cpi_b:.2}");
}

#[test]
fn smt_shares_issue_bandwidth() {
    // An issue-bound loop (near-width IPC single-threaded): two SMT threads
    // must contend, landing between 1.3x and 2.5x the single-thread time.
    let src = looped(&indep_body(), 150);
    let (c1, n1) = run_core(&src, CoreConfig::four_way(), 1);
    let (c2, n2) = run_core(&src, CoreConfig::four_way().with_smt(2), 2);
    assert_eq!(n2, 2 * n1, "both SMT threads must commit fully");
    assert!(c2 as f64 > 1.3 * c1 as f64, "issue-bound threads must contend: {c2} vs {c1}");
    assert!((c2 as f64) < 2.5 * c1 as f64, "SMT should overlap threads: {c2} vs {c1}");
}

#[test]
fn smt_overlaps_latency_bound_threads() {
    // A serial dependence chain leaves issue slots idle; a second SMT
    // thread fills them almost for free.
    let src = looped("add x5, x5, x3", 500);
    let (c1, _) = run_core(&src, CoreConfig::four_way(), 1);
    let (c2, n2) = run_core(&src, CoreConfig::four_way().with_smt(2), 2);
    assert!(n2 > 2000);
    assert!((c2 as f64) < 1.5 * c1 as f64, "latency-bound threads should overlap: {c2} vs {c1}");
}

#[test]
fn barrier_synchronizes_smt_threads() {
    // One thread spins 1000 iterations before the barrier, the other goes
    // straight to it; both must still finish.
    let src = r#"
        tid  x1
        bnez x1, fast
        li   x2, 0
        li   x3, 1000
    spin:
        addi x2, x2, 1
        blt  x2, x3, spin
    fast:
        barrier
        halt
    "#;
    let (cycles, committed) = run_core(src, CoreConfig::four_way().with_smt(2), 2);
    assert!(committed > 2000, "both threads committed: {committed}");
    assert!(cycles > 500, "must wait for the slow thread: {cycles}");
}

#[test]
fn vltcfg_serializes() {
    let with_cfg = r#"
        li x1, 1
        vltcfg x1
        li x2, 2
        vltcfg x2
        li x1, 1
        vltcfg x1
        halt
    "#;
    let (c, _) = run_core(with_cfg, CoreConfig::four_way(), 1);
    // Three serializations at >= serialize_penalty each.
    assert!(c >= 60, "vltcfg drain penalty missing: {c}");
}

#[test]
fn core_reports_done_only_when_drained() {
    let prog = assemble("halt\n").unwrap();
    let sim = FuncSim::new(&prog, 1);
    let decoded = Arc::clone(&sim.prog);
    let mut source = SimSource(sim);
    let mut mem = MemSystem::new(MemConfig::default(), 1, 0);
    let mut core = OooCore::new(CoreConfig::four_way(), 0, decoded);
    core.bind(0, 0, 0);
    assert!(!core.done());
    let mut vu = NullVectorSink;
    let mut now = 0;
    while !core.done() {
        core.tick(now, &mut mem, &mut source, &mut vu).unwrap();
        now += 1;
        assert!(now < 1000);
    }
    assert_eq!(core.stats.committed, 1);
}

#[test]
#[should_panic]
fn double_bind_rejected() {
    let prog = assemble("halt\n").unwrap();
    let decoded = DecodedProgram::new(&prog);
    let mut core = OooCore::new(CoreConfig::four_way(), 0, decoded);
    core.bind(0, 0, 0);
    core.bind(0, 1, 1);
}
