//! A vector lane re-engineered as a 2-way in-order scalar processor
//! (paper §5): a small per-lane instruction cache with misses forwarded to
//! the owning scalar unit, direct L2 data access with decoupling queues
//! (non-blocking loads, stall-on-use), and a small branch predictor.

use std::sync::Arc;

use vlt_exec::{DecodedProgram, DynInst, DynKind, ExecError};
use vlt_isa::{OpClass, RegRef};
use vlt_mem::MemSystem;

use crate::config::LaneCoreConfig;
use crate::ooo::latency;
use crate::predictor::Predictor;
use crate::stall::{StallBreakdown, StallCause};
use crate::traits::{FetchResult, FetchSource};

/// Per-lane-core statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Instructions committed.
    pub committed: u64,
    /// Cycles spent with the front end stalled.
    pub stall_cycles: u64,
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// Why each stall cycle was lost. Conservation invariant:
    /// `stalls.total() == stall_cycles` at all times, under both drivers.
    pub stalls: StallBreakdown,
}

const REG_SPACE: usize = 64; // 32 int + 32 fp (lane cores run scalar threads)

#[inline]
fn reg_index(r: RegRef) -> Option<usize> {
    match r {
        RegRef::I(i) => Some(i as usize),
        RegRef::F(i) => Some(32 + i as usize),
        _ => None,
    }
}

/// One lane operating as a 2-way in-order processor.
#[derive(Debug)]
pub struct InOrderCore {
    cfg: LaneCoreConfig,
    lane_id: usize,
    owner_core: usize,
    thread: usize,
    prog: Arc<DecodedProgram>,
    pred: Predictor,
    /// Scoreboard: cycle each register's value becomes available.
    ready: Vec<u64>,
    stall_until: u64,
    last_line: u64,
    pending: Option<DynInst>,
    outstanding: Vec<u64>,
    halted: bool,
    /// Statistics counters.
    pub stats: LaneStats,
}

impl InOrderCore {
    /// Build a lane core for `thread`, running on `lane_id`, with I-cache
    /// misses forwarded through scalar unit `owner_core`.
    pub fn new(
        cfg: LaneCoreConfig,
        lane_id: usize,
        owner_core: usize,
        thread: usize,
        prog: Arc<DecodedProgram>,
    ) -> Self {
        InOrderCore {
            cfg,
            lane_id,
            owner_core,
            thread,
            prog,
            pred: Predictor::small(),
            ready: vec![0; REG_SPACE],
            stall_until: 0,
            last_line: u64::MAX,
            pending: None,
            outstanding: Vec::new(),
            halted: false,
            stats: LaneStats::default(),
        }
    }

    /// True once the thread has halted (in-order: nothing left in flight).
    pub fn done(&self) -> bool {
        self.halted
    }

    /// The software thread this lane runs.
    pub fn thread(&self) -> usize {
        self.thread
    }

    /// Earliest cycle `>= from` at which this lane core can next make
    /// progress: its stall window expires, a stashed instruction's operands
    /// (or a load-queue slot) become ready, or the front end can pull a new
    /// instruction. `None` when halted or parked at a barrier — only
    /// another thread can wake it then. Never later than the true next
    /// state change; `Some(from)` simply means "cannot skip".
    pub fn next_event(&self, from: u64, src: &dyn FetchSource) -> Option<u64> {
        if self.halted {
            return None;
        }
        let base = from.max(self.stall_until);
        let Some(d) = &self.pending else {
            return if src.parked(self.thread) { None } else { Some(base) };
        };
        let si = self.prog.get(d.sidx as usize);
        let mut t = base;
        for u in &si.uses {
            if let Some(i) = reg_index(*u) {
                t = t.max(self.ready[i]);
            }
        }
        if si.class == OpClass::Load && self.outstanding.len() >= self.cfg.load_queue {
            // Also blocked on a load-queue slot: the oldest outstanding
            // load's completion frees one.
            if let Some(min_done) = self.outstanding.iter().copied().min() {
                t = t.max(min_done);
            }
        }
        Some(t)
    }

    /// Credit a provably-idle span `[from, from + cycles)` to the stall
    /// counters, as per-cycle ticks would have: every persistent quiescent
    /// state of a live lane core (stall window, operand wait, full load
    /// queue, barrier park) charges exactly one stall cycle per cycle.
    /// Port-conflict stashes are the only stall-free quiescent-looking
    /// states, and they cannot persist across a cycle boundary (ports
    /// replenish every tick), so [`InOrderCore::next_event`] never lets a
    /// span cover one.
    ///
    /// Cause attribution splits the span exactly as the per-cycle path
    /// would: first the front-end stall window ([`StallCause::IssueWidth`]),
    /// then — all predicates being constant over a quiescent span — either a
    /// barrier park, an operand wait, or a full load queue. The operand-wait
    /// phase ends at the latest unready operand's ready time, which is
    /// exactly where [`InOrderCore::next_event`] ends the span unless a full
    /// load queue extends it, so the three-way split reproduces the
    /// cycle-by-cycle tags byte for byte.
    pub fn credit_idle_span(&mut self, from: u64, cycles: u64, parked: bool) {
        if self.halted {
            return;
        }
        self.stats.stall_cycles += cycles;
        let bubble = self.stall_until.saturating_sub(from).min(cycles);
        self.stats.stalls.add(StallCause::IssueWidth, bubble);
        let rem = cycles - bubble;
        if rem == 0 {
            return;
        }
        let s = from + bubble;
        match &self.pending {
            None => {
                // A live, pending-less lane only persists parked at a
                // barrier (otherwise the front end would fetch).
                debug_assert!(parked, "quiescent span with nothing pending and not parked");
                let cause = if parked { StallCause::BarrierWait } else { StallCause::IssueWidth };
                self.stats.stalls.add(cause, rem);
            }
            Some(d) => {
                let si = self.prog.get(d.sidx as usize);
                // Per-cycle order: operand wait is checked before the load
                // queue, so cycles below the latest operand-ready time tag
                // ScalarDep and only the remainder can be queue pressure.
                let max_ready = si
                    .uses
                    .iter()
                    .filter_map(|u| reg_index(*u))
                    .map(|i| self.ready[i])
                    .max()
                    .unwrap_or(0);
                let dep = max_ready.saturating_sub(s).min(rem);
                self.stats.stalls.add(StallCause::ScalarDep, dep);
                let rest = rem - dep;
                if rest > 0 {
                    let qfull = si.class == OpClass::Load
                        && self.outstanding.iter().filter(|done| **done > s).count()
                            >= self.cfg.load_queue;
                    debug_assert!(qfull, "quiescent span past operand-ready without queue stall");
                    let cause =
                        if qfull { StallCause::BankConflict } else { StallCause::ScalarDep };
                    self.stats.stalls.add(cause, rest);
                }
            }
        }
    }

    /// Advance one cycle.
    pub fn tick(
        &mut self,
        now: u64,
        mem: &mut MemSystem,
        src: &mut dyn FetchSource,
    ) -> Result<(), ExecError> {
        if self.halted {
            return Ok(());
        }
        if self.stall_until > now {
            self.stats.stall_cycles += 1;
            self.stats.stalls.add(StallCause::IssueWidth, 1);
            return Ok(());
        }
        self.outstanding.retain(|d| *d > now);

        let mut mem_ports = 2usize;
        for slot in 0..self.cfg.width {
            let d = match self.pending.take() {
                Some(d) => d,
                None => match src.fetch(self.thread)? {
                    FetchResult::Inst(d) => d,
                    FetchResult::AtBarrier => {
                        if slot == 0 {
                            self.stats.stall_cycles += 1;
                            self.stats.stalls.add(StallCause::BarrierWait, 1);
                        }
                        return Ok(());
                    }
                    FetchResult::Halted => {
                        self.halted = true;
                        return Ok(());
                    }
                },
            };

            // Per-lane I-cache, one probe per line transition.
            let line = d.pc >> 6;
            if line != self.last_line {
                let t = mem.lane_inst_fetch(self.lane_id, self.owner_core, d.pc, now);
                self.last_line = line;
                if t > now + 1 {
                    self.stall_until = t;
                    self.pending = Some(d);
                    return Ok(());
                }
            }

            let si = self.prog.get(d.sidx as usize);
            assert!(
                !si.class.is_vector(),
                "vector instruction on a lane core running a scalar thread"
            );

            // In-order: stall the whole front end on an unready operand.
            let operands_ready =
                si.uses.iter().filter_map(|u| reg_index(*u)).all(|i| self.ready[i] <= now);
            if !operands_ready {
                self.pending = Some(d);
                self.stats.stall_cycles += 1;
                self.stats.stalls.add(StallCause::ScalarDep, 1);
                return Ok(());
            }

            match (&d.kind, si.class) {
                (DynKind::Halt, _) => {
                    self.halted = true;
                    self.stats.committed += 1;
                    return Ok(());
                }
                (DynKind::Barrier, _) => {
                    self.stats.committed += 1;
                    // Next fetch returns AtBarrier until released.
                    return Ok(());
                }
                (DynKind::Mem { addr, .. }, OpClass::Load) => {
                    if self.outstanding.len() >= self.cfg.load_queue || mem_ports == 0 {
                        self.pending = Some(d);
                        self.stats.stall_cycles += 1;
                        self.stats.stalls.add(StallCause::BankConflict, 1);
                        return Ok(());
                    }
                    mem_ports -= 1;
                    let done = mem.l2_access(*addr, false, now);
                    self.outstanding.push(done);
                    for def in &si.defs {
                        if let Some(i) = reg_index(*def) {
                            self.ready[i] = done;
                        }
                    }
                }
                (DynKind::Mem { addr, .. }, OpClass::Store) => {
                    if mem_ports == 0 {
                        self.pending = Some(d);
                        return Ok(());
                    }
                    mem_ports -= 1;
                    mem.l2_access(*addr, true, now);
                }
                (DynKind::Branch { taken, target }, _) => {
                    let correct = self.pred.observe(d.pc, si.inst.op, *taken, *target);
                    for def in &si.defs {
                        if let Some(i) = reg_index(*def) {
                            self.ready[i] = now + 1;
                        }
                    }
                    self.stats.committed += 1;
                    if !correct {
                        self.stats.mispredicts += 1;
                        self.stall_until = now + self.cfg.branch_penalty;
                        self.last_line = u64::MAX;
                    } else if *taken {
                        // Taken branch: redirected fetch resumes next cycle.
                        self.stall_until = now + 1;
                        self.last_line = u64::MAX;
                    }
                    if !correct || *taken {
                        return Ok(());
                    }
                    continue;
                }
                _ => {
                    let lat = latency(si.class);
                    for def in &si.defs {
                        if let Some(i) = reg_index(*def) {
                            self.ready[i] = now + lat;
                        }
                    }
                }
            }
            self.stats.committed += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlt_exec::{FuncSim, Step};
    use vlt_isa::asm::assemble;
    use vlt_mem::MemConfig;

    struct SimSource(FuncSim);
    impl FetchSource for SimSource {
        fn fetch(&mut self, thread: usize) -> Result<FetchResult, ExecError> {
            Ok(match self.0.step_thread(thread)? {
                Step::Inst(d) => FetchResult::Inst(d),
                Step::AtBarrier => FetchResult::AtBarrier,
                Step::Halted => FetchResult::Halted,
            })
        }
    }

    fn run_lane(asm: &str) -> (u64, LaneStats) {
        let prog = assemble(asm).unwrap();
        let sim = FuncSim::new(&prog, 1);
        let decoded = Arc::clone(&sim.prog);
        let mut src = SimSource(sim);
        let mut mem = MemSystem::new(MemConfig::default(), 1, 8);
        let mut core = InOrderCore::new(LaneCoreConfig::default(), 0, 0, 0, decoded);
        let mut now = 0;
        while !core.done() {
            core.tick(now, &mut mem, &mut src).unwrap();
            now += 1;
            assert!(now < 1_000_000, "lane core did not finish");
        }
        (now, core.stats.clone())
    }

    #[test]
    fn runs_to_completion() {
        let (_, stats) = run_lane("li x1, 1\nli x2, 2\nadd x3, x1, x2\nhalt\n");
        assert_eq!(stats.committed, 4); // li + li + add + halt
    }

    fn lane_loop(body: &str, iters: usize) -> String {
        format!(
            "li x20, 0\nli x21, {iters}\nli x2, 1\nli x3, 2\nli x5, 3\nli x6, 4\nloop:\n{body}\naddi x20, x20, 1\nblt x20, x21, loop\nhalt\n"
        )
    }

    #[test]
    fn dual_issue_needs_independence() {
        // Independent pairs can dual-issue; a dependent chain cannot.
        // (Loops keep the lane I-cache warm so steady state dominates.)
        let indep = lane_loop(&["add x1, x2, x3\nadd x4, x5, x6"; 8].join("\n"), 100);
        let chain = lane_loop(&["add x1, x1, x2\nadd x1, x1, x3"; 8].join("\n"), 100);
        let (ci, _) = run_lane(&indep);
        let (cc, _) = run_lane(&chain);
        assert!(
            cc as f64 > 1.5 * ci as f64,
            "chain ({cc}) should be much slower than independent ({ci})"
        );
    }

    #[test]
    fn loads_hit_l2_latency() {
        // Dependent load chain through the L2 (10-cycle hits after warmup).
        let src = r#"
            .data
        cell:
            .dword cell
            .text
            la x1, cell
            ld x1, 0(x1)
            ld x1, 0(x1)
            ld x1, 0(x1)
            ld x1, 0(x1)
            halt
        "#;
        let (cycles, _) = run_lane(src);
        assert!(cycles >= 4 * 10, "lane loads bypass L1; L2 latency applies: {cycles}");
    }

    #[test]
    fn independent_loads_overlap() {
        // Per iteration: 4 independent loads vs 4 chained loads. The
        // decoupling queue overlaps the independent ones.
        let indep = r#"
            .data
        arr:
            .dword 1, 2, 3, 4
            .text
            li x20, 0
            li x21, 200
            la x1, arr
        loop:
            ld x2, 0(x1)
            ld x3, 8(x1)
            ld x4, 16(x1)
            ld x5, 24(x1)
            addi x20, x20, 1
            blt x20, x21, loop
            halt
        "#;
        let chain = r#"
            .data
        cell:
            .dword cell
            .text
            li x20, 0
            li x21, 200
            la x1, cell
        loop:
            ld x1, 0(x1)
            ld x1, 0(x1)
            ld x1, 0(x1)
            ld x1, 0(x1)
            addi x20, x20, 1
            blt x20, x21, loop
            halt
        "#;
        let (ci, _) = run_lane(indep);
        let (cc, _) = run_lane(chain);
        assert!(
            cc as f64 > 2.0 * ci as f64,
            "chained loads ({cc}) must serialize vs independent ({ci})"
        );
    }

    #[test]
    fn taken_branches_cost_a_bubble() {
        let loopy = r#"
            li x1, 0
            li x2, 300
        loop:
            addi x1, x1, 1
            blt x1, x2, loop
            halt
        "#;
        let (cycles, stats) = run_lane(loopy);
        // 2 insts per iteration but the taken branch bubbles: > 2 cycles/iter.
        assert!(cycles >= 600, "taken-branch bubble missing: {cycles}");
        assert!(stats.mispredicts < 20, "loop branch should be learned");
    }

    #[test]
    fn barrier_waits_for_release() {
        let src = "barrier\nhalt\n";
        let prog = assemble(src).unwrap();
        let sim = FuncSim::new(&prog, 2);
        let decoded = Arc::clone(&sim.prog);
        let mut src2 = SimSource(sim);
        let mut mem = MemSystem::new(MemConfig::default(), 1, 8);
        let mut a = InOrderCore::new(LaneCoreConfig::default(), 0, 0, 0, Arc::clone(&decoded));
        let mut b = InOrderCore::new(LaneCoreConfig::default(), 1, 0, 1, decoded);
        let mut now = 0;
        while !(a.done() && b.done()) {
            a.tick(now, &mut mem, &mut src2).unwrap();
            b.tick(now, &mut mem, &mut src2).unwrap();
            now += 1;
            assert!(now < 10_000);
        }
    }

    #[test]
    #[should_panic]
    fn vector_instruction_panics() {
        run_lane("li x1, 8\nsetvl x2, x1\nvid v1\nhalt\n");
    }
}
