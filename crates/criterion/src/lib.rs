#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! A self-contained, std-only stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the subset of criterion's API its benches use:
//! `Criterion`, `benchmark_group` with `sample_size` / `throughput`,
//! `bench_function`, `Bencher::iter` / `iter_batched`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Differences from real criterion, by design: no statistical analysis,
//! no plots, no saved baselines. Each benchmark runs a short warmup and a
//! fixed number of timed samples, then prints min / median / mean
//! wall-clock time per iteration (plus throughput when configured).
//! `--bench`-style CLI flags passed by `cargo bench` are accepted and
//! ignored; a bare positional argument filters benchmarks by substring,
//! and `--sample-size N` overrides every group's sample count (CI smoke
//! steps pass 2 to exercise benches without paying for full runs).

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export used by benches as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for per-element / per-byte rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; all variants behave identically here.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Inputs are cheap; batch many per allocation.
    SmallInput,
    /// Inputs are expensive; batch few.
    LargeInput,
    /// One fresh input per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    sample_override: Option<usize>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes flags like `--bench`; accept and ignore
        // anything starting with '-', consuming `--sample-size`'s value.
        // A bare argument is a name filter.
        let mut filter = None;
        let mut sample_override = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--sample-size" {
                sample_override = args.next().and_then(|v| v.parse().ok());
            } else if !a.starts_with('-') && filter.is_none() {
                filter = Some(a);
            }
        }
        Criterion { filter, sample_override }
    }
}

impl Criterion {
    /// Configure (no-op in this shim; kept for API compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_override.unwrap_or(30).max(2);
        BenchmarkGroup { _parent: self, name: name.into(), sample_size, throughput: None }
    }

    /// Benchmark outside any group.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let mut g = self.benchmark_group("");
        g.bench_function(name, f);
        g.finish();
    }

    fn matches(&self, full_name: &str) -> bool {
        match &self.filter {
            Some(f) => full_name.contains(f.as_str()),
            None => true,
        }
    }

    /// Called by `criterion_main!` after all groups run.
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing sample-size / throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (a `--sample-size` CLI
    /// override wins, so smoke runs stay short).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = self._parent.sample_override.unwrap_or(n).max(2);
        self
    }

    /// Annotate per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.into();
        let full = if self.name.is_empty() { name } else { format!("{}/{}", self.name, name) };
        if !self._parent.matches(&full) {
            return self;
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        // Warmup: one untimed sample lets caches/allocator settle.
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
        f(&mut b);
        for _ in 0..self.sample_size {
            let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
        }
        report(&full, &samples, self.throughput);
        self
    }

    /// End the group (separator line only).
    pub fn finish(&mut self) {}
}

fn report(name: &str, per_iter_secs: &[f64], tp: Option<Throughput>) {
    if per_iter_secs.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let mut sorted = per_iter_secs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let rate = match tp {
        Some(Throughput::Elements(n)) => format!("  {:>12}/s", human(n as f64 / median)),
        Some(Throughput::Bytes(n)) => format!("  {:>11}B/s", human(n as f64 / median)),
        None => String::new(),
    };
    println!(
        "{name:<48} min {:>10}  median {:>10}  mean {:>10}{rate}",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn human(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2} G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2} M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2} K", x / 1e3)
    } else {
        format!("{x:.1} ")
    }
}

/// Runs the closure under timing; handed to each benchmark body.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `f` over a fixed iteration batch.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        const ITERS: u64 = 3;
        let start = Instant::now();
        for _ in 0..ITERS {
            std_black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += ITERS;
    }

    /// Time `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, T>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> T,
        _size: BatchSize,
    ) {
        const ITERS: u64 = 3;
        for _ in 0..ITERS {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.elapsed += start.elapsed();
        }
        self.iters += ITERS;
    }
}

/// Declare a group runner: `criterion_group!(benches, fn_a, fn_b, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench entry point: `criterion_main!(benches, ...)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { filter: None, sample_override: None };
        let mut hits = 0u32;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(3);
            g.throughput(Throughput::Elements(10));
            g.bench_function("count", |b| {
                b.iter(|| {
                    hits += 1;
                });
            });
            g.finish();
        }
        // warmup sample + 3 timed samples, 3 iters each
        assert_eq!(hits, 4 * 3);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { filter: Some("yes".into()), sample_override: None };
        let mut ran = false;
        c.benchmark_group("g").bench_function("no_match", |b| {
            b.iter(|| ran = true);
        });
        assert!(!ran);
        c.benchmark_group("g").bench_function("yes_match", |b| {
            b.iter(|| ran = true);
        });
        assert!(ran);
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b.iters, 3);
    }
}
