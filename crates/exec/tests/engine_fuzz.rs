//! Differential smoke fuzz: the block engine against the interpreter
//! oracle over randomized programs.
//!
//! A deterministic generator (`tests/support/progen.rs`, shared with the
//! static-DLP differential fuzz in vlt-verify) emits vlint-clean SPMD
//! programs that are race-free by construction — which is what makes the
//! block engine's bounded run-ahead architecturally invisible. Each
//! program is:
//!
//! 1. checked clean by the static verifier (`vlt_verify::verify`, zero
//!    errors — warnings like dead writes are expected of random code),
//! 2. stepped in lockstep under both engines with the exact same schedule,
//!    asserting an identical [`Step`] stream (including vector-memory
//!    address lists),
//! 3. compared architecturally at the end: registers, `vl`, `vm`, final
//!    memory image, and the run summaries of a second fresh batch run.
//!
//! The seeds are fixed, so a failure reproduces exactly; bump `CASES`
//! locally for a longer soak.

use vlt_exec::{DynKind, EngineMode, FuncSim, Step};
use vlt_isa::asm::assemble;

#[path = "support/progen.rs"]
mod progen;
use progen::gen_program;

const CASES: u64 = 24;
const BUDGET: u64 = 4_000_000;

/// Assert two architectural states match bit-for-bit.
fn assert_state_eq(a: &FuncSim, b: &FuncSim, t: usize, what: &str) {
    let (sa, sb) = (a.thread(t), b.thread(t));
    assert_eq!(sa.x, sb.x, "{what}: thread {t} x regs");
    let (fa, fb): (Vec<u64>, Vec<u64>) =
        (sa.f.iter().map(|v| v.to_bits()).collect(), sb.f.iter().map(|v| v.to_bits()).collect());
    assert_eq!(fa, fb, "{what}: thread {t} f regs");
    assert_eq!(sa.v, sb.v, "{what}: thread {t} v regs");
    assert_eq!(sa.vl, sb.vl, "{what}: thread {t} vl");
    assert_eq!(sa.vm, sb.vm, "{what}: thread {t} vm");
    assert_eq!(sa.pc, sb.pc, "{what}: thread {t} pc");
}

fn check_case(seed: u64, threads: usize) {
    let src = gen_program(seed, threads);
    let prog = assemble(&src).unwrap_or_else(|e| panic!("seed {seed}: bad program: {e}\n{src}"));
    let report = vlt_verify::verify(&prog);
    assert_eq!(
        report.errors(),
        0,
        "seed {seed}: generator emitted a program vlint rejects:\n{report}\n{src}"
    );

    // Lockstep: identical per-thread Step streams under one schedule.
    let mut a = FuncSim::new(&prog, threads).with_engine(EngineMode::Interp);
    let mut b = FuncSim::new(&prog, threads).with_engine(EngineMode::Block);
    let mut steps = 0u64;
    while !a.all_halted() {
        for t in 0..threads {
            let sa = a.step_thread(t).unwrap();
            let sb = b.step_thread(t).unwrap();
            assert_eq!(sa, sb, "seed {seed}: stream diverged at step {steps}, thread {t}\n{src}");
            if let Step::Inst(d) = &sa {
                if let DynKind::VMem { addrs } = d.kind {
                    assert_eq!(a.addrs(addrs), b.addrs(addrs), "seed {seed}: addresses diverged");
                }
            }
        }
        steps += 1;
        assert!(steps < BUDGET, "seed {seed}: did not halt\n{src}");
    }
    assert!(b.all_halted(), "seed {seed}: block engine still running");
    assert_eq!(a.mem, b.mem, "seed {seed}: final memory diverged\n{src}");
    for t in 0..threads {
        assert_state_eq(&a, &b, t, &format!("seed {seed} lockstep"));
    }

    // Batch: run_to_completion takes the chained-block fast path; the
    // summaries and final images must still match the oracle's.
    let mut a = FuncSim::new(&prog, threads).with_engine(EngineMode::Interp);
    let mut b = FuncSim::new(&prog, threads).with_engine(EngineMode::Block);
    let ra = a.run_to_completion(BUDGET).unwrap();
    let rb = b.run_to_completion(BUDGET).unwrap();
    assert_eq!(ra, rb, "seed {seed}: summaries diverged\n{src}");
    assert_eq!(a.mem, b.mem, "seed {seed}: batch memory diverged\n{src}");
    assert_eq!(a.barrier_releases(), b.barrier_releases(), "seed {seed}: releases");
    for t in 0..threads {
        assert_state_eq(&a, &b, t, &format!("seed {seed} batch"));
    }
}

#[test]
fn randomized_programs_agree_across_engines() {
    for seed in 0..CASES {
        for threads in [1usize, 2, 4] {
            check_case(seed * 31 + threads as u64, threads);
        }
    }
}
