//! Golden tests for the interpreter's edge-case semantics, run through
//! **both** functional engines.
//!
//! The block engine re-implements instruction semantics as specialized
//! µops, so every deliberately-odd corner of the ISA — division by zero,
//! shift-amount masking, permute index wrap, masked-element preservation —
//! is asserted here against hand-computed values under `EngineMode::Interp`
//! *and* `EngineMode::Block`, plus a lockstep run that the two engines
//! emit identical [`Step`] streams and leave identical memory.

use vlt_exec::{EngineMode, FuncSim, Step};
use vlt_isa::asm::assemble;

const BUDGET: u64 = 1_000_000;

/// Run `src` to completion on one thread under `engine`.
fn run_on(src: &str, engine: EngineMode) -> FuncSim {
    let p = assemble(src).unwrap();
    let mut sim = FuncSim::new(&p, 1).with_engine(engine);
    sim.run_to_completion(BUDGET).unwrap();
    sim
}

/// Step both engines in lockstep over `src`, asserting an identical
/// per-thread [`Step`] stream, then run golden checks on each final state.
fn check_both(src: &str, golden: impl Fn(&FuncSim, &str)) {
    let p = assemble(src).unwrap();
    let mut a = FuncSim::new(&p, 1).with_engine(EngineMode::Interp);
    let mut b = FuncSim::new(&p, 1).with_engine(EngineMode::Block);
    let mut steps = 0u64;
    while !a.all_halted() {
        let sa = a.step_thread(0).unwrap();
        let sb = b.step_thread(0).unwrap();
        assert_eq!(sa, sb, "engines diverged at step {steps}");
        if let Step::Inst(d) = &sa {
            if let vlt_exec::DynKind::VMem { addrs } = d.kind {
                assert_eq!(a.addrs(addrs), b.addrs(addrs), "addresses diverged at {steps}");
            }
        }
        steps += 1;
        assert!(steps < BUDGET, "program did not halt");
    }
    assert!(b.all_halted());
    assert_eq!(a.mem, b.mem, "final memory diverged");
    golden(&a, "interp");
    golden(&b, "block");
}

#[test]
fn div_rem_by_zero_and_overflow() {
    check_both(
        r#"
        li   x1, 7
        li   x2, 0
        div  x3, x1, x2        # /0 -> all ones
        rem  x4, x1, x2        # %0 -> dividend
        sub  x5, x0, x1        # -7
        div  x6, x5, x2
        rem  x7, x5, x2
        li   x8, 1
        slli x8, x8, 63        # i64::MIN
        sub  x9, x0, x1
        div  x10, x9, x1       # -7 / 7 = -1
        div  x11, x8, x10      # i64::MIN / -1 wraps to i64::MIN
        rem  x12, x8, x10      # i64::MIN % -1 = 0
        halt
    "#,
        |s, eng| {
            let st = s.thread(0);
            assert_eq!(st.x[3], u64::MAX, "{eng}: div by zero");
            assert_eq!(st.x[4], 7, "{eng}: rem by zero keeps dividend");
            assert_eq!(st.x[6], u64::MAX, "{eng}: signed div by zero");
            assert_eq!(st.x[7], (-7i64) as u64, "{eng}: signed rem by zero");
            assert_eq!(st.x[10], u64::MAX, "{eng}: -7/7");
            assert_eq!(st.x[11], i64::MIN as u64, "{eng}: overflow wraps");
            assert_eq!(st.x[12], 0, "{eng}: overflow rem");
        },
    );
}

#[test]
fn shifts_mask_amount_to_low_six_bits() {
    check_both(
        r#"
        li   x1, 1
        li   x2, 65
        sll  x3, x1, x2        # 1 << (65 & 63) = 2
        li   x4, 64
        sll  x5, x1, x4        # 1 << 0 = 1
        slli x6, x1, 63        # high bit
        srl  x7, x6, x2        # >> 1
        sra  x8, x6, x2        # arithmetic >> 1 keeps the sign
        li   x9, 1
        sub  x10, x0, x9       # -1: shift amount masks to 63
        sll  x11, x1, x10      # 1 << 63
        halt
    "#,
        |s, eng| {
            let st = s.thread(0);
            assert_eq!(st.x[3], 2, "{eng}: sll 65");
            assert_eq!(st.x[5], 1, "{eng}: sll 64");
            assert_eq!(st.x[7], 1 << 62, "{eng}: srl 65");
            assert_eq!(st.x[8], 0b11 << 62, "{eng}: sra 65");
            assert_eq!(st.x[11], 1 << 63, "{eng}: sll -1");
        },
    );
}

#[test]
fn vextract_vinsert_wrap_index_modulo_mvl() {
    check_both(
        r#"
        li        x1, 4
        setvl     x2, x1
        vid       v1
        li        x3, 66
        vextract  x4, v1, x3   # index 66 % 64 = 2
        li        x5, 65       # index 1
        li        x6, 99
        vinsert   v1, x5, x6
        li        x7, 1
        vextract  x8, v1, x7
        halt
    "#,
        |s, eng| {
            let st = s.thread(0);
            assert_eq!(st.x[4], 2, "{eng}: vextract wraps mod 64");
            assert_eq!(st.x[8], 99, "{eng}: vinsert wraps mod 64");
            assert_eq!(st.v[1][1], 99, "{eng}: lane written through wrap");
        },
    );
}

#[test]
fn masked_ops_preserve_disabled_elements() {
    check_both(
        r#"
        li      x1, 8
        setvl   x2, x1
        li      x3, 7
        vsplat  v1, x3           # all lanes 7
        vid     v2
        li      x4, 0b0101
        vmsetb  x4
        vadd.vv v1, v2, v2, vm   # lanes 0,2 <- 2*e; others keep 7
        li      x5, 100
        vsplat  v3, x5
        vsplat  v3, x3, vm       # lanes 0,2 <- 7
        halt
    "#,
        |s, eng| {
            let st = s.thread(0);
            for e in 0..8usize {
                let want = if e == 0 || e == 2 { 2 * e as u64 } else { 7 };
                assert_eq!(st.v[1][e], want, "{eng}: v1[{e}]");
                let want = if e == 0 || e == 2 { 7 } else { 100 };
                assert_eq!(st.v[3][e], want, "{eng}: v3[{e}]");
            }
        },
    );
}

#[test]
fn vcmp_touches_only_bits_below_vl() {
    check_both(
        r#"
        li      x1, 8
        setvl   x2, x1
        vmset                  # vm = all 64 ones
        li      x3, 2
        setvl   x4, x3
        vid     v1
        vsne.vv v1, v1         # all false within vl=2: clears bits 0,1
        halt
    "#,
        |s, eng| {
            assert_eq!(s.thread(0).vm, !0b11, "{eng}: bits >= vl preserved");
        },
    );
}

#[test]
fn masked_load_leaves_disabled_lanes_and_memory_alone() {
    let src = r#"
        .data
    src:
        .dword 10, 20, 30, 40
    dst:
        .dword 1, 2, 3, 4
        .text
        li      x1, 4
        setvl   x2, x1
        li      x3, 5
        vsplat  v1, x3
        li      x4, 0b1010
        vmsetb  x4
        la      x5, src
        vld     v1, x5, vm     # lanes 1,3 load; 0,2 keep 5
        la      x6, dst
        vst     v1, x6, vm     # lanes 1,3 store; dst[0], dst[2] untouched
        halt
    "#;
    let dst = assemble(src).unwrap().symbol("dst").unwrap();
    check_both(src, |s, eng| {
        let st = s.thread(0);
        assert_eq!(st.v[1][0], 5, "{eng}: masked-off lane 0");
        assert_eq!(st.v[1][1], 20, "{eng}: enabled lane 1");
        assert_eq!(st.v[1][2], 5, "{eng}: masked-off lane 2");
        assert_eq!(st.v[1][3], 40, "{eng}: enabled lane 3");
        assert_eq!(s.mem.read_u64(dst), 1, "{eng}: dst[0] untouched");
        assert_eq!(s.mem.read_u64(dst + 8), 20, "{eng}: dst[1] stored");
        assert_eq!(s.mem.read_u64(dst + 16), 3, "{eng}: dst[2] untouched");
        assert_eq!(s.mem.read_u64(dst + 24), 40, "{eng}: dst[3] stored");
    });
}

/// Engine-pinned golden checks (not just cross-engine agreement): the same
/// values asserted under each engine independently, so a bug shared by both
/// paths cannot hide.
#[test]
fn each_engine_matches_hand_computed_values() {
    let src = r#"
        li   x1, 7
        li   x2, 0
        div  x3, x1, x2
        li   x4, 65
        sll  x5, x1, x4
        halt
    "#;
    for engine in [EngineMode::Interp, EngineMode::Block] {
        let s = run_on(src, engine);
        assert_eq!(s.thread(0).x[3], u64::MAX, "{engine:?}");
        assert_eq!(s.thread(0).x[5], 14, "{engine:?}");
    }
}
