//! Deterministic random-program generator shared by the differential
//! test harnesses (`#[path]`-included, so it is not its own test binary).
//!
//! Emits vlint-clean SPMD programs: every scratch register is initialized
//! in a prologue, all memory traffic stays inside a tid-strided private
//! slice of one shared buffer (race-free by construction), loops have
//! constant trip counts, and phases meet at top-level barriers. The
//! engine-differential fuzz (`engine_fuzz`) steps these under two
//! execution engines; the static-DLP differential fuzz (`dlp_fuzz` in
//! vlt-verify) replays them against the static analyzer's predictions.

/// xorshift64* — deterministic, dependency-free.
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

/// Scratch integer registers the generator may clobber. `x1` (tid), `x2`
/// (private base), `x13` (address/constant temp), `x14` (loop counter),
/// and `x15` (setvl result) are reserved.
const XPOOL: [u8; 9] = [4, 5, 6, 7, 8, 9, 10, 11, 12];
const FPOOL: [u8; 4] = [1, 2, 3, 4];
const VPOOL: [u8; 4] = [1, 2, 3, 4];

struct Gen {
    src: String,
    rng: Rng,
    label: u32,
}

impl Gen {
    fn x(&mut self) -> u8 {
        *self.rng.pick(&XPOOL)
    }
    fn f(&mut self) -> u8 {
        *self.rng.pick(&FPOOL)
    }
    fn v(&mut self) -> u8 {
        *self.rng.pick(&VPOOL)
    }
    fn emit(&mut self, line: &str) {
        self.src.push_str("        ");
        self.src.push_str(line);
        self.src.push('\n');
    }

    /// One random instruction (or small idiom) that only touches pool
    /// registers and the thread's private `[x2, x2+1024)` memory slice.
    fn item(&mut self) {
        match self.rng.below(13) {
            0..=2 => {
                let op = *self.rng.pick(&[
                    "add", "sub", "mul", "and", "or", "xor", "sll", "srl", "sra", "slt", "sltu",
                    "div", "rem",
                ]);
                let (d, a, b) = (self.x(), self.x(), self.x());
                self.emit(&format!("{op}  x{d}, x{a}, x{b}"));
            }
            3 => {
                let op = *self.rng.pick(&["addi", "andi", "ori", "xori"]);
                let (d, a) = (self.x(), self.x());
                let imm = self.rng.below(1024) as i64 - 512;
                self.emit(&format!("{op}  x{d}, x{a}, {imm}"));
            }
            4 => {
                let op = *self.rng.pick(&["slli", "srli", "srai"]);
                let (d, a) = (self.x(), self.x());
                let sh = self.rng.below(64);
                self.emit(&format!("{op}  x{d}, x{a}, {sh}"));
            }
            5 => {
                let (s, off) = (self.x(), 8 * self.rng.below(127));
                self.emit(&format!("sd   x{s}, {off}(x2)"));
            }
            6 => {
                let (d, off) = (self.x(), 8 * self.rng.below(127));
                self.emit(&format!("ld   x{d}, {off}(x2)"));
            }
            7 => {
                // Forward skip over a couple of ops; the join is static,
                // so divergent conditions stay barrier-convergent.
                let cond = *self.rng.pick(&["beq", "bne", "blt", "bge"]);
                let (a, b) = (self.x(), self.x());
                let l = self.label;
                self.label += 1;
                self.emit(&format!("{cond}  x{a}, x{b}, skip{l}"));
                for _ in 0..=self.rng.below(2) {
                    let (d, a, b) = (self.x(), self.x(), self.x());
                    self.emit(&format!("add  x{d}, x{a}, x{b}"));
                }
                self.src.push_str(&format!("    skip{l}:\n"));
            }
            8 => {
                // Constant-trip loop on the reserved counter.
                let l = self.label;
                self.label += 1;
                let trips = 1 + self.rng.below(5);
                self.emit(&format!("li   x14, {trips}"));
                self.src.push_str(&format!("    loop{l}:\n"));
                for _ in 0..=self.rng.below(2) {
                    let (d, a, b) = (self.x(), self.x(), self.x());
                    let op = *self.rng.pick(&["add", "xor", "mul"]);
                    self.emit(&format!("{op}  x{d}, x{a}, x{b}"));
                }
                self.emit("addi x14, x14, -1");
                self.emit(&format!("bne  x14, x0, loop{l}"));
            }
            9 => {
                let (d, a, b) = (self.f(), self.f(), self.f());
                let op = *self.rng.pick(&["fadd", "fsub", "fmul", "fdiv", "fmin", "fmax"]);
                self.emit(&format!("{op} f{d}, f{a}, f{b}"));
            }
            10 => match self.rng.below(4) {
                0 => {
                    let (d, a, b) = (self.v(), self.v(), self.v());
                    let op = *self.rng.pick(&[
                        "vadd.vv", "vsub.vv", "vmul.vv", "vand.vv", "vor.vv", "vxor.vv", "vmin.vv",
                        "vmax.vv", "vfadd.vv", "vfmul.vv",
                    ]);
                    let vm = if self.rng.below(2) == 0 { ", vm" } else { "" };
                    self.emit(&format!("{op} v{d}, v{a}, v{b}{vm}"));
                }
                1 => {
                    let (d, a, s) = (self.v(), self.v(), self.x());
                    let op = *self.rng.pick(&["vadd.vs", "vmul.vs", "vsll.vs", "vsrl.vs"]);
                    let vm = if self.rng.below(2) == 0 { ", vm" } else { "" };
                    self.emit(&format!("{op} v{d}, v{a}, x{s}{vm}"));
                }
                2 => {
                    let (a, b) = (self.v(), self.v());
                    let op = *self.rng.pick(&["vseq.vv", "vsne.vv", "vslt.vv", "vsge.vv"]);
                    self.emit(&format!("{op} v{a}, v{b}"));
                }
                _ => {
                    let s = self.x();
                    match self.rng.below(3) {
                        0 => self.emit(&format!("vmsetb x{s}")),
                        1 => self.emit("vmnot"),
                        _ => {
                            let d = self.v();
                            self.emit(&format!("vsplat v{d}, x{s}"));
                        }
                    }
                }
            },
            11 => match self.rng.below(3) {
                // Content-steered addressing: offsets *loaded from the
                // read-only `idx` table* (bounded byte offsets into the
                // private slice) steer gathers, scatters, and scalar
                // accesses. Statically sound only through the verifier's
                // content lattice: folding the table bounds the loaded
                // index, which bounds the data access.
                0 => {
                    // Steered scalar access: idx[k] picks the slot.
                    let off = 8 * self.rng.below(128);
                    let r = self.x();
                    self.emit("la   x13, idx");
                    self.emit(&format!("ld   x13, {off}(x13)"));
                    self.emit("add  x13, x13, x2");
                    if self.rng.below(2) == 0 {
                        self.emit(&format!("ld   x{r}, 0(x13)"));
                    } else {
                        self.emit(&format!("sd   x{r}, 0(x13)"));
                    }
                }
                1 => {
                    // Steered gather: index vector loaded from the table
                    // (vl <= 16 elements, so the table load stays inside
                    // the table's 128 entries).
                    let off = 8 * self.rng.below(112);
                    let (v, vi) = (self.v(), self.v());
                    self.emit("la   x13, idx");
                    self.emit(&format!("addi x13, x13, {off}"));
                    self.emit(&format!("vld  v{vi}, x13"));
                    self.emit(&format!("vldx v{v}, x2, v{vi}"));
                }
                _ => {
                    // Steered scatter into the private slice (same-thread
                    // collisions are fine; cross-thread is impossible —
                    // every table entry stays below the 1 KiB stride).
                    let off = 8 * self.rng.below(112);
                    let (v, vi) = (self.v(), self.v());
                    self.emit("la   x13, idx");
                    self.emit(&format!("addi x13, x13, {off}"));
                    self.emit(&format!("vld  v{vi}, x13"));
                    self.emit(&format!("vstx v{v}, x2, v{vi}"));
                }
            },
            _ => match self.rng.below(4) {
                0 => {
                    // Unit-stride load/store inside the private slice
                    // (vl <= 16 => 128 bytes; offsets stay below 896).
                    let off = 8 * self.rng.below(112);
                    let v = self.v();
                    self.emit(&format!("addi x13, x2, {off}"));
                    let vm = if self.rng.below(2) == 0 { ", vm" } else { "" };
                    if self.rng.below(2) == 0 {
                        self.emit(&format!("vld  v{v}, x13{vm}"));
                    } else {
                        self.emit(&format!("vst  v{v}, x13{vm}"));
                    }
                }
                1 => {
                    // Strided gather within the slice: stride * 15 < 1024.
                    let stride = 8 * (1 + self.rng.below(8));
                    let v = self.v();
                    self.emit(&format!("li   x13, {stride}"));
                    self.emit(&format!("vlds v{v}, x2, x13"));
                }
                2 => {
                    // Indexed gather/scatter with freshly built in-bounds
                    // offsets (vid * 8), so scatters stay private.
                    let (v, vi) = (self.v(), self.v());
                    self.emit(&format!("vid  v{vi}"));
                    self.emit("li   x13, 8");
                    self.emit(&format!("vmul.vs v{vi}, v{vi}, x13"));
                    if self.rng.below(2) == 0 {
                        self.emit(&format!("vldx v{v}, x2, v{vi}"));
                    } else {
                        self.emit(&format!("vstx v{v}, x2, v{vi}"));
                    }
                }
                _ => {
                    let (d, a) = (self.x(), self.v());
                    let idx = self.x();
                    if self.rng.below(2) == 0 {
                        self.emit(&format!("vextract x{d}, v{a}, x{idx}"));
                    } else {
                        self.emit(&format!("vinsert  v{a}, x{idx}, x{d}"));
                    }
                }
            },
        }
    }
}

/// Generate one random vlint-clean SPMD program for `threads` threads.
pub fn gen_program(seed: u64, threads: usize) -> String {
    let mut g = Gen { src: String::new(), rng: Rng::new(seed), label: 0 };
    g.src.push_str("        .data\n    buf:\n");
    g.src.push_str(&format!("        .zero {}\n", threads * 1024));
    // Read-only index table for the content-steered items: 128 byte
    // offsets into a private slice, each in [0, 896] and 8-aligned, so a
    // steered 8-byte access stays below the 1 KiB thread stride.
    g.src.push_str("    idx:\n");
    for _ in 0..16 {
        let row: Vec<String> = (0..8).map(|_| format!("{}", 8 * g.rng.below(113))).collect();
        g.src.push_str(&format!("        .dword {}\n", row.join(", ")));
    }
    g.src.push_str("        .text\n");
    g.emit("tid  x1");
    g.emit("la   x2, buf");
    g.emit("slli x3, x1, 10");
    g.emit("add  x2, x2, x3     # x2 = this thread's private 1 KiB slice");
    // Initialize every pool register so random reads are always defined.
    for (i, x) in XPOOL.iter().enumerate() {
        let v = g.rng.below(1 << 20);
        g.emit(&format!("li   x{x}, {v}"));
        if i == 0 {
            g.emit(&format!("vmsetb x{x}"));
        }
    }
    g.emit("addi x4, x4, 1       # x4 > 0: safe loop/shift seed");
    for f in FPOOL {
        let x = *g.rng.pick(&XPOOL);
        g.emit(&format!("fcvt.f.x f{f}, x{x}"));
    }
    let vl = 1 + g.rng.below(16);
    g.emit(&format!("li   x13, {vl}"));
    g.emit("setvl x15, x13");
    for v in VPOOL {
        let x = *g.rng.pick(&XPOOL);
        if v % 2 == 0 {
            g.emit(&format!("vid  v{v}"));
        } else {
            g.emit(&format!("vsplat v{v}, x{x}"));
        }
    }

    let phases = 1 + g.rng.below(3);
    for p in 0..phases {
        let items = 8 + g.rng.below(16);
        for _ in 0..items {
            g.item();
        }
        // Occasionally re-size the vector length between phases.
        if g.rng.below(2) == 0 {
            let vl = 1 + g.rng.below(16);
            g.emit(&format!("li   x13, {vl}"));
            g.emit("setvl x15, x13");
        }
        if p + 1 < phases || g.rng.below(2) == 0 {
            g.emit("barrier");
        }
    }
    g.emit("halt");
    g.src
}
