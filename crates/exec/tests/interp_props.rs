//! Property tests on the interpreter: vector semantics against scalar
//! reference computations over random data.

use proptest::prelude::*;

use vlt_exec::FuncSim;
use vlt_isa::asm::assemble;

fn run_vec_op(op_line: &str, a: &[u64], b: &[u64]) -> Vec<u64> {
    let n = a.len();
    let src = format!(
        ".data\nav:\n.dword {}\nbv:\n.dword {}\ncv:\n.zero {}\n.text\n\
         li x1, {n}\nsetvl x2, x1\nla x3, av\nla x4, bv\nla x5, cv\n\
         vld v1, x3\nvld v2, x4\n{op_line}\nvst v3, x5\nhalt\n",
        a.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", "),
        b.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", "),
        8 * n,
    );
    let prog = assemble(&src).unwrap();
    let mut sim = FuncSim::new(&prog, 1);
    sim.run_to_completion(100_000).unwrap();
    let base = prog.symbol("cv").unwrap();
    (0..n).map(|i| sim.mem.read_u64(base + 8 * i as u64)).collect()
}

fn vecs() -> impl Strategy<Value = (Vec<u64>, Vec<u64>)> {
    (1usize..=64).prop_flat_map(|n| {
        (
            proptest::collection::vec(any::<u64>(), n..=n),
            proptest::collection::vec(any::<u64>(), n..=n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn vadd_matches_scalar((a, b) in vecs()) {
        let got = run_vec_op("vadd.vv v3, v1, v2", &a, &b);
        let want: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x.wrapping_add(*y)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn vmax_is_signed((a, b) in vecs()) {
        let got = run_vec_op("vmax.vv v3, v1, v2", &a, &b);
        let want: Vec<u64> =
            a.iter().zip(&b).map(|(x, y)| (*x as i64).max(*y as i64) as u64).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn vsrl_uses_low_six_bits((a, b) in vecs()) {
        let got = run_vec_op("vsrl.vv v3, v1, v2", &a, &b);
        let want: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x >> (y & 63)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn vfadd_matches_f64_bits((a, b) in vecs()) {
        let got = run_vec_op("vfadd.vv v3, v1, v2", &a, &b);
        let want: Vec<u64> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (f64::from_bits(*x) + f64::from_bits(*y)).to_bits())
            .collect();
        // NaN payloads must match bit-for-bit too (same operation order).
        prop_assert_eq!(got, want);
    }

    #[test]
    fn vredsum_matches_wrapping_sum((a, b) in vecs()) {
        let n = a.len();
        let src = format!(
            ".data\nav:\n.dword {}\n.text\nli x1, {n}\nsetvl x2, x1\nla x3, av\nvld v1, x3\nvredsum x4, v1\nhalt\n",
            a.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", "),
        );
        let _ = b;
        let prog = assemble(&src).unwrap();
        let mut sim = FuncSim::new(&prog, 1);
        sim.run_to_completion(100_000).unwrap();
        let want = a.iter().fold(0u64, |acc, v| acc.wrapping_add(*v));
        prop_assert_eq!(sim.thread(0).x[4], want);
    }

    /// Masked operations only touch enabled elements.
    #[test]
    fn masked_add_respects_mask((a, b) in vecs(), mask in any::<u64>()) {
        let n = a.len();
        let src = format!(
            ".data\nav:\n.dword {av}\nbv:\n.dword {bv}\ncv:\n.dword {av}\nmk:\n.dword {mask}\n.text\n\
             li x1, {n}\nsetvl x2, x1\nla x3, av\nla x4, bv\nla x5, cv\n\
             vld v1, x3\nvld v2, x4\nvld v3, x5\nla x7, mk\nld x6, 0(x7)\nvmsetb x6\n\
             vadd.vv v3, v1, v2, vm\nvst v3, x5\nhalt\n",
            av = a.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", "),
            bv = b.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", "),
            n = n,
            mask = mask,
        );
        let prog = assemble(&src).unwrap();
        let mut sim = FuncSim::new(&prog, 1);
        sim.run_to_completion(100_000).unwrap();
        let base = prog.symbol("cv").unwrap();
        for i in 0..n {
            let got = sim.mem.read_u64(base + 8 * i as u64);
            let want = if (mask >> i) & 1 == 1 {
                a[i].wrapping_add(b[i])
            } else {
                a[i] // unmodified (cv was initialized to av)
            };
            prop_assert_eq!(got, want, "element {}", i);
        }
    }
}
