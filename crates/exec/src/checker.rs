//! Opt-in dynamic checked mode for [`crate::FuncSim`].
//!
//! The architecture is deliberately forgiving: registers reset to zero,
//! unmapped loads return zero, and stores allocate. That turns kernel
//! slips (read-before-write, out-of-bounds base addresses) into silently
//! wrong numbers instead of faults. The checker observes every
//! instruction just before it executes and records the faults the
//! hardware never raises:
//!
//! * **undefined read** — a register read before any dynamic write on
//!   this thread (the self-XOR/SUB zero idiom excepted, matching the
//!   static verifier),
//! * **out-of-bounds / misaligned access** — an effective address outside
//!   the data image (plus a read-slack window) and the stack region, or
//!   not aligned to the element size; vector accesses are checked per
//!   enabled lane.
//!
//! When a predictor from the static verifier is installed
//! ([`CheckConfig::undef_predictor`]), every dynamic undefined read is
//! `debug_assert`ed to have been statically predicted — the verifier's
//! definedness lattice is complete for direct control flow, and this is
//! the cross-validation that keeps the two implementations honest. The
//! converse does not hold for memory: the verifier only checks constant
//! addresses, so dynamic OOB faults are recorded but never asserted
//! against static predictions.

use std::fmt;

use vlt_isa::{Op, OpClass, RegRef, DATA_BASE, STACK_BASE, STACK_SIZE};

use crate::program::StaticInst;
use crate::state::ArchState;

/// A fault category the forgiving hardware never raises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynFault {
    /// A register was read before any write on this thread.
    UndefRead(RegRef),
    /// A load touched an address outside the data/stack layout.
    OobRead(u64),
    /// A store touched an address outside the data/stack layout.
    OobWrite(u64),
    /// An access was not aligned to its element size.
    Misaligned(u64),
}

impl fmt::Display for DynFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynFault::UndefRead(r) => write!(f, "undefined read of {r}"),
            DynFault::OobRead(a) => write!(f, "out-of-bounds load at {a:#x}"),
            DynFault::OobWrite(a) => write!(f, "out-of-bounds store at {a:#x}"),
            DynFault::Misaligned(a) => write!(f, "misaligned access at {a:#x}"),
        }
    }
}

/// One observed fault: which thread, at which static instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Static instruction index.
    pub sidx: usize,
    /// Thread that executed the instruction.
    pub tid: usize,
    /// What went wrong.
    pub fault: DynFault,
}

/// `sidx -> bool`: did the static verifier consider an undefined read
/// possible at this instruction? (Build one from
/// `vlt_verify::predicted_undef_reads`.)
pub type UndefPredictor = Box<dyn Fn(usize) -> bool + Send + Sync>;

/// Configuration for the checked mode.
pub struct CheckConfig {
    /// Bytes past the end of the data image that loads may touch without a
    /// fault (unrolled scalar walks deliberately over-read; 64 matches the
    /// static verifier's default).
    pub read_slack: u64,
    /// Optional static-verifier prediction to `debug_assert` undefined
    /// reads against.
    pub undef_predictor: Option<UndefPredictor>,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig { read_slack: 64, undef_predictor: None }
    }
}

/// Per-thread definedness bitmaps.
#[derive(Debug, Clone, Copy)]
struct ThreadInit {
    x: u32,
    f: u32,
    v: u32,
}

impl ThreadInit {
    fn fresh() -> ThreadInit {
        // x0 (hardwired zero) and x30 (runtime-set stack pointer) are
        // defined at entry; everything else must be written first.
        ThreadInit { x: 1 | (1 << 30), f: 0, v: 0 }
    }

    fn defined(&self, r: RegRef) -> bool {
        match r {
            RegRef::I(i) => self.x & (1 << i) != 0,
            RegRef::F(i) => self.f & (1 << i) != 0,
            RegRef::V(i) => self.v & (1 << i) != 0,
            RegRef::Vl | RegRef::Vm => true, // reset values are architectural
        }
    }

    fn define(&mut self, r: RegRef) {
        match r {
            RegRef::I(i) => self.x |= 1 << i,
            RegRef::F(i) => self.f |= 1 << i,
            RegRef::V(i) => self.v |= 1 << i,
            RegRef::Vl | RegRef::Vm => {}
        }
    }
}

/// Cap on retained fault records; further faults only bump `dropped`.
const MAX_RECORDS: usize = 4096;

/// The dynamic checker. Owned by `FuncSim` when checked mode is enabled.
pub struct Checker {
    cfg: CheckConfig,
    data_len: u64,
    init: Vec<ThreadInit>,
    faults: Vec<FaultRecord>,
    /// Fault count beyond [`MAX_RECORDS`].
    dropped: u64,
}

impl fmt::Debug for Checker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Checker")
            .field("faults", &self.faults.len())
            .field("dropped", &self.dropped)
            .finish_non_exhaustive()
    }
}

impl Checker {
    /// New checker for `nthr` threads over a `data_len`-byte data image.
    pub fn new(nthr: usize, data_len: usize, cfg: CheckConfig) -> Checker {
        Checker {
            cfg,
            data_len: data_len as u64,
            init: vec![ThreadInit::fresh(); nthr],
            faults: Vec::new(),
            dropped: 0,
        }
    }

    /// All recorded faults (capped; see [`Checker::dropped`]).
    pub fn faults(&self) -> &[FaultRecord] {
        &self.faults
    }

    /// Number of faults dropped beyond the record cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// True when no fault of any kind was observed.
    pub fn is_clean(&self) -> bool {
        self.faults.is_empty() && self.dropped == 0
    }

    fn record(&mut self, sidx: usize, tid: usize, fault: DynFault) {
        if self.faults.len() < MAX_RECORDS {
            self.faults.push(FaultRecord { sidx, tid, fault });
        } else {
            self.dropped += 1;
        }
    }

    /// Observe one instruction about to execute on thread `t`. Must be
    /// called with the pre-execution architectural state (addresses are
    /// recomputed from source registers the same way the interpreter
    /// will).
    pub fn observe(&mut self, t: usize, st: &ArchState, si: &StaticInst, sidx: usize) {
        // Undefined reads (the zero idiom is a def, not a use).
        if !si.inst.is_zero_idiom() {
            for &u in &si.uses {
                if !self.init[t].defined(u) {
                    if let Some(p) = &self.cfg.undef_predictor {
                        debug_assert!(
                            p(sidx),
                            "dynamic undefined read of {u} at #{sidx} (thread {t}) was not \
                             predicted by the static verifier"
                        );
                    }
                    self.record(sidx, t, DynFault::UndefRead(u));
                }
            }
        }
        self.check_memory(t, st, si, sidx);
        for &d in &si.defs {
            self.init[t].define(d);
        }
    }

    fn check_memory(&mut self, t: usize, st: &ArchState, si: &StaticInst, sidx: usize) {
        let inst = &si.inst;
        let base = st.get_x(inst.rs1);
        match si.class {
            OpClass::Load | OpClass::Store => {
                let size: u64 = match inst.op {
                    Op::Ld | Op::Sd | Op::Fld | Op::Fsd => 8,
                    Op::Lw | Op::Lwu | Op::Sw => 4,
                    _ => 1,
                };
                let addr = base.wrapping_add(inst.imm as i64 as u64);
                let write = si.class == OpClass::Store;
                self.check_addr(t, sidx, addr, size, write);
            }
            OpClass::VLoad | OpClass::VStore => {
                let write = si.class == OpClass::VStore;
                for e in 0..st.vl {
                    if !st.lane_enabled(inst.masked, e) {
                        continue;
                    }
                    let addr = match inst.op {
                        Op::Vld | Op::Vst => base.wrapping_add(8 * e as u64),
                        Op::Vlds | Op::Vsts => {
                            base.wrapping_add(st.get_x(inst.rs2).wrapping_mul(e as u64))
                        }
                        // Gather/scatter: element index from the index vector.
                        _ => base.wrapping_add(st.v[inst.rs2 as usize][e]),
                    };
                    self.check_addr(t, sidx, addr, 8, write);
                }
            }
            _ => {}
        }
    }

    fn check_addr(&mut self, t: usize, sidx: usize, addr: u64, size: u64, write: bool) {
        if !addr.is_multiple_of(size) {
            self.record(sidx, t, DynFault::Misaligned(addr));
        }
        let data_end = DATA_BASE + self.data_len;
        let read_end = data_end + if write { 0 } else { self.cfg.read_slack };
        let in_data = (DATA_BASE..read_end).contains(&addr);
        let in_stack = (STACK_BASE..STACK_BASE + 64 * STACK_SIZE).contains(&addr);
        if !in_data && !in_stack {
            let fault = if write { DynFault::OobWrite(addr) } else { DynFault::OobRead(addr) };
            self.record(sidx, t, fault);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::funcsim::FuncSim;
    use vlt_isa::asm::assemble;

    fn run_checked(src: &str) -> FuncSim {
        let p = assemble(src).unwrap();
        let mut sim = FuncSim::new(&p, 1);
        sim.enable_checker(CheckConfig::default());
        sim.run_to_completion(100_000).unwrap();
        sim
    }

    #[test]
    fn clean_program_records_nothing() {
        let sim = run_checked(
            ".data\nxs: .dword 1, 2\n.text\nla x1, xs\nld x2, 8(x1)\nsd x2, 0(x1)\nhalt\n",
        );
        assert!(sim.checker().unwrap().is_clean());
    }

    #[test]
    fn undefined_read_recorded() {
        let sim = run_checked("add x1, x2, x3\nsd x1, -8(sp)\nhalt\n");
        let faults = sim.checker().unwrap().faults();
        assert!(faults
            .iter()
            .any(|f| matches!(f.fault, DynFault::UndefRead(RegRef::I(2))) && f.sidx == 0));
    }

    #[test]
    fn zero_idiom_is_not_an_undefined_read() {
        let sim = run_checked("xor x5, x5, x5\nsd x5, -8(sp)\nhalt\n");
        assert!(sim.checker().unwrap().is_clean());
    }

    #[test]
    fn oob_load_recorded() {
        let sim = run_checked("li x1, 64\nld x2, 0(x1)\nsd x2, -8(sp)\nhalt\n");
        let faults = sim.checker().unwrap().faults();
        assert!(faults.iter().any(|f| matches!(f.fault, DynFault::OobRead(64))));
    }

    #[test]
    fn misaligned_access_recorded() {
        let sim = run_checked(
            ".data\nxs: .dword 1\n.text\nla x1, xs\nld x2, 3(x1)\nsd x2, -8(sp)\nhalt\n",
        );
        let faults = sim.checker().unwrap().faults();
        assert!(faults.iter().any(|f| matches!(f.fault, DynFault::Misaligned(_))));
    }

    #[test]
    fn vector_lanes_checked_individually() {
        // vl = 4 over a 2-element array: lanes 2 and 3 read past the slack?
        // No — slack covers 64 bytes, so use a big vl to escape it.
        let sim = run_checked(
            ".data\nxs: .dword 1, 2\n.text\nli x1, 16\nsetvl x0, x1\nla x2, xs\nvld v1, x2\nhalt\n",
        );
        let faults = sim.checker().unwrap().faults();
        // Elements 10.. land past data(16) + slack(64) = xs+80.
        assert!(faults.iter().any(|f| matches!(f.fault, DynFault::OobRead(_))), "{faults:?}");
    }

    #[test]
    fn masked_lanes_are_skipped() {
        // Mask enables only lane 0; lanes that would be OOB are disabled.
        let sim = run_checked(
            ".data\nxs: .dword 5\n.text\nli x1, 64\nsetvl x0, x1\nli x3, 1\nvmsetb x3\n\
             la x2, xs\nvld v1, x2, vm\nhalt\n",
        );
        assert!(sim.checker().unwrap().is_clean(), "{:?}", sim.checker().unwrap().faults());
    }

    #[test]
    fn predictor_accepts_predicted_reads() {
        let p = assemble("add x1, x2, x3\nsd x1, -8(sp)\nhalt\n").unwrap();
        let mut sim = FuncSim::new(&p, 1);
        sim.enable_checker(CheckConfig {
            undef_predictor: Some(Box::new(|sidx| sidx == 0)),
            ..CheckConfig::default()
        });
        sim.run_to_completion(100).unwrap();
        assert_eq!(sim.checker().unwrap().faults().len(), 2); // x2 and x3
    }

    #[test]
    #[should_panic(expected = "was not predicted")]
    #[cfg(debug_assertions)]
    fn predictor_rejects_unpredicted_reads() {
        let p = assemble("add x1, x2, x3\nhalt\n").unwrap();
        let mut sim = FuncSim::new(&p, 1);
        sim.enable_checker(CheckConfig {
            undef_predictor: Some(Box::new(|_| false)),
            ..CheckConfig::default()
        });
        let _ = sim.run_to_completion(100);
    }
}
