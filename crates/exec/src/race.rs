//! Opt-in dynamic barrier-epoch race checker for [`crate::FuncSim`].
//!
//! The whole simulation stack rests on one concurrency invariant: threads
//! share memory but only *communicate* across `barrier` rendezvous — within
//! a barrier epoch, no thread reads or writes a byte another thread writes.
//! That is what makes any inter-barrier interleaving architecturally
//! equivalent and lets the timing models pull per-thread streams on their
//! own schedule (DESIGN.md §1, §6).
//!
//! This checker verifies the invariant on the executed stream. Each thread
//! carries an epoch counter, incremented when it executes `barrier`; every
//! memory access is recorded against the thread's current epoch (unit-stride
//! runs coalesce into byte ranges, so regular kernels stay compact). Once
//! every live thread has moved past an epoch, the epoch is *sealed*: its
//! per-thread access sets can no longer grow, the checker cross-compares
//! them, and any same-epoch overlap between distinct threads with at least
//! one write is reported as a [`RaceRecord`].
//!
//! Mirroring [`crate::checker`], a predictor built from the static side
//! (`vlt_verify::predicted_race_sites`) can be installed; every dynamic
//! conflict is then `debug_assert`ed to involve only statically-predicted
//! sites. The static analysis is conservative by construction, so a dynamic
//! race it did not predict means one of the two implementations is wrong —
//! this is the cross-validation that keeps them honest.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use vlt_isa::OpClass;

use crate::arena::AddrArena;
use crate::program::DecodedProgram;
use crate::trace::{DynInst, DynKind};

/// `sidx -> bool`: did the static race analysis consider this instruction a
/// potential race participant? (Build one from
/// `vlt_verify::predicted_race_sites`.)
pub type SitePredictor = Box<dyn Fn(usize) -> bool + Send + Sync>;

/// Configuration for the dynamic race checker.
#[derive(Default)]
pub struct RaceConfig {
    /// Optional static-analysis prediction to `debug_assert` observed
    /// conflicts against.
    pub predictor: Option<SitePredictor>,
}

/// One side of an observed intra-epoch conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceSite {
    /// Thread that performed the access.
    pub tid: usize,
    /// Static instruction index.
    pub sidx: usize,
    /// First byte of the overlapping range.
    pub addr: u64,
    /// Whether the access was a write.
    pub write: bool,
}

/// An observed same-epoch cross-thread conflict (at least one side writes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceRecord {
    /// Barrier epoch (number of barriers each thread had executed).
    pub epoch: u64,
    /// One side of the conflict.
    pub a: RaceSite,
    /// The other side.
    pub b: RaceSite,
}

impl fmt::Display for RaceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = |w: bool| if w { "write" } else { "read" };
        write!(
            f,
            "epoch {}: {} at #{} (thread {}) overlaps {} at #{} (thread {}) at {:#x}",
            self.epoch,
            k(self.a.write),
            self.a.sidx,
            self.a.tid,
            k(self.b.write),
            self.b.sidx,
            self.b.tid,
            self.a.addr.max(self.b.addr),
        )
    }
}

/// One recorded access range `[start, end)`.
#[derive(Debug, Clone, Copy)]
struct Rec {
    start: u64,
    end: u64,
    sidx: u32,
    write: bool,
}

/// Cap on access records per (epoch, thread); beyond it the epoch's
/// coverage is partial and [`RaceChecker::saturated`] counts the loss.
const MAX_EPOCH_RECORDS: usize = 1 << 16;
/// Cap on retained conflict records.
const MAX_CONFLICTS: usize = 1024;

/// The dynamic race checker. Owned by `FuncSim` when enabled.
pub struct RaceChecker {
    predictor: Option<SitePredictor>,
    /// Per-thread current epoch (barriers executed so far).
    cur: Vec<u64>,
    done: Vec<bool>,
    /// Unsealed epochs: per-epoch, per-thread access ranges.
    epochs: BTreeMap<u64, Vec<Vec<Rec>>>,
    conflicts: Vec<RaceRecord>,
    /// Dedup: one record per (sidx, sidx) pair.
    seen: BTreeSet<(u32, u32)>,
    dropped: u64,
    saturated: u64,
    epochs_sealed: u64,
}

impl fmt::Debug for RaceChecker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RaceChecker")
            .field("conflicts", &self.conflicts.len())
            .field("epochs_sealed", &self.epochs_sealed)
            .field("saturated", &self.saturated)
            .finish_non_exhaustive()
    }
}

impl RaceChecker {
    /// New checker for `nthr` threads.
    pub fn new(nthr: usize, cfg: RaceConfig) -> RaceChecker {
        RaceChecker {
            predictor: cfg.predictor,
            cur: vec![0; nthr],
            done: vec![false; nthr],
            epochs: BTreeMap::new(),
            conflicts: Vec::new(),
            seen: BTreeSet::new(),
            dropped: 0,
            saturated: 0,
            epochs_sealed: 0,
        }
    }

    /// All observed conflicts (capped; see [`RaceChecker::dropped`]).
    pub fn conflicts(&self) -> &[RaceRecord] {
        &self.conflicts
    }

    /// Conflicts dropped beyond the record cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Access records dropped because an epoch hit its record cap. When
    /// nonzero, a "clean" verdict only covers the recorded prefix.
    pub fn saturated(&self) -> u64 {
        self.saturated
    }

    /// Number of epochs fully checked so far.
    pub fn epochs_sealed(&self) -> u64 {
        self.epochs_sealed
    }

    /// True when no intra-epoch cross-thread conflict was observed (and no
    /// epoch overflowed its record cap, so the verdict is complete).
    pub fn is_clean(&self) -> bool {
        self.conflicts.is_empty() && self.dropped == 0 && self.saturated == 0
    }

    /// Observe one executed instruction on thread `t`. Called by
    /// [`crate::FuncSim::step_thread`] right after execution.
    pub fn observe(&mut self, t: usize, d: &DynInst, arena: &AddrArena, prog: &DecodedProgram) {
        match d.kind {
            DynKind::Barrier => {
                self.cur[t] += 1;
                self.seal_ready();
            }
            DynKind::Halt => {
                self.done[t] = true;
                self.seal_ready();
            }
            DynKind::Mem { addr, size } => {
                let write = prog.get(d.sidx as usize).class == OpClass::Store;
                self.push(t, Rec { start: addr, end: addr + u64::from(size), sidx: d.sidx, write });
            }
            DynKind::VMem { addrs } => {
                let write = prog.get(d.sidx as usize).class == OpClass::VStore;
                // Elements are 8 bytes; unit-stride runs coalesce below.
                for &a in arena.slice(addrs) {
                    self.push(t, Rec { start: a, end: a + 8, sidx: d.sidx, write });
                }
            }
            _ => {}
        }
    }

    fn push(&mut self, t: usize, r: Rec) {
        let nthr = self.cur.len();
        let per = self.epochs.entry(self.cur[t]).or_insert_with(|| vec![Vec::new(); nthr]);
        let v = &mut per[t];
        // Coalesce regular patterns: an extension of, or an exact repeat
        // of, the previous range from the same static instruction.
        if let Some(last) = v.last_mut() {
            if last.sidx == r.sidx && last.write == r.write {
                if last.end == r.start {
                    last.end = r.end;
                    return;
                }
                if last.start == r.start && last.end == r.end {
                    return;
                }
            }
        }
        if v.len() >= MAX_EPOCH_RECORDS {
            self.saturated += 1;
            return;
        }
        v.push(r);
    }

    /// Seal every epoch that no live thread can still touch.
    fn seal_ready(&mut self) {
        let live_min = self.cur.iter().zip(&self.done).filter(|&(_, d)| !d).map(|(&e, _)| e).min();
        let ready: Vec<u64> = match live_min {
            Some(m) => self.epochs.range(..m).map(|(&e, _)| e).collect(),
            None => self.epochs.keys().copied().collect(),
        };
        for e in ready {
            let per = self.epochs.remove(&e).expect("sealed epoch present");
            self.check_epoch(e, per);
            self.epochs_sealed += 1;
        }
    }

    /// Cross-compare the per-thread access sets of one sealed epoch.
    fn check_epoch(&mut self, epoch: u64, per: Vec<Vec<Rec>>) {
        let mut all: Vec<(Rec, usize)> = Vec::new();
        for (t, v) in per.into_iter().enumerate() {
            all.extend(v.into_iter().map(|r| (r, t)));
        }
        all.sort_by_key(|&(r, t)| (r.start, r.end, t));
        for i in 0..all.len() {
            let (ri, ti) = all[i];
            for &(rj, tj) in &all[i + 1..] {
                if rj.start >= ri.end {
                    break;
                }
                if ti == tj || (!ri.write && !rj.write) {
                    continue;
                }
                self.emit(epoch, ri, ti, rj, tj);
            }
        }
    }

    fn emit(&mut self, epoch: u64, ra: Rec, ta: usize, rb: Rec, tb: usize) {
        if let Some(p) = &self.predictor {
            debug_assert!(
                p(ra.sidx as usize) && p(rb.sidx as usize),
                "dynamic race between #{} (thread {ta}) and #{} (thread {tb}) in epoch \
                 {epoch} was not predicted by the static race analysis",
                ra.sidx,
                rb.sidx,
            );
        }
        let key = (ra.sidx.min(rb.sidx), ra.sidx.max(rb.sidx));
        if !self.seen.insert(key) {
            return;
        }
        if self.conflicts.len() >= MAX_CONFLICTS {
            self.dropped += 1;
            return;
        }
        self.conflicts.push(RaceRecord {
            epoch,
            a: RaceSite { tid: ta, sidx: ra.sidx as usize, addr: ra.start, write: ra.write },
            b: RaceSite { tid: tb, sidx: rb.sidx as usize, addr: rb.start, write: rb.write },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::funcsim::FuncSim;
    use vlt_isa::asm::assemble;

    fn run_raced(src: &str, nthr: usize) -> FuncSim {
        let p = assemble(src).unwrap();
        let mut sim = FuncSim::new(&p, nthr);
        sim.enable_race_checker(RaceConfig::default());
        sim.run_to_completion(1_000_000).unwrap();
        sim
    }

    #[test]
    fn disjoint_tid_indexed_writes_are_clean() {
        let sim = run_raced(
            ".data\nslots: .dword 0, 0\n.text\n\
             tid x1\nla x2, slots\nslli x3, x1, 3\nadd x2, x2, x3\nsd x1, 0(x2)\nhalt\n",
            2,
        );
        let rc = sim.race_checker().unwrap();
        assert!(rc.is_clean(), "{:?}", rc.conflicts());
    }

    #[test]
    fn barrier_separated_sharing_is_clean() {
        // Write own slot, barrier, read the sibling's slot: the canonical
        // legal communication pattern.
        let sim = run_raced(
            ".data\nslots: .dword 0, 0\n.text\n\
             tid x1\nla x2, slots\nslli x3, x1, 3\nadd x2, x2, x3\nsd x1, 0(x2)\n\
             barrier\n\
             li x4, 1\nsub x4, x4, x1\nslli x4, x4, 3\nla x5, slots\nadd x5, x5, x4\n\
             ld x6, 0(x5)\nhalt\n",
            2,
        );
        let rc = sim.race_checker().unwrap();
        assert!(rc.is_clean(), "{:?}", rc.conflicts());
        assert!(rc.epochs_sealed() >= 2);
    }

    #[test]
    fn same_epoch_write_write_is_flagged() {
        let sim = run_raced(".data\nx: .dword 0\n.text\ntid x1\nla x2, x\nsd x1, 0(x2)\nhalt\n", 2);
        let rc = sim.race_checker().unwrap();
        assert_eq!(rc.conflicts().len(), 1);
        let c = rc.conflicts()[0];
        assert!(c.a.write && c.b.write);
        assert_eq!(c.epoch, 0);
    }

    #[test]
    fn same_epoch_read_write_is_flagged() {
        // Thread 0 reads the word thread 1 writes, no barrier between.
        let sim = run_raced(
            ".data\nx: .dword 7\n.text\n\
             tid x1\nla x2, x\nbnez x1, writer\nld x3, 0(x2)\nsd x3, -8(sp)\nhalt\n\
             writer:\nsd x1, 0(x2)\nhalt\n",
            2,
        );
        let rc = sim.race_checker().unwrap();
        assert_eq!(rc.conflicts().len(), 1);
        let c = rc.conflicts()[0];
        assert!(c.a.write != c.b.write);
    }

    #[test]
    fn read_read_sharing_is_clean() {
        let sim = run_raced(
            ".data\nx: .dword 7\n.text\nla x2, x\nld x3, 0(x2)\nsd x3, -8(sp)\nhalt\n",
            4,
        );
        assert!(sim.race_checker().unwrap().is_clean());
    }

    #[test]
    fn vector_store_overlap_is_flagged() {
        // Both threads vst the same 4-element region in epoch 0.
        let sim = run_raced(
            ".data\nbuf: .zero 64\n.text\n\
             li x1, 4\nsetvl x2, x1\nvid v1\nla x3, buf\nvst v1, x3\nhalt\n",
            2,
        );
        let rc = sim.race_checker().unwrap();
        assert_eq!(rc.conflicts().len(), 1);
    }

    #[test]
    fn epoch_counts_are_per_thread() {
        // Thread 1 halts before the barrier; thread 0 barriers alone and
        // writes in epoch 1 what thread 1 wrote in epoch 0 — with thread 1
        // halted the access sets still live in different epochs, and the
        // checker must not deadlock waiting on the halted thread.
        let sim = run_raced(
            ".data\nx: .dword 0\n.text\n\
             tid x1\nla x2, x\nbnez x1, late\nsd x1, 0(x2)\nhalt\n\
             late:\nbarrier\nsd x1, 0(x2)\nhalt\n",
            2,
        );
        let rc = sim.race_checker().unwrap();
        // Thread 0 wrote in its epoch 0; thread 1 wrote in its epoch 1.
        assert!(rc.is_clean(), "{:?}", rc.conflicts());
    }

    #[test]
    fn predictor_accepts_predicted_conflicts() {
        let p =
            assemble(".data\nx: .dword 0\n.text\ntid x1\nla x2, x\nsd x1, 0(x2)\nhalt\n").unwrap();
        let mut sim = FuncSim::new(&p, 2);
        sim.enable_race_checker(RaceConfig { predictor: Some(Box::new(|_| true)) });
        sim.run_to_completion(1000).unwrap();
        assert_eq!(sim.race_checker().unwrap().conflicts().len(), 1);
    }

    #[test]
    #[should_panic(expected = "was not predicted")]
    #[cfg(debug_assertions)]
    fn predictor_rejects_unpredicted_conflicts() {
        let p =
            assemble(".data\nx: .dword 0\n.text\ntid x1\nla x2, x\nsd x1, 0(x2)\nhalt\n").unwrap();
        let mut sim = FuncSim::new(&p, 2);
        sim.enable_race_checker(RaceConfig { predictor: Some(Box::new(|_| false)) });
        let _ = sim.run_to_completion(1000);
    }
}
