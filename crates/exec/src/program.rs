//! Pre-decoded program with per-instruction metadata for the timing models.

use std::sync::Arc;

use vlt_isa::{Inst, OpClass, Program, RegRef, TEXT_BASE};

/// One static instruction with everything the timing models need,
/// precomputed once so the per-dynamic-instruction cost stays low.
#[derive(Debug, Clone)]
pub struct StaticInst {
    /// The decoded instruction.
    pub inst: Inst,
    /// Resource class (cached from `inst.op.class()`).
    pub class: OpClass,
    /// Registers written.
    pub defs: Vec<RegRef>,
    /// Registers read.
    pub uses: Vec<RegRef>,
    /// Byte address of this instruction.
    pub pc: u64,
}

/// A program decoded once, shared by the functional and timing simulators.
#[derive(Debug)]
pub struct DecodedProgram {
    /// Static instructions in text order.
    pub insts: Vec<StaticInst>,
    /// The original assembled program (symbols, data image).
    pub program: Program,
}

impl DecodedProgram {
    /// Decode every instruction and precompute defs/uses.
    pub fn new(program: &Program) -> Arc<Self> {
        let insts = program
            .decoded()
            .into_iter()
            .enumerate()
            .map(|(i, inst)| {
                let (defs, uses) = inst.defs_uses();
                StaticInst {
                    class: inst.op.class(),
                    defs,
                    uses,
                    pc: TEXT_BASE + 4 * i as u64,
                    inst,
                }
            })
            .collect();
        Arc::new(DecodedProgram { insts, program: program.clone() })
    }

    /// Look up the static index for a byte PC, if it is inside the text.
    ///
    /// O(1) arithmetic against the dense text layout (`TEXT_BASE + 4*i`),
    /// self-contained so the per-step hot path of both engines never
    /// touches the original [`Program`].
    #[inline]
    pub fn index_of(&self, pc: u64) -> Option<usize> {
        let off = pc.wrapping_sub(TEXT_BASE);
        if !off.is_multiple_of(4) {
            return None;
        }
        let idx = (off / 4) as usize;
        // Out-of-text PCs below TEXT_BASE wrap to huge offsets and fail
        // the same bound.
        if idx < self.insts.len() {
            Some(idx)
        } else {
            None
        }
    }

    /// Static instruction by index.
    #[inline]
    pub fn get(&self, sidx: usize) -> &StaticInst {
        &self.insts[sidx]
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True when the text segment is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlt_isa::asm::assemble;
    use vlt_isa::Op;

    #[test]
    fn decodes_with_metadata() {
        let p = assemble("add x1, x2, x3\nvadd.vv v1, v2, v3\nhalt\n").unwrap();
        let d = DecodedProgram::new(&p);
        assert_eq!(d.len(), 3);
        assert_eq!(d.get(0).inst.op, Op::Add);
        assert_eq!(d.get(0).defs, vec![RegRef::I(1)]);
        assert!(d.get(1).class.is_vector());
        assert_eq!(d.get(1).pc, TEXT_BASE + 4);
        assert_eq!(d.index_of(TEXT_BASE + 8), Some(2));
        assert_eq!(d.index_of(TEXT_BASE + 12), None);
    }
}
