//! Dynamic instruction records — the interface between the functional
//! simulator and the timing models.

use crate::arena::AddrRange;

/// Dynamic outcome of one executed instruction.
///
/// Static properties (opcode, class, defs/uses) live in
/// [`crate::StaticInst`], reached through `sidx`; only values that vary per
/// execution are recorded here. Every variant is plain data — the whole
/// record is `Copy`, so the functional→timing hand-off never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DynKind {
    /// Non-memory scalar computation (ALU/FP/etc.).
    Plain,
    /// A control transfer: conditional branches, `j`/`jal`/`jr`/`jalr`.
    /// `taken` is false only for untaken conditional branches.
    Branch {
        /// Whether the transfer redirected the PC.
        taken: bool,
        /// The (resolved) target address.
        target: u64,
    },
    /// Scalar memory access.
    Mem {
        /// Effective byte address.
        addr: u64,
        /// Access size in bytes.
        size: u8,
    },
    /// Vector computation in the lanes (vl recorded in [`DynInst::vl`]).
    Vector,
    /// Vector memory access.
    VMem {
        /// Handle to the post-mask element byte addresses, in element
        /// order, stored in the producing thread's
        /// [`AddrArena`](crate::arena::AddrArena).
        addrs: AddrRange,
    },
    /// SPMD barrier rendezvous.
    Barrier,
    /// Lane repartition.
    VltCfg {
        /// The new number of VLT threads (1, 2, 4, or 8).
        threads: u8,
        /// Requested lane-cluster spread (`0` = unspecified: the machine
        /// picks its default). See [`vlt_isa::vltcfg`] for the packed
        /// register encoding.
        clusters: u8,
    },
    /// Thread finished.
    Halt,
}

/// One executed instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynInst {
    /// Index into [`crate::DecodedProgram::insts`].
    pub sidx: u32,
    /// Byte address.
    pub pc: u64,
    /// Vector length in effect (0 for scalar instructions).
    pub vl: u16,
    /// Dynamic outcome.
    pub kind: DynKind,
}

impl DynInst {
    /// The next sequential PC (what a non-taken path would fetch).
    #[inline]
    pub fn fallthrough(&self) -> u64 {
        self.pc + 4
    }

    /// The PC the front end must fetch after this instruction.
    #[inline]
    pub fn next_pc(&self) -> u64 {
        match &self.kind {
            DynKind::Branch { taken: true, target } => *target,
            _ => self.fallthrough(),
        }
    }

    /// Element count this instruction processes in the lanes (0 if scalar).
    pub fn elems(&self) -> usize {
        match &self.kind {
            DynKind::Vector => self.vl as usize,
            DynKind::VMem { addrs } => addrs.len(),
            _ => 0,
        }
    }
}

// The whole point of the arena refactor: the trace record must stay plain
// data. A `Vec` sneaking back into `DynKind` breaks this at compile time.
const _: fn() = || {
    fn assert_copy<T: Copy>() {}
    assert_copy::<DynInst>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_pc_follows_taken_branches() {
        let b = DynInst {
            sidx: 0,
            pc: 0x1000,
            vl: 0,
            kind: DynKind::Branch { taken: true, target: 0x2000 },
        };
        assert_eq!(b.next_pc(), 0x2000);
        let nb = DynInst {
            sidx: 0,
            pc: 0x1000,
            vl: 0,
            kind: DynKind::Branch { taken: false, target: 0x2000 },
        };
        assert_eq!(nb.next_pc(), 0x1004);
        let p = DynInst { sidx: 0, pc: 0x1000, vl: 0, kind: DynKind::Plain };
        assert_eq!(p.next_pc(), 0x1004);
    }

    #[test]
    fn element_counts() {
        let v = DynInst { sidx: 0, pc: 0, vl: 17, kind: DynKind::Vector };
        assert_eq!(v.elems(), 17);
        let m = DynInst {
            sidx: 0,
            pc: 0,
            vl: 8,
            kind: DynKind::VMem { addrs: AddrRange { start: 0, len: 5 } },
        };
        assert_eq!(m.elems(), 5); // masked-off elements generate no accesses
        let s = DynInst { sidx: 0, pc: 0, vl: 0, kind: DynKind::Plain };
        assert_eq!(s.elems(), 0);
    }
}
