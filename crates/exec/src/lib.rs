#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # vlt-exec — the functional simulator
//!
//! Executes VLT-ISA programs with full architectural fidelity and produces
//! the *dynamic instruction stream* that drives the timing models
//! (functional-first, timing-replay — see DESIGN.md §1).
//!
//! * [`Memory`] — a sparse, paged byte-addressable memory image.
//! * [`ArchState`] — one thread's architectural state (scalar, FP, and
//!   vector registers; `vl`; the mask register; the VLT-partitioned
//!   maximum vector length).
//! * [`DecodedProgram`] — pre-decoded text with per-instruction defs/uses.
//! * [`FuncSim`] — a multi-threaded SPMD driver with `barrier` rendezvous;
//!   the timing models pull one [`DynInst`] at a time per thread.
//!
//! ```
//! use vlt_exec::FuncSim;
//! use vlt_isa::asm::assemble;
//!
//! let prog = assemble(r#"
//!     li   x1, 6
//!     li   x2, 7
//!     mul  x3, x1, x2
//!     halt
//! "#).unwrap();
//! let mut sim = FuncSim::new(&prog, 1);
//! sim.run_to_completion(10_000).unwrap();
//! assert_eq!(sim.thread(0).x[3], 42);
//! ```

pub mod arena;
pub mod block;
pub mod checker;
pub mod error;
pub mod funcsim;
pub mod interp;
pub mod memory;
pub mod program;
pub mod race;
pub mod state;
pub mod trace;
pub mod uop;

pub use arena::{AddrArena, AddrRange};
pub use block::BlockCache;
pub use checker::{CheckConfig, Checker, DynFault, FaultRecord};
pub use error::ExecError;
pub use funcsim::{EngineMode, FuncSim, RunSummary, Step};
pub use memory::Memory;
pub use program::{DecodedProgram, StaticInst};
pub use race::{RaceChecker, RaceConfig, RaceRecord, RaceSite};
pub use state::ArchState;
pub use trace::{DynInst, DynKind};
