//! Threaded-code micro-ops: the pre-compiled form of one static
//! instruction, specialized at block-compile time so the hot execution
//! loop does no per-step decode work.
//!
//! A [`Uop`] carries everything the executor needs already extracted:
//! register slots as plain bytes, immediates sign-extended to their final
//! width, branch targets resolved to absolute byte addresses, and the
//! operation narrowed to a small function enum that the executor matches
//! *outside* its element loops (so the unmasked vector fast paths
//! monomorphize and the bounds checks hoist).
//!
//! Specialization policy, chosen so the µop executor is bit-exact against
//! [`crate::interp::step`]:
//!
//! * **Not compiled at all** ([`compile`] returns `None`): `barrier`,
//!   `halt`, and `vltcfg`. These are stateful at the [`crate::FuncSim`]
//!   level (rendezvous, liveness, repartition) and always execute through
//!   the interpreter, terminating the enclosing block.
//! * **Compiled to [`Uop::Interp`]**: masked vector operations (the
//!   `lane_enabled` family). The fast paths are monomorphized for the
//!   common unmasked case; a masked instruction falls back to the
//!   interpreter for that one step, without breaking the block.
//! * **Everything else** compiles to a specialized µop.
//!
//! The executor preserves every documented edge case of the interpreter:
//! div/rem-by-zero results, shift-amount low-6-bit masking,
//! `vextract`/`vinsert` index wrap modulo [`MAX_VL`], vector-compare
//! writes touching only bits `0..vl`, and element-order-exact vector
//! memory address recording into the [`AddrArena`].

use vlt_isa::{Op, MAX_VL};

use crate::arena::AddrArena;
use crate::error::ExecError;
use crate::interp;
use crate::memory::Memory;
use crate::program::{DecodedProgram, StaticInst};
use crate::state::ArchState;
use crate::trace::{DynInst, DynKind};

/// Scalar integer register-register function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum AluFn {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    Slt,
    Sltu,
}

/// Scalar integer register-immediate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum AluIFn {
    Add,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    Slt,
}

/// Scalar load width/extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum LdW {
    D,
    W,
    Wu,
    B,
    Bu,
}

/// Scalar store width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum StW {
    D,
    W,
    B,
}

/// Conditional-branch comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BrCond {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

/// Scalar FP three-register function (`rd, rs1, rs2`; `Fma` accumulates
/// into `rd`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Fp3Fn {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
    Fma,
}

/// Scalar FP unary function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Fp2Fn {
    Sqrt,
    Neg,
    Abs,
    Mov,
}

/// Scalar FP comparison (writes an integer register).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum FpCmpFn {
    Eq,
    Lt,
    Le,
}

/// Elementwise vector function over raw 64-bit element patterns (the `F*`
/// variants reinterpret them as `f64`, exactly as the interpreter does).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum VFn {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    Min,
    Max,
    FAdd,
    FSub,
    FMul,
    FDiv,
    FMin,
    FMax,
}

/// Vector-compare function (writes mask bits `0..vl`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum VCmpFn {
    Seq,
    Sne,
    Slt,
    Sge,
    Feq,
    Flt,
    Fle,
}

/// Vector reduction function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum VRedFn {
    Sum,
    Min,
    Max,
    FSum,
    FMin,
    FMax,
}

/// Vector memory addressing mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum VMode {
    Unit,
    Strided,
    Indexed,
}

/// One threaded-code micro-op. All operands are pre-extracted; immediates
/// are sign-extended and branch targets absolute. See the module docs for
/// the specialization policy.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub enum Uop {
    /// `nop` (and any future effect-free instruction).
    Nop,
    /// Integer register-register ALU op.
    Alu { f: AluFn, rd: u8, rs1: u8, rs2: u8 },
    /// Integer register-immediate ALU op.
    AluI { f: AluIFn, rd: u8, rs1: u8, imm: i64 },
    /// Load an immediate (`lui`, value precomputed).
    MovImm { rd: u8, imm: u64 },
    /// `tid rd`.
    Tid { rd: u8 },
    /// `nthr rd`.
    Nthr { rd: u8 },
    /// `setvl rd, rs1` (may fault on a zero request).
    SetVl { rd: u8, rs1: u8 },
    /// `getvl rd`.
    GetVl { rd: u8 },
    /// `region imm` marker.
    Region { region: u32 },
    /// Scalar integer load.
    Load { w: LdW, rd: u8, rs1: u8, imm: i64 },
    /// Scalar integer store (`rs` is the value register — the encoding's
    /// `rd` field).
    Store { w: StW, rs: u8, rs1: u8, imm: i64 },
    /// `fld`.
    FLoad { rd: u8, rs1: u8, imm: i64 },
    /// `fsd` (`rs` is the FP value register).
    FStore { rs: u8, rs1: u8, imm: i64 },
    /// Conditional branch; `target` is the absolute taken-path address.
    Br { c: BrCond, rs1: u8, rs2: u8, target: u64 },
    /// `j`/`jal` (`link` writes `x31 = pc + 4`).
    Jmp { target: u64, link: bool },
    /// `jr`/`jalr` (dynamic target from `rs1`; `link` writes `rd`).
    JmpR { rd: u8, rs1: u8, link: bool },
    /// Scalar FP three-register op.
    Fp3 { f: Fp3Fn, rd: u8, rs1: u8, rs2: u8 },
    /// Scalar FP unary op.
    Fp2 { f: Fp2Fn, rd: u8, rs1: u8 },
    /// Scalar FP compare into an integer register.
    FpCmp { f: FpCmpFn, rd: u8, rs1: u8, rs2: u8 },
    /// `fcvt.f.x`.
    FCvtFx { rd: u8, rs1: u8 },
    /// `fcvt.x.f`.
    FCvtXf { rd: u8, rs1: u8 },
    /// Unmasked elementwise vector-vector op.
    VVV { f: VFn, rd: u8, rs1: u8, rs2: u8 },
    /// Unmasked vector-scalar op, scalar from `x[rs2]`.
    VVS { f: VFn, rd: u8, rs1: u8, rs2: u8 },
    /// Unmasked vector-scalar op, scalar from `f[rs2]` bits.
    VVFs { f: VFn, rd: u8, rs1: u8, rs2: u8 },
    /// Unmasked `vfma.vv` (accumulates into `rd`).
    VFma { rd: u8, rs1: u8, rs2: u8 },
    /// Unmasked `vfma.vs`.
    VFmaS { rd: u8, rs1: u8, rs2: u8 },
    /// Unmasked `vfsqrt`.
    VSqrt { rd: u8, rs1: u8 },
    /// Unmasked `vcvt.f.x`.
    VCvtFx { rd: u8, rs1: u8 },
    /// Unmasked `vcvt.x.f`.
    VCvtXf { rd: u8, rs1: u8 },
    /// Vector compare into the mask register.
    VCmp { f: VCmpFn, rs1: u8, rs2: u8 },
    /// `vmnot`.
    MNot,
    /// `vmset`.
    MSet,
    /// `vpopc rd`.
    Popc { rd: u8 },
    /// `vmfirst rd`.
    MFirst { rd: u8 },
    /// `vmgetb rd`.
    MGetB { rd: u8 },
    /// `vmsetb rs1`.
    MSetB { rs1: u8 },
    /// Unmasked `vmv`.
    Vmv { rd: u8, rs1: u8 },
    /// `vmerge` (always reads the mask register).
    VMerge { rd: u8, rs1: u8, rs2: u8 },
    /// `vid`.
    Vid { rd: u8 },
    /// Unmasked `vsplat`.
    VSplat { rd: u8, rs1: u8 },
    /// Unmasked `vfsplat`.
    VFSplat { rd: u8, rs1: u8 },
    /// `vextract rd, rs1, rs2` (index wraps modulo [`MAX_VL`]).
    VExtract { rd: u8, rs1: u8, rs2: u8 },
    /// `vfextract`.
    VFExtract { rd: u8, rs1: u8, rs2: u8 },
    /// `vinsert rd, rs1, rs2`.
    VInsert { rd: u8, rs1: u8, rs2: u8 },
    /// `vfinsert`.
    VFInsert { rd: u8, rs1: u8, rs2: u8 },
    /// Vector reduction into a scalar register.
    VRed { f: VRedFn, rd: u8, rs1: u8 },
    /// Unmasked vector load.
    VLd { m: VMode, rd: u8, rs1: u8, rs2: u8 },
    /// Unmasked vector store (`rs` is the value register).
    VSt { m: VMode, rs: u8, rs1: u8, rs2: u8 },
    /// Fallback: execute this step through [`crate::interp::step`]
    /// (masked vector operations). The block continues afterwards.
    Interp,
}

/// True when the interpreter consults per-lane mask enables for this op
/// (the `lane_enabled` family). Masked instances of these fall back to
/// [`Uop::Interp`]; everything else either ignores the mask bit entirely
/// or reads the whole mask register by definition.
fn uses_lane_mask(op: Op) -> bool {
    matches!(
        op,
        Op::VaddVV
            | Op::VsubVV
            | Op::VmulVV
            | Op::VandVV
            | Op::VorVV
            | Op::VxorVV
            | Op::VsllVV
            | Op::VsrlVV
            | Op::VsraVV
            | Op::VminVV
            | Op::VmaxVV
            | Op::VaddVS
            | Op::VsubVS
            | Op::VmulVS
            | Op::VandVS
            | Op::VorVS
            | Op::VxorVS
            | Op::VsllVS
            | Op::VsrlVS
            | Op::VsraVS
            | Op::VfaddVV
            | Op::VfsubVV
            | Op::VfmulVV
            | Op::VfdivVV
            | Op::VfminVV
            | Op::VfmaxVV
            | Op::VfmaVV
            | Op::Vfsqrt
            | Op::VfaddVS
            | Op::VfsubVS
            | Op::VfmulVS
            | Op::VfdivVS
            | Op::VfmaVS
            | Op::Vmv
            | Op::Vsplat
            | Op::Vfsplat
            | Op::VcvtFx
            | Op::VcvtXf
            | Op::Vld
            | Op::Vlds
            | Op::Vldx
            | Op::Vst
            | Op::Vsts
            | Op::Vstx
    )
}

/// Compile one static instruction into a micro-op. Returns `None` for the
/// block-terminating stateful instructions (`barrier`, `halt`, `vltcfg`)
/// that must always execute through the interpreter.
pub fn compile(si: &StaticInst) -> Option<Uop> {
    let inst = si.inst;
    let (rd, rs1, rs2, imm) = (inst.rd, inst.rs1, inst.rs2, inst.imm as i64);
    if inst.masked && uses_lane_mask(inst.op) {
        return Some(Uop::Interp);
    }
    let alu = |f| Uop::Alu { f, rd, rs1, rs2 };
    let alui = |f| Uop::AluI { f, rd, rs1, imm };
    let load = |w| Uop::Load { w, rd, rs1, imm };
    let store = |w| Uop::Store { w, rs: rd, rs1, imm };
    let br = |c| Uop::Br { c, rs1, rs2, target: (si.pc as i64 + 4 * imm) as u64 };
    let fp3 = |f| Uop::Fp3 { f, rd, rs1, rs2 };
    let fp2 = |f| Uop::Fp2 { f, rd, rs1 };
    let fcmp = |f| Uop::FpCmp { f, rd, rs1, rs2 };
    let vvv = |f| Uop::VVV { f, rd, rs1, rs2 };
    let vvs = |f| Uop::VVS { f, rd, rs1, rs2 };
    let vvfs = |f| Uop::VVFs { f, rd, rs1, rs2 };
    let vcmp = |f| Uop::VCmp { f, rs1, rs2 };
    let vred = |f| Uop::VRed { f, rd, rs1 };
    Some(match inst.op {
        Op::Barrier | Op::Halt | Op::VltCfg => return None,

        Op::Nop => Uop::Nop,
        Op::Tid => Uop::Tid { rd },
        Op::Nthr => Uop::Nthr { rd },
        Op::SetVl => Uop::SetVl { rd, rs1 },
        Op::GetVl => Uop::GetVl { rd },
        Op::Region => Uop::Region { region: inst.imm as u32 },

        Op::Add => alu(AluFn::Add),
        Op::Sub => alu(AluFn::Sub),
        Op::Mul => alu(AluFn::Mul),
        Op::Div => alu(AluFn::Div),
        Op::Rem => alu(AluFn::Rem),
        Op::And => alu(AluFn::And),
        Op::Or => alu(AluFn::Or),
        Op::Xor => alu(AluFn::Xor),
        Op::Sll => alu(AluFn::Sll),
        Op::Srl => alu(AluFn::Srl),
        Op::Sra => alu(AluFn::Sra),
        Op::Slt => alu(AluFn::Slt),
        Op::Sltu => alu(AluFn::Sltu),

        Op::Addi => alui(AluIFn::Add),
        Op::Andi => alui(AluIFn::And),
        Op::Ori => alui(AluIFn::Or),
        Op::Xori => alui(AluIFn::Xor),
        Op::Slli => alui(AluIFn::Sll),
        Op::Srli => alui(AluIFn::Srl),
        Op::Srai => alui(AluIFn::Sra),
        Op::Slti => alui(AluIFn::Slt),
        Op::Lui => Uop::MovImm { rd, imm: (imm << 13) as u64 },

        Op::Ld => load(LdW::D),
        Op::Lw => load(LdW::W),
        Op::Lwu => load(LdW::Wu),
        Op::Lb => load(LdW::B),
        Op::Lbu => load(LdW::Bu),
        Op::Sd => store(StW::D),
        Op::Sw => store(StW::W),
        Op::Sb => store(StW::B),
        Op::Fld => Uop::FLoad { rd, rs1, imm },
        Op::Fsd => Uop::FStore { rs: rd, rs1, imm },

        Op::Beq => br(BrCond::Eq),
        Op::Bne => br(BrCond::Ne),
        Op::Blt => br(BrCond::Lt),
        Op::Bge => br(BrCond::Ge),
        Op::Bltu => br(BrCond::Ltu),
        Op::Bgeu => br(BrCond::Geu),
        Op::J | Op::Jal => {
            Uop::Jmp { target: (si.pc as i64 + 4 * imm) as u64, link: inst.op == Op::Jal }
        }
        Op::Jr | Op::Jalr => Uop::JmpR { rd, rs1, link: inst.op == Op::Jalr },

        Op::Fadd => fp3(Fp3Fn::Add),
        Op::Fsub => fp3(Fp3Fn::Sub),
        Op::Fmul => fp3(Fp3Fn::Mul),
        Op::Fdiv => fp3(Fp3Fn::Div),
        Op::Fmin => fp3(Fp3Fn::Min),
        Op::Fmax => fp3(Fp3Fn::Max),
        Op::Fma => fp3(Fp3Fn::Fma),
        Op::Fsqrt => fp2(Fp2Fn::Sqrt),
        Op::Fneg => fp2(Fp2Fn::Neg),
        Op::Fabs => fp2(Fp2Fn::Abs),
        Op::Fmov => fp2(Fp2Fn::Mov),
        Op::Feq => fcmp(FpCmpFn::Eq),
        Op::Flt => fcmp(FpCmpFn::Lt),
        Op::Fle => fcmp(FpCmpFn::Le),
        Op::FcvtFx => Uop::FCvtFx { rd, rs1 },
        Op::FcvtXf => Uop::FCvtXf { rd, rs1 },

        Op::VaddVV => vvv(VFn::Add),
        Op::VsubVV => vvv(VFn::Sub),
        Op::VmulVV => vvv(VFn::Mul),
        Op::VandVV => vvv(VFn::And),
        Op::VorVV => vvv(VFn::Or),
        Op::VxorVV => vvv(VFn::Xor),
        Op::VsllVV => vvv(VFn::Sll),
        Op::VsrlVV => vvv(VFn::Srl),
        Op::VsraVV => vvv(VFn::Sra),
        Op::VminVV => vvv(VFn::Min),
        Op::VmaxVV => vvv(VFn::Max),

        Op::VaddVS => vvs(VFn::Add),
        Op::VsubVS => vvs(VFn::Sub),
        Op::VmulVS => vvs(VFn::Mul),
        Op::VandVS => vvs(VFn::And),
        Op::VorVS => vvs(VFn::Or),
        Op::VxorVS => vvs(VFn::Xor),
        Op::VsllVS => vvs(VFn::Sll),
        Op::VsrlVS => vvs(VFn::Srl),
        Op::VsraVS => vvs(VFn::Sra),

        Op::VfaddVV => vvv(VFn::FAdd),
        Op::VfsubVV => vvv(VFn::FSub),
        Op::VfmulVV => vvv(VFn::FMul),
        Op::VfdivVV => vvv(VFn::FDiv),
        Op::VfminVV => vvv(VFn::FMin),
        Op::VfmaxVV => vvv(VFn::FMax),
        Op::VfmaVV => Uop::VFma { rd, rs1, rs2 },
        Op::Vfsqrt => Uop::VSqrt { rd, rs1 },

        Op::VfaddVS => vvfs(VFn::FAdd),
        Op::VfsubVS => vvfs(VFn::FSub),
        Op::VfmulVS => vvfs(VFn::FMul),
        Op::VfdivVS => vvfs(VFn::FDiv),
        Op::VfmaVS => Uop::VFmaS { rd, rs1, rs2 },

        Op::Vseq => vcmp(VCmpFn::Seq),
        Op::Vsne => vcmp(VCmpFn::Sne),
        Op::Vslt => vcmp(VCmpFn::Slt),
        Op::Vsge => vcmp(VCmpFn::Sge),
        Op::Vfeq => vcmp(VCmpFn::Feq),
        Op::Vflt => vcmp(VCmpFn::Flt),
        Op::Vfle => vcmp(VCmpFn::Fle),

        Op::Vmnot => Uop::MNot,
        Op::Vmset => Uop::MSet,
        Op::Vpopc => Uop::Popc { rd },
        Op::Vmfirst => Uop::MFirst { rd },
        Op::Vmgetb => Uop::MGetB { rd },
        Op::Vmsetb => Uop::MSetB { rs1 },

        Op::Vmv => Uop::Vmv { rd, rs1 },
        Op::Vmerge => Uop::VMerge { rd, rs1, rs2 },
        Op::Vid => Uop::Vid { rd },
        Op::Vsplat => Uop::VSplat { rd, rs1 },
        Op::Vfsplat => Uop::VFSplat { rd, rs1 },
        Op::Vextract => Uop::VExtract { rd, rs1, rs2 },
        Op::Vfextract => Uop::VFExtract { rd, rs1, rs2 },
        Op::Vinsert => Uop::VInsert { rd, rs1, rs2 },
        Op::Vfinsert => Uop::VFInsert { rd, rs1, rs2 },
        Op::VcvtFx => Uop::VCvtFx { rd, rs1 },
        Op::VcvtXf => Uop::VCvtXf { rd, rs1 },

        Op::Vredsum => vred(VRedFn::Sum),
        Op::Vredmin => vred(VRedFn::Min),
        Op::Vredmax => vred(VRedFn::Max),
        Op::Vfredsum => vred(VRedFn::FSum),
        Op::Vfredmin => vred(VRedFn::FMin),
        Op::Vfredmax => vred(VRedFn::FMax),

        Op::Vld => Uop::VLd { m: VMode::Unit, rd, rs1, rs2 },
        Op::Vlds => Uop::VLd { m: VMode::Strided, rd, rs1, rs2 },
        Op::Vldx => Uop::VLd { m: VMode::Indexed, rd, rs1, rs2 },
        Op::Vst => Uop::VSt { m: VMode::Unit, rs: rd, rs1, rs2 },
        Op::Vsts => Uop::VSt { m: VMode::Strided, rs: rd, rs1, rs2 },
        Op::Vstx => Uop::VSt { m: VMode::Indexed, rs: rd, rs1, rs2 },
    })
}

/// Execute one micro-op at (`sidx`, `pc`), bit-exactly mirroring
/// [`crate::interp::step`] for the same instruction. On success `st.pc`
/// advances (fall-through or branch target); on error `st.pc` still holds
/// `pc`, exactly as the interpreter leaves it.
///
/// The caller (the block executor) guarantees `st.pc == pc` on entry —
/// required by the [`Uop::Interp`] fallback, which re-dispatches through
/// the interpreter.
#[inline]
pub fn exec(
    u: Uop,
    sidx: u32,
    pc: u64,
    st: &mut ArchState,
    mem: &mut Memory,
    prog: &DecodedProgram,
    arena: &mut AddrArena,
) -> Result<DynInst, ExecError> {
    debug_assert_eq!(st.pc, pc, "block executor out of sync with thread pc");
    let mut kind = DynKind::Plain;
    let mut vl_field: u16 = 0;
    let mut next = pc + 4;

    // Clamped vector length: `st.vl <= MAX_VL` is an ArchState invariant,
    // restated here so LLVM drops the bounds checks in the element loops.
    macro_rules! vl {
        () => {{
            vl_field = st.vl as u16;
            kind = DynKind::Vector;
            st.vl.min(MAX_VL)
        }};
    }

    match u {
        Uop::Nop => {}
        Uop::Tid { rd } => st.set_x(rd, st.tid as u64),
        Uop::Nthr { rd } => st.set_x(rd, st.nthr as u64),
        Uop::SetVl { rd, rs1 } => {
            let req = st.get_x(rs1);
            if req == 0 {
                return Err(ExecError::ZeroVl { tid: st.tid, pc });
            }
            st.vl = (req as usize).min(st.mvl);
            st.set_x(rd, st.vl as u64);
        }
        Uop::GetVl { rd } => st.set_x(rd, st.vl as u64),
        Uop::Region { region } => st.region = region,

        Uop::Alu { f, rd, rs1, rs2 } => {
            let (a, b) = (st.get_x(rs1), st.get_x(rs2));
            let v = match f {
                AluFn::Add => a.wrapping_add(b),
                AluFn::Sub => a.wrapping_sub(b),
                AluFn::Mul => a.wrapping_mul(b),
                AluFn::Div => {
                    if b == 0 {
                        u64::MAX
                    } else {
                        (a as i64).wrapping_div(b as i64) as u64
                    }
                }
                AluFn::Rem => {
                    if b == 0 {
                        a
                    } else {
                        (a as i64).wrapping_rem(b as i64) as u64
                    }
                }
                AluFn::And => a & b,
                AluFn::Or => a | b,
                AluFn::Xor => a ^ b,
                AluFn::Sll => a << (b & 63),
                AluFn::Srl => a >> (b & 63),
                AluFn::Sra => ((a as i64) >> (b & 63)) as u64,
                AluFn::Slt => ((a as i64) < (b as i64)) as u64,
                AluFn::Sltu => (a < b) as u64,
            };
            st.set_x(rd, v);
        }
        Uop::AluI { f, rd, rs1, imm } => {
            let a = st.get_x(rs1);
            let v = match f {
                AluIFn::Add => a.wrapping_add(imm as u64),
                AluIFn::And => a & imm as u64,
                AluIFn::Or => a | imm as u64,
                AluIFn::Xor => a ^ imm as u64,
                AluIFn::Sll => a << (imm as u64 & 63),
                AluIFn::Srl => a >> (imm as u64 & 63),
                AluIFn::Sra => ((a as i64) >> (imm as u64 & 63)) as u64,
                AluIFn::Slt => ((a as i64) < imm) as u64,
            };
            st.set_x(rd, v);
        }
        Uop::MovImm { rd, imm } => st.set_x(rd, imm),

        Uop::Load { w, rd, rs1, imm } => {
            let addr = st.get_x(rs1).wrapping_add(imm as u64);
            let (v, size) = match w {
                LdW::D => (mem.read_u64(addr), 8),
                LdW::W => (mem.read_u32(addr) as i32 as i64 as u64, 4),
                LdW::Wu => (mem.read_u32(addr) as u64, 4),
                LdW::B => (mem.read_u8(addr) as i8 as i64 as u64, 1),
                LdW::Bu => (mem.read_u8(addr) as u64, 1),
            };
            st.set_x(rd, v);
            kind = DynKind::Mem { addr, size };
        }
        Uop::Store { w, rs, rs1, imm } => {
            let addr = st.get_x(rs1).wrapping_add(imm as u64);
            let v = st.get_x(rs);
            let size = match w {
                StW::D => {
                    mem.write_u64(addr, v);
                    8
                }
                StW::W => {
                    mem.write_u32(addr, v as u32);
                    4
                }
                StW::B => {
                    mem.write_u8(addr, v as u8);
                    1
                }
            };
            kind = DynKind::Mem { addr, size };
        }
        Uop::FLoad { rd, rs1, imm } => {
            let addr = st.get_x(rs1).wrapping_add(imm as u64);
            st.f[rd as usize] = mem.read_f64(addr);
            kind = DynKind::Mem { addr, size: 8 };
        }
        Uop::FStore { rs, rs1, imm } => {
            let addr = st.get_x(rs1).wrapping_add(imm as u64);
            mem.write_f64(addr, st.f[rs as usize]);
            kind = DynKind::Mem { addr, size: 8 };
        }

        Uop::Br { c, rs1, rs2, target } => {
            let (a, b) = (st.get_x(rs1), st.get_x(rs2));
            let taken = match c {
                BrCond::Eq => a == b,
                BrCond::Ne => a != b,
                BrCond::Lt => (a as i64) < (b as i64),
                BrCond::Ge => (a as i64) >= (b as i64),
                BrCond::Ltu => a < b,
                BrCond::Geu => a >= b,
            };
            if taken {
                next = target;
            }
            kind = DynKind::Branch { taken, target };
        }
        Uop::Jmp { target, link } => {
            if link {
                st.set_x(31, pc + 4);
            }
            next = target;
            kind = DynKind::Branch { taken: true, target };
        }
        Uop::JmpR { rd, rs1, link } => {
            // Target reads before the link write (`jalr rd, rd` works).
            let target = st.get_x(rs1);
            if link {
                st.set_x(rd, pc + 4);
            }
            next = target;
            kind = DynKind::Branch { taken: true, target };
        }

        Uop::Fp3 { f, rd, rs1, rs2 } => {
            let (a, b) = (st.f[rs1 as usize], st.f[rs2 as usize]);
            st.f[rd as usize] = match f {
                Fp3Fn::Add => a + b,
                Fp3Fn::Sub => a - b,
                Fp3Fn::Mul => a * b,
                Fp3Fn::Div => a / b,
                Fp3Fn::Min => a.min(b),
                Fp3Fn::Max => a.max(b),
                Fp3Fn::Fma => a.mul_add(b, st.f[rd as usize]),
            };
        }
        Uop::Fp2 { f, rd, rs1 } => {
            let a = st.f[rs1 as usize];
            st.f[rd as usize] = match f {
                Fp2Fn::Sqrt => a.sqrt(),
                Fp2Fn::Neg => -a,
                Fp2Fn::Abs => a.abs(),
                Fp2Fn::Mov => a,
            };
        }
        Uop::FpCmp { f, rd, rs1, rs2 } => {
            let (a, b) = (st.f[rs1 as usize], st.f[rs2 as usize]);
            let v = match f {
                FpCmpFn::Eq => a == b,
                FpCmpFn::Lt => a < b,
                FpCmpFn::Le => a <= b,
            };
            st.set_x(rd, v as u64);
        }
        Uop::FCvtFx { rd, rs1 } => st.f[rd as usize] = st.get_x(rs1) as i64 as f64,
        Uop::FCvtXf { rd, rs1 } => st.set_x(rd, st.f[rs1 as usize] as i64 as u64),

        Uop::VVV { f, rd, rs1, rs2 } => {
            let vl = vl!();
            let (rd, rs1, rs2) = (rd as usize, rs1 as usize, rs2 as usize);
            // Match outside the loop so each function monomorphizes into a
            // straight unmasked element loop.
            macro_rules! lp {
                ($g:expr) => {
                    for e in 0..vl {
                        let (a, b) = (st.v[rs1][e], st.v[rs2][e]);
                        st.v[rd][e] = $g(a, b);
                    }
                };
            }
            match f {
                VFn::Add => lp!(|a: u64, b: u64| a.wrapping_add(b)),
                VFn::Sub => lp!(|a: u64, b: u64| a.wrapping_sub(b)),
                VFn::Mul => lp!(|a: u64, b: u64| a.wrapping_mul(b)),
                VFn::And => lp!(|a, b| a & b),
                VFn::Or => lp!(|a, b| a | b),
                VFn::Xor => lp!(|a, b| a ^ b),
                VFn::Sll => lp!(|a: u64, b: u64| a << (b & 63)),
                VFn::Srl => lp!(|a: u64, b: u64| a >> (b & 63)),
                VFn::Sra => lp!(|a: u64, b: u64| ((a as i64) >> (b & 63)) as u64),
                VFn::Min => lp!(|a: u64, b: u64| (a as i64).min(b as i64) as u64),
                VFn::Max => lp!(|a: u64, b: u64| (a as i64).max(b as i64) as u64),
                VFn::FAdd => lp!(fbin(|a, b| a + b)),
                VFn::FSub => lp!(fbin(|a, b| a - b)),
                VFn::FMul => lp!(fbin(|a, b| a * b)),
                VFn::FDiv => lp!(fbin(|a, b| a / b)),
                VFn::FMin => lp!(fbin(f64::min)),
                VFn::FMax => lp!(fbin(f64::max)),
            }
        }
        Uop::VVS { f, rd, rs1, rs2 } => {
            let vl = vl!();
            let s = st.get_x(rs2);
            vs_loop(st, f, rd, rs1, s, vl);
        }
        Uop::VVFs { f, rd, rs1, rs2 } => {
            let vl = vl!();
            let s = st.f[rs2 as usize].to_bits();
            vs_loop(st, f, rd, rs1, s, vl);
        }
        Uop::VFma { rd, rs1, rs2 } => {
            let vl = vl!();
            let (rd, rs1, rs2) = (rd as usize, rs1 as usize, rs2 as usize);
            for e in 0..vl {
                let acc = f64::from_bits(st.v[rd][e]);
                let a = f64::from_bits(st.v[rs1][e]);
                let b = f64::from_bits(st.v[rs2][e]);
                st.v[rd][e] = a.mul_add(b, acc).to_bits();
            }
        }
        Uop::VFmaS { rd, rs1, rs2 } => {
            let vl = vl!();
            let s = st.f[rs2 as usize];
            let (rd, rs1) = (rd as usize, rs1 as usize);
            for e in 0..vl {
                let acc = f64::from_bits(st.v[rd][e]);
                let a = f64::from_bits(st.v[rs1][e]);
                st.v[rd][e] = a.mul_add(s, acc).to_bits();
            }
        }
        Uop::VSqrt { rd, rs1 } => {
            let vl = vl!();
            let (rd, rs1) = (rd as usize, rs1 as usize);
            for e in 0..vl {
                st.v[rd][e] = f64::from_bits(st.v[rs1][e]).sqrt().to_bits();
            }
        }
        Uop::VCvtFx { rd, rs1 } => {
            let vl = vl!();
            let (rd, rs1) = (rd as usize, rs1 as usize);
            for e in 0..vl {
                st.v[rd][e] = ((st.v[rs1][e] as i64) as f64).to_bits();
            }
        }
        Uop::VCvtXf { rd, rs1 } => {
            let vl = vl!();
            let (rd, rs1) = (rd as usize, rs1 as usize);
            for e in 0..vl {
                st.v[rd][e] = (f64::from_bits(st.v[rs1][e]) as i64) as u64;
            }
        }

        Uop::VCmp { f, rs1, rs2 } => {
            let vl = vl!();
            let (rs1, rs2) = (rs1 as usize, rs2 as usize);
            macro_rules! lp {
                ($g:expr) => {
                    for e in 0..vl {
                        let (a, b) = (st.v[rs1][e], st.v[rs2][e]);
                        if $g(a, b) {
                            st.vm |= 1 << e;
                        } else {
                            st.vm &= !(1 << e);
                        }
                    }
                };
            }
            match f {
                VCmpFn::Seq => lp!(|a, b| a == b),
                VCmpFn::Sne => lp!(|a, b| a != b),
                VCmpFn::Slt => lp!(|a: u64, b: u64| (a as i64) < (b as i64)),
                VCmpFn::Sge => lp!(|a: u64, b: u64| (a as i64) >= (b as i64)),
                VCmpFn::Feq => lp!(|a, b| f64::from_bits(a) == f64::from_bits(b)),
                VCmpFn::Flt => lp!(|a, b| f64::from_bits(a) < f64::from_bits(b)),
                VCmpFn::Fle => lp!(|a, b| f64::from_bits(a) <= f64::from_bits(b)),
            }
        }

        Uop::MNot => {
            st.vm = !st.vm;
            vl_field = st.vl as u16;
            kind = DynKind::Vector;
        }
        Uop::MSet => {
            st.vm = u64::MAX;
            vl_field = st.vl as u16;
            kind = DynKind::Vector;
        }
        Uop::Popc { rd } => {
            st.set_x(rd, (st.vm & interp::vl_mask(st.vl)).count_ones() as u64);
            vl_field = st.vl as u16;
            kind = DynKind::Vector;
        }
        Uop::MFirst { rd } => {
            let v = st.vm & interp::vl_mask(st.vl);
            st.set_x(rd, if v == 0 { u64::MAX } else { v.trailing_zeros() as u64 });
            vl_field = st.vl as u16;
            kind = DynKind::Vector;
        }
        Uop::MGetB { rd } => {
            st.set_x(rd, st.vm & interp::vl_mask(st.vl));
            vl_field = st.vl as u16;
            kind = DynKind::Vector;
        }
        Uop::MSetB { rs1 } => {
            st.vm = st.get_x(rs1);
            vl_field = st.vl as u16;
            kind = DynKind::Vector;
        }

        Uop::Vmv { rd, rs1 } => {
            let vl = vl!();
            let (rd, rs1) = (rd as usize, rs1 as usize);
            for e in 0..vl {
                st.v[rd][e] = st.v[rs1][e];
            }
        }
        Uop::VMerge { rd, rs1, rs2 } => {
            let vl = vl!();
            let (rd, rs1, rs2) = (rd as usize, rs1 as usize, rs2 as usize);
            for e in 0..vl {
                st.v[rd][e] = if (st.vm >> e) & 1 == 1 { st.v[rs1][e] } else { st.v[rs2][e] };
            }
        }
        Uop::Vid { rd } => {
            let vl = vl!();
            let rd = rd as usize;
            for e in 0..vl {
                st.v[rd][e] = e as u64;
            }
        }
        Uop::VSplat { rd, rs1 } => {
            let vl = vl!();
            let s = st.get_x(rs1);
            let rd = rd as usize;
            for e in 0..vl {
                st.v[rd][e] = s;
            }
        }
        Uop::VFSplat { rd, rs1 } => {
            let vl = vl!();
            let s = st.f[rs1 as usize].to_bits();
            let rd = rd as usize;
            for e in 0..vl {
                st.v[rd][e] = s;
            }
        }
        Uop::VExtract { rd, rs1, rs2 } => {
            let idx = st.get_x(rs2) as usize % MAX_VL;
            st.set_x(rd, st.v[rs1 as usize][idx]);
            vl_field = 1;
            kind = DynKind::Vector;
        }
        Uop::VFExtract { rd, rs1, rs2 } => {
            let idx = st.get_x(rs2) as usize % MAX_VL;
            st.f[rd as usize] = f64::from_bits(st.v[rs1 as usize][idx]);
            vl_field = 1;
            kind = DynKind::Vector;
        }
        Uop::VInsert { rd, rs1, rs2 } => {
            let idx = st.get_x(rs1) as usize % MAX_VL;
            st.v[rd as usize][idx] = st.get_x(rs2);
            vl_field = 1;
            kind = DynKind::Vector;
        }
        Uop::VFInsert { rd, rs1, rs2 } => {
            let idx = st.get_x(rs1) as usize % MAX_VL;
            st.v[rd as usize][idx] = st.f[rs2 as usize].to_bits();
            vl_field = 1;
            kind = DynKind::Vector;
        }

        Uop::VRed { f, rd, rs1 } => {
            let vl = vl!();
            let rs1 = rs1 as usize;
            match f {
                VRedFn::Sum => {
                    let mut acc = 0u64;
                    for e in 0..vl {
                        acc = acc.wrapping_add(st.v[rs1][e]);
                    }
                    st.set_x(rd, acc);
                }
                VRedFn::Min | VRedFn::Max => {
                    let mut acc = st.v[rs1][0] as i64;
                    for e in 1..vl {
                        let v = st.v[rs1][e] as i64;
                        acc = if f == VRedFn::Min { acc.min(v) } else { acc.max(v) };
                    }
                    st.set_x(rd, acc as u64);
                }
                VRedFn::FSum => {
                    let mut acc = 0f64;
                    for e in 0..vl {
                        acc += f64::from_bits(st.v[rs1][e]);
                    }
                    st.f[rd as usize] = acc;
                }
                VRedFn::FMin | VRedFn::FMax => {
                    let mut acc = f64::from_bits(st.v[rs1][0]);
                    for e in 1..vl {
                        let v = f64::from_bits(st.v[rs1][e]);
                        acc = if f == VRedFn::FMin { acc.min(v) } else { acc.max(v) };
                    }
                    st.f[rd as usize] = acc;
                }
            }
        }

        Uop::VLd { m, rd, rs1, rs2 } => {
            let vl = st.vl.min(MAX_VL);
            vl_field = st.vl as u16;
            let base = st.get_x(rs1);
            let mut addrs = arena.begin(st.tid, vl);
            let rd = rd as usize;
            match m {
                VMode::Unit => {
                    for e in 0..vl {
                        let addr = base + 8 * e as u64;
                        st.v[rd][e] = mem.read_u64(addr);
                        addrs.push(addr);
                    }
                }
                VMode::Strided => {
                    let stride = st.get_x(rs2);
                    for e in 0..vl {
                        let addr = base.wrapping_add(stride.wrapping_mul(e as u64));
                        st.v[rd][e] = mem.read_u64(addr);
                        addrs.push(addr);
                    }
                }
                VMode::Indexed => {
                    let rs2 = rs2 as usize;
                    for e in 0..vl {
                        // Index read precedes the element write (`vldx
                        // vA, x, vA` self-gather works, as in the
                        // interpreter's per-element order).
                        let addr = base.wrapping_add(st.v[rs2][e]);
                        st.v[rd][e] = mem.read_u64(addr);
                        addrs.push(addr);
                    }
                }
            }
            kind = DynKind::VMem { addrs: addrs.finish() };
        }
        Uop::VSt { m, rs, rs1, rs2 } => {
            let vl = st.vl.min(MAX_VL);
            vl_field = st.vl as u16;
            let base = st.get_x(rs1);
            let mut addrs = arena.begin(st.tid, vl);
            let rs = rs as usize;
            match m {
                VMode::Unit => {
                    for e in 0..vl {
                        let addr = base + 8 * e as u64;
                        mem.write_u64(addr, st.v[rs][e]);
                        addrs.push(addr);
                    }
                }
                VMode::Strided => {
                    let stride = st.get_x(rs2);
                    for e in 0..vl {
                        let addr = base.wrapping_add(stride.wrapping_mul(e as u64));
                        mem.write_u64(addr, st.v[rs][e]);
                        addrs.push(addr);
                    }
                }
                VMode::Indexed => {
                    let rs2 = rs2 as usize;
                    for e in 0..vl {
                        let addr = base.wrapping_add(st.v[rs2][e]);
                        mem.write_u64(addr, st.v[rs][e]);
                        addrs.push(addr);
                    }
                }
            }
            kind = DynKind::VMem { addrs: addrs.finish() };
        }

        Uop::Interp => return interp::step(st, mem, prog, arena),
    }

    st.pc = next;
    Ok(DynInst { sidx, pc, vl: vl_field, kind })
}

/// Shared monomorphized vector-scalar element loop (scalar pre-read by the
/// caller from `x` or `f`).
#[inline]
fn vs_loop(st: &mut ArchState, f: VFn, rd: u8, rs1: u8, s: u64, vl: usize) {
    let (rd, rs1) = (rd as usize, rs1 as usize);
    macro_rules! lp {
        ($g:expr) => {
            for e in 0..vl {
                let a = st.v[rs1][e];
                st.v[rd][e] = $g(a, s);
            }
        };
    }
    match f {
        VFn::Add => lp!(|a: u64, s: u64| a.wrapping_add(s)),
        VFn::Sub => lp!(|a: u64, s: u64| a.wrapping_sub(s)),
        VFn::Mul => lp!(|a: u64, s: u64| a.wrapping_mul(s)),
        VFn::And => lp!(|a, s| a & s),
        VFn::Or => lp!(|a, s| a | s),
        VFn::Xor => lp!(|a, s| a ^ s),
        VFn::Sll => lp!(|a: u64, s: u64| a << (s & 63)),
        VFn::Srl => lp!(|a: u64, s: u64| a >> (s & 63)),
        VFn::Sra => lp!(|a: u64, s: u64| ((a as i64) >> (s & 63)) as u64),
        VFn::Min => lp!(|a: u64, s: u64| (a as i64).min(s as i64) as u64),
        VFn::Max => lp!(|a: u64, s: u64| (a as i64).max(s as i64) as u64),
        VFn::FAdd => lp!(fbin(|a, s| a + s)),
        VFn::FSub => lp!(fbin(|a, s| a - s)),
        VFn::FMul => lp!(fbin(|a, s| a * s)),
        VFn::FDiv => lp!(fbin(|a, s| a / s)),
        VFn::FMin => lp!(fbin(f64::min)),
        VFn::FMax => lp!(fbin(f64::max)),
    }
}

/// f64 view of a raw-element binary function (same helper the interpreter
/// uses, kept local so the closures inline).
#[inline]
fn fbin(f: impl Fn(f64, f64) -> f64) -> impl Fn(u64, u64) -> u64 {
    move |a, b| f(f64::from_bits(a), f64::from_bits(b)).to_bits()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlt_isa::asm::assemble;

    fn decoded(src: &str) -> std::sync::Arc<DecodedProgram> {
        DecodedProgram::new(&assemble(src).unwrap())
    }

    #[test]
    fn stateful_ops_do_not_compile() {
        let p = decoded("barrier\nhalt\nli x1, 1\nvltcfg x1\n");
        assert!(compile(p.get(0)).is_none());
        assert!(compile(p.get(1)).is_none());
        assert!(compile(p.get(3)).is_none());
    }

    #[test]
    fn masked_lane_ops_fall_back_to_interp() {
        let p = decoded("vadd.vv v1, v2, v3, vm\nvadd.vv v1, v2, v3\n");
        assert!(matches!(compile(p.get(0)), Some(Uop::Interp)));
        assert!(matches!(compile(p.get(1)), Some(Uop::VVV { f: VFn::Add, .. })));
    }

    #[test]
    fn branch_targets_are_absolute() {
        let p = decoded("beq x1, x2, next\nnop\nnext:\nhalt\n");
        match compile(p.get(0)) {
            Some(Uop::Br { target, .. }) => assert_eq!(target, p.get(2).pc),
            other => panic!("expected Br, got {other:?}"),
        }
    }

    /// Every opcode either refuses to compile (the three stateful ones) or
    /// produces a µop — no silent holes when the ISA grows.
    #[test]
    fn compile_is_total() {
        for &op in Op::ALL {
            let si = StaticInst {
                inst: vlt_isa::Inst { op, rd: 1, rs1: 2, rs2: 3, imm: 1, masked: false },
                class: op.class(),
                defs: vec![],
                uses: vec![],
                pc: 0x1000,
            };
            let compiled = compile(&si);
            assert_eq!(
                compiled.is_none(),
                matches!(op, Op::Barrier | Op::Halt | Op::VltCfg),
                "{op:?}"
            );
        }
    }
}
