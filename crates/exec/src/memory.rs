//! Sparse paged memory image shared by all simulated threads.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use vlt_isa::{Program, DATA_BASE, TEXT_BASE};

const PAGE_BITS: u32 = 12;
/// Page size in bytes.
pub const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// Fibonacci-multiplicative hasher for page numbers.
///
/// Every simulated load and store looks its page up in the map, so the
/// default DoS-resistant SipHash shows up directly in functional-replay
/// throughput. Page numbers are small, trusted integers; one odd-constant
/// multiply mixes them fine (the multiply is a bijection, so distinct pages
/// keep distinct low bits for the bucket index, and the golden-ratio
/// constant spreads the high bits the control bytes use). Nothing iterates
/// the map, so the order change is unobservable.
#[derive(Default)]
struct PageHasher(u64);

impl Hasher for PageHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type PageMap = HashMap<u64, Box<[u8; PAGE_SIZE]>, BuildHasherDefault<PageHasher>>;

/// A sparse, byte-addressable 64-bit memory image.
///
/// Reads of unmapped pages return zero; writes allocate. This mirrors a flat
/// physical memory and keeps workload setup code small.
///
/// ```
/// use vlt_exec::Memory;
/// let mut m = Memory::new();
/// m.write_u64(0x4000_0000, 42);
/// assert_eq!(m.read_u64(0x4000_0000), 42);
/// assert_eq!(m.read_u64(0x9999_9999), 0); // unmapped reads as zero
/// ```
/// `PartialEq` compares the mapped page sets byte-for-byte (a zero-filled
/// mapped page is *not* equal to an unmapped one) — strict enough for the
/// observer-equivalence tests that assert two runs left identical images.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Memory {
    pages: PageMap,
}

impl Memory {
    /// An empty memory.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Load a program image: text at [`TEXT_BASE`], data at [`DATA_BASE`].
    pub fn load(prog: &Program) -> Self {
        let mut m = Memory::new();
        for (i, w) in prog.text.iter().enumerate() {
            m.write_u32(TEXT_BASE + 4 * i as u64, *w);
        }
        m.write_bytes(DATA_BASE, &prog.data);
        m
    }

    fn page(&self, addr: u64) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr >> PAGE_BITS)).map(|b| &**b)
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages.entry(addr >> PAGE_BITS).or_insert_with(|| Box::new([0; PAGE_SIZE]))
    }

    /// Read one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.page(addr).map_or(0, |p| p[(addr as usize) & (PAGE_SIZE - 1)])
    }

    /// Write one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        self.page_mut(addr)[off] = v;
    }

    /// Read `N` little-endian bytes starting at `addr` (may span pages).
    fn read_n<const N: usize>(&self, addr: u64) -> [u8; N] {
        let mut out = [0u8; N];
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + N <= PAGE_SIZE {
            if let Some(p) = self.page(addr) {
                out.copy_from_slice(&p[off..off + N]);
            }
        } else {
            for (i, b) in out.iter_mut().enumerate() {
                *b = self.read_u8(addr + i as u64);
            }
        }
        out
    }

    fn write_n<const N: usize>(&mut self, addr: u64, bytes: [u8; N]) {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + N <= PAGE_SIZE {
            self.page_mut(addr)[off..off + N].copy_from_slice(&bytes);
        } else {
            for (i, b) in bytes.iter().enumerate() {
                self.write_u8(addr + i as u64, *b);
            }
        }
    }

    /// Read a little-endian `u32`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read_n(addr))
    }

    /// Write a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, v: u32) {
        self.write_n(addr, v.to_le_bytes());
    }

    /// Read a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_n(addr))
    }

    /// Write a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write_n(addr, v.to_le_bytes());
    }

    /// Read an `f64` (bit pattern stored little-endian).
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Write an `f64`.
    pub fn write_f64(&mut self, addr: u64, v: f64) {
        self.write_u64(addr, v.to_bits());
    }

    /// Bulk write.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Bulk read.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(addr + i as u64)).collect()
    }

    /// Number of resident pages (for footprint assertions in tests).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// FNV-1a checksum over a byte range — used by workloads to verify
    /// results independently of how they were computed.
    pub fn checksum(&self, addr: u64, len: usize) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for i in 0..len {
            h ^= self.read_u8(addr + i as u64) as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_fill_reads() {
        let m = Memory::new();
        assert_eq!(m.read_u64(0x1234), 0);
        assert_eq!(m.read_u8(u64::MAX - 8), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn rw_roundtrip() {
        let mut m = Memory::new();
        m.write_u64(0x1000, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(m.read_u64(0x1000), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(m.read_u32(0x1000), 0xCAFE_F00D);
        assert_eq!(m.read_u8(0x1007), 0xDE);
        m.write_f64(0x2000, -1.5);
        assert_eq!(m.read_f64(0x2000), -1.5);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = (PAGE_SIZE - 3) as u64;
        m.write_u64(addr, 0x0102_0304_0506_0708);
        assert_eq!(m.read_u64(addr), 0x0102_0304_0506_0708);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn load_program_places_segments() {
        use vlt_isa::asm::assemble;
        let p = assemble(".data\nx:\n.dword 77\n.text\nnop\nhalt\n").unwrap();
        let m = Memory::load(&p);
        assert_eq!(m.read_u32(TEXT_BASE), p.text[0]);
        assert_eq!(m.read_u64(DATA_BASE), 77);
    }

    #[test]
    fn checksum_sensitivity() {
        let mut m = Memory::new();
        m.write_u64(0x100, 1);
        let a = m.checksum(0x100, 16);
        m.write_u8(0x10F, 1);
        let b = m.checksum(0x100, 16);
        assert_ne!(a, b);
    }

    proptest! {
        #[test]
        fn u64_roundtrip_any_addr(addr in 0u64..1_000_000, v in any::<u64>()) {
            let mut m = Memory::new();
            m.write_u64(addr, v);
            prop_assert_eq!(m.read_u64(addr), v);
        }

        #[test]
        fn bytes_roundtrip(addr in 0u64..100_000, data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let mut m = Memory::new();
            m.write_bytes(addr, &data);
            prop_assert_eq!(m.read_bytes(addr, data.len()), data);
        }
    }
}
