//! Interpreter semantics tests. Each runs a tiny program to completion and
//! checks architectural state, exercising one behaviour per test.

use proptest::prelude::*;
use vlt_isa::asm::assemble;
use vlt_isa::MAX_VL;

use crate::funcsim::FuncSim;
use crate::trace::DynKind;

/// Run `src` single-threaded and return the sim.
fn run(src: &str) -> FuncSim {
    let p = assemble(src).unwrap();
    let mut sim = FuncSim::new(&p, 1);
    sim.run_to_completion(1_000_000).unwrap();
    sim
}

fn x(sim: &FuncSim, r: usize) -> u64 {
    sim.thread(0).x[r]
}

fn f(sim: &FuncSim, r: usize) -> f64 {
    sim.thread(0).f[r]
}

fn velem(sim: &FuncSim, r: usize, e: usize) -> u64 {
    sim.thread(0).v[r][e]
}

#[test]
fn int_arithmetic() {
    let s = run("li x1, 7\nli x2, -3\nadd x3, x1, x2\nsub x4, x1, x2\nmul x5, x1, x2\nhalt\n");
    assert_eq!(x(&s, 3), 4);
    assert_eq!(x(&s, 4), 10);
    assert_eq!(x(&s, 5) as i64, -21);
}

#[test]
fn div_rem_signed_and_by_zero() {
    let s = run("li x1, -17\nli x2, 5\ndiv x3, x1, x2\nrem x4, x1, x2\nli x5, 0\ndiv x6, x1, x5\nrem x7, x1, x5\nhalt\n");
    assert_eq!(x(&s, 3) as i64, -3);
    assert_eq!(x(&s, 4) as i64, -2);
    assert_eq!(x(&s, 6), u64::MAX);
    assert_eq!(x(&s, 7) as i64, -17);
}

#[test]
fn logic_and_shifts() {
    let s = run("li x1, 0xF0\nli x2, 0x0F\nand x3, x1, x2\nor x4, x1, x2\nxor x5, x1, x2\nli x6, 4\nsll x7, x2, x6\nsrl x8, x1, x6\nhalt\n");
    assert_eq!(x(&s, 3), 0);
    assert_eq!(x(&s, 4), 0xFF);
    assert_eq!(x(&s, 5), 0xFF);
    assert_eq!(x(&s, 7), 0xF0);
    assert_eq!(x(&s, 8), 0x0F);
}

#[test]
fn sra_is_arithmetic() {
    let s = run("li x1, -16\nli x2, 2\nsra x3, x1, x2\nsrl x4, x1, x2\nhalt\n");
    assert_eq!(x(&s, 3) as i64, -4);
    assert_eq!(x(&s, 4), (u64::MAX - 15) >> 2);
}

#[test]
fn slt_family() {
    let s = run("li x1, -1\nli x2, 1\nslt x3, x1, x2\nsltu x4, x1, x2\nslti x5, x1, 0\nhalt\n");
    assert_eq!(x(&s, 3), 1); // -1 < 1 signed
    assert_eq!(x(&s, 4), 0); // u64::MAX > 1 unsigned
    assert_eq!(x(&s, 5), 1);
}

#[test]
fn lui_ori_li_roundtrip() {
    let s = run("li x1, 0x12345678\nli x2, -559038737\nhalt\n");
    assert_eq!(x(&s, 1), 0x12345678);
    assert_eq!(x(&s, 2) as i64, -559038737);
}

#[test]
fn scalar_memory_widths() {
    let s = run(r#"
        .data
    buf:
        .zero 32
        .text
        la  x1, buf
        li  x2, -2
        sd  x2, 0(x1)
        lw  x3, 0(x1)      # signed 32
        lwu x4, 0(x1)      # unsigned 32
        lb  x5, 0(x1)      # signed byte
        lbu x6, 0(x1)
        li  x7, 300
        sw  x7, 8(x1)
        ld  x8, 8(x1)
        sb  x7, 16(x1)
        lbu x9, 16(x1)
        halt
    "#);
    assert_eq!(x(&s, 3) as i64, -2);
    assert_eq!(x(&s, 4), 0xFFFF_FFFE);
    assert_eq!(x(&s, 5) as i64, -2);
    assert_eq!(x(&s, 6), 0xFE);
    assert_eq!(x(&s, 8), 300);
    assert_eq!(x(&s, 9), 300 & 0xFF);
}

#[test]
fn loops_and_branches() {
    // Sum 1..=10 with a loop.
    let s = run(r#"
        li x1, 0     # acc
        li x2, 1     # i
        li x3, 10
    loop:
        add  x1, x1, x2
        addi x2, x2, 1
        ble  x2, x3, loop
        halt
    "#);
    assert_eq!(x(&s, 1), 55);
}

#[test]
fn call_ret_linkage() {
    let s = run(r#"
        li   x1, 5
        call double
        call double
        halt
    double:
        add x1, x1, x1
        ret
    "#);
    assert_eq!(x(&s, 1), 20);
}

#[test]
fn jalr_indirect_call() {
    let s = run(r#"
        la   x5, target
        jalr x7, x5
        halt
    target:
        li   x6, 99
        jr   x7
    "#);
    assert_eq!(x(&s, 6), 99);
}

#[test]
fn fp_arithmetic() {
    let s = run(r#"
        .data
    a: .double 3.5
    b: .double -2.0
        .text
        la   x1, a
        fld  f1, 0(x1)
        fld  f2, 8(x1)
        fadd f3, f1, f2
        fsub f4, f1, f2
        fmul f5, f1, f2
        fdiv f6, f1, f2
        fneg f7, f2
        fabs f8, f2
        fmin f9, f1, f2
        fmax f10, f1, f2
        halt
    "#);
    assert_eq!(f(&s, 3), 1.5);
    assert_eq!(f(&s, 4), 5.5);
    assert_eq!(f(&s, 5), -7.0);
    assert_eq!(f(&s, 6), -1.75);
    assert_eq!(f(&s, 7), 2.0);
    assert_eq!(f(&s, 8), 2.0);
    assert_eq!(f(&s, 9), -2.0);
    assert_eq!(f(&s, 10), 3.5);
}

#[test]
fn fma_accumulates() {
    let s = run(r#"
        li       x1, 2
        fcvt.f.x f1, x1
        li       x2, 3
        fcvt.f.x f2, x2
        li       x3, 10
        fcvt.f.x f3, x3
        fma      f3, f1, f2     # f3 += 2*3
        halt
    "#);
    assert_eq!(f(&s, 3), 16.0);
}

#[test]
fn fp_compare_and_convert() {
    let s = run(r#"
        li       x1, -7
        fcvt.f.x f1, x1
        fcvt.x.f x2, f1
        li       x3, 3
        fcvt.f.x f2, x3
        flt      x4, f1, f2
        fle      x5, f2, f1
        feq      x6, f1, f1
        fsqrt    f3, f2
        halt
    "#);
    assert_eq!(x(&s, 2) as i64, -7);
    assert_eq!(x(&s, 4), 1);
    assert_eq!(x(&s, 5), 0);
    assert_eq!(x(&s, 6), 1);
    assert!((f(&s, 3) - 3f64.sqrt()).abs() < 1e-12);
}

#[test]
fn setvl_clamps_to_mvl() {
    let s = run("li x1, 100\nsetvl x2, x1\nhalt\n");
    assert_eq!(x(&s, 2), MAX_VL as u64);
    assert_eq!(s.thread(0).vl, MAX_VL);
    let s = run("li x1, 13\nsetvl x2, x1\ngetvl x3\nhalt\n");
    assert_eq!(x(&s, 2), 13);
    assert_eq!(x(&s, 3), 13);
}

#[test]
fn vltcfg_partitions_register_file() {
    // 4 threads -> mvl = 16; setvl 64 then clamps to 16.
    let s = run("li x1, 4\nvltcfg x1\nli x2, 64\nsetvl x3, x2\nhalt\n");
    assert_eq!(x(&s, 3), 16);
    // Reconfig back to 1 thread restores full MVL.
    let s = run("li x1, 2\nvltcfg x1\nli x1, 1\nvltcfg x1\nli x2, 64\nsetvl x3, x2\nhalt\n");
    assert_eq!(x(&s, 3), 64);
}

#[test]
fn vltcfg_rejects_bad_counts() {
    let p = assemble("li x1, 3\nvltcfg x1\nhalt\n").unwrap();
    let mut sim = FuncSim::new(&p, 1);
    assert!(sim.run_to_completion(100).is_err());
}

#[test]
fn setvl_zero_rejected() {
    let p = assemble("li x1, 0\nsetvl x2, x1\nhalt\n").unwrap();
    let mut sim = FuncSim::new(&p, 1);
    assert!(sim.run_to_completion(100).is_err());
}

#[test]
fn vector_int_arith() {
    let s = run(r#"
        li      x1, 8
        setvl   x2, x1
        vid     v1
        li      x3, 10
        vsplat  v2, x3
        vadd.vv v3, v1, v2     # 10..17
        vmul.vv v4, v1, v1     # squares
        vsub.vs v5, v3, x3     # back to 0..7
        halt
    "#);
    for e in 0..8 {
        assert_eq!(velem(&s, 3, e), 10 + e as u64);
        assert_eq!(velem(&s, 4, e), (e * e) as u64);
        assert_eq!(velem(&s, 5, e), e as u64);
    }
}

#[test]
fn vector_only_touches_vl_elements() {
    let s = run(r#"
        li      x1, 64
        setvl   x2, x1
        li      x3, 7
        vsplat  v1, x3         # all 64 elements = 7
        li      x1, 4
        setvl   x2, x1
        li      x3, 9
        vsplat  v1, x3         # only first 4 become 9
        halt
    "#);
    for e in 0..4 {
        assert_eq!(velem(&s, 1, e), 9);
    }
    for e in 4..64 {
        assert_eq!(velem(&s, 1, e), 7);
    }
}

#[test]
fn vector_fp_and_fma() {
    let s = run(r#"
        li       x1, 4
        setvl    x2, x1
        vid      v1
        vcvt.f.x v1, v1        # [0.0, 1.0, 2.0, 3.0]
        li       x3, 2
        fcvt.f.x f1, x3
        vfsplat  v2, f1        # all 2.0
        vfmul.vv v3, v1, v2    # [0,2,4,6]
        vfma.vv  v3, v1, v2    # v3 += v1*v2 -> [0,4,8,12]
        vfma.vs  v3, v1, f1    # v3 += v1*2  -> [0,6,12,18]
        vcvt.x.f v4, v3
        halt
    "#);
    for e in 0..4 {
        assert_eq!(velem(&s, 4, e), (6 * e) as u64);
    }
}

#[test]
fn vector_compare_merge_mask() {
    let s = run(r#"
        li      x1, 8
        setvl   x2, x1
        vid     v1
        li      x3, 4
        vsplat  v2, x3
        vslt.vv v1, v2         # mask = v1 < 4 -> elements 0..3
        vpopc   x4
        vmfirst x5
        vmerge  v3, v1, v2     # masked: v1, else v2
        vmnot
        vpopc   x6
        halt
    "#);
    assert_eq!(x(&s, 4), 4);
    assert_eq!(x(&s, 5), 0);
    for e in 0..4 {
        assert_eq!(velem(&s, 3, e), e as u64);
    }
    for e in 4..8 {
        assert_eq!(velem(&s, 3, e), 4);
    }
    assert_eq!(x(&s, 6), 4); // inverted within vl
}

#[test]
fn masked_ops_preserve_disabled_elements() {
    let s = run(r#"
        li      x1, 8
        setvl   x2, x1
        li      x3, 1
        vsplat  v1, x3             # v1 = all 1
        li      x4, 0x0F
        vmsetb  x4                 # mask = low 4 lanes
        li      x5, 100
        vsplat  v1, x5, vm         # only lanes 0..3 set to 100
        halt
    "#);
    for e in 0..4 {
        assert_eq!(velem(&s, 1, e), 100);
    }
    for e in 4..8 {
        assert_eq!(velem(&s, 1, e), 1);
    }
}

#[test]
fn vector_memory_unit_stride() {
    let s = run(r#"
        .data
    src:
        .dword 1, 2, 3, 4, 5, 6, 7, 8
    dst:
        .zero 64
        .text
        li      x1, 8
        setvl   x2, x1
        la      x3, src
        la      x4, dst
        vld     v1, x3
        vadd.vv v2, v1, v1
        vst     v2, x4
        halt
    "#);
    for e in 0..8 {
        let addr = s.prog.program.symbol("dst").unwrap() + 8 * e;
        assert_eq!(s.mem.read_u64(addr), 2 * (e + 1));
    }
}

#[test]
fn vector_memory_strided() {
    // Gather every third dword.
    let s = run(r#"
        .data
    src:
        .dword 0, 0, 0, 1, 0, 0, 2, 0, 0, 3, 0, 0
        .text
        li      x1, 4
        setvl   x2, x1
        la      x3, src
        addi    x3, x3, 0
        li      x4, 24         # stride: 3 dwords
        vlds    v1, x3, x4
        halt
    "#);
    assert_eq!(velem(&s, 1, 0), 0);
    assert_eq!(velem(&s, 1, 1), 1);
    assert_eq!(velem(&s, 1, 2), 2);
    assert_eq!(velem(&s, 1, 3), 3);
}

#[test]
fn vector_memory_indexed_gather_scatter() {
    let s = run(r#"
        .data
    src:
        .dword 10, 11, 12, 13, 14, 15, 16, 17
    dst:
        .zero 64
        .text
        li      x1, 4
        setvl   x2, x1
        vid     v1
        li      x3, 16
        vmul.vs v2, v1, x3     # byte offsets 0,16,32,48 (every other dword)
        la      x4, src
        vldx    v3, x4, v2     # gather 10,12,14,16
        la      x5, dst
        vstx    v3, x5, v2     # scatter back to same pattern
        halt
    "#);
    assert_eq!(velem(&s, 3, 0), 10);
    assert_eq!(velem(&s, 3, 1), 12);
    assert_eq!(velem(&s, 3, 2), 14);
    assert_eq!(velem(&s, 3, 3), 16);
    let dst = s.prog.program.symbol("dst").unwrap();
    assert_eq!(s.mem.read_u64(dst), 10);
    assert_eq!(s.mem.read_u64(dst + 16), 12);
    assert_eq!(s.mem.read_u64(dst + 32), 14);
    assert_eq!(s.mem.read_u64(dst + 48), 16);
}

#[test]
fn masked_vector_load_skips_lanes() {
    let p = assemble(
        r#"
        .data
    src:
        .dword 1, 2, 3, 4
        .text
        li      x1, 4
        setvl   x2, x1
        li      x3, 0b0101
        vmsetb  x3
        la      x4, src
        vld     v1, x4, vm
        halt
    "#,
    )
    .unwrap();
    let mut sim = FuncSim::new(&p, 1);
    // Collect the VMem dyninst to check address count.
    let mut vmem_addrs = None;
    while let crate::funcsim::Step::Inst(d) = sim.step_thread(0).unwrap() {
        if let DynKind::VMem { addrs } = &d.kind {
            vmem_addrs = Some(*addrs);
        }
        if d.kind == DynKind::Halt {
            break;
        }
    }
    let r = vmem_addrs.unwrap();
    assert_eq!(r.len(), 2); // only lanes 0 and 2
    let src = p.symbol("src").unwrap();
    assert_eq!(sim.addrs(r), &[src, src + 16]); // elements 0 and 2
    assert_eq!(sim.thread(0).v[1][0], 1);
    assert_eq!(sim.thread(0).v[1][1], 0); // untouched
    assert_eq!(sim.thread(0).v[1][2], 3);
}

#[test]
fn reductions() {
    let s = run(r#"
        li       x1, 8
        setvl    x2, x1
        vid      v1
        vredsum  x3, v1
        vredmin  x4, v1
        vredmax  x5, v1
        vcvt.f.x v2, v1
        vfredsum f1, v2
        vfredmin f2, v2
        vfredmax f3, v2
        halt
    "#);
    assert_eq!(x(&s, 3), 28);
    assert_eq!(x(&s, 4), 0);
    assert_eq!(x(&s, 5), 7);
    assert_eq!(f(&s, 1), 28.0);
    assert_eq!(f(&s, 2), 0.0);
    assert_eq!(f(&s, 3), 7.0);
}

#[test]
fn extract_insert() {
    let s = run(r#"
        li        x1, 8
        setvl     x2, x1
        vid       v1
        li        x3, 5
        vextract  x4, v1, x3    # = 5
        li        x5, 77
        vinsert   v1, x3, x5    # v1[5] = 77
        vextract  x6, v1, x3
        halt
    "#);
    assert_eq!(x(&s, 4), 5);
    assert_eq!(x(&s, 6), 77);
}

#[test]
fn region_markers_tracked() {
    let s = run("region 2\nnop\nregion 0\nhalt\n");
    assert_eq!(s.thread(0).region, 0);
}

#[test]
fn tid_nthr_reported() {
    let p = assemble("tid x1\nnthr x2\nhalt\n").unwrap();
    let mut sim = FuncSim::new(&p, 4);
    sim.run_to_completion(100).unwrap();
    for t in 0..4 {
        assert_eq!(sim.thread(t).x[1], t as u64);
        assert_eq!(sim.thread(t).x[2], 4);
    }
}

proptest! {
    #[test]
    fn vadd_matches_scalar_loop(vals in proptest::collection::vec(any::<u32>(), 1..=16)) {
        // Build a program that loads `vals`, adds them to themselves
        // vector-wise, and compare against the obvious scalar computation.
        let n = vals.len();
        let data: Vec<String> = vals.iter().map(|v| v.to_string()).collect();
        let src = format!(
            ".data\nsrc:\n.dword {}\ndst:\n.zero {}\n.text\nli x1, {}\nsetvl x2, x1\nla x3, src\nvld v1, x3\nvadd.vv v2, v1, v1\nla x4, dst\nvst v2, x4\nhalt\n",
            data.join(", "),
            8 * n,
            n
        );
        let p = assemble(&src).unwrap();
        let mut sim = FuncSim::new(&p, 1);
        sim.run_to_completion(10_000).unwrap();
        let dst = p.symbol("dst").unwrap();
        for (i, v) in vals.iter().enumerate() {
            prop_assert_eq!(sim.mem.read_u64(dst + 8 * i as u64), 2 * *v as u64);
        }
    }

    #[test]
    fn int_ops_match_rust_semantics(a in any::<i64>(), b in any::<i64>()) {
        let src = format!(
            ".data\nops:\n.dword {a}, {b}\n.text\nla x1, ops\nld x2, 0(x1)\nld x3, 8(x1)\nadd x4, x2, x3\nsub x5, x2, x3\nmul x6, x2, x3\nand x7, x2, x3\nxor x8, x2, x3\nhalt\n"
        );
        let p = assemble(&src).unwrap();
        let mut sim = FuncSim::new(&p, 1);
        sim.run_to_completion(100).unwrap();
        let s = sim.thread(0);
        prop_assert_eq!(s.x[4], (a.wrapping_add(b)) as u64);
        prop_assert_eq!(s.x[5], (a.wrapping_sub(b)) as u64);
        prop_assert_eq!(s.x[6], (a.wrapping_mul(b)) as u64);
        prop_assert_eq!(s.x[7], (a & b) as u64);
        prop_assert_eq!(s.x[8], (a ^ b) as u64);
    }
}
