//! Per-thread architectural state.

use vlt_isa::{MAX_VL, STACK_BASE, STACK_SIZE};

/// One thread's architectural register state.
///
/// Vector elements are stored as raw 64-bit patterns; floating-point vector
/// operations reinterpret them as `f64`. `mvl` is the *effective* maximum
/// vector length, which shrinks when `vltcfg` partitions the lanes (the
/// per-lane register file is re-divided among threads — paper §3.2).
#[derive(Debug, Clone)]
pub struct ArchState {
    /// Program counter.
    pub pc: u64,
    /// Integer registers; `x[0]` is kept at zero by the interpreter.
    pub x: [u64; 32],
    /// Floating-point registers.
    pub f: [f64; 32],
    /// Vector registers, raw element bits.
    pub v: Box<[[u64; MAX_VL]; 32]>,
    /// Current vector length (`0 < vl <= mvl` after any `setvl`).
    pub vl: usize,
    /// Effective maximum vector length under the current VLT partition.
    pub mvl: usize,
    /// The vector mask register, one bit per element.
    pub vm: u64,
    /// This thread's id (read by `tid`).
    pub tid: usize,
    /// Thread count in the program (read by `nthr`).
    pub nthr: usize,
    /// Set once the thread executes `halt`.
    pub halted: bool,
    /// Currently active `region` marker (0 = unannotated/serial).
    pub region: u32,
}

impl ArchState {
    /// Fresh state for thread `tid` of `nthr`, entering at `entry` with the
    /// stack pointer placed at the top of the thread's stack slot.
    pub fn new(entry: u64, tid: usize, nthr: usize) -> Self {
        let mut x = [0u64; 32];
        x[30] = STACK_BASE + (tid as u64 + 1) * STACK_SIZE; // sp
        ArchState {
            pc: entry,
            x,
            f: [0.0; 32],
            v: Box::new([[0; MAX_VL]; 32]),
            vl: MAX_VL,
            mvl: MAX_VL,
            vm: u64::MAX,
            tid,
            nthr,
            halted: false,
            region: 0,
        }
    }

    /// Write an integer register, discarding writes to `x0`.
    #[inline]
    pub fn set_x(&mut self, r: u8, v: u64) {
        if r != 0 {
            self.x[r as usize] = v;
        }
    }

    /// Read an integer register.
    #[inline]
    pub fn get_x(&self, r: u8) -> u64 {
        self.x[r as usize]
    }

    /// Is element `e` enabled under mask `m`? (Unmasked ops pass `None`.)
    #[inline]
    pub fn lane_enabled(&self, masked: bool, e: usize) -> bool {
        !masked || (self.vm >> e) & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state() {
        let s = ArchState::new(0x1000, 2, 4);
        assert_eq!(s.pc, 0x1000);
        assert_eq!(s.tid, 2);
        assert_eq!(s.nthr, 4);
        assert_eq!(s.vl, MAX_VL);
        assert_eq!(s.mvl, MAX_VL);
        assert_eq!(s.vm, u64::MAX);
        assert!(!s.halted);
        // Stacks are disjoint per thread.
        let s0 = ArchState::new(0x1000, 0, 4);
        assert_ne!(s.x[30], s0.x[30]);
        assert_eq!(s0.x[30], STACK_BASE + STACK_SIZE);
    }

    #[test]
    fn x0_is_immutable() {
        let mut s = ArchState::new(0, 0, 1);
        s.set_x(0, 99);
        assert_eq!(s.get_x(0), 0);
        s.set_x(5, 99);
        assert_eq!(s.get_x(5), 99);
    }

    #[test]
    fn mask_enable() {
        let mut s = ArchState::new(0, 0, 1);
        s.vm = 0b101;
        assert!(s.lane_enabled(true, 0));
        assert!(!s.lane_enabled(true, 1));
        assert!(s.lane_enabled(true, 2));
        assert!(s.lane_enabled(false, 1)); // unmasked: always on
    }
}
