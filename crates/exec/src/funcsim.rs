//! Multi-threaded SPMD functional simulation driver.
//!
//! All threads run the same program (they branch on `tid`) against a shared
//! memory. Threads rendezvous at `barrier` instructions: a thread that has
//! executed `barrier` yields [`Step::AtBarrier`] until every other live
//! thread has also arrived. Workloads only communicate across barriers
//! (disjoint writes in between), so any interleaving of the per-thread
//! streams between barriers is architecturally equivalent — this is what
//! lets the timing models pull instructions on their own schedule.

use std::collections::VecDeque;
use std::sync::Arc;

use vlt_isa::Program;

use crate::arena::{AddrArena, AddrRange};
use crate::block::BlockCache;
use crate::checker::{CheckConfig, Checker};
use crate::error::ExecError;
use crate::interp;
use crate::memory::Memory;
use crate::program::DecodedProgram;
use crate::race::{RaceChecker, RaceConfig};
use crate::state::ArchState;
use crate::trace::{DynInst, DynKind};

/// Which execution engine drives the functional simulation.
///
/// Both engines produce byte-identical [`DynInst`] streams, final memory
/// images, and run summaries; [`EngineMode::Interp`] is retained as the
/// cross-validation oracle for the block engine, exactly as the timing
/// side keeps `DriverMode::CycleByCycle` as the oracle for event-driven
/// skipping.
///
/// The block engine executes ahead of the per-instruction hand-off by up
/// to one compiled block per thread (bounded by
/// [`crate::block::MAX_UOPS`]). For barrier-disciplined programs — the
/// memory model every workload is verified against (`vlint --races`) —
/// this is architecturally invisible. The dynamic checkers observe
/// pre-execution state per instruction, so enabling either one routes
/// execution through the interpreter regardless of the configured mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Single-step the instruction interpreter (the oracle).
    Interp,
    /// Threaded-code block engine with interpreter fallback (default).
    #[default]
    Block,
}

/// Result of stepping one thread.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// The thread executed this instruction.
    Inst(DynInst),
    /// The thread is parked at a barrier waiting for the others.
    AtBarrier,
    /// The thread has executed `halt`.
    Halted,
}

/// Aggregate statistics from a functional run (Table 4 inputs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunSummary {
    /// Total dynamic instructions across all threads.
    pub insts: u64,
    /// Dynamic instructions per thread.
    pub per_thread: Vec<u64>,
    /// Dynamic vector instructions (arith + memory + VCL ops).
    pub vector_insts: u64,
    /// Total vector *element* operations (sum of effective VL).
    pub elem_ops: u64,
    /// Scalar operations (non-vector, non-system instructions).
    pub scalar_ops: u64,
    /// Histogram of vector lengths (index = VL, 0..=64).
    pub vl_histogram: Vec<u64>,
}

impl RunSummary {
    /// Percentage of operations that are vector element operations —
    /// the paper's "% Vect" (Table 4), measured in operations.
    pub fn pct_vectorization(&self) -> f64 {
        let total = (self.scalar_ops + self.elem_ops) as f64;
        if total == 0.0 {
            0.0
        } else {
            100.0 * self.elem_ops as f64 / total
        }
    }

    /// Average vector length over vector instructions with a VL.
    pub fn avg_vl(&self) -> f64 {
        let count: u64 = self.vl_histogram.iter().sum();
        if count == 0 {
            return 0.0;
        }
        let weighted: u64 = self.vl_histogram.iter().enumerate().map(|(vl, n)| vl as u64 * n).sum();
        weighted as f64 / count as f64
    }

    /// The most frequent vector lengths, most common first (up to `k`).
    pub fn common_vls(&self, k: usize) -> Vec<usize> {
        let mut pairs: Vec<(usize, u64)> = self
            .vl_histogram
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(vl, n)| (vl, *n))
            .collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs.into_iter().take(k).map(|(vl, _)| vl).collect()
    }
}

/// The functional simulator: shared memory + per-thread state + barriers.
#[derive(Debug)]
pub struct FuncSim {
    /// Pre-decoded program (shared with the timing models).
    pub prog: Arc<DecodedProgram>,
    /// Shared memory image.
    pub mem: Memory,
    threads: Vec<ArchState>,
    waiting: Vec<bool>,
    arena: AddrArena,
    releases: u64,
    checker: Option<Checker>,
    race: Option<RaceChecker>,
    engine: EngineMode,
    cache: BlockCache,
    /// Per-thread queue of block-executed instructions not yet handed out.
    pending: Vec<VecDeque<DynInst>>,
    /// Total instructions executed so far.
    pub executed: u64,
}

impl FuncSim {
    /// Set up `nthr` threads at the program entry point.
    pub fn new(prog: &Program, nthr: usize) -> Self {
        assert!((1..=64).contains(&nthr), "thread count out of range");
        let decoded = DecodedProgram::new(prog);
        let mem = Memory::load(prog);
        let threads = (0..nthr).map(|t| ArchState::new(prog.entry, t, nthr)).collect();
        let cache = BlockCache::new(decoded.len());
        FuncSim {
            prog: decoded,
            mem,
            threads,
            waiting: vec![false; nthr],
            arena: AddrArena::new(nthr),
            releases: 0,
            checker: None,
            race: None,
            engine: EngineMode::default(),
            cache,
            pending: vec![VecDeque::new(); nthr],
            executed: 0,
        }
    }

    /// Select the execution engine. Switch before running; switching to
    /// [`EngineMode::Interp`] mid-run still drains instructions the block
    /// engine already executed.
    pub fn set_engine(&mut self, engine: EngineMode) {
        self.engine = engine;
    }

    /// Builder-style [`FuncSim::set_engine`].
    pub fn with_engine(mut self, engine: EngineMode) -> Self {
        self.set_engine(engine);
        self
    }

    /// The configured execution engine.
    pub fn engine(&self) -> EngineMode {
        self.engine
    }

    /// True when the block engine actually drives execution: configured,
    /// and no per-instruction observer (checker/race checker) needs to see
    /// pre-execution state.
    fn block_ok(&self) -> bool {
        self.engine == EngineMode::Block && self.checker.is_none() && self.race.is_none()
    }

    /// Turn on checked mode: every subsequently executed instruction is
    /// observed by a [`Checker`] that records undefined reads and
    /// out-of-bounds/misaligned accesses the forgiving memory system never
    /// faults on. See [`crate::checker`] for the cross-validation contract
    /// with the static verifier.
    pub fn enable_checker(&mut self, cfg: CheckConfig) {
        let nthr = self.threads.len();
        let data_len = self.prog.program.data.len();
        self.checker = Some(Checker::new(nthr, data_len, cfg));
    }

    /// The checked-mode observer, if [`FuncSim::enable_checker`] was called.
    pub fn checker(&self) -> Option<&Checker> {
        self.checker.as_ref()
    }

    /// Turn on the dynamic barrier-epoch race checker: every subsequently
    /// executed memory access is recorded against its thread's barrier
    /// epoch, and same-epoch cross-thread overlaps with at least one write
    /// are reported. See [`crate::race`] for the cross-validation contract
    /// with the static race analysis.
    pub fn enable_race_checker(&mut self, cfg: RaceConfig) {
        self.race = Some(RaceChecker::new(self.threads.len(), cfg));
    }

    /// The race-checker observer, if [`FuncSim::enable_race_checker`] was
    /// called.
    pub fn race_checker(&self) -> Option<&RaceChecker> {
        self.race.as_ref()
    }

    /// The element-address arena backing `DynKind::VMem` ranges.
    pub fn arena(&self) -> &AddrArena {
        &self.arena
    }

    /// Resolve a vector memory instruction's element addresses.
    #[inline]
    pub fn addrs(&self, r: AddrRange) -> &[u64] {
        self.arena.slice(r)
    }

    /// Number of barrier rendezvous completed so far. Counted exactly at
    /// the moment a barrier opens (every live thread arrived), so it is
    /// correct even when thread counts don't divide evenly into fetch
    /// totals or when threads halt before a later barrier.
    pub fn barrier_releases(&self) -> u64 {
        self.releases
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// True when thread `t`'s next [`FuncSim::step_thread`] is guaranteed to
    /// return [`Step::AtBarrier`] with no side effects: the thread is parked
    /// at a barrier that has not opened, and only *another* thread's progress
    /// can change that. A released-but-unconsumed barrier reports `false`
    /// (the flags clear lazily at the next `step_thread`, which does make
    /// progress). Non-mutating, for the timing driver's idle-cycle skipping.
    pub fn thread_parked(&self, t: usize) -> bool {
        !self.threads[t].halted && self.waiting[t] && !self.barrier_released()
    }

    /// Immutable view of a thread's architectural state.
    pub fn thread(&self, t: usize) -> &ArchState {
        &self.threads[t]
    }

    /// Mutable view (used by tests and custom setup code).
    pub fn thread_mut(&mut self, t: usize) -> &mut ArchState {
        &mut self.threads[t]
    }

    /// True when every thread has halted.
    pub fn all_halted(&self) -> bool {
        self.threads.iter().all(|t| t.halted)
    }

    /// Advance thread `t` by one instruction (or report its parked state).
    pub fn step_thread(&mut self, t: usize) -> Result<Step, ExecError> {
        if self.threads[t].halted {
            return Ok(Step::Halted);
        }
        // Hand out block-executed instructions first. `executed` counts at
        // hand-out, not at block-execution time, so the timing driver's
        // progress fingerprint advances exactly as under the interpreter.
        if let Some(d) = self.pending[t].pop_front() {
            self.executed += 1;
            return Ok(Step::Inst(d));
        }
        if !self.unpark(t) {
            return Ok(Step::AtBarrier);
        }
        if self.block_ok() {
            let Self { threads, mem, prog, arena, cache, pending, .. } = self;
            let st = &mut threads[t];
            let q = &mut pending[t];
            let ran = cache.run(st, mem, prog, arena, false, &mut |d| {
                q.push_back(d);
                Ok(())
            })?;
            if ran {
                let d = self.pending[t].pop_front().expect("a block always emits");
                self.executed += 1;
                return Ok(Step::Inst(d));
            }
            // No block at this PC (barrier/halt/vltcfg or a wild jump):
            // fall through to one interpreter step.
        }
        if let Some(ck) = self.checker.as_mut() {
            if let Some(sidx) = self.prog.index_of(self.threads[t].pc) {
                ck.observe(t, &self.threads[t], self.prog.get(sidx), sidx);
            }
        }
        let d = interp::step(&mut self.threads[t], &mut self.mem, &self.prog, &mut self.arena)?;
        self.executed += 1;
        if let Some(rc) = self.race.as_mut() {
            rc.observe(t, &d, &self.arena, &self.prog);
        }
        if d.kind == DynKind::Barrier {
            self.waiting[t] = true;
        }
        Ok(Step::Inst(d))
    }

    /// A barrier opens once every live (non-halted) thread is waiting.
    fn barrier_released(&self) -> bool {
        self.threads.iter().zip(&self.waiting).all(|(st, w)| st.halted || *w)
    }

    /// Clear thread `t`'s barrier wait if its rendezvous has completed.
    /// Returns `false` while the thread stays parked.
    fn unpark(&mut self, t: usize) -> bool {
        if self.waiting[t] {
            if !self.barrier_released() {
                return false;
            }
            for w in self.waiting.iter_mut() {
                *w = false;
            }
            // Exactly one rendezvous completed: the flags clear once
            // per barrier, however many threads participate.
            self.releases += 1;
        }
        true
    }

    /// Round-robin all threads to completion, collecting summary statistics.
    ///
    /// `budget` bounds total instructions to catch runaway kernels.
    pub fn run_to_completion(&mut self, budget: u64) -> Result<RunSummary, ExecError> {
        let n = self.num_threads();
        let mut summary = RunSummary {
            per_thread: vec![0; n],
            vl_histogram: vec![0; 65],
            ..RunSummary::default()
        };
        // Batch per thread between scheduling points to keep this fast while
        // still interleaving at barriers.
        while !self.all_halted() {
            let mut progressed = false;
            for t in 0..n {
                if self.block_ok() {
                    progressed |= self.run_thread_block(t, budget, &mut summary)?;
                    continue;
                }
                while let Step::Inst(d) = self.step_thread(t)? {
                    progressed = true;
                    summary.insts += 1;
                    summary.per_thread[t] += 1;
                    self.record(&d, &mut summary);
                    if summary.insts > budget {
                        return Err(ExecError::Budget { executed: summary.insts });
                    }
                    if matches!(d.kind, DynKind::Barrier | DynKind::Halt) {
                        break;
                    }
                }
            }
            if !progressed && !self.all_halted() {
                // All live threads are parked and the barrier never opened:
                // impossible by construction, but guard against hangs.
                unreachable!("barrier deadlock with live threads");
            }
        }
        Ok(summary)
    }

    /// Block-engine inner loop of [`FuncSim::run_to_completion`]: chain
    /// compiled blocks (accounting instructions straight into `summary`,
    /// with no hand-off queue) until this thread parks at a barrier or
    /// halts. Scheduling points are identical to the interpreter loop —
    /// threads batch between barriers either way. Returns whether the
    /// thread made progress.
    fn run_thread_block(
        &mut self,
        t: usize,
        budget: u64,
        summary: &mut RunSummary,
    ) -> Result<bool, ExecError> {
        let mut progressed = false;
        // Drain anything a prior single-step phase left queued.
        while let Some(d) = self.pending[t].pop_front() {
            self.executed += 1;
            progressed = true;
            summary.insts += 1;
            summary.per_thread[t] += 1;
            self.record(&d, summary);
            if summary.insts > budget {
                return Err(ExecError::Budget { executed: summary.insts });
            }
        }
        loop {
            if self.threads[t].halted {
                return Ok(progressed);
            }
            if !self.unpark(t) {
                return Ok(progressed);
            }
            let Self { threads, mem, prog, arena, cache, executed, .. } = self;
            let prog: &DecodedProgram = prog;
            let st = &mut threads[t];
            let ran = cache.run(st, mem, prog, arena, true, &mut |d| {
                *executed += 1;
                summary.insts += 1;
                summary.per_thread[t] += 1;
                record_into(prog, &d, summary);
                if summary.insts > budget {
                    return Err(ExecError::Budget { executed: summary.insts });
                }
                Ok(())
            })?;
            progressed |= ran;
            // The next instruction has no block: barrier, halt, vltcfg, or
            // a wild PC. One interpreter step handles it (and its driver
            // state), then blocks resume.
            match self.step_thread(t)? {
                Step::Inst(d) => {
                    progressed = true;
                    summary.insts += 1;
                    summary.per_thread[t] += 1;
                    self.record(&d, summary);
                    if summary.insts > budget {
                        return Err(ExecError::Budget { executed: summary.insts });
                    }
                    if matches!(d.kind, DynKind::Barrier | DynKind::Halt) {
                        return Ok(true);
                    }
                }
                Step::AtBarrier | Step::Halted => return Ok(progressed),
            }
        }
    }

    fn record(&self, d: &DynInst, s: &mut RunSummary) {
        record_into(&self.prog, d, s);
    }
}

/// Fold one executed instruction into the run summary (free function so
/// the block engine's sink can record while `FuncSim` is split-borrowed).
fn record_into(prog: &DecodedProgram, d: &DynInst, s: &mut RunSummary) {
    let class = prog.get(d.sidx as usize).class;
    if class.is_vector() {
        s.vector_insts += 1;
        let elems = d.elems();
        s.elem_ops += elems as u64;
        if d.vl > 0 {
            s.vl_histogram[(d.vl as usize).min(64)] += 1;
        }
    } else if !matches!(d.kind, DynKind::Barrier | DynKind::Halt | DynKind::VltCfg { .. }) {
        s.scalar_ops += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlt_isa::asm::assemble;

    #[test]
    fn single_thread_halts() {
        let p = assemble("li x1, 5\nhalt\n").unwrap();
        let mut sim = FuncSim::new(&p, 1);
        let s = sim.run_to_completion(100).unwrap();
        assert!(sim.all_halted());
        assert_eq!(sim.thread(0).x[1], 5);
        assert_eq!(s.insts, 2);
    }

    #[test]
    fn budget_catches_infinite_loops() {
        let p = assemble("loop:\nj loop\n").unwrap();
        let mut sim = FuncSim::new(&p, 1);
        assert!(matches!(sim.run_to_completion(1000), Err(ExecError::Budget { .. })));
    }

    #[test]
    fn barrier_rendezvous_two_threads() {
        // Each thread stores its tid, barriers, then reads the other's slot.
        let src = r#"
            .data
        slots:
            .dword 0, 0
            .text
            tid   x1
            la    x2, slots
            slli  x3, x1, 3
            add   x2, x2, x3
            sd    x1, 0(x2)
            barrier
            # read the sibling slot: (1 - tid) * 8 + slots
            li    x4, 1
            sub   x4, x4, x1
            slli  x4, x4, 3
            la    x5, slots
            add   x5, x5, x4
            ld    x6, 0(x5)
            halt
        "#;
        let p = assemble(src).unwrap();
        let mut sim = FuncSim::new(&p, 2);
        sim.run_to_completion(10_000).unwrap();
        // Thread 0 saw thread 1's store and vice versa.
        assert_eq!(sim.thread(0).x[6], 1);
        assert_eq!(sim.thread(1).x[6], 0);
    }

    #[test]
    fn step_thread_parks_at_barrier() {
        let p = assemble("barrier\nhalt\n").unwrap();
        let mut sim = FuncSim::new(&p, 2);
        // Thread 0 executes the barrier...
        assert!(matches!(sim.step_thread(0).unwrap(), Step::Inst(_)));
        // ...and is now parked.
        assert_eq!(sim.step_thread(0).unwrap(), Step::AtBarrier);
        assert_eq!(sim.step_thread(0).unwrap(), Step::AtBarrier);
        // Thread 1 arrives; barrier opens.
        assert!(matches!(sim.step_thread(1).unwrap(), Step::Inst(_)));
        assert!(matches!(sim.step_thread(0).unwrap(), Step::Inst(_))); // halt
        assert!(matches!(sim.step_thread(1).unwrap(), Step::Inst(_))); // halt
        assert!(sim.all_halted());
    }

    #[test]
    fn halted_thread_does_not_block_barrier() {
        let src = r#"
            tid  x1
            bnez x1, worker
            halt
        worker:
            barrier
            halt
        "#;
        // With 2 threads: thread 0 halts immediately; thread 1 barriers alone.
        let p = assemble(src).unwrap();
        let mut sim = FuncSim::new(&p, 2);
        sim.run_to_completion(1000).unwrap();
        assert!(sim.all_halted());
    }

    #[test]
    fn summary_counts_vector_work() {
        let src = r#"
            li      x1, 16
            setvl   x2, x1
            vid     v1
            vadd.vv v2, v1, v1
            vadd.vv v3, v2, v1
            halt
        "#;
        let p = assemble(src).unwrap();
        let mut sim = FuncSim::new(&p, 1);
        let s = sim.run_to_completion(1000).unwrap();
        assert_eq!(s.vl_histogram[16], 3); // vid + 2 vadds
        assert_eq!(s.elem_ops, 48);
        assert!(s.pct_vectorization() > 50.0);
        assert_eq!(s.common_vls(1), vec![16]);
        assert!((s.avg_vl() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn bad_pc_reported() {
        let p = assemble("jr x5\n").unwrap(); // x5 = 0 -> wild jump
        let mut sim = FuncSim::new(&p, 1);
        sim.step_thread(0).unwrap();
        assert!(matches!(sim.step_thread(0), Err(ExecError::BadPc { .. })));
    }
}
