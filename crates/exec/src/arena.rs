//! Per-thread element-address arena.
//!
//! Vector memory instructions used to carry their post-mask element
//! addresses in a heap-allocated `Vec<u64>` inside every `DynInst` — the
//! hottest allocation in the simulator. Instead, the functional simulator
//! now writes element addresses into a flat arena owned by `FuncSim`, and
//! the trace records only a compact [`AddrRange`] handle, keeping
//! `DynInst: Copy`.
//!
//! The arena is a ring per thread: each thread owns a fixed [`RING`]-entry
//! segment of one flat buffer, and successive vector memory instructions
//! bump-allocate contiguous spans within it, wrapping to the segment start
//! when a span would not fit. Ranges stay valid as long as the timing
//! models bound the number of in-flight vector memory instructions per
//! thread — the vector unit's per-partition window (≤ 32 entries of at
//! most `MAX_VL = 64` elements each, ≈ 2 K entries) leaves ~8× slack
//! before a live range could be overwritten.

/// A contiguous span of element addresses inside an [`AddrArena`].
///
/// `start` is an absolute index into the arena's flat buffer (not
/// thread-relative), so resolving a range needs no thread id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AddrRange {
    /// Absolute start index into the arena buffer.
    pub start: u32,
    /// Number of element addresses.
    pub len: u32,
}

impl AddrRange {
    /// An empty range (fully-masked vector memory instruction).
    pub const EMPTY: AddrRange = AddrRange { start: 0, len: 0 };

    /// Number of element addresses.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no element accesses memory.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Per-thread ring capacity, in addresses. Must exceed the worst-case
/// in-flight element-address footprint of the timing models (see module
/// docs) by a comfortable margin.
pub const RING: usize = 1 << 14;

/// Flat per-thread ring arena of element addresses.
#[derive(Debug, Clone)]
pub struct AddrArena {
    buf: Vec<u64>,
    /// Per-thread write offset within that thread's ring segment.
    heads: Vec<u32>,
}

impl AddrArena {
    /// An arena with one ring segment per thread.
    pub fn new(nthr: usize) -> Self {
        assert!(nthr * RING <= u32::MAX as usize, "arena exceeds u32 indexing");
        AddrArena { buf: vec![0; nthr * RING], heads: vec![0; nthr] }
    }

    /// Start a span of at most `max_len` addresses for `thread`. The span
    /// is contiguous: if it would straddle the ring end, the head wraps to
    /// the segment start first.
    pub fn begin(&mut self, thread: usize, max_len: usize) -> ArenaWriter<'_> {
        assert!(max_len <= RING, "vector length exceeds arena ring");
        let head = &mut self.heads[thread];
        if *head as usize + max_len > RING {
            *head = 0;
        }
        let start = (thread * RING + *head as usize) as u32;
        ArenaWriter { arena: self, thread, start, len: 0 }
    }

    /// Store a full slice and return its handle (tests and benches).
    pub fn alloc(&mut self, thread: usize, addrs: &[u64]) -> AddrRange {
        let mut w = self.begin(thread, addrs.len());
        for &a in addrs {
            w.push(a);
        }
        w.finish()
    }

    /// Resolve a handle to its element addresses.
    #[inline]
    pub fn slice(&self, r: AddrRange) -> &[u64] {
        &self.buf[r.start as usize..r.start as usize + r.len as usize]
    }
}

/// In-progress span; push addresses, then [`finish`](ArenaWriter::finish).
#[derive(Debug)]
pub struct ArenaWriter<'a> {
    arena: &'a mut AddrArena,
    thread: usize,
    start: u32,
    len: u32,
}

impl ArenaWriter<'_> {
    /// Append one element address.
    #[inline]
    pub fn push(&mut self, addr: u64) {
        self.arena.buf[self.start as usize + self.len as usize] = addr;
        self.len += 1;
    }

    /// Commit the span, bumping the thread's head past it.
    #[inline]
    pub fn finish(self) -> AddrRange {
        self.arena.heads[self.thread] += self.len;
        AddrRange { start: self.start, len: self.len }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_resolve() {
        let mut a = AddrArena::new(2);
        let r0 = a.alloc(0, &[10, 20, 30]);
        let r1 = a.alloc(1, &[7]);
        let r2 = a.alloc(0, &[40, 50]);
        assert_eq!(a.slice(r0), &[10, 20, 30]);
        assert_eq!(a.slice(r1), &[7]);
        assert_eq!(a.slice(r2), &[40, 50]);
        assert_eq!(r0.len(), 3);
        assert!(AddrRange::EMPTY.is_empty());
    }

    #[test]
    fn threads_get_disjoint_segments() {
        let mut a = AddrArena::new(2);
        let r0 = a.alloc(0, &[1, 2]);
        let r1 = a.alloc(1, &[3, 4]);
        assert!(r1.start as usize >= RING);
        assert!((r0.start as usize) < RING);
    }

    #[test]
    fn wraps_to_keep_spans_contiguous() {
        let mut a = AddrArena::new(1);
        // Fill almost the whole ring, then allocate a span that cannot fit
        // in the remainder: it must wrap to offset 0, not straddle.
        let chunk = vec![9u64; RING - 4];
        a.alloc(0, &chunk);
        let r = a.alloc(0, &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(r.start, 0);
        assert_eq!(a.slice(r), &[1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn empty_spans_are_fine() {
        let mut a = AddrArena::new(1);
        let r = a.alloc(0, &[]);
        assert!(a.slice(r).is_empty());
    }
}
