//! The block engine: lazy superblock compilation and threaded-code
//! execution of hot paths, bit-exact against the interpreter.
//!
//! # Block discovery
//!
//! Blocks are discovered lazily at *executed entry points*: whenever the
//! engine is asked to run from a PC with no cached block, it compiles a
//! straight-line run of micro-ops starting there. A block extends until
//! the first of:
//!
//! * a control transfer (conditional branch, `j`/`jal`/`jr`/`jalr`) —
//!   included as the block's terminator;
//! * a stateful instruction (`barrier`, `halt`, `vltcfg`) — excluded;
//!   the block ends just before it and the [`crate::FuncSim`] driver
//!   executes it through the interpreter (rendezvous and repartition need
//!   driver-level state);
//! * the [`MAX_UOPS`] cap, which bounds run-ahead (and so the number of
//!   queued-but-unconsumed element-address spans in the
//!   [`AddrArena`] ring);
//! * the end of the text segment.
//!
//! Because entry points are execution-driven rather than leader-driven,
//! blocks may overlap (a branch into the middle of an existing block
//! simply compiles a new suffix block) — the superblock trade: a little
//! duplicated compilation for straight-line execution with no mid-block
//! entry checks.
//!
//! # Direct links
//!
//! Each block caches the block index of its fall-through and taken-path
//! successors, resolved on first use. In steady state, chained execution
//! follows block → block links with no PC lookup at all; only dynamic
//! jumps (`jr`/`jalr`) re-resolve through the dense PC→index table.
//!
//! # Exactness
//!
//! µop execution (see [`crate::uop`]) updates the architectural state and
//! emits [`DynInst`] records exactly as [`crate::interp::step`] would,
//! including arena allocation order — so the trace handed to the timing
//! models is byte-identical, and the interpreter remains a drop-in
//! cross-validation oracle.

use vlt_isa::OpClass;

use crate::arena::AddrArena;
use crate::error::ExecError;
use crate::memory::Memory;
use crate::program::DecodedProgram;
use crate::state::ArchState;
use crate::trace::{DynInst, DynKind};
use crate::uop::{self, Uop};

/// Upper bound on µops per block. Bounds the engine's run-ahead when the
/// timing driver consumes instructions one at a time: at most one block of
/// architectural state change is buffered ahead of the replay point, and
/// at most `MAX_UOPS` element-address spans sit unconsumed in the arena
/// ring (well inside its slack — see [`crate::arena`]).
pub const MAX_UOPS: usize = 128;

/// `link`/`by_sidx` sentinel: not yet resolved/compiled.
const UNCOMPILED: u32 = u32::MAX;
/// `link`/`by_sidx` sentinel: resolved, and the target does not start a
/// block (stateful instruction or out-of-text PC) — execute via the
/// interpreter.
const NO_BLOCK: u32 = u32::MAX - 1;

/// How a compiled block hands off control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Term {
    /// Fall through to the next static instruction (cap, end of text, or
    /// a stateful successor).
    Fall,
    /// Ends in a branch or direct jump: both successor PCs are static.
    Static,
    /// Ends in `jr`/`jalr`: the successor is dynamic, re-resolved each
    /// execution.
    Dyn,
}

/// One compiled block: a straight-line µop sequence plus successor links.
#[derive(Debug)]
struct CBlock {
    /// Static index of the first instruction.
    start_sidx: u32,
    /// PC of the first instruction.
    start_pc: u64,
    /// The threaded-code body; the last µop may be a control transfer.
    uops: Box<[Uop]>,
    /// Terminator classification.
    term: Term,
    /// Block index of the fall-through successor ([`UNCOMPILED`] until
    /// first needed).
    link_fall: u32,
    /// Block index of the taken-path successor.
    link_taken: u32,
}

/// Lazily populated cache of compiled blocks for one program.
#[derive(Debug)]
pub struct BlockCache {
    /// Static index → block index ([`UNCOMPILED`] / [`NO_BLOCK`]
    /// sentinels). Dense: one slot per static instruction.
    by_sidx: Vec<u32>,
    blocks: Vec<CBlock>,
}

impl BlockCache {
    /// An empty cache for a program with `text_len` static instructions.
    pub fn new(text_len: usize) -> Self {
        BlockCache { by_sidx: vec![UNCOMPILED; text_len], blocks: Vec::new() }
    }

    /// Number of blocks compiled so far (observability/tests).
    pub fn compiled_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Block index for an entry at `sidx`, compiling on first use.
    fn ensure(&mut self, prog: &DecodedProgram, sidx: usize) -> u32 {
        let cached = self.by_sidx[sidx];
        if cached != UNCOMPILED {
            return cached;
        }
        let bi = match compile_block(prog, sidx) {
            Some(b) => {
                self.blocks.push(b);
                (self.blocks.len() - 1) as u32
            }
            None => NO_BLOCK,
        };
        self.by_sidx[sidx] = bi;
        bi
    }

    /// Resolve the block starting at `pc` (out-of-text PCs are
    /// [`NO_BLOCK`]: the caller's interpreter step reports the fault with
    /// its usual provenance).
    fn resolve_pc(&mut self, prog: &DecodedProgram, pc: u64) -> u32 {
        match prog.index_of(pc) {
            Some(sidx) => self.ensure(prog, sidx),
            None => NO_BLOCK,
        }
    }

    /// Execute compiled blocks from `st.pc`, feeding every emitted
    /// [`DynInst`] to `sink` in execution order. With `chain` set, keeps
    /// following successor links until the next instruction has no block
    /// (barrier/halt/vltcfg or a wild PC); otherwise runs exactly one
    /// block. Returns whether any block ran — `false` means the caller
    /// must take one interpreter step instead.
    ///
    /// A `sink` error (the driver's instruction budget) aborts after the
    /// current µop, with the architectural state advanced through it —
    /// the same truncation point the interpreter driver produces.
    pub fn run<F: FnMut(DynInst) -> Result<(), ExecError>>(
        &mut self,
        st: &mut ArchState,
        mem: &mut Memory,
        prog: &DecodedProgram,
        arena: &mut AddrArena,
        chain: bool,
        sink: &mut F,
    ) -> Result<bool, ExecError> {
        let mut ran = false;
        let mut bi = self.resolve_pc(prog, st.pc);
        while bi < NO_BLOCK {
            ran = true;
            let mut taken = false;
            let blk = &self.blocks[bi as usize];
            debug_assert_eq!(blk.start_pc, st.pc, "block entered at the wrong pc");
            let (start_sidx, start_pc) = (blk.start_sidx, blk.start_pc);
            for (k, &u) in blk.uops.iter().enumerate() {
                let pc = start_pc + 4 * k as u64;
                let d = uop::exec(u, start_sidx + k as u32, pc, st, mem, prog, arena)?;
                if let DynKind::Branch { taken: t, .. } = d.kind {
                    taken = t;
                }
                sink(d)?;
            }
            // Follow the successor link, resolving it on first use. After
            // the µop loop `st.pc` is already the successor PC, so a
            // fresh resolution is always consistent with the cached link.
            let term = self.blocks[bi as usize].term;
            bi = match term {
                Term::Dyn => self.resolve_pc(prog, st.pc),
                Term::Fall | Term::Static => {
                    let want_taken = term == Term::Static && taken;
                    let b = &self.blocks[bi as usize];
                    let link = if want_taken { b.link_taken } else { b.link_fall };
                    if link != UNCOMPILED {
                        link
                    } else {
                        let link = self.resolve_pc(prog, st.pc);
                        let b = &mut self.blocks[bi as usize];
                        if want_taken {
                            b.link_taken = link;
                        } else {
                            b.link_fall = link;
                        }
                        link
                    }
                }
            };
            debug_assert!(
                bi >= NO_BLOCK || self.blocks[bi as usize].start_pc == st.pc,
                "stale successor link"
            );
            if !chain {
                break;
            }
        }
        Ok(ran)
    }
}

/// Compile a block entered at `start`, or `None` when the entry
/// instruction is stateful (always interpreted).
fn compile_block(prog: &DecodedProgram, start: usize) -> Option<CBlock> {
    let mut uops = Vec::new();
    let mut term = Term::Fall;
    let mut i = start;
    while i < prog.len() && uops.len() < MAX_UOPS {
        let si = prog.get(i);
        let Some(u) = uop::compile(si) else { break };
        uops.push(u);
        if matches!(si.class, OpClass::Branch | OpClass::Jump) {
            term = if matches!(u, Uop::JmpR { .. }) { Term::Dyn } else { Term::Static };
            break;
        }
        i += 1;
    }
    if uops.is_empty() {
        return None;
    }
    Some(CBlock {
        start_sidx: start as u32,
        start_pc: prog.get(start).pc,
        uops: uops.into_boxed_slice(),
        term,
        link_fall: UNCOMPILED,
        link_taken: UNCOMPILED,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::Memory;
    use vlt_isa::asm::assemble;

    fn setup(src: &str) -> (std::sync::Arc<DecodedProgram>, ArchState, Memory, AddrArena) {
        let p = assemble(src).unwrap();
        let d = DecodedProgram::new(&p);
        let st = ArchState::new(p.entry, 0, 1);
        let mem = Memory::load(&p);
        (d, st, mem, AddrArena::new(1))
    }

    #[test]
    fn blocks_end_at_control_transfers_and_barriers() {
        let (d, _, _, _) =
            setup("li x1, 1\nadd x2, x1, x1\nbeq x1, x2, done\nnop\nbarrier\ndone:\nhalt\n");
        let b = compile_block(&d, 0).unwrap();
        assert_eq!(b.uops.len(), 3); // li, add, beq (terminator included)
        assert_eq!(b.term, Term::Static);
        let b = compile_block(&d, 3).unwrap();
        assert_eq!(b.uops.len(), 1); // nop; barrier excluded
        assert_eq!(b.term, Term::Fall);
        assert!(compile_block(&d, 4).is_none()); // barrier entry
        assert!(compile_block(&d, 5).is_none()); // halt entry
    }

    #[test]
    fn run_streams_insts_and_stops_before_halt() {
        let (d, mut st, mut mem, mut arena) = setup("li x1, 7\nadd x2, x1, x1\nhalt\n");
        let mut cache = BlockCache::new(d.len());
        let mut out = Vec::new();
        let ran = cache
            .run(&mut st, &mut mem, &d, &mut arena, true, &mut |di| {
                out.push(di);
                Ok(())
            })
            .unwrap();
        assert!(ran);
        assert_eq!(out.len(), 2);
        assert_eq!(st.x[2], 14);
        assert_eq!(st.pc, d.get(2).pc); // parked at the halt, uninterpreted
        assert!(!st.halted);
    }

    #[test]
    fn links_chain_loops_without_recompilation() {
        // A 3-iteration countdown loop: one body block, self-linked.
        let src = "li x1, 3\nloop:\naddi x1, x1, -1\nbne x1, x0, loop\nhalt\n";
        let (d, mut st, mut mem, mut arena) = setup(src);
        let mut cache = BlockCache::new(d.len());
        let mut n = 0u64;
        cache
            .run(&mut st, &mut mem, &d, &mut arena, true, &mut |_| {
                n += 1;
                Ok(())
            })
            .unwrap();
        assert_eq!(st.x[1], 0);
        assert_eq!(n, 1 + 3 * 2); // li + 3x (addi, bne)
        assert!(cache.compiled_blocks() <= 3);
    }

    #[test]
    fn sink_error_aborts_mid_block() {
        let (d, mut st, mut mem, mut arena) = setup("li x1, 1\nli x2, 2\nli x3, 3\nhalt\n");
        let mut cache = BlockCache::new(d.len());
        let mut n = 0;
        let r = cache.run(&mut st, &mut mem, &d, &mut arena, true, &mut |_| {
            n += 1;
            if n == 2 {
                Err(ExecError::Budget { executed: 2 })
            } else {
                Ok(())
            }
        });
        assert!(matches!(r, Err(ExecError::Budget { .. })));
        assert_eq!(st.x[2], 2); // the second li committed before the abort
        assert_eq!(st.x[3], 0);
    }
}
