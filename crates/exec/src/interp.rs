//! The instruction interpreter: architecturally exact execution of one
//! instruction, producing the dynamic record the timing models replay.
//!
//! Semantics notes:
//!
//! * Integer arithmetic wraps (two's complement, 64-bit).
//! * `div`/`rem` by zero produce `-1` / the dividend (no trap).
//! * Shift amounts use the low 6 bits.
//! * Masked-off vector elements keep their previous destination value.
//! * Vector compares write mask bits `0..vl`; higher bits are untouched.
//! * `vextract`/`vinsert` indices wrap modulo [`MAX_VL`].

use vlt_isa::{Op, MAX_VL};

use crate::arena::AddrArena;
use crate::error::ExecError;
use crate::memory::Memory;
use crate::program::DecodedProgram;
use crate::state::ArchState;
use crate::trace::{DynInst, DynKind};

/// Execute the instruction at `st.pc`, updating `st` and `mem`. Vector
/// memory instructions record their element addresses into `arena` under
/// the thread's ring segment.
///
/// The caller (the [`crate::FuncSim`] driver) is responsible for barrier
/// rendezvous; this function simply reports the barrier and moves on.
pub fn step(
    st: &mut ArchState,
    mem: &mut Memory,
    prog: &DecodedProgram,
    arena: &mut AddrArena,
) -> Result<DynInst, ExecError> {
    let sidx = prog.index_of(st.pc).ok_or(ExecError::BadPc { tid: st.tid, pc: st.pc })? as u32;
    let si = prog.get(sidx as usize);
    let inst = si.inst;
    let pc = st.pc;
    let (rd, rs1, rs2, imm) = (inst.rd, inst.rs1, inst.rs2, inst.imm as i64);
    let masked = inst.masked;

    let mut kind = DynKind::Plain;
    let mut vl_field: u16 = 0;
    let mut next = pc + 4;

    macro_rules! branch {
        ($cond:expr) => {{
            let taken = $cond;
            let target = (pc as i64 + 4 * imm) as u64;
            if taken {
                next = target;
            }
            kind = DynKind::Branch { taken, target };
        }};
    }

    // Vector helpers. All respect the current vl and (when `masked`) vm.
    macro_rules! vv {
        ($f:expr) => {{
            vl_field = st.vl as u16;
            for e in 0..st.vl {
                if st.lane_enabled(masked, e) {
                    let a = st.v[rs1 as usize][e];
                    let b = st.v[rs2 as usize][e];
                    st.v[rd as usize][e] = $f(a, b);
                }
            }
            kind = DynKind::Vector;
        }};
    }
    macro_rules! vs {
        ($f:expr, $scalar:expr) => {{
            vl_field = st.vl as u16;
            let s = $scalar;
            for e in 0..st.vl {
                if st.lane_enabled(masked, e) {
                    let a = st.v[rs1 as usize][e];
                    st.v[rd as usize][e] = $f(a, s);
                }
            }
            kind = DynKind::Vector;
        }};
    }
    macro_rules! vcmp {
        ($f:expr) => {{
            vl_field = st.vl as u16;
            for e in 0..st.vl {
                let a = st.v[rs1 as usize][e];
                let b = st.v[rs2 as usize][e];
                if $f(a, b) {
                    st.vm |= 1 << e;
                } else {
                    st.vm &= !(1 << e);
                }
            }
            kind = DynKind::Vector;
        }};
    }

    // f64 views of raw element bits.
    #[inline]
    fn ff(f: impl Fn(f64, f64) -> f64) -> impl Fn(u64, u64) -> u64 {
        move |a, b| f(f64::from_bits(a), f64::from_bits(b)).to_bits()
    }

    match inst.op {
        Op::Nop => {}
        Op::Halt => {
            st.halted = true;
            kind = DynKind::Halt;
        }
        Op::Barrier => kind = DynKind::Barrier,
        Op::Tid => st.set_x(rd, st.tid as u64),
        Op::Nthr => st.set_x(rd, st.nthr as u64),
        Op::VltCfg => {
            let v = st.get_x(rs1);
            let Some(h) = vlt_isa::vltcfg::unpack(v) else {
                return Err(ExecError::BadVltCfg { tid: st.tid, threads: v });
            };
            st.mvl = vlt_isa::vltcfg::effective_mvl(MAX_VL, h);
            st.vl = st.vl.min(st.mvl);
            kind = DynKind::VltCfg { threads: h.threads, clusters: h.clusters };
        }
        Op::SetVl => {
            let req = st.get_x(rs1);
            if req == 0 {
                return Err(ExecError::ZeroVl { tid: st.tid, pc });
            }
            st.vl = (req as usize).min(st.mvl);
            st.set_x(rd, st.vl as u64);
        }
        Op::GetVl => st.set_x(rd, st.vl as u64),
        Op::Region => st.region = inst.imm as u32,

        Op::Add => st.set_x(rd, st.get_x(rs1).wrapping_add(st.get_x(rs2))),
        Op::Sub => st.set_x(rd, st.get_x(rs1).wrapping_sub(st.get_x(rs2))),
        Op::Mul => st.set_x(rd, st.get_x(rs1).wrapping_mul(st.get_x(rs2))),
        Op::Div => {
            let (a, b) = (st.get_x(rs1) as i64, st.get_x(rs2) as i64);
            st.set_x(rd, if b == 0 { u64::MAX } else { a.wrapping_div(b) as u64 });
        }
        Op::Rem => {
            let (a, b) = (st.get_x(rs1) as i64, st.get_x(rs2) as i64);
            st.set_x(rd, if b == 0 { a as u64 } else { a.wrapping_rem(b) as u64 });
        }
        Op::And => st.set_x(rd, st.get_x(rs1) & st.get_x(rs2)),
        Op::Or => st.set_x(rd, st.get_x(rs1) | st.get_x(rs2)),
        Op::Xor => st.set_x(rd, st.get_x(rs1) ^ st.get_x(rs2)),
        Op::Sll => st.set_x(rd, st.get_x(rs1) << (st.get_x(rs2) & 63)),
        Op::Srl => st.set_x(rd, st.get_x(rs1) >> (st.get_x(rs2) & 63)),
        Op::Sra => st.set_x(rd, ((st.get_x(rs1) as i64) >> (st.get_x(rs2) & 63)) as u64),
        Op::Slt => st.set_x(rd, ((st.get_x(rs1) as i64) < (st.get_x(rs2) as i64)) as u64),
        Op::Sltu => st.set_x(rd, (st.get_x(rs1) < st.get_x(rs2)) as u64),

        Op::Addi => st.set_x(rd, st.get_x(rs1).wrapping_add(imm as u64)),
        Op::Andi => st.set_x(rd, st.get_x(rs1) & imm as u64),
        Op::Ori => st.set_x(rd, st.get_x(rs1) | imm as u64),
        Op::Xori => st.set_x(rd, st.get_x(rs1) ^ imm as u64),
        Op::Slli => st.set_x(rd, st.get_x(rs1) << (imm as u64 & 63)),
        Op::Srli => st.set_x(rd, st.get_x(rs1) >> (imm as u64 & 63)),
        Op::Srai => st.set_x(rd, ((st.get_x(rs1) as i64) >> (imm as u64 & 63)) as u64),
        Op::Slti => st.set_x(rd, ((st.get_x(rs1) as i64) < imm) as u64),
        Op::Lui => st.set_x(rd, (imm << 13) as u64),

        Op::Ld | Op::Lw | Op::Lwu | Op::Lb | Op::Lbu => {
            let addr = st.get_x(rs1).wrapping_add(imm as u64);
            let (v, size) = match inst.op {
                Op::Ld => (mem.read_u64(addr), 8),
                Op::Lw => (mem.read_u32(addr) as i32 as i64 as u64, 4),
                Op::Lwu => (mem.read_u32(addr) as u64, 4),
                Op::Lb => (mem.read_u8(addr) as i8 as i64 as u64, 1),
                _ => (mem.read_u8(addr) as u64, 1),
            };
            st.set_x(rd, v);
            kind = DynKind::Mem { addr, size };
        }
        Op::Fld => {
            let addr = st.get_x(rs1).wrapping_add(imm as u64);
            st.f[rd as usize] = mem.read_f64(addr);
            kind = DynKind::Mem { addr, size: 8 };
        }
        Op::Sd | Op::Sw | Op::Sb => {
            let addr = st.get_x(rs1).wrapping_add(imm as u64);
            let v = st.get_x(rd);
            let size = match inst.op {
                Op::Sd => {
                    mem.write_u64(addr, v);
                    8
                }
                Op::Sw => {
                    mem.write_u32(addr, v as u32);
                    4
                }
                _ => {
                    mem.write_u8(addr, v as u8);
                    1
                }
            };
            kind = DynKind::Mem { addr, size };
        }
        Op::Fsd => {
            let addr = st.get_x(rs1).wrapping_add(imm as u64);
            mem.write_f64(addr, st.f[rd as usize]);
            kind = DynKind::Mem { addr, size: 8 };
        }

        Op::Beq => branch!(st.get_x(rs1) == st.get_x(rs2)),
        Op::Bne => branch!(st.get_x(rs1) != st.get_x(rs2)),
        Op::Blt => branch!((st.get_x(rs1) as i64) < (st.get_x(rs2) as i64)),
        Op::Bge => branch!((st.get_x(rs1) as i64) >= (st.get_x(rs2) as i64)),
        Op::Bltu => branch!(st.get_x(rs1) < st.get_x(rs2)),
        Op::Bgeu => branch!(st.get_x(rs1) >= st.get_x(rs2)),
        Op::J | Op::Jal => {
            if inst.op == Op::Jal {
                st.set_x(31, pc + 4);
            }
            let target = (pc as i64 + 4 * imm) as u64;
            next = target;
            kind = DynKind::Branch { taken: true, target };
        }
        Op::Jr | Op::Jalr => {
            let target = st.get_x(rs1);
            if inst.op == Op::Jalr {
                st.set_x(rd, pc + 4);
            }
            next = target;
            kind = DynKind::Branch { taken: true, target };
        }

        Op::Fadd => st.f[rd as usize] = st.f[rs1 as usize] + st.f[rs2 as usize],
        Op::Fsub => st.f[rd as usize] = st.f[rs1 as usize] - st.f[rs2 as usize],
        Op::Fmul => st.f[rd as usize] = st.f[rs1 as usize] * st.f[rs2 as usize],
        Op::Fdiv => st.f[rd as usize] = st.f[rs1 as usize] / st.f[rs2 as usize],
        Op::Fmin => st.f[rd as usize] = st.f[rs1 as usize].min(st.f[rs2 as usize]),
        Op::Fmax => st.f[rd as usize] = st.f[rs1 as usize].max(st.f[rs2 as usize]),
        Op::Fma => {
            st.f[rd as usize] = st.f[rs1 as usize].mul_add(st.f[rs2 as usize], st.f[rd as usize])
        }
        Op::Fsqrt => st.f[rd as usize] = st.f[rs1 as usize].sqrt(),
        Op::Fneg => st.f[rd as usize] = -st.f[rs1 as usize],
        Op::Fabs => st.f[rd as usize] = st.f[rs1 as usize].abs(),
        Op::Fmov => st.f[rd as usize] = st.f[rs1 as usize],
        Op::Feq => st.set_x(rd, (st.f[rs1 as usize] == st.f[rs2 as usize]) as u64),
        Op::Flt => st.set_x(rd, (st.f[rs1 as usize] < st.f[rs2 as usize]) as u64),
        Op::Fle => st.set_x(rd, (st.f[rs1 as usize] <= st.f[rs2 as usize]) as u64),
        Op::FcvtFx => st.f[rd as usize] = st.get_x(rs1) as i64 as f64,
        Op::FcvtXf => st.set_x(rd, st.f[rs1 as usize] as i64 as u64),

        Op::VaddVV => vv!(|a: u64, b: u64| a.wrapping_add(b)),
        Op::VsubVV => vv!(|a: u64, b: u64| a.wrapping_sub(b)),
        Op::VmulVV => vv!(|a: u64, b: u64| a.wrapping_mul(b)),
        Op::VandVV => vv!(|a, b| a & b),
        Op::VorVV => vv!(|a, b| a | b),
        Op::VxorVV => vv!(|a, b| a ^ b),
        Op::VsllVV => vv!(|a: u64, b: u64| a << (b & 63)),
        Op::VsrlVV => vv!(|a: u64, b: u64| a >> (b & 63)),
        Op::VsraVV => vv!(|a: u64, b: u64| ((a as i64) >> (b & 63)) as u64),
        Op::VminVV => vv!(|a: u64, b: u64| (a as i64).min(b as i64) as u64),
        Op::VmaxVV => vv!(|a: u64, b: u64| (a as i64).max(b as i64) as u64),

        Op::VaddVS => vs!(|a: u64, s: u64| a.wrapping_add(s), st.get_x(rs2)),
        Op::VsubVS => vs!(|a: u64, s: u64| a.wrapping_sub(s), st.get_x(rs2)),
        Op::VmulVS => vs!(|a: u64, s: u64| a.wrapping_mul(s), st.get_x(rs2)),
        Op::VandVS => vs!(|a, s| a & s, st.get_x(rs2)),
        Op::VorVS => vs!(|a, s| a | s, st.get_x(rs2)),
        Op::VxorVS => vs!(|a, s| a ^ s, st.get_x(rs2)),
        Op::VsllVS => vs!(|a: u64, s: u64| a << (s & 63), st.get_x(rs2)),
        Op::VsrlVS => vs!(|a: u64, s: u64| a >> (s & 63), st.get_x(rs2)),
        Op::VsraVS => vs!(|a: u64, s: u64| ((a as i64) >> (s & 63)) as u64, st.get_x(rs2)),

        Op::VfaddVV => vv!(ff(|a, b| a + b)),
        Op::VfsubVV => vv!(ff(|a, b| a - b)),
        Op::VfmulVV => vv!(ff(|a, b| a * b)),
        Op::VfdivVV => vv!(ff(|a, b| a / b)),
        Op::VfminVV => vv!(ff(f64::min)),
        Op::VfmaxVV => vv!(ff(f64::max)),
        Op::VfmaVV => {
            vl_field = st.vl as u16;
            for e in 0..st.vl {
                if st.lane_enabled(masked, e) {
                    let acc = f64::from_bits(st.v[rd as usize][e]);
                    let a = f64::from_bits(st.v[rs1 as usize][e]);
                    let b = f64::from_bits(st.v[rs2 as usize][e]);
                    st.v[rd as usize][e] = a.mul_add(b, acc).to_bits();
                }
            }
            kind = DynKind::Vector;
        }
        Op::Vfsqrt => {
            vl_field = st.vl as u16;
            for e in 0..st.vl {
                if st.lane_enabled(masked, e) {
                    st.v[rd as usize][e] = f64::from_bits(st.v[rs1 as usize][e]).sqrt().to_bits();
                }
            }
            kind = DynKind::Vector;
        }

        Op::VfaddVS => vs!(ff(|a, s| a + s), st.f[rs2 as usize].to_bits()),
        Op::VfsubVS => vs!(ff(|a, s| a - s), st.f[rs2 as usize].to_bits()),
        Op::VfmulVS => vs!(ff(|a, s| a * s), st.f[rs2 as usize].to_bits()),
        Op::VfdivVS => vs!(ff(|a, s| a / s), st.f[rs2 as usize].to_bits()),
        Op::VfmaVS => {
            vl_field = st.vl as u16;
            let s = st.f[rs2 as usize];
            for e in 0..st.vl {
                if st.lane_enabled(masked, e) {
                    let acc = f64::from_bits(st.v[rd as usize][e]);
                    let a = f64::from_bits(st.v[rs1 as usize][e]);
                    st.v[rd as usize][e] = a.mul_add(s, acc).to_bits();
                }
            }
            kind = DynKind::Vector;
        }

        Op::Vseq => vcmp!(|a, b| a == b),
        Op::Vsne => vcmp!(|a, b| a != b),
        Op::Vslt => vcmp!(|a: u64, b: u64| (a as i64) < (b as i64)),
        Op::Vsge => vcmp!(|a: u64, b: u64| (a as i64) >= (b as i64)),
        Op::Vfeq => vcmp!(|a, b| f64::from_bits(a) == f64::from_bits(b)),
        Op::Vflt => vcmp!(|a, b| f64::from_bits(a) < f64::from_bits(b)),
        Op::Vfle => vcmp!(|a, b| f64::from_bits(a) <= f64::from_bits(b)),

        Op::Vmnot => {
            st.vm = !st.vm;
            vl_field = st.vl as u16;
            kind = DynKind::Vector;
        }
        Op::Vmset => {
            st.vm = u64::MAX;
            vl_field = st.vl as u16;
            kind = DynKind::Vector;
        }
        Op::Vpopc => {
            let m = vl_mask(st.vl);
            st.set_x(rd, (st.vm & m).count_ones() as u64);
            vl_field = st.vl as u16;
            kind = DynKind::Vector;
        }
        Op::Vmfirst => {
            let m = vl_mask(st.vl);
            let v = st.vm & m;
            st.set_x(rd, if v == 0 { u64::MAX } else { v.trailing_zeros() as u64 });
            vl_field = st.vl as u16;
            kind = DynKind::Vector;
        }
        Op::Vmgetb => {
            st.set_x(rd, st.vm & vl_mask(st.vl));
            vl_field = st.vl as u16;
            kind = DynKind::Vector;
        }
        Op::Vmsetb => {
            st.vm = st.get_x(rs1);
            vl_field = st.vl as u16;
            kind = DynKind::Vector;
        }

        Op::Vmv => {
            vl_field = st.vl as u16;
            for e in 0..st.vl {
                if st.lane_enabled(masked, e) {
                    st.v[rd as usize][e] = st.v[rs1 as usize][e];
                }
            }
            kind = DynKind::Vector;
        }
        Op::Vmerge => {
            vl_field = st.vl as u16;
            for e in 0..st.vl {
                st.v[rd as usize][e] = if (st.vm >> e) & 1 == 1 {
                    st.v[rs1 as usize][e]
                } else {
                    st.v[rs2 as usize][e]
                };
            }
            kind = DynKind::Vector;
        }
        Op::Vid => {
            vl_field = st.vl as u16;
            for e in 0..st.vl {
                st.v[rd as usize][e] = e as u64;
            }
            kind = DynKind::Vector;
        }
        Op::Vsplat => {
            vl_field = st.vl as u16;
            let s = st.get_x(rs1);
            for e in 0..st.vl {
                if st.lane_enabled(masked, e) {
                    st.v[rd as usize][e] = s;
                }
            }
            kind = DynKind::Vector;
        }
        Op::Vfsplat => {
            vl_field = st.vl as u16;
            let s = st.f[rs1 as usize].to_bits();
            for e in 0..st.vl {
                if st.lane_enabled(masked, e) {
                    st.v[rd as usize][e] = s;
                }
            }
            kind = DynKind::Vector;
        }
        Op::Vextract => {
            let idx = st.get_x(rs2) as usize % MAX_VL;
            st.set_x(rd, st.v[rs1 as usize][idx]);
            vl_field = 1;
            kind = DynKind::Vector;
        }
        Op::Vfextract => {
            let idx = st.get_x(rs2) as usize % MAX_VL;
            st.f[rd as usize] = f64::from_bits(st.v[rs1 as usize][idx]);
            vl_field = 1;
            kind = DynKind::Vector;
        }
        Op::Vinsert => {
            let idx = st.get_x(rs1) as usize % MAX_VL;
            st.v[rd as usize][idx] = st.get_x(rs2);
            vl_field = 1;
            kind = DynKind::Vector;
        }
        Op::Vfinsert => {
            let idx = st.get_x(rs1) as usize % MAX_VL;
            st.v[rd as usize][idx] = st.f[rs2 as usize].to_bits();
            vl_field = 1;
            kind = DynKind::Vector;
        }
        Op::VcvtFx => {
            vl_field = st.vl as u16;
            for e in 0..st.vl {
                if st.lane_enabled(masked, e) {
                    st.v[rd as usize][e] = ((st.v[rs1 as usize][e] as i64) as f64).to_bits();
                }
            }
            kind = DynKind::Vector;
        }
        Op::VcvtXf => {
            vl_field = st.vl as u16;
            for e in 0..st.vl {
                if st.lane_enabled(masked, e) {
                    st.v[rd as usize][e] = (f64::from_bits(st.v[rs1 as usize][e]) as i64) as u64;
                }
            }
            kind = DynKind::Vector;
        }

        Op::Vredsum => {
            let mut acc = 0u64;
            for e in 0..st.vl {
                acc = acc.wrapping_add(st.v[rs1 as usize][e]);
            }
            st.set_x(rd, acc);
            vl_field = st.vl as u16;
            kind = DynKind::Vector;
        }
        Op::Vredmin | Op::Vredmax => {
            let mut acc = st.v[rs1 as usize][0] as i64;
            for e in 1..st.vl {
                let v = st.v[rs1 as usize][e] as i64;
                acc = if inst.op == Op::Vredmin { acc.min(v) } else { acc.max(v) };
            }
            st.set_x(rd, acc as u64);
            vl_field = st.vl as u16;
            kind = DynKind::Vector;
        }
        Op::Vfredsum => {
            let mut acc = 0f64;
            for e in 0..st.vl {
                acc += f64::from_bits(st.v[rs1 as usize][e]);
            }
            st.f[rd as usize] = acc;
            vl_field = st.vl as u16;
            kind = DynKind::Vector;
        }
        Op::Vfredmin | Op::Vfredmax => {
            let mut acc = f64::from_bits(st.v[rs1 as usize][0]);
            for e in 1..st.vl {
                let v = f64::from_bits(st.v[rs1 as usize][e]);
                acc = if inst.op == Op::Vfredmin { acc.min(v) } else { acc.max(v) };
            }
            st.f[rd as usize] = acc;
            vl_field = st.vl as u16;
            kind = DynKind::Vector;
        }

        Op::Vld | Op::Vlds | Op::Vldx => {
            let base = st.get_x(rs1);
            let mut addrs = arena.begin(st.tid, st.vl);
            vl_field = st.vl as u16;
            for e in 0..st.vl {
                if !st.lane_enabled(masked, e) {
                    continue;
                }
                let addr = match inst.op {
                    Op::Vld => base + 8 * e as u64,
                    Op::Vlds => base.wrapping_add(st.get_x(rs2).wrapping_mul(e as u64)),
                    _ => base.wrapping_add(st.v[rs2 as usize][e]),
                };
                st.v[rd as usize][e] = mem.read_u64(addr);
                addrs.push(addr);
            }
            kind = DynKind::VMem { addrs: addrs.finish() };
        }
        Op::Vst | Op::Vsts | Op::Vstx => {
            let base = st.get_x(rs1);
            let mut addrs = arena.begin(st.tid, st.vl);
            vl_field = st.vl as u16;
            for e in 0..st.vl {
                if !st.lane_enabled(masked, e) {
                    continue;
                }
                let addr = match inst.op {
                    Op::Vst => base + 8 * e as u64,
                    Op::Vsts => base.wrapping_add(st.get_x(rs2).wrapping_mul(e as u64)),
                    _ => base.wrapping_add(st.v[rs2 as usize][e]),
                };
                mem.write_u64(addr, st.v[rd as usize][e]);
                addrs.push(addr);
            }
            kind = DynKind::VMem { addrs: addrs.finish() };
        }
    }

    st.pc = next;
    Ok(DynInst { sidx, pc, vl: vl_field, kind })
}

/// All-ones mask over the low `vl` bits.
#[inline]
pub(crate) fn vl_mask(vl: usize) -> u64 {
    if vl >= 64 {
        u64::MAX
    } else {
        (1u64 << vl) - 1
    }
}

#[cfg(test)]
mod tests;
