//! Functional-simulation errors.

use std::fmt;

/// Errors raised by the functional simulator.
///
/// The machine is deliberately forgiving about data accesses (reads of
/// unmapped memory return zero, writes allocate), matching the flat physical
/// memory of the simulated system; only control-flow escapes are fatal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The PC left the text segment (fell off the end, jumped wild).
    BadPc {
        /// Faulting thread.
        tid: usize,
        /// The wild program counter.
        pc: u64,
    },
    /// An instruction-count budget was exhausted before all threads halted
    /// (almost always an infinite loop in a workload kernel).
    Budget {
        /// Instructions executed when the budget ran out.
        executed: u64,
    },
    /// `vltcfg` with an operand that is not a valid threads × clusters
    /// encoding (see `vlt_isa::vltcfg`): thread count not 1, 2, 4, or 8,
    /// cluster count not 0, 1, 2, 4, or 8, more clusters than threads, or
    /// reserved bits set.
    BadVltCfg {
        /// Faulting thread.
        tid: usize,
        /// The rejected raw register value.
        threads: u64,
    },
    /// `setvl` request of zero (would make vector ops no-ops silently).
    ZeroVl {
        /// Faulting thread.
        tid: usize,
        /// PC of the offending `setvl`.
        pc: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::BadPc { tid, pc } => {
                write!(f, "thread {tid}: PC {pc:#x} outside text segment")
            }
            ExecError::Budget { executed } => {
                write!(f, "instruction budget exhausted after {executed} instructions")
            }
            ExecError::BadVltCfg { tid, threads } => {
                write!(f, "thread {tid}: vltcfg with invalid operand {threads:#x}")
            }
            ExecError::ZeroVl { tid, pc } => {
                write!(f, "thread {tid}: setvl of 0 at {pc:#x}")
            }
        }
    }
}

impl std::error::Error for ExecError {}
