//! VLT configuration areas (paper Table 2).

use crate::components::AreaModel;

/// The design points of Table 2, named as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VltDesign {
    /// 2 VLT threads, one 2-way-threaded SU.
    V2Smt,
    /// 4 VLT threads, one 4-way-threaded SU.
    V4Smt,
    /// 2 VLT threads, two 4-way SUs.
    V2Cmp,
    /// 2 VLT threads, heterogeneous SUs (4-way + 2-way).
    V2CmpH,
    /// 4 VLT threads, four 4-way SUs.
    V4Cmp,
    /// 4 VLT threads, heterogeneous SUs (one 4-way + three 2-way).
    V4CmpH,
    /// 4 VLT threads, two 2-way-threaded 4-way SUs.
    V4Cmt,
}

impl VltDesign {
    /// All rows of Table 2, in presentation order.
    pub const ALL: &'static [VltDesign] = &[
        VltDesign::V2Smt,
        VltDesign::V4Smt,
        VltDesign::V2Cmp,
        VltDesign::V2CmpH,
        VltDesign::V4Cmp,
        VltDesign::V4CmpH,
        VltDesign::V4Cmt,
    ];

    /// The paper's configuration name.
    pub fn name(self) -> &'static str {
        match self {
            VltDesign::V2Smt => "V2-SMT",
            VltDesign::V4Smt => "V4-SMT",
            VltDesign::V2Cmp => "V2-CMP",
            VltDesign::V2CmpH => "V2-CMP-h",
            VltDesign::V4Cmp => "V4-CMP",
            VltDesign::V4CmpH => "V4-CMP-h",
            VltDesign::V4Cmt => "V4-CMT",
        }
    }

    /// The paper's description column.
    pub fn description(self) -> &'static str {
        match self {
            VltDesign::V2Smt => "2 VLT threads, 1 SMT SU",
            VltDesign::V4Smt => "4 VLT threads, 1 SMT SU",
            VltDesign::V2Cmp => "2 VLT threads, 2 SUs",
            VltDesign::V2CmpH => "2 VLT threads, 2 heter. SUs",
            VltDesign::V4Cmp => "4 VLT threads, 4 SUs",
            VltDesign::V4CmpH => "4 VLT threads, 4 heter. SUs",
            VltDesign::V4Cmt => "4 VLT threads, 2 SMT SUs",
        }
    }

    /// Scalar units of this design as (width, contexts) pairs. All designs
    /// share the base VCL, lanes, and L2 (the VCL is multiplexed, §3.2).
    pub fn scalar_units(self) -> Vec<(usize, usize)> {
        match self {
            VltDesign::V2Smt => vec![(4, 2)],
            VltDesign::V4Smt => vec![(4, 4)],
            VltDesign::V2Cmp => vec![(4, 1); 2],
            VltDesign::V2CmpH => vec![(4, 1), (2, 1)],
            VltDesign::V4Cmp => vec![(4, 1); 4],
            VltDesign::V4CmpH => vec![(4, 1), (2, 1), (2, 1), (2, 1)],
            VltDesign::V4Cmt => vec![(4, 2); 2],
        }
    }
}

/// One computed row of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigArea {
    /// Design point.
    pub design: VltDesign,
    /// Absolute area in mm².
    pub area: f64,
    /// Percentage increase over the base vector processor.
    pub pct_increase: f64,
}

impl ConfigArea {
    /// Compute a Table 2 row with `lanes` vector lanes (the paper uses 8).
    pub fn compute(design: VltDesign, model: &AreaModel, lanes: usize) -> ConfigArea {
        let su: f64 = design.scalar_units().iter().map(|(w, c)| model.scalar_unit(*w, *c)).sum();
        let area = su + model.vcl2 + lanes as f64 * model.lane + model.l2;
        let base = model.base_processor(lanes);
        ConfigArea { design, area, pct_increase: 100.0 * (area - base) / base }
    }

    /// All rows of Table 2.
    pub fn table2(model: &AreaModel, lanes: usize) -> Vec<ConfigArea> {
        VltDesign::ALL.iter().map(|d| ConfigArea::compute(*d, model, lanes)).collect()
    }
}

/// Area of the CMT scalar baseline (§5): the V4-CMT scalar units and the
/// L2, without the vector unit or the VLT support.
pub fn cmt_baseline_area(model: &AreaModel) -> f64 {
    2.0 * model.scalar_unit(4, 2) + model.l2
}

/// Area of the ultra-wide `V8-CMT-{clusters}x{lanes}` design point
/// (DESIGN.md §11): four 2-way-threaded 4-way scalar units, `clusters`
/// replicated lane clusters (each a full VCL + lanes + router port), and
/// the shared L2.
pub fn v8_clustered_area(model: &AreaModel, lanes: usize, clusters: usize) -> f64 {
    4.0 * model.scalar_unit(4, 2) + clusters as f64 * model.cluster(lanes, clusters) + model.l2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct(design: VltDesign) -> f64 {
        ConfigArea::compute(design, &AreaModel::default(), 8).pct_increase
    }

    #[test]
    fn table2_smt_rows() {
        // Paper: V2-SMT 0.8%, V4-SMT 1.3%.
        assert!((pct(VltDesign::V2Smt) - 0.8).abs() < 0.1, "{}", pct(VltDesign::V2Smt));
        assert!((pct(VltDesign::V4Smt) - 1.3).abs() < 0.1, "{}", pct(VltDesign::V4Smt));
    }

    #[test]
    fn table2_cmp_rows() {
        // Paper: V2-CMP 12.3%, V2-CMP-h 3.4%, V4-CMP-h 10.1%.
        assert!((pct(VltDesign::V2Cmp) - 12.3).abs() < 0.1, "{}", pct(VltDesign::V2Cmp));
        assert!((pct(VltDesign::V2CmpH) - 3.4).abs() < 0.1, "{}", pct(VltDesign::V2CmpH));
        assert!((pct(VltDesign::V4CmpH) - 10.1).abs() < 0.1, "{}", pct(VltDesign::V4CmpH));
    }

    #[test]
    fn table2_cmt_row() {
        // Paper: V4-CMT 13.8% (the §7 text rounds it to "13%").
        assert!((pct(VltDesign::V4Cmt) - 13.8).abs() < 0.1, "{}", pct(VltDesign::V4Cmt));
    }

    #[test]
    fn v4_cmp_matches_text_not_table() {
        // Three extra 4-way SUs are 62.7 mm² on a 170.2 mm² base = 36.8%.
        // The paper's *text* says 37%; its Table 2 prints 26.9% — an
        // internal inconsistency we resolve in favour of the arithmetic.
        let p = pct(VltDesign::V4Cmp);
        assert!((p - 36.8).abs() < 0.2, "{p}");
    }

    #[test]
    fn cmt_baseline_relative_sizes() {
        // §5: the CMT is smaller than the base design and ~26% smaller than
        // the VLT V4-CMT.
        let m = AreaModel::default();
        let cmt = cmt_baseline_area(&m);
        let base = m.base_processor(8);
        let v4cmt = ConfigArea::compute(VltDesign::V4Cmt, &m, 8).area;
        assert!(cmt < base);
        let vs_v4cmt = 100.0 * (v4cmt - cmt) / v4cmt;
        assert!((vs_v4cmt - 26.0).abs() < 1.0, "{vs_v4cmt}");
    }

    #[test]
    fn several_designs_under_five_percent() {
        // §4.2: "several VLT configurations for both 2 and 4 vector threads
        // are possible at an area overhead of less than 5%".
        let under: Vec<_> = VltDesign::ALL.iter().filter(|d| pct(**d) < 5.0).collect();
        assert!(under.len() >= 3, "{under:?}");
    }

    #[test]
    fn single_cluster_pricing_is_the_base_processor() {
        // The cluster extension must not perturb any paper figure: one
        // cluster prices no router and reproduces Table 1 exactly.
        let m = AreaModel::default();
        assert_eq!(m.clustered_processor(8, 1), m.base_processor(8));
    }

    #[test]
    fn cluster_replication_is_priced_openly() {
        let m = AreaModel::default();
        let a2 = v8_clustered_area(&m, 8, 2);
        let a4 = v8_clustered_area(&m, 8, 4);
        let a8 = v8_clustered_area(&m, 8, 8);
        assert!(a2 < a4 && a4 < a8);
        // Each doubling adds exactly the replicated clusters (VCL + lanes
        // + router each); the SUs and L2 are shared.
        let cl = m.cluster(8, 2);
        assert!((a4 - a2 - 2.0 * cl).abs() < 1e-9);
        assert!((a8 - a4 - 4.0 * cl).abs() < 1e-9);
        // Wide datapaths dominate: 64 total lanes put the vector engine
        // well past the (shared) L2.
        assert!(8.0 * cl > m.l2);
    }

    #[test]
    fn bigger_l2_shrinks_overhead() {
        // §4.2: "the VLT area overhead decreases further as the on-chip L2
        // cache becomes larger".
        let small = AreaModel::default();
        let big = AreaModel { l2: 2.0 * small.l2, ..small };
        let p_small = ConfigArea::compute(VltDesign::V4Cmt, &small, 8).pct_increase;
        let p_big = ConfigArea::compute(VltDesign::V4Cmt, &big, 8).pct_increase;
        assert!(p_big < p_small);
    }
}
