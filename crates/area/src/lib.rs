#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # vlt-area — the first-order area model (paper §4.2)
//!
//! The paper derives component areas from Alpha die photos (21064/21164/
//! 21264 and the Tarantula vector extension), scaled to 0.10 µm CMOS.
//! Table 1 gives the component areas directly; Table 2 is arithmetic over
//! them plus a 6% / 10% area penalty for 2-way / 4-way multithreading
//! within a scalar processor. This crate re-derives that arithmetic.

pub mod components;
pub mod configs;

pub use components::AreaModel;
pub use configs::{v8_clustered_area, ConfigArea, VltDesign};
