//! Component areas (paper Table 1), in mm² at 0.10 µm.

/// Component areas and multithreading penalties.
///
/// ```
/// use vlt_area::AreaModel;
/// let m = AreaModel::default();
/// assert!((m.base_processor(8) - 170.2).abs() < 0.05); // paper Table 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// 2-way scalar unit + L1 caches.
    pub su2: f64,
    /// 4-way scalar unit + L1 caches.
    pub su4: f64,
    /// 2-way vector control logic.
    pub vcl2: f64,
    /// One vector lane.
    pub lane: f64,
    /// 4 MB L2 cache.
    pub l2: f64,
    /// Area penalty for 2-way multithreading within a scalar core.
    pub smt2_penalty: f64,
    /// Area penalty for 4-way multithreading within a scalar core.
    pub smt4_penalty: f64,
    /// Per-cluster network interface + link slice for the multi-cluster
    /// extension (DESIGN.md §11). Not a Table 1 number — an estimate in the
    /// spirit of the model (about a quarter of a lane); single-cluster
    /// designs pay nothing, so every paper figure is untouched.
    pub router: f64,
}

impl Default for AreaModel {
    /// Paper Table 1 values (plus the §4.2 SMT penalties from its ref. 26).
    fn default() -> Self {
        AreaModel {
            su2: 5.7,
            su4: 20.9,
            vcl2: 2.1,
            lane: 6.1,
            l2: 98.4,
            smt2_penalty: 0.06,
            smt4_penalty: 0.10,
            router: 1.6,
        }
    }
}

impl AreaModel {
    /// Area of one scalar unit: `width` ∈ {2, 4}, `contexts` ∈ {1, 2, 4}.
    pub fn scalar_unit(&self, width: usize, contexts: usize) -> f64 {
        let base = match width {
            2 => self.su2,
            4 => self.su4,
            w => panic!("no area data for a {w}-way scalar unit"),
        };
        let penalty = match contexts {
            1 => 0.0,
            2 => self.smt2_penalty,
            4 => self.smt4_penalty,
            c => panic!("no area data for {c}-way multithreading"),
        };
        base * (1.0 + penalty)
    }

    /// The base vector processor: one 4-way SU, the VCL, `lanes` lanes, and
    /// the L2 (Table 1's 170.2 mm² for 8 lanes).
    pub fn base_processor(&self, lanes: usize) -> f64 {
        self.su4 + self.vcl2 + lanes as f64 * self.lane + self.l2
    }

    /// One replicated lane cluster of the multi-cluster extension: a full
    /// VCL, `lanes` lanes, and (when the machine actually has a network,
    /// i.e. `clusters > 1`) a router port. Replication is priced openly —
    /// nothing about the cluster comes for free.
    pub fn cluster(&self, lanes: usize, clusters: usize) -> f64 {
        let router = if clusters > 1 { self.router } else { 0.0 };
        self.vcl2 + lanes as f64 * self.lane + router
    }

    /// The ultra-wide clustered processor (DESIGN.md §11): one 4-way SU,
    /// `clusters` replicated clusters of `lanes` lanes each, and the L2.
    /// With `clusters == 1` this is exactly [`AreaModel::base_processor`].
    pub fn clustered_processor(&self, lanes: usize, clusters: usize) -> f64 {
        self.su4 + clusters as f64 * self.cluster(lanes, clusters) + self.l2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_totals() {
        let m = AreaModel::default();
        // Table 1: base = 4-way SU + VCL + 8 lanes + L2 = 170.2 mm².
        assert!((m.base_processor(8) - 170.2).abs() < 0.05, "{}", m.base_processor(8));
    }

    #[test]
    fn smt_penalties() {
        let m = AreaModel::default();
        assert_eq!(m.scalar_unit(4, 1), 20.9);
        assert!((m.scalar_unit(4, 2) - 20.9 * 1.06).abs() < 1e-9);
        assert!((m.scalar_unit(4, 4) - 20.9 * 1.10).abs() < 1e-9);
        assert!((m.scalar_unit(2, 1) - 5.7).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn unknown_width_panics() {
        AreaModel::default().scalar_unit(8, 1);
    }

    #[test]
    fn l2_dominates() {
        // §4.2: the L2 and the lanes make up ~86% of the base design.
        let m = AreaModel::default();
        let frac = (m.l2 + 8.0 * m.lane) / m.base_processor(8);
        assert!((0.84..0.89).contains(&frac), "{frac}");
    }
}
