#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! # vlt-obs — the observability layer
//!
//! Turns the [`vlt_core::SimObserver`] spine into a full observability
//! stack without touching the timing model:
//!
//! * [`MetricsObserver`] — publishes counters and fixed-bucket histograms
//!   (vector lengths per region, bank conflicts per bank, barrier-wait
//!   distributions per thread, repartition drain latencies, per-region
//!   stall-cause breakdowns) into a [`vlt_stats::MetricsRegistry`],
//!   serialized as versioned JSON by `vlt-stats`;
//! * [`PerfettoObserver`] — records a Chrome-trace / Perfetto timeline
//!   (`trace.json`): per-thread barrier-wait slices, per-partition vector
//!   issues, per-bank L2 activity, barrier epochs as async spans, and
//!   repartitions as instant events;
//! * [`CpiObserver`] — per-region, per-barrier-epoch, and whole-run CPI
//!   stacks: top-down cycle attribution per unit with an exact
//!   conservation invariant (components sum to the measured budget),
//!   the causal layer `vlprof --whatif` cross-checks against;
//! * [`Multi`] — a composite adapter that fans every hook out to several
//!   observers so sampling, metrics, and tracing share one simulation pass.
//!
//! Every observer here is *passive*: none declares a `next_deadline`
//! tighter than the events it reacts to, so the event-driven driver keeps
//! skipping quiescent spans and results stay byte-identical to an
//! unobserved run (enforced by `tests/equivalence.rs`).

pub mod cpi;
pub mod metrics;
pub mod multi;
pub mod perfetto;

pub use cpi::CpiObserver;
pub use metrics::MetricsObserver;
pub use multi::Multi;
pub use perfetto::PerfettoObserver;
