//! [`PerfettoObserver`]: records a Chrome-trace (Perfetto-loadable)
//! timeline of one simulation run.
//!
//! Mapping of machine activity onto the trace model:
//!
//! * **pid 1 "threads"** — one track per software thread. Barrier waits
//!   are `B`/`E` duration slices; barrier *epochs* (the interval between
//!   consecutive rendezvous) are async `b`/`e` spans on the same process;
//!   repartition requests and applications are instant (`i`) events.
//! * **pid 2 "vector unit"** — one track per lane partition; every vector
//!   issue is a complete (`X`) slice spanning issue→writeback, with the
//!   vector length and issuing thread in `args`.
//! * **pid 3 "L2 banks"** — one track per bank; every access is an `X`
//!   slice (`hit`/`miss`/`conflict`) spanning its bank occupancy.
//! * **pid 4 "lanes"** — one track per physical lane (per cluster); each
//!   vector issue puts an `X` slice on every lane of the issuing
//!   partition, named after the op for active lanes (`lane < vl`) and
//!   `masked` for lanes the short vector length idles. Gaps are true lane
//!   idleness. The physical-lane tid stays stable across repartitions.
//!
//! Timestamps are simulated cycles (Chrome renders them as microseconds;
//! relative magnitudes are what matter). Output is produced by
//! [`PerfettoObserver::into_json`] after the run finishes and is
//! checkable with [`validate_chrome_trace`] — the same function the
//! golden-file tests and the `vlprof` CLI use.

use std::collections::BTreeMap;

use vlt_core::{CycleView, RepartitionEvent, SimObserver, SimResult, VecIssue};
use vlt_mem::BankEvent;
use vlt_stats::json::Json;

const THREADS_PID: u64 = 1;
const VU_PID: u64 = 2;
const L2_PID: u64 = 3;
const LANES_PID: u64 = 4;

/// One Chrome-trace event, flattened to the fields this exporter uses.
#[derive(Debug, Clone)]
struct Ev {
    ph: char,
    name: String,
    cat: &'static str,
    ts: u64,
    dur: Option<u64>,
    pid: u64,
    tid: u64,
    /// Async-span id (`b`/`e` phases only).
    id: Option<u64>,
    args: Vec<(&'static str, f64)>,
}

impl Ev {
    fn to_json(&self) -> Json {
        let mut m = BTreeMap::new();
        m.insert("ph".into(), Json::Str(self.ph.to_string()));
        m.insert("name".into(), Json::Str(self.name.clone()));
        m.insert("cat".into(), Json::Str(self.cat.into()));
        m.insert("ts".into(), Json::Num(self.ts as f64));
        m.insert("pid".into(), Json::Num(self.pid as f64));
        m.insert("tid".into(), Json::Num(self.tid as f64));
        if let Some(d) = self.dur {
            m.insert("dur".into(), Json::Num(d as f64));
        }
        if let Some(id) = self.id {
            m.insert("id".into(), Json::Num(id as f64));
        }
        if self.ph == 'i' {
            // Instants need a scope; "g" renders machine-wide.
            m.insert("s".into(), Json::Str("g".into()));
        }
        if !self.args.is_empty() {
            m.insert(
                "args".into(),
                Json::Obj(self.args.iter().map(|(k, v)| ((*k).into(), Json::Num(*v))).collect()),
            );
        }
        Json::Obj(m)
    }
}

/// Records a Chrome-trace timeline (see module docs for the mapping).
///
/// Passive like every observer in this crate: no `next_deadline`, so the
/// event-driven driver is unhindered and results stay byte-identical to
/// an unobserved run. High-rate slice events (`X`) are capped at
/// `max_events`; structural events (park `B`/`E`, epoch `b`/`e`,
/// instants, metadata) are never dropped, so the trace stays balanced
/// even when truncated — [`PerfettoObserver::dropped`] reports the loss.
#[derive(Debug)]
pub struct PerfettoObserver {
    events: Vec<Ev>,
    max_events: usize,
    dropped: u64,
    epoch: u64,
    park_open: Vec<bool>,
    /// Highest lane-partition and bank tids seen, for metadata naming.
    partitions_seen: u64,
    /// Highest lane cluster seen (+1); 1 on single-cluster machines, whose
    /// track naming stays exactly as before clusters existed.
    clusters_seen: u64,
    banks_seen: u64,
    threads_seen: u64,
    /// Highest physical lane seen (+1) per cluster, for pid-4 naming.
    lanes_seen: u64,
    finished: bool,
}

/// Vector-unit tracks are grouped per cluster:
/// `tid = cluster * CLUSTER_TID + partition`. On single-cluster machines
/// every cluster is 0, so tids (and golden traces) are unchanged.
const CLUSTER_TID: u64 = 256;

impl Default for PerfettoObserver {
    fn default() -> Self {
        Self::new()
    }
}

impl PerfettoObserver {
    /// A tracer with the default 2M-slice cap.
    pub fn new() -> Self {
        Self::with_capacity(2_000_000)
    }

    /// A tracer keeping at most `max_events` high-rate slices.
    pub fn with_capacity(max_events: usize) -> Self {
        let mut t = PerfettoObserver {
            events: Vec::new(),
            max_events,
            dropped: 0,
            epoch: 0,
            park_open: Vec::new(),
            partitions_seen: 0,
            clusters_seen: 1,
            banks_seen: 0,
            threads_seen: 0,
            lanes_seen: 0,
            finished: false,
        };
        // Epoch 0 opens at time zero.
        t.push_structural(Ev {
            ph: 'b',
            name: "epoch".into(),
            cat: "barrier-epoch",
            ts: 0,
            dur: None,
            pid: THREADS_PID,
            tid: 0,
            id: Some(0),
            args: vec![],
        });
        t
    }

    /// High-rate slices dropped to the event cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events recorded (excluding metadata, which is emitted on export).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn push_capped(&mut self, ev: Ev) {
        if self.events.len() >= self.max_events {
            self.dropped += 1;
        } else {
            self.events.push(ev);
        }
    }

    fn push_structural(&mut self, ev: Ev) {
        self.events.push(ev);
    }

    /// Consume the tracer, producing the Chrome-trace JSON document.
    /// Call after the run (the `on_finish` hook closes open spans).
    pub fn into_json(mut self) -> Json {
        let mut meta = Vec::new();
        let process = |name: &str, pid: u64| {
            Ev {
                ph: 'M',
                name: "process_name".into(),
                cat: "__metadata",
                ts: 0,
                dur: None,
                pid,
                tid: 0,
                id: None,
                args: vec![],
            }
            .named_arg(name)
        };
        meta.push(process("threads", THREADS_PID));
        meta.push(process("vector unit", VU_PID));
        meta.push(process("L2 banks", L2_PID));
        if self.lanes_seen > 0 {
            meta.push(process("lanes", LANES_PID));
        }
        let thread = |name: String, pid: u64, tid: u64| {
            Ev {
                ph: 'M',
                name: "thread_name".into(),
                cat: "__metadata",
                ts: 0,
                dur: None,
                pid,
                tid,
                id: None,
                args: vec![],
            }
            .named_arg(&name)
        };
        for t in 0..self.threads_seen {
            meta.push(thread(format!("thread {t}"), THREADS_PID, t));
        }
        if self.clusters_seen <= 1 {
            for p in 0..self.partitions_seen {
                meta.push(thread(format!("partition {p}"), VU_PID, p));
            }
        } else {
            // Per-cluster trace slices: each cluster's partitions group
            // under its own named tracks.
            for c in 0..self.clusters_seen {
                for p in 0..self.partitions_seen {
                    meta.push(thread(
                        format!("cluster {c} partition {p}"),
                        VU_PID,
                        c * CLUSTER_TID + p,
                    ));
                }
            }
        }
        for b in 0..self.banks_seen {
            meta.push(thread(format!("bank {b}"), L2_PID, b));
        }
        for c in 0..self.clusters_seen {
            for l in 0..self.lanes_seen {
                let name = if self.clusters_seen <= 1 {
                    format!("lane {l}")
                } else {
                    format!("cluster {c} lane {l}")
                };
                meta.push(thread(name, LANES_PID, c * CLUSTER_TID + l));
            }
        }
        // Chronological order (stable: same-cycle events keep the driver's
        // emission order, which nests B before E correctly).
        self.events.sort_by_key(|e| e.ts);
        let mut out: Vec<Json> = meta.iter().map(EvWithName::to_json).collect();
        out.extend(self.events.iter().map(Ev::to_json));
        let mut doc = BTreeMap::new();
        doc.insert("traceEvents".into(), Json::Arr(out));
        doc.insert("displayTimeUnit".into(), Json::Str("ns".into()));
        let mut other = BTreeMap::new();
        other.insert("clock".into(), Json::Str("simulated-cycles".into()));
        other.insert("droppedEvents".into(), Json::Num(self.dropped as f64));
        doc.insert("otherData".into(), Json::Obj(other));
        Json::Obj(doc)
    }
}

impl Ev {
    /// Attach a `{"name": ...}` args object (metadata events name their
    /// process/track this way, not through the event's own `name`).
    fn named_arg(mut self, name: &str) -> EvWithName {
        self.cat = "__metadata";
        EvWithName { ev: self, name: name.to_string() }
    }
}

/// A metadata event whose `args.name` is a string (the numeric-args
/// vector on [`Ev`] can't hold it).
#[derive(Debug, Clone)]
struct EvWithName {
    ev: Ev,
    name: String,
}

impl EvWithName {
    fn to_json(&self) -> Json {
        let mut j = self.ev.to_json();
        if let Json::Obj(m) = &mut j {
            let mut args = BTreeMap::new();
            args.insert("name".into(), Json::Str(self.name.clone()));
            m.insert("args".into(), Json::Obj(args));
        }
        j
    }
}

impl SimObserver for PerfettoObserver {
    fn on_barrier(&mut self, now: u64, _releases: u64, _view: &CycleView<'_>) {
        let id = self.epoch;
        self.push_structural(Ev {
            ph: 'e',
            name: "epoch".into(),
            cat: "barrier-epoch",
            ts: now,
            dur: None,
            pid: THREADS_PID,
            tid: 0,
            id: Some(id),
            args: vec![],
        });
        self.epoch += 1;
        let id = self.epoch;
        self.push_structural(Ev {
            ph: 'b',
            name: "epoch".into(),
            cat: "barrier-epoch",
            ts: now,
            dur: None,
            pid: THREADS_PID,
            tid: 0,
            id: Some(id),
            args: vec![],
        });
    }

    fn on_repartition(&mut self, now: u64, ev: &RepartitionEvent) {
        let clamp = if ev.clamped { " (clamped)" } else { "" };
        // Hierarchical requests (or multi-cluster outcomes) spell out the
        // spread; flat single-cluster ones keep the historical name.
        let name = if ev.requested_clusters > 1 || ev.applied_clusters > 1 {
            format!(
                "vltcfg {}x{} -> {}x{}{}",
                ev.requested, ev.requested_clusters, ev.applied, ev.applied_clusters, clamp
            )
        } else {
            format!("vltcfg {} -> {}{}", ev.requested, ev.applied, clamp)
        };
        self.push_structural(Ev {
            ph: 'i',
            name,
            cat: "repartition",
            ts: now,
            dur: None,
            pid: THREADS_PID,
            tid: 0,
            id: None,
            args: vec![],
        });
    }

    fn on_repartition_applied(&mut self, now: u64, drain_latency: u64) {
        self.push_structural(Ev {
            ph: 'i',
            name: format!("repartition applied (drained {drain_latency} cy)"),
            cat: "repartition",
            ts: now,
            dur: None,
            pid: THREADS_PID,
            tid: 0,
            id: None,
            args: vec![("drain", drain_latency as f64)],
        });
    }

    fn on_park(&mut self, now: u64, thread: usize, parked: bool) {
        if thread >= self.park_open.len() {
            self.park_open.resize(thread + 1, false);
        }
        self.threads_seen = self.threads_seen.max(thread as u64 + 1);
        // Transitions alternate by construction, but stay robust: never
        // emit an E without a matching B.
        if parked == self.park_open[thread] {
            return;
        }
        self.park_open[thread] = parked;
        self.push_structural(Ev {
            ph: if parked { 'B' } else { 'E' },
            name: "barrier-wait".into(),
            cat: "barrier",
            ts: now,
            dur: None,
            pid: THREADS_PID,
            tid: thread as u64,
            id: None,
            args: vec![],
        });
    }

    fn on_vec_issue(&mut self, _now: u64, ev: &VecIssue) {
        self.partitions_seen = self.partitions_seen.max(ev.partition as u64 + 1);
        self.clusters_seen = self.clusters_seen.max(ev.cluster as u64 + 1);
        self.push_capped(Ev {
            ph: 'X',
            name: format!("{:?}", ev.class),
            cat: "vu",
            ts: ev.start,
            dur: Some(ev.done.saturating_sub(ev.start).max(1)),
            pid: VU_PID,
            tid: ev.cluster as u64 * CLUSTER_TID + ev.partition as u64,
            id: None,
            args: vec![("vl", ev.vl as f64), ("vthread", ev.vthread as f64)],
        });
        // Per-lane tracks (pid 4): one slice per lane of the issuing
        // partition. `partition * lanes + j` is the *physical* lane — the
        // tid survives repartitioning, so one track shows one lane's whole
        // history.
        let dur = ev.done.saturating_sub(ev.start).max(1);
        for j in 0..ev.lanes {
            let active = j < ev.vl;
            self.lanes_seen =
                self.lanes_seen.max(ev.partition as u64 * ev.lanes as u64 + j as u64 + 1);
            self.push_capped(Ev {
                ph: 'X',
                name: if active { format!("{:?}", ev.class) } else { "masked".into() },
                cat: "lane",
                ts: ev.start,
                dur: Some(dur),
                pid: LANES_PID,
                tid: ev.cluster as u64 * CLUSTER_TID
                    + ev.partition as u64 * ev.lanes as u64
                    + j as u64,
                id: None,
                args: vec![("vl", ev.vl as f64), ("active", active as u64 as f64)],
            });
        }
    }

    fn wants_vec_events(&self) -> bool {
        true
    }

    fn on_mem_access(&mut self, _now: u64, ev: &BankEvent) {
        self.banks_seen = self.banks_seen.max(ev.bank as u64 + 1);
        let name = if ev.conflict {
            "conflict"
        } else if ev.miss {
            "miss"
        } else {
            "hit"
        };
        self.push_capped(Ev {
            ph: 'X',
            name: name.into(),
            cat: "l2",
            ts: ev.start,
            dur: Some(ev.done.saturating_sub(ev.start).max(1)),
            pid: L2_PID,
            tid: ev.bank as u64,
            id: None,
            args: vec![("write", ev.write as u64 as f64)],
        });
    }

    fn wants_mem_events(&self) -> bool {
        true
    }

    fn on_finish(&mut self, result: &SimResult) {
        if self.finished {
            return;
        }
        self.finished = true;
        let end = result.cycles;
        for t in 0..self.park_open.len() {
            if self.park_open[t] {
                self.park_open[t] = false;
                self.push_structural(Ev {
                    ph: 'E',
                    name: "barrier-wait".into(),
                    cat: "barrier",
                    ts: end,
                    dur: None,
                    pid: THREADS_PID,
                    tid: t as u64,
                    id: None,
                    args: vec![],
                });
            }
        }
        let id = self.epoch;
        self.push_structural(Ev {
            ph: 'e',
            name: "epoch".into(),
            cat: "barrier-epoch",
            ts: end,
            dur: None,
            pid: THREADS_PID,
            tid: 0,
            id: Some(id),
            args: vec![],
        });
    }
}

/// Validate a Chrome-trace document: `traceEvents` is an array whose
/// members carry the fields their phase requires, timestamps are
/// non-decreasing (metadata aside), every `B` has a matching `E` per
/// `(pid, tid)` track, and every async `b` span closes with an `e` of
/// the same `(cat, id)`. Returns the first violation.
pub fn validate_chrome_trace(doc: &Json) -> Result<(), String> {
    let events =
        doc.get("traceEvents").and_then(Json::as_arr).ok_or("\"traceEvents\" is not an array")?;
    let mut last_ts = 0f64;
    let mut stacks: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let mut open_async: BTreeMap<(String, u64), u64> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev.get("ph").and_then(Json::as_str).ok_or(format!("event {i}: missing \"ph\""))?;
        let ts = ev.get("ts").and_then(Json::as_f64).ok_or(format!("event {i}: missing \"ts\""))?;
        let pid =
            ev.get("pid").and_then(Json::as_f64).ok_or(format!("event {i}: missing \"pid\""))?;
        let tid =
            ev.get("tid").and_then(Json::as_f64).ok_or(format!("event {i}: missing \"tid\""))?;
        if ev.get("name").and_then(Json::as_str).is_none() {
            return Err(format!("event {i}: missing \"name\""));
        }
        if ph == "M" {
            continue; // metadata is untimed
        }
        if ts < last_ts {
            return Err(format!("event {i}: timestamp {ts} goes backwards (last {last_ts})"));
        }
        last_ts = ts;
        let track = (pid as u64, tid as u64);
        match ph {
            "B" => *stacks.entry(track).or_insert(0) += 1,
            "E" => {
                let depth = stacks.entry(track).or_insert(0);
                if *depth == 0 {
                    return Err(format!("event {i}: E without open B on track {track:?}"));
                }
                *depth -= 1;
            }
            "X" => {
                if ev.get("dur").and_then(Json::as_f64).is_none() {
                    return Err(format!("event {i}: X slice without \"dur\""));
                }
            }
            "b" | "e" => {
                let cat = ev
                    .get("cat")
                    .and_then(Json::as_str)
                    .ok_or(format!("event {i}: async span without \"cat\""))?;
                let id = ev
                    .get("id")
                    .and_then(Json::as_f64)
                    .ok_or(format!("event {i}: async span without \"id\""))?;
                let key = (cat.to_string(), id as u64);
                if ph == "b" {
                    *open_async.entry(key).or_insert(0) += 1;
                } else {
                    let n = open_async.entry(key.clone()).or_insert(0);
                    if *n == 0 {
                        return Err(format!("event {i}: async e without open b for {key:?}"));
                    }
                    *n -= 1;
                }
            }
            "i" => {}
            other => return Err(format!("event {i}: unexpected phase {other:?}")),
        }
    }
    if let Some(((pid, tid), _)) = stacks.iter().find(|(_, d)| **d > 0) {
        return Err(format!("unbalanced B on track ({pid}, {tid})"));
    }
    if let Some((key, _)) = open_async.iter().find(|(_, d)| **d > 0) {
        return Err(format!("unclosed async span {key:?}"));
    }
    Ok(())
}
