//! [`MetricsObserver`]: publishes simulation activity into a
//! [`MetricsRegistry`] as named counters and fixed-bucket histograms.
//!
//! Everything recorded here is *event-sourced* from observer hooks (or
//! read off the final [`SimResult`]), never from extra per-cycle probing,
//! so the observer composes with event-driven idle skipping: cycles that
//! are never simulated produce no events, and the registry contents are
//! identical under both driver modes.
//!
//! ## Metric names
//!
//! | name | kind | meaning |
//! |---|---|---|
//! | `vu.issue.vl.region<r>` | histogram | vector length of each issue, per region |
//! | `vu.issues` | counter | vector instructions issued to functional units |
//! | `vu.repartition.drain` | histogram | cycles each `vltcfg` waited for the VU to drain |
//! | `vu.repartitions` / `vu.repartitions.clamped` | counter | repartition requests (and clamps) |
//! | `barrier.wait.thread<t>` | histogram | park-to-resume latency per software thread |
//! | `barrier.releases` | counter | completed barrier rendezvous |
//! | `stalls.region<r>.<cause>` | counter | stall-cause cycles accrued inside region `r` |
//! | `l2.conflicts.bank<b>` | counter | L2 bank conflicts per bank |
//! | `region<r>.cycles` | counter | cycles attributed to region `r` |
//! | `vu.lane.busy-pct` | histogram | per-lane busy share of the arithmetic datapath budget, in percent |
//! | `vu.lane<l>.busy` / `vu.lane<l>.partly` | counter | physical lane `l`'s busy / partly-idle datapath-cycles |
//! | `sim.cycles` / `sim.committed` | counter | headline run totals |
//!
//! Names are append-only under metrics schema v1: new names may be
//! added, existing names keep their meaning.

use vlt_core::{CycleView, RepartitionEvent, SimObserver, SimResult, StallBreakdown, VecIssue};
use vlt_stats::MetricsRegistry;

/// Vector-length buckets: powers of two up to the full 64-element MVL.
const VL_BOUNDS: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];
/// Barrier-wait buckets, in cycles (geometric, 4x).
const WAIT_BOUNDS: [u64; 7] = [16, 64, 256, 1024, 4096, 16384, 65536];
/// Repartition drain-latency buckets, in cycles.
const DRAIN_BOUNDS: [u64; 5] = [4, 16, 64, 256, 1024];
/// Lane busy-percentage buckets.
const PCT_BOUNDS: [u64; 7] = [5, 10, 25, 50, 75, 90, 100];

/// Collects counters and histograms over one simulation run.
///
/// Passive: declares no `next_deadline`, so the event-driven driver skips
/// exactly as it would for [`vlt_core::NullObserver`] and the simulation
/// result is byte-identical (see `tests/equivalence.rs`).
#[derive(Debug, Default)]
pub struct MetricsObserver {
    reg: MetricsRegistry,
    cur_region: u32,
    last_stalls: StallBreakdown,
    /// Per-thread park cycle, `None` while running.
    park_since: Vec<Option<u64>>,
}

impl MetricsObserver {
    /// A fresh observer with an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The registry collected so far.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.reg
    }

    /// Consume the observer, yielding the registry.
    pub fn into_registry(self) -> MetricsRegistry {
        self.reg
    }

    fn credit_region_stalls(&mut self, stalls: StallBreakdown) {
        let delta = stalls.since(&self.last_stalls);
        for (cause, n) in delta.iter() {
            if n > 0 {
                self.reg.add(&format!("stalls.region{}.{}", self.cur_region, cause.name()), n);
            }
        }
        self.last_stalls = stalls;
    }

    fn end_wait(&mut self, thread: usize, now: u64) {
        if let Some(Some(since)) = self.park_since.get(thread).copied() {
            self.reg
                .histogram(&format!("barrier.wait.thread{thread}"), &WAIT_BOUNDS)
                .record(now.saturating_sub(since));
            self.park_since[thread] = None;
        }
    }
}

impl SimObserver for MetricsObserver {
    fn on_barrier(&mut self, _now: u64, _releases: u64, _view: &CycleView<'_>) {
        self.reg.add("barrier.releases", 1);
    }

    fn on_repartition(&mut self, _now: u64, ev: &RepartitionEvent) {
        self.reg.add("vu.repartitions", 1);
        if ev.clamped {
            self.reg.add("vu.repartitions.clamped", 1);
        }
    }

    fn on_repartition_applied(&mut self, _now: u64, drain_latency: u64) {
        self.reg.histogram("vu.repartition.drain", &DRAIN_BOUNDS).record(drain_latency);
    }

    fn on_region(&mut self, _now: u64, region: u32, view: &CycleView<'_>) {
        // Close the outgoing region's stall window before switching.
        self.credit_region_stalls(view.stalls());
        self.cur_region = region;
    }

    fn on_park(&mut self, now: u64, thread: usize, parked: bool) {
        if thread >= self.park_since.len() {
            self.park_since.resize(thread + 1, None);
        }
        if parked {
            self.park_since[thread] = Some(now);
        } else {
            self.end_wait(thread, now);
        }
    }

    fn on_vec_issue(&mut self, _now: u64, ev: &VecIssue) {
        self.reg.add("vu.issues", 1);
        self.reg
            .histogram(&format!("vu.issue.vl.region{}", self.cur_region), &VL_BOUNDS)
            .record(ev.vl as u64);
    }

    fn wants_vec_events(&self) -> bool {
        true
    }

    fn on_finish(&mut self, result: &SimResult) {
        // Threads still parked when the machine drains (a thread halted
        // while its peers never rejoined) close their waits at the end.
        for t in 0..self.park_since.len() {
            self.end_wait(t, result.cycles);
        }
        self.credit_region_stalls(result.stalls());
        for (bank, n) in result.mem.l2_bank_conflicts.iter().enumerate() {
            if *n > 0 {
                self.reg.add(&format!("l2.conflicts.bank{bank}"), *n);
            }
        }
        for (region, cycles) in &result.region_cycles {
            self.reg.add(&format!("region{region}.cycles"), *cycles);
        }
        if !result.lane_busy.is_empty() && result.cycles > 0 {
            // Each physical lane's datapath budget is 3 arithmetic pipes ×
            // cycles (the per-lane slice of the Figure-4 budget).
            let budget = 3 * result.cycles;
            let hist = self.reg.histogram("vu.lane.busy-pct", &PCT_BOUNDS);
            for busy in &result.lane_busy {
                hist.record(100 * busy / budget);
            }
            for (l, (busy, partly)) in result.lane_busy.iter().zip(&result.lane_partly).enumerate()
            {
                if *busy > 0 {
                    self.reg.add(&format!("vu.lane{l}.busy"), *busy);
                }
                if *partly > 0 {
                    self.reg.add(&format!("vu.lane{l}.partly"), *partly);
                }
            }
        }
        self.reg.add("sim.cycles", result.cycles);
        self.reg.add("sim.committed", result.committed);
    }
}
