//! [`CpiObserver`]: windowed CPI stacks — per-region, per-barrier-epoch,
//! and whole-run top-down cycle attribution with exact conservation.
//!
//! The observer snapshots each unit's cumulative counters at window
//! boundaries (region changes, barrier releases, run end) through the
//! [`CycleView`] and differences consecutive snapshots into
//! [`CpiStack`]s. Everything is event-sourced — no per-cycle probing —
//! so it composes with event-driven idle skipping and never perturbs the
//! simulation.
//!
//! ## Window accounting
//!
//! A hook firing at cycle `t` observes counters that include cycle `t`'s
//! accounting, so a snapshot there represents `t + 1` elapsed cycles; the
//! run-end snapshot represents `result.cycles`. Window length is the
//! difference between consecutive snapshots, which makes every window
//! exactly conserving under both drivers (bulk-credited idle spans land
//! in whichever window observes them). One consequence: a region-change
//! cycle's accounting lands in the *outgoing* region's window (the
//! driver's `region_cycles` assigns that one cycle to the incoming
//! region), so window cycles can differ from `region_cycles` by ±1 per
//! transition — each attribution is self-consistent; they are not
//! interchangeable.
//!
//! ## Units and budgets
//!
//! * `vu` — the vector units merged, budgeted `3 × lanes × clusters`
//!   datapath-cycles per elapsed cycle (the Figure-4 taxonomy): `base` is
//!   busy datapaths, `partly-idle` short-VL idling, and the stall causes
//!   attribute `stalled + all_idle`.
//! * `core<i>` — scalar unit `i`, one cycle per elapsed cycle: `base` is
//!   cycles the front end was not stalled; the causes attribute
//!   `fetch_stall_cycles`.
//! * `lane<i>` — lane core `i` (VLT scalar-thread mode), same shape with
//!   `stall_cycles`.

use std::collections::BTreeMap;

use vlt_core::{CpiStack, CycleView, SimObserver, SimResult, StallBreakdown, Utilization};

/// One boundary snapshot of every unit's cumulative counters.
#[derive(Debug, Default, Clone)]
struct Snap {
    /// Elapsed cycles this snapshot represents.
    cycles: u64,
    util: Utilization,
    vu_stalls: StallBreakdown,
    /// Per-scalar-unit `(fetch_stall_cycles, stalls)`.
    cores: Vec<(u64, StallBreakdown)>,
    /// Per-lane-core `(stall_cycles, stalls)`.
    lanes: Vec<(u64, StallBreakdown)>,
}

impl Snap {
    fn at(cycles: u64, view: &CycleView<'_>) -> Self {
        Snap {
            cycles,
            util: view.utilization(),
            vu_stalls: view.vu_stalls(),
            cores: view.core_stalls(),
            lanes: view.lane_stalls(),
        }
    }

    fn at_finish(result: &SimResult) -> Self {
        Snap {
            cycles: result.cycles,
            util: result.utilization,
            vu_stalls: result.vu_stalls,
            cores: result.cores.iter().map(|c| (c.fetch_stall_cycles, c.stalls)).collect(),
            lanes: result.lanes.iter().map(|l| (l.stall_cycles, l.stalls)).collect(),
        }
    }
}

/// Difference two snapshots into per-unit stacks. `datapaths` is the
/// vector units' per-cycle budget (`3 × lanes × clusters`; 0 without a
/// vector unit, which suppresses the `vu` stack).
fn window_stacks(prev: &Snap, cur: &Snap, datapaths: u64) -> Vec<CpiStack> {
    let da = cur.cycles - prev.cycles;
    let mut out = Vec::with_capacity(1 + cur.cores.len() + cur.lanes.len());
    if datapaths > 0 {
        let mut s = CpiStack::empty("vu");
        s.cycles = datapaths * da;
        s.base = cur.util.busy - prev.util.busy;
        s.partly_idle = cur.util.partly_idle - prev.util.partly_idle;
        s.stalls = cur.vu_stalls.since(&prev.vu_stalls);
        out.push(s);
    }
    for (i, (stall_cycles, stalls)) in cur.cores.iter().enumerate() {
        let (p_sc, p_st) = prev.cores.get(i).cloned().unwrap_or_default();
        let mut s = CpiStack::empty(format!("core{i}"));
        s.cycles = da;
        s.base = da - (stall_cycles - p_sc);
        s.stalls = stalls.since(&p_st);
        out.push(s);
    }
    for (i, (stall_cycles, stalls)) in cur.lanes.iter().enumerate() {
        let (p_sc, p_st) = prev.lanes.get(i).cloned().unwrap_or_default();
        let mut s = CpiStack::empty(format!("lane{i}"));
        s.cycles = da;
        s.base = da - (stall_cycles - p_sc);
        s.stalls = stalls.since(&p_st);
        out.push(s);
    }
    out
}

/// Merge a window's stacks into an accumulator keyed by unit position
/// (the unit set is fixed for a run, so positions align).
fn merge_into(acc: &mut Vec<CpiStack>, window: &[CpiStack]) {
    if acc.is_empty() {
        acc.extend(window.iter().cloned());
        return;
    }
    for (a, w) in acc.iter_mut().zip(window) {
        a.merge(w);
    }
}

/// Collects per-region, per-barrier-epoch, and whole-run CPI stacks over
/// one simulation run (see module docs). Passive: no `next_deadline`, so
/// results stay byte-identical to an unobserved run.
#[derive(Debug, Default)]
pub struct CpiObserver {
    /// Vector-unit datapath budget per cycle, captured at cycle 0
    /// (`on_cycle` always fires there before any skip).
    datapaths: Option<u64>,
    region_snap: Snap,
    cur_region: u32,
    epoch_snap: Snap,
    by_region: BTreeMap<u32, Vec<CpiStack>>,
    by_epoch: Vec<Vec<CpiStack>>,
    total: Vec<CpiStack>,
    finished: bool,
}

impl CpiObserver {
    /// A fresh observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whole-run stacks, one per unit (empty before `on_finish`).
    pub fn total(&self) -> &[CpiStack] {
        &self.total
    }

    /// Per-region stacks (windows of the same region merged), one entry
    /// per unit per region visited.
    pub fn by_region(&self) -> &BTreeMap<u32, Vec<CpiStack>> {
        &self.by_region
    }

    /// Per-barrier-epoch stacks, in epoch order. Epoch `k` spans the
    /// release of barrier `k` (or run start for `k = 0`) to the next
    /// release (or run end).
    pub fn by_epoch(&self) -> &[Vec<CpiStack>] {
        &self.by_epoch
    }

    /// Check exact conservation on every collected stack — whole-run,
    /// every region, every epoch. Returns the first violation.
    pub fn check_conservation(&self) -> Result<(), String> {
        for s in &self.total {
            s.check().map_err(|e| format!("total: {e}"))?;
        }
        for (r, stacks) in &self.by_region {
            for s in stacks {
                s.check().map_err(|e| format!("region {r}: {e}"))?;
            }
        }
        for (k, stacks) in self.by_epoch.iter().enumerate() {
            for s in stacks {
                s.check().map_err(|e| format!("epoch {k}: {e}"))?;
            }
        }
        Ok(())
    }

    /// Export the whole-run and per-region stacks as metric counters:
    /// `cpi.<unit>.{cycles,base,partly-idle,<cause>}` and
    /// `cpi.region<r>.<unit>.<component>` (nonzero components only).
    /// Per-epoch stacks stay programmatic — epochs number in the
    /// thousands on barrier-heavy kernels.
    pub fn export_into(&self, reg: &mut vlt_stats::MetricsRegistry) {
        let emit = |reg: &mut vlt_stats::MetricsRegistry, prefix: &str, s: &CpiStack| {
            reg.add(&format!("{prefix}.cycles"), s.cycles);
            for (label, n) in s.components() {
                if n > 0 {
                    reg.add(&format!("{prefix}.{label}"), n);
                }
            }
        };
        for s in &self.total {
            emit(reg, &format!("cpi.{}", s.unit), s);
        }
        for (r, stacks) in &self.by_region {
            for s in stacks {
                emit(reg, &format!("cpi.region{r}.{}", s.unit), s);
            }
        }
    }

    fn close_windows(&mut self, cur: &Snap, region_done: bool, epoch_done: bool) {
        let dp = self.datapaths.unwrap_or(0);
        if region_done {
            let w = window_stacks(&self.region_snap, cur, dp);
            merge_into(self.by_region.entry(self.cur_region).or_default(), &w);
            self.region_snap = cur.clone();
        }
        if epoch_done {
            self.by_epoch.push(window_stacks(&self.epoch_snap, cur, dp));
            self.epoch_snap = cur.clone();
        }
    }
}

impl SimObserver for CpiObserver {
    fn on_cycle(&mut self, _now: u64, view: &CycleView<'_>) {
        if self.datapaths.is_none() {
            self.datapaths = Some(view.vu_datapaths());
        }
    }

    fn on_region(&mut self, now: u64, region: u32, view: &CycleView<'_>) {
        let cur = Snap::at(now + 1, view);
        self.close_windows(&cur, true, false);
        self.cur_region = region;
    }

    fn on_barrier(&mut self, now: u64, _releases: u64, view: &CycleView<'_>) {
        let cur = Snap::at(now + 1, view);
        self.close_windows(&cur, false, true);
    }

    fn on_finish(&mut self, result: &SimResult) {
        if self.finished {
            return;
        }
        self.finished = true;
        if self.datapaths.is_none() {
            // A run short enough to finish without a single on_cycle.
            self.datapaths = Some(if result.lane_busy.is_empty() {
                0
            } else {
                3 * result.lane_busy.len() as u64
            });
        }
        let cur = Snap::at_finish(result);
        self.close_windows(&cur, true, true);
        self.total = window_stacks(&Snap::default(), &cur, self.datapaths.unwrap_or(0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlt_core::StallCause;

    fn breakdown(entries: &[(StallCause, u64)]) -> StallBreakdown {
        let mut b = StallBreakdown::default();
        for &(c, n) in entries {
            b.add(c, n);
        }
        b
    }

    #[test]
    fn window_stacks_conserve_by_construction() {
        let prev = Snap {
            cycles: 10,
            util: Utilization { busy: 100, partly_idle: 20, stalled: 80, all_idle: 40 },
            vu_stalls: breakdown(&[(StallCause::NoDlp, 120)]),
            cores: vec![(4, breakdown(&[(StallCause::BankConflict, 4)]))],
            lanes: vec![],
        };
        let cur = Snap {
            cycles: 30,
            util: Utilization { busy: 300, partly_idle: 60, stalled: 90, all_idle: 30 },
            vu_stalls: breakdown(&[(StallCause::NoDlp, 310), (StallCause::BarrierWait, 50)]),
            cores: vec![(
                9,
                breakdown(&[(StallCause::BankConflict, 4), (StallCause::ScalarDep, 5)]),
            )],
            lanes: vec![],
        };
        let stacks = window_stacks(&prev, &cur, 24);
        assert_eq!(stacks.len(), 2);
        assert_eq!(stacks[0].unit, "vu");
        assert_eq!(stacks[0].cycles, 24 * 20);
        assert_eq!(stacks[0].base, 200);
        stacks[0].check().unwrap();
        assert_eq!(stacks[1].unit, "core0");
        assert_eq!(stacks[1].cycles, 20);
        assert_eq!(stacks[1].base, 15);
        stacks[1].check().unwrap();
    }

    #[test]
    fn merge_accumulates_by_position() {
        let stack = |n: u64| {
            let mut s = CpiStack::empty("vu");
            s.cycles = n;
            s.base = n;
            s
        };
        let mut a = vec![stack(5)];
        merge_into(&mut a, &[stack(7)]);
        assert_eq!(a[0].cycles, 12);
        a[0].check().unwrap();
    }
}
