//! [`Multi`]: a composite observer that fans every driver hook out to a
//! set of member observers, so sampling, metrics collection, and timeline
//! tracing share one simulation pass instead of three.
//!
//! Composition rules:
//!
//! * `next_deadline` is the **minimum** of the members' deadlines — the
//!   driver may never skip past any member's requested cycle;
//! * `wants_vec_events` / `wants_mem_events` are the **or** of the
//!   members' answers (a member that didn't ask still receives the
//!   deliveries — harmless, its default hooks are no-ops);
//! * every other hook fires on each member in registration order.

use vlt_core::{CycleView, RepartitionEvent, SimObserver, SimResult, VecIssue};
use vlt_mem::BankEvent;

/// Fans observer hooks out to several member observers (see module docs).
#[derive(Default)]
pub struct Multi<'a> {
    members: Vec<&'a mut dyn SimObserver>,
}

impl<'a> Multi<'a> {
    /// An empty composite (behaves like `NullObserver`).
    pub fn new() -> Self {
        Multi { members: Vec::new() }
    }

    /// Add a member; hooks fire in registration order.
    pub fn push(&mut self, obs: &'a mut dyn SimObserver) {
        self.members.push(obs);
    }

    /// Builder-style [`Multi::push`].
    pub fn with(mut self, obs: &'a mut dyn SimObserver) -> Self {
        self.push(obs);
        self
    }

    /// Number of member observers.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no members are registered.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

impl SimObserver for Multi<'_> {
    fn on_cycle(&mut self, now: u64, view: &CycleView<'_>) {
        for m in &mut self.members {
            m.on_cycle(now, view);
        }
    }

    fn next_deadline(&self, now: u64) -> Option<u64> {
        self.members.iter().filter_map(|m| m.next_deadline(now)).min()
    }

    fn on_barrier(&mut self, now: u64, releases: u64, view: &CycleView<'_>) {
        for m in &mut self.members {
            m.on_barrier(now, releases, view);
        }
    }

    fn on_repartition(&mut self, now: u64, ev: &RepartitionEvent) {
        for m in &mut self.members {
            m.on_repartition(now, ev);
        }
    }

    fn on_repartition_applied(&mut self, now: u64, drain_latency: u64) {
        for m in &mut self.members {
            m.on_repartition_applied(now, drain_latency);
        }
    }

    fn on_region(&mut self, now: u64, region: u32, view: &CycleView<'_>) {
        for m in &mut self.members {
            m.on_region(now, region, view);
        }
    }

    fn on_park(&mut self, now: u64, thread: usize, parked: bool) {
        for m in &mut self.members {
            m.on_park(now, thread, parked);
        }
    }

    fn on_vec_issue(&mut self, now: u64, ev: &VecIssue) {
        for m in &mut self.members {
            m.on_vec_issue(now, ev);
        }
    }

    fn wants_vec_events(&self) -> bool {
        self.members.iter().any(|m| m.wants_vec_events())
    }

    fn on_mem_access(&mut self, now: u64, ev: &BankEvent) {
        for m in &mut self.members {
            m.on_mem_access(now, ev);
        }
    }

    fn wants_mem_events(&self) -> bool {
        self.members.iter().any(|m| m.wants_mem_events())
    }

    fn on_finish(&mut self, result: &SimResult) {
        for m in &mut self.members {
            m.on_finish(result);
        }
    }
}
