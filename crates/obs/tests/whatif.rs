//! Causal-profiling soundness: the stall attribution is an *upper bound*
//! on what removing the attributed component can buy. For every
//! idealization knob, the measured cycle gain from turning it on must
//! not exceed the cycles the faithful run attributed to the matching
//! [`StallCause`] — otherwise the taxonomy undercounts that cause and
//! `vlprof --whatif` would report realizations above 100%.
//!
//! And the knobs must be honest in both directions: all-off is
//! byte-identical to a config that never mentions idealization, while
//! each single knob really does change timing on a workload that
//! stresses its component.

use vlt_core::{IdealizeConfig, SimResult, StallCause, System, SystemConfig};
use vlt_workloads::{workload, Scale};

const MAX: u64 = 2_000_000_000;

/// Run `name` at `threads` on `cfg`, verifying the memory image.
fn run(name: &str, cfg: SystemConfig, threads: usize) -> SimResult {
    let built = workload(name).unwrap().build(threads, Scale::Test);
    let mut sys = System::new(cfg, &built.program, threads);
    let r = sys.run(MAX).unwrap();
    (built.verifier)(sys.funcsim()).unwrap_or_else(|e| panic!("{name}: verify failed: {e}"));
    r.check_stall_conservation().unwrap_or_else(|e| panic!("{name}: {e}"));
    r
}

/// `(kernel, config, threads)` pairs that exercise each idealizable
/// cause: spmv's gather traffic for the L2 bank knob, the clustered
/// machine for the network knob, histo's reduction rendezvous for the
/// barrier knob, and sweep's issue pressure for the issue-width knob.
fn cases_for(cause: StallCause) -> Vec<(&'static str, SystemConfig, usize)> {
    // First entry is the kernel that stresses the cause hardest — the
    // liveness test below flips the knob on that one.
    let stressor = match cause {
        StallCause::NetworkContention => {
            return vec![
                ("spmv", SystemConfig::v8_clustered(2), 4),
                ("mxm", SystemConfig::v8_clustered(2), 4),
            ];
        }
        StallCause::BarrierWait => "histo",
        StallCause::IssueWidth => "sweep",
        _ => "spmv",
    };
    let mut cases = vec![(stressor, SystemConfig::v4_cmp(), 4)];
    for name in ["spmv", "mxm", "sweep"] {
        if name != stressor {
            cases.push((name, SystemConfig::v4_cmp(), 4));
        }
    }
    cases
}

/// For every knob and stressing kernel: measured gain ≤ attributed
/// cycles. Idealizations may even *slow* a run (removing one queue can
/// expose another), so the gain saturates at zero — a slowdown trivially
/// satisfies the bound but must still verify.
#[test]
fn whatif_gain_never_exceeds_attribution() {
    for cause in StallCause::ALL {
        let Some(ideal) = IdealizeConfig::for_cause(cause) else { continue };
        for (name, cfg, threads) in cases_for(cause) {
            let base = run(name, cfg.clone(), threads);
            let mut icfg = cfg.clone();
            icfg.ideal = ideal;
            let idealized = run(name, icfg, threads);
            let gain = base.cycles.saturating_sub(idealized.cycles);
            let attributed = base.stalls().get(cause);
            assert!(
                gain <= attributed,
                "{name} on {} ({}): idealizing bought {gain} cycles but only {attributed} \
                 were attributed — the stall taxonomy undercounts this cause",
                cfg.name,
                cause.name(),
            );
        }
    }
}

/// With every knob off the timing model is untouched: an explicitly
/// defaulted `IdealizeConfig` is byte-identical to the stock config.
#[test]
fn idealizations_off_change_nothing() {
    assert!(!IdealizeConfig::default().any());
    let cfg = SystemConfig::v4_cmp();
    let mut explicit = cfg.clone();
    explicit.ideal = IdealizeConfig::default();
    let a = run("spmv", cfg, 4);
    let b = run("spmv", explicit, 4);
    assert_eq!(a, b, "explicitly-default idealization perturbed the run");
}

/// Each knob is live: on a kernel that stresses its component, flipping
/// it changes the stall profile (removing the targeted cause entirely or
/// shifting cycles elsewhere), so the what-if comparison measures a real
/// mechanism rather than a no-op flag.
#[test]
fn each_knob_changes_the_stall_profile() {
    for cause in StallCause::ALL {
        let Some(ideal) = IdealizeConfig::for_cause(cause) else { continue };
        let (name, cfg, threads) = cases_for(cause).remove(0);
        let base = run(name, cfg.clone(), threads);
        let mut icfg = cfg.clone();
        icfg.ideal = ideal;
        let idealized = run(name, icfg, threads);
        assert!(
            base.stalls() != idealized.stalls() || base.cycles != idealized.cycles,
            "{name} on {}: idealizing {} left timing and stalls untouched",
            cfg.name,
            cause.name(),
        );
    }
}
