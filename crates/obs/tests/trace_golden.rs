//! Golden-file checks on the Perfetto exporter: the trace it writes for
//! a known program must be valid Chrome-trace JSON — parseable back from
//! its serialized text, timestamps monotone, duration slices balanced,
//! async spans closed — with the expected structural events present.

use vlt_core::{System, SystemConfig};
use vlt_obs::perfetto::validate_chrome_trace;
use vlt_obs::PerfettoObserver;
use vlt_stats::json::Json;
use vlt_workloads::{workload, Scale};

fn trace_of(prog: &vlt_isa::Program, cfg: SystemConfig, threads: usize) -> Json {
    let mut sys = System::new(cfg, prog, threads);
    let mut obs = PerfettoObserver::new();
    sys.run_observed(2_000_000_000, &mut obs).unwrap();
    obs.into_json()
}

fn events(doc: &Json) -> &[Json] {
    doc.get("traceEvents").and_then(Json::as_arr).unwrap()
}

fn count_where(doc: &Json, pred: impl Fn(&Json) -> bool) -> usize {
    events(doc).iter().filter(|e| pred(e)).count()
}

#[test]
fn dot_example_trace_is_valid_chrome_json() {
    let src =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/asm/dot.s"))
            .unwrap();
    let prog = vlt_isa::asm::assemble(&src).unwrap();
    let doc = trace_of(&prog, SystemConfig::v4_cmp(), 4);

    // Round-trip through the serialized text, then validate the parse-back
    // (what an external consumer sees).
    let text = doc.pretty();
    let back = Json::parse(&text).unwrap();
    validate_chrome_trace(&back).unwrap();

    // dot.s: 4 threads, one barrier between the phases — expect vector
    // issues on the VU process, at least one barrier-wait slice pair, and
    // the epoch async spans around the rendezvous.
    fn is(ph: &'static str) -> impl Fn(&Json) -> bool {
        move |e| e.get("ph").and_then(Json::as_str) == Some(ph)
    }
    assert!(count_where(&back, is("X")) > 0, "no slices in dot.s trace");
    let b = count_where(&back, is("B"));
    let e = count_where(&back, is("E"));
    assert!(b > 0, "no barrier-wait slices");
    assert_eq!(b, e, "unbalanced barrier-wait slices");
    assert!(count_where(&back, is("b")) >= 2, "expected >= 2 barrier epochs");
    assert_eq!(count_where(&back, is("b")), count_where(&back, is("e")));
    // Repartition instants: dot.s issues one vltcfg.
    assert!(count_where(&back, is("i")) >= 1, "no repartition instants");
    // Metadata names every process.
    assert!(count_where(&back, is("M")) >= 3, "missing process metadata");
}

#[test]
fn full_workload_trace_is_valid_chrome_json() {
    let built = workload("mpenc").unwrap().build(2, Scale::Test);
    let doc = trace_of(&built.program, SystemConfig::v2_cmp(), 2);
    let back = Json::parse(&doc.pretty()).unwrap();
    validate_chrome_trace(&back).unwrap();
    // A vectorized workload must produce VU slices and L2 activity.
    let on_pid = |pid: f64| {
        move |e: &Json| {
            e.get("ph").and_then(Json::as_str) == Some("X")
                && e.get("pid").and_then(Json::as_f64) == Some(pid)
        }
    };
    assert!(count_where(&back, on_pid(2.0)) > 0, "no vector-issue slices");
    assert!(count_where(&back, on_pid(3.0)) > 0, "no L2 bank slices");
}

/// The validator itself must reject broken traces (it guards vlprof's
/// output in CI, so a vacuous pass would be worse than none).
#[test]
fn validator_rejects_malformed_traces() {
    let bad_unbalanced = r#"{"traceEvents": [
        {"ph": "B", "name": "w", "cat": "c", "ts": 1.0, "pid": 1.0, "tid": 0.0}
    ]}"#;
    assert!(validate_chrome_trace(&Json::parse(bad_unbalanced).unwrap()).is_err());

    let bad_backwards = r#"{"traceEvents": [
        {"ph": "i", "name": "a", "cat": "c", "ts": 5.0, "pid": 1.0, "tid": 0.0, "s": "g"},
        {"ph": "i", "name": "b", "cat": "c", "ts": 4.0, "pid": 1.0, "tid": 0.0, "s": "g"}
    ]}"#;
    assert!(validate_chrome_trace(&Json::parse(bad_backwards).unwrap()).is_err());

    let bad_async = r#"{"traceEvents": [
        {"ph": "e", "name": "x", "cat": "c", "ts": 1.0, "pid": 1.0, "tid": 0.0, "id": 7.0}
    ]}"#;
    assert!(validate_chrome_trace(&Json::parse(bad_async).unwrap()).is_err());
}
