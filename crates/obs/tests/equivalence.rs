//! Observability must be free of observer effects: running the full
//! metrics + tracing + sampling + CPI stack must leave the simulation
//! byte-identical — same `SimResult`, same final memory image — to an
//! unobserved run, for every workload (the nine Table 4 applications
//! plus the four irregular kernels) and thread configuration including
//! the clustered ultra-wide machine, under the event-driven driver and
//! under **both** functional engines (the block compiler and the
//! interpreter oracle). And because event logging enables extra code
//! paths inside the vector unit and the L2, the event-driven and
//! cycle-by-cycle drivers are cross-checked *with logging on* too,
//! including the metrics registry and trace documents they produce.

use vlt_core::{DriverMode, EngineMode, NullObserver, SimResult, System, SystemConfig};
use vlt_exec::Memory;
use vlt_obs::{CpiObserver, MetricsObserver, Multi, PerfettoObserver};
use vlt_stats::json::Json;
use vlt_workloads::{irregular_suite, suite, Scale, Workload};

const MAX: u64 = 2_000_000_000;

/// The thread configurations a workload supports: the paper's vector
/// design points for vectorizable kernels (plus the two-cluster
/// ultra-wide machine), the CMT scalar baseline and VLT lane-thread
/// mode for the scalar ones.
fn configs(w: &dyn Workload) -> Vec<(SystemConfig, usize)> {
    if w.vectorizable() {
        vec![
            (SystemConfig::base(8), 1),
            (SystemConfig::v2_cmp(), 2),
            (SystemConfig::v4_cmp(), 4),
            // Clustered: partitions spread over two clusters, so the
            // ClusterNet paths must be equally observer-transparent.
            (SystemConfig::v8_clustered(2), 4),
        ]
    } else {
        vec![
            // Single-thread builds may still vectorize their serial phases
            // (radix's 6% vect), so x1 runs on the base vector machine.
            (SystemConfig::base(8), 1),
            (SystemConfig::cmt(), 2),
            (SystemConfig::cmt(), 4),
            (SystemConfig::v4_cmt_lane_threads(), 8),
            (SystemConfig::v8_clustered(2), 1),
        ]
    }
}

fn run_plain(
    w: &dyn Workload,
    cfg: SystemConfig,
    threads: usize,
    engine: EngineMode,
) -> (SimResult, Memory) {
    let built = w.build(threads, Scale::Test);
    let mut sys = System::new(cfg, &built.program, threads).with_engine(engine);
    let r = sys.run_observed(MAX, &mut NullObserver).unwrap();
    (r, sys.funcsim().mem.clone())
}

/// Run with the full stack: sampling + metrics + Perfetto + CPI fanned
/// out through `Multi`. Returns the result, memory, and both documents.
fn run_stacked(
    w: &dyn Workload,
    cfg: SystemConfig,
    threads: usize,
    mode: DriverMode,
    engine: EngineMode,
) -> (SimResult, Memory, Json, Json) {
    let built = w.build(threads, Scale::Test);
    let mut sys = System::new(cfg, &built.program, threads).with_driver(mode).with_engine(engine);
    let mut sampler = vlt_core::SamplingObserver::new(997);
    let mut metrics = MetricsObserver::new();
    let mut trace = PerfettoObserver::new();
    let mut cpi = CpiObserver::new();
    let mut multi =
        Multi::new().with(&mut sampler).with(&mut metrics).with(&mut trace).with(&mut cpi);
    let r = sys.run_observed(MAX, &mut multi).unwrap();
    drop(multi);
    cpi.check_conservation().unwrap_or_else(|e| panic!("{} x{threads}: CPI {e}", w.name()));
    (r, sys.funcsim().mem.clone(), metrics.into_registry().to_json(), trace.into_json())
}

/// Tentpole acceptance: observer-on and observer-off runs are
/// byte-identical (result and final memory) for all thirteen workloads
/// at every supported thread count, under the event-driven driver, for
/// both functional engines.
#[test]
fn full_stack_is_invisible_to_the_simulation() {
    for w in suite().into_iter().chain(irregular_suite()) {
        for (cfg, threads) in configs(w) {
            for engine in [EngineMode::Block, EngineMode::Interp] {
                let name = format!("{} x{threads} ({}, {engine:?})", w.name(), cfg.name);
                let (plain, mem_plain) = run_plain(w, cfg.clone(), threads, engine);
                let (stacked, mem_stacked, _, _) =
                    run_stacked(w, cfg.clone(), threads, DriverMode::EventDriven, engine);
                assert_eq!(plain, stacked, "{name}: SimResult diverged under observation");
                assert_eq!(
                    mem_plain, mem_stacked,
                    "{name}: final memory diverged under observation"
                );
            }
        }
    }
}

/// With event logging enabled (the paths the null run never exercises),
/// the event-driven driver still matches the cycle-by-cycle oracle —
/// and so do the metrics registry and the trace document, which are
/// derived purely from delivered events. One vector, one scalar, and
/// one clustered multi-threaded workload keep the oracle's debug-build
/// cost bounded.
#[test]
fn drivers_agree_with_event_logging_enabled() {
    let cases: [(&str, SystemConfig, usize); 3] = [
        ("mxm", SystemConfig::v2_cmp(), 2),
        ("radix", SystemConfig::cmt(), 4),
        ("spmv", SystemConfig::v8_clustered(2), 4),
    ];
    for (name, cfg, threads) in cases {
        let w = vlt_workloads::workload(name).unwrap();
        let engine = EngineMode::default();
        let (re, me, metrics_e, trace_e) =
            run_stacked(w, cfg.clone(), threads, DriverMode::EventDriven, engine);
        let (rn, mn, metrics_n, trace_n) =
            run_stacked(w, cfg.clone(), threads, DriverMode::CycleByCycle, engine);
        assert_eq!(re, rn, "{name}: SimResult diverged across drivers");
        assert_eq!(me, mn, "{name}: memory diverged across drivers");
        assert_eq!(metrics_e, metrics_n, "{name}: metrics diverged across drivers");
        assert_eq!(trace_e, trace_n, "{name}: trace diverged across drivers");
    }
}
