//! Observability must be free of observer effects: running the full
//! metrics + tracing + sampling stack must leave the simulation
//! byte-identical — same `SimResult`, same final memory image — to an
//! unobserved run, for every workload and thread configuration, under
//! the event-driven driver. And because event logging enables extra code
//! paths inside the vector unit and the L2, the event-driven and
//! cycle-by-cycle drivers are cross-checked *with logging on* too,
//! including the metrics registry and trace documents they produce.

use vlt_core::{DriverMode, NullObserver, SimResult, System, SystemConfig};
use vlt_exec::Memory;
use vlt_obs::{MetricsObserver, Multi, PerfettoObserver};
use vlt_stats::json::Json;
use vlt_workloads::{suite, Scale, Workload};

const MAX: u64 = 2_000_000_000;

/// The thread configurations a workload supports: the paper's vector
/// design points for vectorizable kernels, the CMT scalar baseline and
/// VLT lane-thread mode for the scalar ones.
fn configs(w: &dyn Workload) -> Vec<(SystemConfig, usize)> {
    if w.vectorizable() {
        vec![(SystemConfig::base(8), 1), (SystemConfig::v2_cmp(), 2), (SystemConfig::v4_cmp(), 4)]
    } else {
        vec![
            // Single-thread builds may still vectorize their serial phases
            // (radix's 6% vect), so x1 runs on the base vector machine.
            (SystemConfig::base(8), 1),
            (SystemConfig::cmt(), 2),
            (SystemConfig::cmt(), 4),
            (SystemConfig::v4_cmt_lane_threads(), 8),
        ]
    }
}

fn run_plain(w: &dyn Workload, cfg: SystemConfig, threads: usize) -> (SimResult, Memory) {
    let built = w.build(threads, Scale::Test);
    let mut sys = System::new(cfg, &built.program, threads);
    let r = sys.run_observed(MAX, &mut NullObserver).unwrap();
    (r, sys.funcsim().mem.clone())
}

/// Run with the full stack: sampling + metrics + Perfetto fanned out
/// through `Multi`. Returns the result, memory, and both documents.
fn run_stacked(
    w: &dyn Workload,
    cfg: SystemConfig,
    threads: usize,
    mode: DriverMode,
) -> (SimResult, Memory, Json, Json) {
    let built = w.build(threads, Scale::Test);
    let mut sys = System::new(cfg, &built.program, threads).with_driver(mode);
    let mut sampler = vlt_core::SamplingObserver::new(997);
    let mut metrics = MetricsObserver::new();
    let mut trace = PerfettoObserver::new();
    let mut multi = Multi::new().with(&mut sampler).with(&mut metrics).with(&mut trace);
    let r = sys.run_observed(MAX, &mut multi).unwrap();
    drop(multi);
    (r, sys.funcsim().mem.clone(), metrics.into_registry().to_json(), trace.into_json())
}

/// Tentpole acceptance: observer-on and observer-off runs are
/// byte-identical (result and final memory) for all nine workloads at
/// every supported thread count, under the event-driven driver.
#[test]
fn full_stack_is_invisible_to_the_simulation() {
    for w in suite() {
        for (cfg, threads) in configs(w) {
            let name = format!("{} x{threads} ({})", w.name(), cfg.name);
            let (plain, mem_plain) = run_plain(w, cfg.clone(), threads);
            let (stacked, mem_stacked, _, _) =
                run_stacked(w, cfg.clone(), threads, DriverMode::EventDriven);
            assert_eq!(plain, stacked, "{name}: SimResult diverged under observation");
            assert_eq!(mem_plain, mem_stacked, "{name}: final memory diverged under observation");
        }
    }
}

/// With event logging enabled (the paths the null run never exercises),
/// the event-driven driver still matches the cycle-by-cycle oracle —
/// and so do the metrics registry and the trace document, which are
/// derived purely from delivered events. One vector and one scalar
/// multi-threaded workload keep the oracle's debug-build cost bounded.
#[test]
fn drivers_agree_with_event_logging_enabled() {
    let cases: [(&str, SystemConfig, usize); 2] =
        [("mxm", SystemConfig::v2_cmp(), 2), ("radix", SystemConfig::cmt(), 4)];
    for (name, cfg, threads) in cases {
        let w = vlt_workloads::workload(name).unwrap();
        let (re, me, metrics_e, trace_e) =
            run_stacked(w, cfg.clone(), threads, DriverMode::EventDriven);
        let (rn, mn, metrics_n, trace_n) =
            run_stacked(w, cfg.clone(), threads, DriverMode::CycleByCycle);
        assert_eq!(re, rn, "{name}: SimResult diverged across drivers");
        assert_eq!(me, mn, "{name}: memory diverged across drivers");
        assert_eq!(metrics_e, metrics_n, "{name}: metrics diverged across drivers");
        assert_eq!(trace_e, trace_n, "{name}: trace diverged across drivers");
    }
}
