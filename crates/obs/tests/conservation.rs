//! Stall-cause conservation: every stalled or idle cycle a unit counts
//! must be attributed to exactly one [`vlt_core::StallCause`]. Per unit,
//! the cause totals sum to the untagged counters — the vector unit's
//! Figure-4 `stalled + all_idle`, each scalar unit's fetch-stall count,
//! each lane core's stall count — for all nine workloads at every
//! supported thread configuration, under both driver modes.

use vlt_core::{DriverMode, System, SystemConfig};
use vlt_workloads::{suite, Scale, Workload};

const MAX: u64 = 2_000_000_000;

fn configs(w: &dyn Workload) -> Vec<(SystemConfig, usize)> {
    if w.vectorizable() {
        vec![
            (SystemConfig::base(8), 1),
            (SystemConfig::v2_cmp(), 2),
            (SystemConfig::v4_cmp(), 4),
            // Multi-cluster: the flat `vltcfg t` in every workload spreads
            // over both clusters, so NetworkContention cycles appear in the
            // breakdown and must conserve like every other cause.
            (SystemConfig::v8_clustered(2), 2),
            (SystemConfig::v8_clustered(2), 4),
        ]
    } else {
        vec![
            // Single-thread builds may still vectorize their serial phases
            // (radix's 6% vect), so x1 runs on the base vector machine.
            (SystemConfig::base(8), 1),
            (SystemConfig::cmt(), 2),
            (SystemConfig::cmt(), 4),
            (SystemConfig::v4_cmt_lane_threads(), 8),
            // Multi-cluster machines run scalar-heavy codes too (one busy
            // cluster, one idle) — conservation must hold regardless.
            (SystemConfig::v8_clustered(2), 1),
        ]
    }
}

#[test]
fn stall_causes_are_conserved_across_the_suite() {
    for w in suite() {
        for (cfg, threads) in configs(w) {
            let built = w.build(threads, Scale::Test);
            let r = System::new(cfg.clone(), &built.program, threads).run(MAX).unwrap();
            r.check_stall_conservation().unwrap_or_else(|e| {
                panic!("{} x{threads} ({}): {e}", w.name(), cfg.name);
            });
            // The attribution found *something* on any run that lost
            // cycles at all (vector configs always idle during startup).
            if cfg.has_vu {
                assert!(r.stalls().total() > 0, "{} x{threads}: empty breakdown", w.name());
            }
        }
    }
}

/// The cycle-by-cycle oracle attributes identically (span crediting in
/// the event-driven driver is exact). One vector and one scalar case.
#[test]
fn conservation_holds_under_the_oracle_driver() {
    for (name, cfg, threads) in
        [("trfd", SystemConfig::v4_cmp(), 4), ("ocean", SystemConfig::v4_cmt_lane_threads(), 8)]
    {
        let w = vlt_workloads::workload(name).unwrap();
        let built = w.build(threads, Scale::Test);
        let r = System::new(cfg, &built.program, threads)
            .with_driver(DriverMode::CycleByCycle)
            .run(MAX)
            .unwrap();
        r.check_stall_conservation().unwrap_or_else(|e| panic!("{name} x{threads}: {e}"));
    }
}
