//! Conservation invariants over the full workload set — the 9 Table 4
//! applications plus the 4 irregular kernels, at every supported thread
//! count (1/2/4/8) including the clustered ultra-wide shape, under both
//! driver modes:
//!
//! * **stall causes**: every stalled or idle cycle a unit counts is
//!   attributed to exactly one [`vlt_core::StallCause`] — per unit, the
//!   cause totals sum to the untagged counters (the vector unit's
//!   Figure-4 `stalled + all_idle`, each scalar unit's fetch-stall
//!   count, each lane core's stall count);
//! * **lane occupancy**: the per-physical-lane busy / partly-idle
//!   decomposition sums back to the aggregate Figure-4 categories;
//! * **CPI stacks**: every [`vlt_obs::CpiObserver`] window — whole-run,
//!   per-region, per-barrier-epoch — attributes exactly its cycle
//!   budget (base + partly-idle + stall causes, no residual).
//!
//! The event-driven driver runs everything; the cycle-by-cycle oracle
//! sweep is `#[ignore]`d for debug-build latency and runs in CI under
//! `--include-ignored` on release builds.

use vlt_core::{DriverMode, SimResult, System, SystemConfig};
use vlt_obs::CpiObserver;
use vlt_workloads::{irregular_suite, suite, Scale, Workload};

const MAX: u64 = 2_000_000_000;

/// All thirteen kernels.
fn all_kernels() -> Vec<&'static dyn Workload> {
    suite().into_iter().chain(irregular_suite()).collect()
}

/// Every machine shape a workload's conservation is checked on:
/// `(config, threads, clusters)` — `clusters > 1` builds with the
/// hierarchical spread (8 VLT threads need the doubled per-thread MVL).
fn shapes(w: &dyn Workload) -> Vec<(SystemConfig, usize, usize)> {
    if w.vectorizable() {
        vec![
            (SystemConfig::base(8), 1, 1),
            (SystemConfig::v2_cmp(), 2, 1),
            (SystemConfig::v4_cmp(), 4, 1),
            // Multi-cluster: the flat `vltcfg t` in every workload spreads
            // over both clusters, so NetworkContention cycles appear in the
            // breakdown and must conserve like every other cause.
            (SystemConfig::v8_clustered(2), 2, 1),
            (SystemConfig::v8_clustered(2), 4, 1),
            // 8 VLT threads over 2 clusters — only reachable through the
            // hierarchical encoding (per-thread MVL 64 * 2 / 8 = 16).
            (SystemConfig::v8_clustered(2), 8, 2),
        ]
    } else {
        vec![
            // Single-thread builds may still vectorize their serial phases
            // (radix's 6% vect), so x1 runs on the base vector machine.
            (SystemConfig::base(8), 1, 1),
            (SystemConfig::cmt(), 2, 1),
            (SystemConfig::cmt(), 4, 1),
            // CMT tops out at 4 contexts; 8 threads need the lane cores.
            (SystemConfig::v4_cmt_lane_threads(), 8, 1),
            // Multi-cluster machines run scalar-heavy codes too (one busy
            // cluster, one idle) — conservation must hold regardless.
            (SystemConfig::v8_clustered(2), 1, 1),
        ]
    }
}

/// Run one shape with a CPI observer attached and check every invariant.
fn check_shape(
    w: &dyn Workload,
    cfg: &SystemConfig,
    threads: usize,
    clusters: usize,
    mode: DriverMode,
) -> SimResult {
    let name = format!("{} x{threads} ({}, {mode:?})", w.name(), cfg.name);
    let built = w.build_spread(threads, clusters, Scale::Test);
    let mut cpi = CpiObserver::new();
    let r = System::new(cfg.clone(), &built.program, threads)
        .with_driver(mode)
        .run_observed(MAX, &mut cpi)
        .unwrap();
    // Stall-cause and per-lane occupancy conservation (one entry point).
    r.check_stall_conservation().unwrap_or_else(|e| panic!("{name}: {e}"));
    // CPI stacks: every window attributes exactly its budget.
    cpi.check_conservation().unwrap_or_else(|e| panic!("{name}: CPI {e}"));
    // The whole-run vu stack reconciles with the Figure-4 aggregate.
    if let Some(vu) = cpi.total().iter().find(|s| s.unit == "vu") {
        assert_eq!(vu.base, r.utilization.busy, "{name}: vu base != aggregate busy");
        assert_eq!(vu.cycles, r.utilization.total(), "{name}: vu budget != Figure-4 budget");
    }
    r
}

#[test]
fn conservation_holds_across_the_suite() {
    for w in all_kernels() {
        for (cfg, threads, clusters) in shapes(w) {
            let r = check_shape(w, &cfg, threads, clusters, DriverMode::EventDriven);
            // The attribution found *something* on any run that lost
            // cycles at all (vector configs always idle during startup).
            if cfg.has_vu {
                assert!(r.stalls().total() > 0, "{} x{threads}: empty breakdown", w.name());
            }
        }
    }
}

/// The cycle-by-cycle oracle attributes identically (span crediting in
/// the event-driven driver is exact). Two cases stay un-ignored to keep
/// a debug `cargo test` honest; the full sweep below runs in CI.
#[test]
fn conservation_holds_under_the_oracle_driver() {
    for (name, cfg, threads) in
        [("trfd", SystemConfig::v4_cmp(), 4), ("ocean", SystemConfig::v4_cmt_lane_threads(), 8)]
    {
        let w = vlt_workloads::workload(name).unwrap();
        check_shape(w, &cfg, threads, 1, DriverMode::CycleByCycle);
    }
}

/// The full 13-kernel sweep under the cycle-by-cycle oracle — every
/// shape, both invariant families. Slow in debug builds, so it is
/// ignored by default and exercised in CI with `--include-ignored` on
/// a release test build.
#[test]
#[ignore = "oracle-driver sweep is slow in debug builds; CI runs it in release"]
fn conservation_holds_across_the_suite_under_the_oracle_driver() {
    for w in all_kernels() {
        for (cfg, threads, clusters) in shapes(w) {
            check_shape(w, &cfg, threads, clusters, DriverMode::CycleByCycle);
        }
    }
}
