//! Shared experiment-runner infrastructure.
//!
//! Simulations are single-threaded and deterministic; independent runs fan
//! out across a bounded worker pool (`available_parallelism` OS threads
//! pulling specs from a shared queue). Failures — simulation errors or
//! golden-model verification mismatches — propagate to the caller as
//! [`SuiteError`]s instead of panicking inside a worker.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

use vlt_core::{EngineMode, SimError, SimResult, System, SystemConfig};
use vlt_workloads::{Built, Scale, Workload};

/// Default cycle budget per simulation.
pub const MAX_CYCLES: u64 = 2_000_000_000;

/// Where JSON records land (repo-relative).
pub fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Every figure/table record the full suite must leave in [`results_dir`].
/// The `all` runner checks this set after writing and exits nonzero when
/// one is absent — a silently-skipped experiment would otherwise look like
/// a passing suite.
pub const EXPECTED_RESULTS: [&str; 15] = [
    "irregular_stalls",
    "table1",
    "table2",
    "table3",
    "table4",
    "table4_static",
    "table4_dynamic",
    "fig1",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "ext_lanes",
    "ext_chaining",
    "ext_cluster",
];

/// The expected result records missing from `dir`, as `<id>.json` names
/// (empty when the suite output is complete).
pub fn missing_result_files(dir: &Path) -> Vec<String> {
    EXPECTED_RESULTS
        .iter()
        .map(|id| format!("{id}.json"))
        .filter(|f| !dir.join(f).is_file())
        .collect()
}

/// A failed run within a suite: which run, and what went wrong.
#[derive(Debug)]
pub enum SuiteError {
    /// The timing simulation itself errored (exec fault or cycle timeout).
    Sim {
        /// `"<workload> on <config> x<threads>"`.
        run: String,
        /// The underlying simulator error.
        source: SimError,
    },
    /// The run finished but the memory image failed golden verification.
    Verify {
        /// `"<workload> on <config> x<threads>"`.
        run: String,
        /// The verifier's mismatch report.
        message: String,
    },
}

impl std::fmt::Display for SuiteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SuiteError::Sim { run, source } => write!(f, "simulation failed on {run}: {source}"),
            SuiteError::Verify { run, message } => {
                write!(f, "verification failed on {run}: {message}")
            }
        }
    }
}

impl std::error::Error for SuiteError {}

/// Run one built workload on a configuration, verifying the result.
/// `label` names the workload in error messages. Uses the default
/// functional engine; see [`run_built_on`] to pin one.
pub fn run_built(
    cfg: SystemConfig,
    built: &Built,
    threads: usize,
    label: &str,
) -> Result<SimResult, SuiteError> {
    run_built_on(cfg, built, threads, label, EngineMode::default())
}

/// [`run_built`] with an explicit functional engine — the equivalence
/// suites run every workload under both [`EngineMode::Block`] and the
/// [`EngineMode::Interp`] oracle and compare results byte-for-byte.
pub fn run_built_on(
    cfg: SystemConfig,
    built: &Built,
    threads: usize,
    label: &str,
    engine: EngineMode,
) -> Result<SimResult, SuiteError> {
    let run = format!("{label} on {} x{threads}", cfg.name);
    let mut system = System::new(cfg, &built.program, threads).with_engine(engine);
    let result =
        system.run(MAX_CYCLES).map_err(|source| SuiteError::Sim { run: run.clone(), source })?;
    (built.verifier)(system.funcsim()).map_err(|message| SuiteError::Verify { run, message })?;
    Ok(result)
}

/// One simulation to schedule: a workload at a thread count on a config.
pub struct RunSpec {
    /// Workload to build.
    pub workload: &'static dyn Workload,
    /// Configuration to run on.
    pub config: SystemConfig,
    /// Software threads.
    pub threads: usize,
    /// Problem scale.
    pub scale: Scale,
}

impl RunSpec {
    /// The build-memoization key: two specs with the same key produce
    /// identical [`Built`]s (workload builders are pure functions of
    /// `(threads, scale)`), so the suite runner builds each key once.
    fn build_key(&self) -> (&'static str, usize, Scale) {
        (self.workload.name(), self.threads, self.scale)
    }

    fn execute(&self, built: &Built) -> Result<SimResult, SuiteError> {
        run_built(self.config.clone(), built, self.threads, self.workload.name())
    }
}

/// Execute all specs on a bounded worker pool, preserving spec order in the
/// result vector. The pool never spawns more than `available_parallelism`
/// OS threads (and never more than there are specs); the first failure (in
/// spec order) is returned after all in-flight work drains.
///
/// `Workload::build` results are memoized by `(workload, threads, scale)`
/// and shared across the pool via `Arc`: a config sweep over one workload
/// (the common suite shape) assembles the program once instead of once per
/// config. Builds happen up front on the calling thread — they are cheap
/// (assembly) next to the simulations they feed.
pub fn run_suite_parallel(specs: Vec<RunSpec>) -> Result<Vec<SimResult>, SuiteError> {
    if specs.is_empty() {
        return Ok(Vec::new());
    }
    let workers =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(specs.len());

    let mut cache: HashMap<(&'static str, usize, Scale), Arc<Built>> = HashMap::new();
    let builds: Vec<Arc<Built>> = specs
        .iter()
        .map(|s| {
            Arc::clone(
                cache
                    .entry(s.build_key())
                    .or_insert_with(|| Arc::new(s.workload.build(s.threads, s.scale))),
            )
        })
        .collect();

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<SimResult, SuiteError>)>();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let specs = &specs;
            let builds = &builds;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = specs.get(i) else { break };
                if tx.send((i, spec.execute(&builds[i]))).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);

    let mut slots: Vec<Option<Result<SimResult, SuiteError>>> = Vec::new();
    slots.resize_with(specs.len(), || None);
    for (i, r) in rx {
        slots[i] = Some(r);
    }
    slots.into_iter().map(|r| r.expect("worker pool filled every slot")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlt_workloads::workload;

    #[test]
    fn suite_preserves_spec_order() {
        // More specs than any sane worker count, with distinguishable
        // configs, to check index-preserving collection.
        let w = workload("radix").unwrap();
        let specs: Vec<RunSpec> = [1usize, 2, 4, 8, 1, 2, 4, 8]
            .iter()
            .map(|&lanes| RunSpec {
                workload: w,
                config: SystemConfig::base(lanes),
                threads: 1,
                scale: Scale::Test,
            })
            .collect();
        let lane_counts: Vec<usize> = specs.iter().map(|s| s.config.lanes).collect();
        let results = run_suite_parallel(specs).expect("suite runs");
        assert_eq!(results.len(), 8);
        // Same workload, same config ⇒ deterministic ⇒ identical cycles.
        for (i, j) in [(0usize, 4usize), (1, 5), (2, 6), (3, 7)] {
            assert_eq!(lane_counts[i], lane_counts[j]);
            assert_eq!(results[i].cycles, results[j].cycles, "slot {i} vs {j}");
        }
    }

    #[test]
    fn suite_memoizes_builds_across_configs() {
        use vlt_workloads::PaperRow;
        static BUILDS: AtomicUsize = AtomicUsize::new(0);
        struct Counting;
        impl Workload for Counting {
            fn name(&self) -> &'static str {
                "counting"
            }
            fn vectorizable(&self) -> bool {
                false
            }
            fn paper_row(&self) -> PaperRow {
                PaperRow {
                    pct_vect: None,
                    avg_vl: None,
                    common_vls: &[],
                    opportunity: None,
                    description: "build-counting test double",
                }
            }
            fn build_spread(
                &self,
                threads: usize,
                _clusters: usize,
                scale: Scale,
            ) -> vlt_workloads::Built {
                BUILDS.fetch_add(1, Ordering::Relaxed);
                workload("radix").unwrap().build(threads, scale)
            }
        }
        static COUNTING: Counting = Counting;

        // Four configs over the same (workload, threads, scale): one build.
        let specs: Vec<RunSpec> = [1usize, 2, 4, 8]
            .iter()
            .map(|&lanes| RunSpec {
                workload: &COUNTING,
                config: SystemConfig::base(lanes),
                threads: 1,
                scale: Scale::Test,
            })
            .collect();
        let results = run_suite_parallel(specs).expect("suite runs");
        assert_eq!(results.len(), 4);
        assert_eq!(BUILDS.load(Ordering::Relaxed), 1, "identical specs must share one build");
    }

    #[test]
    fn committed_results_are_complete() {
        let missing = missing_result_files(&results_dir());
        assert!(
            missing.is_empty(),
            "results/ is missing {missing:?} — run `cargo run --release --bin all` and commit"
        );
    }

    #[test]
    fn missing_results_are_reported() {
        let empty = std::env::temp_dir().join("vlt-no-results-here");
        let missing = missing_result_files(&empty);
        assert_eq!(missing.len(), EXPECTED_RESULTS.len());
        assert!(missing.contains(&"table3.json".to_string()));
    }

    #[test]
    fn empty_suite_is_ok() {
        assert!(run_suite_parallel(Vec::new()).unwrap().is_empty());
    }

    #[test]
    fn failures_are_reported_not_panicked() {
        // A 1-cycle budget cannot finish any workload: the suite must
        // surface a timeout error instead of panicking in a worker.
        let w = workload("radix").unwrap();
        let built = w.build(1, Scale::Test);
        let err = {
            let mut system = System::new(SystemConfig::base(1), &built.program, 1);
            system.run(1).expect_err("1 cycle cannot finish")
        };
        assert!(matches!(err, SimError::Timeout { .. }));
    }
}
