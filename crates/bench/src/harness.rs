//! Shared experiment-runner infrastructure.
//!
//! Simulations are single-threaded and deterministic; independent runs fan
//! out across a crossbeam scope (one OS thread per pending run, bounded by
//! the spec list — the per-run working set is small).

use std::path::PathBuf;

use vlt_core::{SimResult, System, SystemConfig};
use vlt_workloads::{Built, Scale, Workload};

/// Default cycle budget per simulation.
pub const MAX_CYCLES: u64 = 2_000_000_000;

/// Where JSON records land (repo-relative).
pub fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Run one built workload on a configuration, verifying the result.
pub fn run_built(cfg: SystemConfig, built: &Built, threads: usize) -> SimResult {
    let name = cfg.name.clone();
    let mut system = System::new(cfg, &built.program, threads);
    let result = system
        .run(MAX_CYCLES)
        .unwrap_or_else(|e| panic!("simulation failed on {name}: {e}"));
    (built.verifier)(system.funcsim())
        .unwrap_or_else(|e| panic!("verification failed on {name}: {e}"));
    result
}

/// One simulation to schedule: a workload at a thread count on a config.
pub struct RunSpec {
    /// Workload to build.
    pub workload: &'static dyn Workload,
    /// Configuration to run on.
    pub config: SystemConfig,
    /// Software threads.
    pub threads: usize,
    /// Problem scale.
    pub scale: Scale,
}

/// Execute all specs in parallel, preserving order in the result vector.
pub fn run_suite_parallel(specs: Vec<RunSpec>) -> Vec<SimResult> {
    let mut out: Vec<Option<SimResult>> = Vec::new();
    out.resize_with(specs.len(), || None);
    crossbeam::thread::scope(|scope| {
        for (slot, spec) in out.iter_mut().zip(specs.iter()) {
            scope.spawn(move |_| {
                let built = spec.workload.build(spec.threads, spec.scale);
                *slot = Some(run_built(spec.config.clone(), &built, spec.threads));
            });
        }
    })
    .expect("simulation worker panicked");
    out.into_iter().map(|r| r.expect("slot filled")).collect()
}
