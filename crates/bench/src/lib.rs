#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # vlt-bench — the experiment harness
//!
//! One module per table/figure of the paper's evaluation (§7), each
//! producing a [`vlt_stats::Experiment`] record plus an ASCII table. The
//! binaries under `src/bin/` are thin wrappers:
//!
//! ```text
//! cargo run -p vlt-bench --release --bin fig1    # lane-count scaling
//! cargo run -p vlt-bench --release --bin table1  # component areas
//! cargo run -p vlt-bench --release --bin table2  # VLT area overheads
//! cargo run -p vlt-bench --release --bin table3  # base configuration echo
//! cargo run -p vlt-bench --release --bin table4  # workload characteristics
//! cargo run -p vlt-bench --release --bin fig3    # VLT vector-thread speedup
//! cargo run -p vlt-bench --release --bin fig4    # datapath utilization
//! cargo run -p vlt-bench --release --bin fig5    # SU design space
//! cargo run -p vlt-bench --release --bin fig6    # scalar threads on lanes
//! cargo run -p vlt-bench --release --bin vladvise # static DLP advisor
//! cargo run -p vlt-bench --release --bin all     # everything + summary
//! ```
//!
//! Every binary writes `results/<id>.json` with measured *and* paper
//! values, which EXPERIMENTS.md summarizes.

pub mod experiments;
pub mod harness;

pub use harness::{
    missing_result_files, results_dir, run_built, run_suite_parallel, RunSpec, SuiteError,
    EXPECTED_RESULTS,
};
