//! Table 3: the base vector processor parameters — echoed from the live
//! configuration structs so the printed table can never drift from what
//! the simulator actually runs.

use vlt_core::SystemConfig;
use vlt_stats::Table;

/// Render the base configuration against the paper's Table 3.
pub fn run() -> Table {
    let cfg = SystemConfig::base(8);
    let su = cfg.cores[0];
    let mem = cfg.mem;
    let mut t = Table::new(
        "table3 — Base vector processor parameters",
        &["component", "parameter", "value", "paper"],
    );
    let mut row = |a: &str, b: &str, c: String, d: &str| {
        t.row(&[a.to_string(), b.to_string(), c, d.to_string()]);
    };
    row("Scalar unit", "fetch/issue/retire width", su.width.to_string(), "4-way");
    row("Scalar unit", "window + ROB entries", su.window.to_string(), "64");
    row("Scalar unit", "arithmetic units", su.arith_units.to_string(), "4");
    row("Scalar unit", "memory ports", su.mem_ports.to_string(), "2");
    row(
        "Scalar unit",
        "L1 caches",
        format!("{} KB, {}-way", mem.l1_size / 1024, mem.l1_assoc),
        "16 KB, 2-way",
    );
    row("Vector control", "issue width", cfg.vcl.issue_width.to_string(), "2-way");
    row("Vector control", "instruction window", cfg.vcl.window.to_string(), "32");
    row("Vector lanes", "lanes", cfg.lanes.to_string(), "8");
    row("Vector lanes", "arith datapaths / lane", "3".into(), "3");
    row("Vector lanes", "memory ports / lane", "2".into(), "2");
    row("Memory", "L2 size", format!("{} MB", mem.l2_size / (1024 * 1024)), "4 MB");
    row(
        "Memory",
        "L2 associativity / banks",
        format!("{}-way, {} banks", mem.l2_assoc, mem.l2_banks),
        "4-way, 16 banks",
    );
    row(
        "Memory",
        "L2 hit / miss penalty",
        format!("{} / {} cycles", mem.l2_hit, mem.l2_miss),
        "10 / 100 cycles",
    );
    row(
        "Lane I-cache",
        "size (scalar-thread mode)",
        format!("{} KB", mem.lane_icache_size / 1024),
        "4 KB",
    );
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_all_parameters() {
        let t = super::run();
        assert_eq!(t.len(), 14);
        let s = t.to_string();
        assert!(s.contains("4 MB"));
        assert!(s.contains("16 banks"));
    }
}
