//! Ablation (DESIGN.md §4): element-wise chaining of dependent vector
//! instructions. With chaining off, a consumer waits for the producer's
//! full completion — dependent chains pay startup + full occupancy per
//! hop, which hurts most at short vector lengths and few lanes.

use vlt_core::SystemConfig;
use vlt_stats::{Experiment, Series};
use vlt_workloads::{workload, Scale};

use crate::harness::{run_suite_parallel, RunSpec, SuiteError};

use super::fig3::APPS;

fn unchained(mut cfg: SystemConfig) -> SystemConfig {
    cfg.vcl.chaining = false;
    cfg.name = format!("{}-nochain", cfg.name);
    cfg
}

/// Run the chaining on/off comparison on the base 8-lane machine.
pub fn run(scale: Scale) -> Result<Experiment, SuiteError> {
    let mut e = Experiment::new(
        "ext_chaining",
        "Ablation: element-wise chaining of dependent vector instructions",
        "slowdown when chaining is disabled",
    );
    let x = vec!["base/chained vs unchained".to_string()];

    let specs: Vec<RunSpec> = APPS
        .iter()
        .flat_map(|name| {
            let w = workload(name).unwrap();
            [
                RunSpec { workload: w, config: SystemConfig::base(8), threads: 1, scale },
                RunSpec {
                    workload: w,
                    config: unchained(SystemConfig::base(8)),
                    threads: 1,
                    scale,
                },
            ]
        })
        .collect();
    let results = run_suite_parallel(specs)?;

    for (i, name) in APPS.iter().enumerate() {
        let chained = results[i * 2].cycles as f64;
        let unchained = results[i * 2 + 1].cycles as f64;
        e.push(Series::new(*name, &x, vec![unchained / chained]));
    }
    Ok(e)
}
