//! Figure 5: the scalar-unit design space for vector threads. All numbers
//! are speedup over the base vector design. The paper's findings to
//! reproduce: V2-SMT ≈ V2-CMP; V4-SMT trails (4 instructions per cycle of
//! fetch cannot feed 4 threads); V4-CMT ≈ V4-CMP (8/cycle suffices);
//! V4-CMP-h trails all other VLT-4 points (a 2-way SU throttles its
//! thread, and barriers make the slowest thread decisive).

use vlt_core::SystemConfig;
use vlt_stats::{Experiment, Series};
use vlt_workloads::{workload, Scale};

use crate::harness::{run_suite_parallel, RunSpec, SuiteError};

use super::fig3::APPS;

/// The design points, with the thread count each runs.
pub fn points() -> Vec<(SystemConfig, usize)> {
    vec![
        (SystemConfig::v2_smt(), 2),
        (SystemConfig::v2_cmp(), 2),
        (SystemConfig::v4_smt(), 4),
        (SystemConfig::v4_cmt(), 4),
        (SystemConfig::v4_cmp(), 4),
        (SystemConfig::v4_cmp_h(), 4),
    ]
}

/// Run the design-space sweep.
pub fn run(scale: Scale) -> Result<Experiment, SuiteError> {
    let mut e = Experiment::new(
        "fig5",
        "Design space for vector threads (speedup over base)",
        "speedup over base",
    );
    let pts = points();
    let x: Vec<String> = pts.iter().map(|(c, _)| c.name.clone()).collect();

    let mut specs: Vec<RunSpec> = Vec::new();
    for name in APPS {
        let w = workload(name).unwrap();
        specs.push(RunSpec { workload: w, config: SystemConfig::base(8), threads: 1, scale });
        for (cfg, threads) in points() {
            specs.push(RunSpec { workload: w, config: cfg, threads, scale });
        }
    }
    let results = run_suite_parallel(specs)?;

    let per_app = 1 + pts.len();
    for (i, name) in APPS.iter().enumerate() {
        let base = results[i * per_app].cycles as f64;
        let vals: Vec<f64> =
            (0..pts.len()).map(|k| base / results[i * per_app + 1 + k].cycles as f64).collect();
        e.push(Series::new(*name, &x, vals));
    }
    Ok(e)
}
