//! One module per reproduced table/figure.

pub mod ext_chaining;
pub mod ext_cluster;
pub mod ext_lanes;
pub mod fig1;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod irregular_stalls;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table4_static;

use vlt_stats::{Experiment, Table};
use vlt_workloads::Scale;

/// Scale selection via `VLT_SCALE` = `test` | `small` | `full`.
pub fn scale_from_env() -> Scale {
    match std::env::var("VLT_SCALE").as_deref() {
        Ok("test") => Scale::Test,
        Ok("full") => Scale::Full,
        _ => Scale::Small,
    }
}

/// Render an experiment's series as an aligned table: one row per series,
/// one column per x point, with the paper's value in parentheses when
/// available.
pub fn render(e: &Experiment) -> Table {
    let xs: Vec<&str> =
        e.series.first().map(|s| s.x.iter().map(String::as_str).collect()).unwrap_or_default();
    let mut headers = vec![e.metric.as_str()];
    headers.extend(xs.iter());
    let mut t = Table::new(format!("{} — {}", e.id, e.title), &headers);
    for s in &e.series {
        let mut row = vec![s.label.clone()];
        for (i, v) in s.values.iter().enumerate() {
            let cell = match s.paper.get(i) {
                Some(p) => format!("{v:.2} (paper ~{p:.2})"),
                None => format!("{v:.2}"),
            };
            row.push(cell);
        }
        t.row(&row);
    }
    t
}

/// Standard binary body: run, print, persist.
pub fn emit(e: &Experiment) {
    println!("{}", render(e));
    match e.write_to(&crate::harness::results_dir()) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(err) => eprintln!("could not write results JSON: {err}"),
    }
}

/// Standard binary body for fallible sweeps: emit on success, exit(1) with
/// the failing run's diagnostic otherwise.
pub fn emit_result(r: Result<Experiment, crate::harness::SuiteError>) {
    match r {
        Ok(e) => emit(&e),
        Err(err) => {
            eprintln!("{err}");
            std::process::exit(1);
        }
    }
}
