//! Figure 3: VLT speedup for vector threads over the base 8-lane
//! processor, using the maximum-performance configurations (V2-CMP for two
//! threads, V4-CMP for four). Paper: 1.14–2.15 (2 threads), 1.40–2.3 (4).

use vlt_core::SystemConfig;
use vlt_stats::{Experiment, Series};
use vlt_workloads::{workload, Scale};

use crate::harness::{run_suite_parallel, RunSpec, SuiteError};

/// The four applications with VLT opportunity (Table 4 middle block).
pub const APPS: [&str; 4] = ["mpenc", "trfd", "multprec", "bt"];

/// Paper values digitized from the Figure 3 chart (approximate).
fn paper_series(name: &str) -> Vec<f64> {
    match name {
        "mpenc" => vec![1.6, 1.8],
        "trfd" => vec![2.15, 2.3],
        "multprec" => vec![1.5, 1.7],
        "bt" => vec![1.14, 1.4],
        other => panic!("no Figure 3 data for {other}"),
    }
}

/// Cycle counts for (base, V2-CMP, V4-CMP) per app.
pub fn raw_cycles(scale: Scale) -> Result<Vec<(&'static str, [u64; 3])>, SuiteError> {
    let specs: Vec<RunSpec> = APPS
        .iter()
        .flat_map(|name| {
            let w = workload(name).unwrap();
            [
                RunSpec { workload: w, config: SystemConfig::base(8), threads: 1, scale },
                RunSpec { workload: w, config: SystemConfig::v2_cmp(), threads: 2, scale },
                RunSpec { workload: w, config: SystemConfig::v4_cmp(), threads: 4, scale },
            ]
        })
        .collect();
    let results = run_suite_parallel(specs)?;
    Ok(APPS
        .iter()
        .enumerate()
        .map(|(i, name)| {
            (*name, [results[i * 3].cycles, results[i * 3 + 1].cycles, results[i * 3 + 2].cycles])
        })
        .collect())
}

/// Run the Figure 3 sweep.
pub fn run(scale: Scale) -> Result<Experiment, SuiteError> {
    let mut e = Experiment::new(
        "fig3",
        "VLT speedup for vector threads over the base vector processor",
        "speedup over base",
    );
    let x = vec!["VLT-2 (V2-CMP)".to_string(), "VLT-4 (V4-CMP)".to_string()];
    for (name, cyc) in raw_cycles(scale)? {
        let speedups = vec![cyc[0] as f64 / cyc[1] as f64, cyc[0] as f64 / cyc[2] as f64];
        e.push(Series::new(name, &x, speedups).with_paper(paper_series(name)));
    }
    Ok(e)
}
