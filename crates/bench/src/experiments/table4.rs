//! Table 4: workload characteristics — % vectorization, average VL, common
//! VLs, and % VLT opportunity, measured on this reproduction's kernels and
//! compared against the paper's application measurements.

use vlt_stats::{Experiment, Series, Table};
use vlt_workloads::characterize::characterize;
use vlt_workloads::{suite, Scale};

/// Measure every workload.
pub fn run(scale: Scale) -> Experiment {
    let mut e = Experiment::new(
        "table4",
        "Workload characteristics (measured vs paper)",
        "pct_vect / avg_vl / opportunity",
    );
    let x = vec!["% vect".to_string(), "avg VL".to_string(), "% opportunity".to_string()];
    for w in suite() {
        let c = characterize(w, scale).unwrap_or_else(|err| panic!("{}: {err}", w.name()));
        let row = w.paper_row();
        e.push(Series::new(w.name(), &x, vec![c.pct_vect, c.avg_vl, c.opportunity]).with_paper(
            vec![
                row.pct_vect.unwrap_or(0.0),
                row.avg_vl.unwrap_or(0.0),
                row.opportunity.unwrap_or(0.0),
            ],
        ));
    }
    e
}

/// Render with the common-VL column (not representable in Series form).
pub fn render_full(scale: Scale) -> Table {
    let mut t = Table::new(
        "table4 — Workload characteristics",
        &["app", "% vect (paper)", "avg VL (paper)", "common VLs (paper)", "% opp (paper)"],
    );
    for w in suite() {
        let c = characterize(w, scale).unwrap_or_else(|err| panic!("{}: {err}", w.name()));
        let row = w.paper_row();
        let fmt_opt = |v: Option<f64>| v.map(|x| format!("{x:.1}")).unwrap_or("-".into());
        let vls: Vec<String> = c.common_vls.iter().map(|v| v.to_string()).collect();
        let pvls: Vec<String> = row.common_vls.iter().map(|v| v.to_string()).collect();
        t.row(&[
            w.name().to_string(),
            format!("{:.1} ({})", c.pct_vect, fmt_opt(row.pct_vect)),
            format!("{:.1} ({})", c.avg_vl, fmt_opt(row.avg_vl)),
            format!(
                "{} ({})",
                vls.join(","),
                if pvls.is_empty() { "-".into() } else { pvls.join(",") }
            ),
            format!("{:.1} ({})", c.opportunity, fmt_opt(row.opportunity)),
        ]);
    }
    t
}
