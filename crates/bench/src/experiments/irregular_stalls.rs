//! Stall-cause profiles for the four irregular kernels (ROADMAP item 3:
//! beyond the paper's Table 4 suite, where does an irregular,
//! gather/scatter-heavy program actually lose its cycles?).
//!
//! Each kernel runs at 4 VLT threads on `V4-CMT` and its machine-wide
//! stall attribution ([`SimResult::stalls`], the same breakdown `vlprof`
//! prints) is normalized to percentage shares — one series per kernel,
//! one column per [`StallCause`]. Every run's exact conservation
//! invariant is checked before the shares are reported, so a profile
//! that doesn't add up fails the experiment instead of skewing the
//! record.

use vlt_core::{SimResult, StallCause, SystemConfig};
use vlt_stats::{Experiment, Series};
use vlt_workloads::{irregular_suite, Scale};

use crate::harness::{run_built, SuiteError};

/// VLT threads per run (the irregular kernels' full partition count).
pub const THREADS: usize = 4;

/// Run the sweep: one normalized stall profile per irregular kernel.
pub fn run(scale: Scale) -> Result<Experiment, SuiteError> {
    let x: Vec<String> = StallCause::ALL.iter().map(|c| c.name().to_string()).collect();
    let mut e = Experiment::new(
        "irregular_stalls",
        "Irregular kernels — stall-cause composition (V4-CMT, 4 threads)",
        "% of attributed stall cycles",
    );
    for w in irregular_suite() {
        let built = w.build(THREADS, scale);
        let result = run_built(SystemConfig::v4_cmt(), &built, THREADS, w.name())?;
        result.check_stall_conservation().map_err(|message| SuiteError::Verify {
            run: format!("{} on V4-CMT x{THREADS}", w.name()),
            message,
        })?;
        e.push(Series::new(w.name(), &x, shares(&result)));
    }
    Ok(e)
}

/// A result's stall breakdown as percentage shares over all causes.
fn shares(result: &SimResult) -> Vec<f64> {
    let stalls = result.stalls();
    let total = stalls.total().max(1) as f64;
    StallCause::ALL.iter().map(|&c| 100.0 * stalls.get(c) as f64 / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_cover_all_kernels_and_sum_to_100() {
        let e = run(Scale::Test).expect("irregular kernels profile cleanly");
        assert_eq!(e.series.len(), 4);
        for s in &e.series {
            assert_eq!(s.x.len(), StallCause::ALL.len());
            let sum: f64 = s.values.iter().sum();
            assert!((sum - 100.0).abs() < 1e-6, "{}: shares sum to {sum}", s.label);
        }
    }
}
