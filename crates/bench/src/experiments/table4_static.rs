//! Static Table 4: the workload characteristics of `table4`, predicted by
//! the static DLP analyzer (`vlt_verify::dlp`) without running a single
//! simulated instruction of the timing model — plus the VLTCFG partition
//! each kernel should run under, from the occupancy advisor.
//!
//! Two records come out of this module:
//!
//! * `table4_static` — the analyzer's per-workload profile and advice;
//! * `table4_dynamic` — the measured [`Characterization`] rows serialized
//!   through the same vlt-table v1 record form, so the static/dynamic pair
//!   can be diffed field-for-field by tooling.
//!
//! [`validate`] cross-checks the two within the advisor's published
//! tolerances (average VL within 10%, % vectorization within 5 points,
//! top common VL exact, instruction count exact when the walk is exact).

use vlt_stats::Table;
use vlt_verify::dlp::{advise, analyze, Advice, DlpOptions, DlpProfile};
use vlt_workloads::characterize::{characterize, Characterization};
use vlt_workloads::{irregular_suite, suite, Scale, Workload};

/// One workload's static analysis: profile plus partition advice.
pub struct StaticRow {
    /// Workload name.
    pub name: &'static str,
    /// The static DLP profile (single-threaded build, like `characterize`).
    pub profile: DlpProfile,
    /// The advisor's output over that profile.
    pub advice: Advice,
}

fn rows_over(ws: &[&'static dyn Workload], scale: Scale) -> Vec<StaticRow> {
    ws.iter()
        .map(|w| {
            let built = w.build(1, scale);
            let profile = analyze(&built.program, &DlpOptions::default());
            let advice = advise(&profile);
            StaticRow { name: w.name(), profile, advice }
        })
        .collect()
}

/// Statically analyze every workload in the suite.
pub fn run(scale: Scale) -> Vec<StaticRow> {
    rows_over(&suite(), scale)
}

/// Statically analyze the irregular kernels (SpMV, histogram, hash-join
/// probe, multi-sweep stencil) — the content-steered mix the footprint
/// analyzer has to discharge without annotations.
pub fn run_irregular(scale: Scale) -> Vec<StaticRow> {
    rows_over(&irregular_suite(), scale)
}

fn fmt_vls(vls: &[usize]) -> String {
    if vls.is_empty() {
        "-".into()
    } else {
        vls.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(",")
    }
}

/// Render the static rows as the `table4_static` table.
pub fn static_table(rows: &[StaticRow]) -> Table {
    titled_static_table("table4_static — Workload characteristics (static DLP analysis)", rows)
}

/// Render the irregular-kernel rows as the `irregular_static` table.
pub fn irregular_static_table(rows: &[StaticRow]) -> Table {
    titled_static_table("irregular_static — Irregular kernel mix (static DLP analysis)", rows)
}

fn titled_static_table(title: &str, rows: &[StaticRow]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "app",
            "% vect",
            "avg VL",
            "common VLs",
            "% opp",
            "insts",
            "exact",
            "advice",
            "est speedup",
        ],
    );
    for r in rows {
        let p = &r.profile.total;
        t.row(&[
            r.name.to_string(),
            format!("{:.1}", p.pct_vectorization()),
            format!("{:.1}", p.avg_vl()),
            fmt_vls(&p.common_vls(4)),
            format!("{:.1}", r.advice.opportunity_pct),
            r.profile.total.insts.to_string(),
            if r.profile.exact { "yes".into() } else { "no".into() },
            format!("{}x{}", r.advice.best.threads, r.advice.best.mvl),
            format!("{:.2}", r.advice.best.speedup),
        ]);
    }
    t
}

/// Measure every workload dynamically (the `table4` characterization) and
/// render the rows as the `table4_dynamic` table.
pub fn dynamic_rows(scale: Scale) -> Vec<Characterization> {
    dynamic_rows_over(&suite(), scale)
}

/// Measure the irregular kernels dynamically, for cross-checking the
/// static irregular rows with [`validate`].
pub fn dynamic_rows_irregular(scale: Scale) -> Vec<Characterization> {
    dynamic_rows_over(&irregular_suite(), scale)
}

fn dynamic_rows_over(ws: &[&'static dyn Workload], scale: Scale) -> Vec<Characterization> {
    ws.iter()
        .map(|&w| characterize(w, scale).unwrap_or_else(|err| panic!("{}: {err}", w.name())))
        .collect()
}

/// Render measured characterizations as the `table4_dynamic` table.
pub fn dynamic_table(rows: &[Characterization]) -> Table {
    let mut t = Table::new(
        "table4_dynamic — Workload characteristics (measured)",
        &["app", "% vect", "avg VL", "common VLs", "% opp", "insts"],
    );
    for c in rows {
        t.row(&[
            c.name.to_string(),
            format!("{:.1}", c.pct_vect),
            format!("{:.1}", c.avg_vl),
            fmt_vls(&c.common_vls),
            format!("{:.1}", c.opportunity),
            c.insts.to_string(),
        ]);
    }
    t
}

/// Cross-check the static profile against the measured characterization.
/// Returns the per-workload mismatch descriptions (empty = validated).
pub fn validate(stat: &[StaticRow], dyn_rows: &[Characterization]) -> Vec<String> {
    let mut errs = Vec::new();
    for r in stat {
        let Some(c) = dyn_rows.iter().find(|c| c.name == r.name) else {
            errs.push(format!("{}: no dynamic characterization row", r.name));
            continue;
        };
        let p = &r.profile.total;
        let pv = p.pct_vectorization();
        if (pv - c.pct_vect).abs() > 5.0 {
            errs.push(format!(
                "{}: % vect static {pv:.1} vs dynamic {:.1} (tolerance 5 points)",
                r.name, c.pct_vect
            ));
        }
        let av = p.avg_vl();
        if (av - c.avg_vl).abs() > 0.10 * c.avg_vl.max(1.0) {
            errs.push(format!(
                "{}: avg VL static {av:.2} vs dynamic {:.2} (tolerance 10%)",
                r.name, c.avg_vl
            ));
        }
        if p.common_vls(1).first() != c.common_vls.first() {
            errs.push(format!(
                "{}: top common VL static {:?} vs dynamic {:?}",
                r.name,
                p.common_vls(1),
                c.common_vls
            ));
        }
        if r.profile.exact && p.insts != c.insts {
            errs.push(format!(
                "{}: exact walk predicted {} insts but the run retired {}",
                r.name, p.insts, c.insts
            ));
        }
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_rows_cover_the_suite_and_are_exact() {
        let rows = run(Scale::Test);
        assert_eq!(rows.len(), suite().len());
        for r in &rows {
            assert!(r.profile.exact, "{} walk should be exact", r.name);
            assert!(!r.advice.ranking.is_empty(), "{} has no ranked partitions", r.name);
        }
    }

    #[test]
    fn static_table_has_one_row_per_workload() {
        let rows = run(Scale::Test);
        let t = static_table(&rows);
        assert_eq!(t.len(), suite().len());
        assert!(t.to_string().contains("mxm"));
    }

    #[test]
    fn irregular_rows_cover_the_irregular_suite() {
        let rows = run_irregular(Scale::Test);
        assert_eq!(rows.len(), irregular_suite().len());
        for r in &rows {
            assert!(r.profile.exact, "{} walk should be exact", r.name);
            assert!(!r.advice.ranking.is_empty(), "{} has no ranked partitions", r.name);
        }
        let t = irregular_static_table(&rows);
        assert_eq!(t.len(), rows.len());
        assert!(t.to_string().contains("spmv"));
    }
}
