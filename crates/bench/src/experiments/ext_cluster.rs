//! Extension study (DESIGN.md §11): multi-cluster ultra-wide VLT. A
//! monolithic vector machine keeps getting wider lanes, but short-vector
//! applications cannot fill them; VLT over *clustered* lanes (8 threads
//! spread across 2/4/8 clusters of 8 lanes) keeps every cluster busy at
//! the cost of replicated control logic and an inter-cluster network. At
//! each total width (16/32/64 lanes) we compare the 8-thread clustered
//! machine against the same-width single-thread base processor, and price
//! both with the Table 1 area model extended with router ports.
//!
//! The VLT side builds with [`vlt_workloads::Workload::build_spread`]:
//! the hierarchical
//! `vltcfg` operand raises per-thread MVL to `8 * clusters`, which is what
//! makes 8 VLT threads viable (fixed-VL phases like bt's 10/12-element
//! relaxation need MVL >= 12, impossible under the flat encoding's
//! `64 / 8 = 8`).

use std::sync::atomic::{AtomicUsize, Ordering};

use vlt_area::{v8_clustered_area, AreaModel};
use vlt_core::{SimResult, SystemConfig};
use vlt_stats::{Experiment, Series};
use vlt_workloads::{workload, Built, Scale};

use crate::harness::{run_built, SuiteError};

use super::fig3::APPS;

/// Total-lane sweep as cluster counts (8 lanes per cluster).
pub const CLUSTERS: [usize; 3] = [2, 4, 8];

/// One comparison point: a config and a pre-built (possibly
/// cluster-spread) program. [`RunSpec`](crate::harness::RunSpec) cannot
/// express the spread — it builds with the flat encoding — so this sweep
/// carries its own builds and fans them out the same way.
struct Point {
    app: &'static str,
    config: SystemConfig,
    built: Built,
    threads: usize,
}

fn points(scale: Scale) -> Vec<Point> {
    APPS.iter()
        .flat_map(|name| {
            let w = workload(name).unwrap();
            CLUSTERS.iter().flat_map(move |&c| {
                [
                    Point {
                        app: name,
                        config: SystemConfig::base(8 * c),
                        built: w.build(1, scale),
                        threads: 1,
                    },
                    Point {
                        app: name,
                        config: SystemConfig::v8_clustered(c),
                        built: w.build_spread(8, c, scale),
                        threads: 8,
                    },
                ]
            })
        })
        .collect()
}

/// Run every point on a bounded worker pool, preserving order.
fn run_points(points: &[Point]) -> Result<Vec<SimResult>, SuiteError> {
    let workers =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(points.len());
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<SimResult, SuiteError>>> = Vec::new();
    slots.resize_with(points.len(), || None);
    let results = std::sync::Mutex::new(&mut slots);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(p) = points.get(i) else { break };
                let r = run_built(p.config.clone(), &p.built, p.threads, p.app);
                results.lock().unwrap()[i] = Some(r);
            });
        }
    });
    slots.into_iter().map(|r| r.expect("worker pool filled every slot")).collect()
}

/// Run the ultra-wide VLT-vs-monolithic comparison at 16/32/64 lanes.
pub fn run(scale: Scale) -> Result<Experiment, SuiteError> {
    let mut e = Experiment::new(
        "ext_cluster",
        "Extension: 8-thread clustered VLT vs the same-width monolithic base",
        "V8-CMT-{c}x8 speedup over same-width base",
    );
    let x: Vec<String> = CLUSTERS.iter().map(|c| format!("{} lanes ({c}x8)", 8 * c)).collect();

    let points = points(scale);
    let results = run_points(&points)?;

    let per_app = 2 * CLUSTERS.len();
    for (i, name) in APPS.iter().enumerate() {
        let mut speedups = Vec::with_capacity(CLUSTERS.len());
        for j in 0..CLUSTERS.len() {
            let base = &results[i * per_app + 2 * j];
            let vlt = &results[i * per_app + 2 * j + 1];
            // Multi-cluster runs must carry network statistics and keep
            // the stall-cause books balanced — enforced here so the full
            // suite cannot silently regress the accounting.
            let net = vlt.mem.net.as_ref().expect("clustered run lost its network stats");
            assert!(net.transfers > 0, "{name}: no traffic crossed the cluster network");
            vlt.check_stall_conservation()
                .unwrap_or_else(|err| panic!("{name} at {} clusters: {err}", CLUSTERS[j]));
            speedups.push(base.cycles as f64 / vlt.cycles as f64);
        }
        e.push(Series::new(*name, &x, speedups));
    }

    // Area pricing: the clustered machine replicates VCLs and adds router
    // ports but shares the scalar units and L2; the monolithic base grows
    // only lanes. Both curves in mm² for the area-efficiency comparison.
    let m = AreaModel::default();
    e.push(Series::new(
        "area: monolithic base (mm^2)",
        &x,
        CLUSTERS.iter().map(|&c| m.base_processor(8 * c)).collect(),
    ));
    e.push(Series::new(
        "area: clustered VLT (mm^2)",
        &x,
        CLUSTERS.iter().map(|&c| v8_clustered_area(&m, 8, c)).collect(),
    ));
    Ok(e)
}
