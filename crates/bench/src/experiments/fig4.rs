//! Figure 4: normalized datapath utilization of the 24 arithmetic
//! datapaths (3 per lane x 8 lanes) for base, VLT-2, and VLT-4. Bars are
//! normalized to the base execution: a shorter bar means faster execution;
//! the busy fraction is invariant (the same element work), while VLT
//! compresses the stall and idle datapath-cycles.

use vlt_core::SystemConfig;
use vlt_stats::{Experiment, Series};
use vlt_workloads::{workload, Scale};

use crate::harness::{run_suite_parallel, RunSpec, SuiteError};

use super::fig3::APPS;

/// Run the utilization breakdown.
pub fn run(scale: Scale) -> Result<Experiment, SuiteError> {
    let mut e = Experiment::new(
        "fig4",
        "Datapath utilization in the 8 vector lanes (normalized to base)",
        "fraction of base datapath-cycles",
    );
    let x = vec!["base".to_string(), "VLT-2".to_string(), "VLT-4".to_string()];

    let specs: Vec<RunSpec> = APPS
        .iter()
        .flat_map(|name| {
            let w = workload(name).unwrap();
            [
                RunSpec { workload: w, config: SystemConfig::base(8), threads: 1, scale },
                RunSpec { workload: w, config: SystemConfig::v2_cmp(), threads: 2, scale },
                RunSpec { workload: w, config: SystemConfig::v4_cmp(), threads: 4, scale },
            ]
        })
        .collect();
    let results = run_suite_parallel(specs)?;

    for (i, name) in APPS.iter().enumerate() {
        let base_total = results[i * 3].utilization.total() as f64;
        let mut cat = |label: &str, pick: fn(&vlt_core::Utilization) -> u64| {
            let vals: Vec<f64> =
                (0..3).map(|k| pick(&results[i * 3 + k].utilization) as f64 / base_total).collect();
            e.push(Series::new(format!("{name}/{label}"), &x, vals));
        };
        cat("busy", |u| u.busy);
        cat("partly-idle", |u| u.partly_idle);
        cat("stalled", |u| u.stalled);
        cat("all-idle", |u| u.all_idle);
    }
    Ok(e)
}
