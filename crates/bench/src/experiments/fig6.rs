//! Figure 6: 8 VLT scalar threads on the vector lanes (each lane a 2-way
//! in-order core) versus 4 scalar threads on the CMT baseline (two 4-way
//! SMT cores, no vector unit). Paper: ~2x for radix and ocean, ~1x for
//! barnes (whose long divide chains suffer on the simple lane cores).

use vlt_core::SystemConfig;
use vlt_stats::{Experiment, Series};
use vlt_workloads::{workload, Scale};

use crate::harness::{run_suite_parallel, RunSpec, SuiteError};

/// The three parallel-but-not-vectorizable applications.
pub const APPS: [&str; 3] = ["radix", "ocean", "barnes"];

/// Paper values digitized from the Figure 6 chart (approximate; the chart
/// annotates 2.2 and 1.1).
fn paper_value(name: &str) -> f64 {
    match name {
        "radix" => 2.0,
        "ocean" => 2.2,
        "barnes" => 1.1,
        other => panic!("no Figure 6 data for {other}"),
    }
}

/// Run the scalar-thread comparison.
pub fn run(scale: Scale) -> Result<Experiment, SuiteError> {
    let mut e = Experiment::new(
        "fig6",
        "8 VLT scalar threads on lanes vs 4 threads on the CMT baseline",
        "VLT speedup over CMT",
    );
    let x = vec!["VLT lanes / CMT".to_string()];

    let specs: Vec<RunSpec> = APPS
        .iter()
        .flat_map(|name| {
            let w = workload(name).unwrap();
            [
                RunSpec { workload: w, config: SystemConfig::cmt(), threads: 4, scale },
                RunSpec {
                    workload: w,
                    config: SystemConfig::v4_cmt_lane_threads(),
                    threads: 8,
                    scale,
                },
            ]
        })
        .collect();
    let results = run_suite_parallel(specs)?;

    for (i, name) in APPS.iter().enumerate() {
        let cmt = results[i * 2].cycles as f64;
        let lanes = results[i * 2 + 1].cycles as f64;
        e.push(Series::new(*name, &x, vec![cmt / lanes]).with_paper(vec![paper_value(name)]));
    }
    Ok(e)
}
