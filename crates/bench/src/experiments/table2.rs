//! Table 2: percentage area increase of VLT configurations over the base
//! vector processor.

use vlt_area::{AreaModel, ConfigArea, VltDesign};
use vlt_stats::{Experiment, Series};

/// The paper's printed Table 2 values. Note V4-CMP: the paper's table
/// prints 26.9%, but its §4.2 text says 37% — the arithmetic (3 extra
/// 4-way SUs = 62.7 mm² on 170.2 mm²) supports the text; see
/// EXPERIMENTS.md.
fn paper_value(d: VltDesign) -> f64 {
    match d {
        VltDesign::V2Smt => 0.8,
        VltDesign::V4Smt => 1.3,
        VltDesign::V2Cmp => 12.3,
        VltDesign::V2CmpH => 3.4,
        VltDesign::V4Cmp => 26.9,
        VltDesign::V4CmpH => 10.1,
        VltDesign::V4Cmt => 13.8,
    }
}

/// Emit the Table 2 rows from the area model.
pub fn run() -> Experiment {
    let m = AreaModel::default();
    let mut e = Experiment::new(
        "table2",
        "Percentage area increase over the base vector processor",
        "% area increase",
    );
    let x = vec!["% increase".to_string()];
    for row in ConfigArea::table2(&m, 8) {
        e.push(
            Series::new(
                format!("{} ({})", row.design.name(), row.design.description()),
                &x,
                vec![row.pct_increase],
            )
            .with_paper(vec![paper_value(row.design)]),
        );
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rows_match_paper_except_v4cmp() {
        let e = run();
        for s in &e.series {
            let delta = (s.values[0] - s.paper[0]).abs();
            if s.label.starts_with("V4-CMP (") {
                // Known paper-internal inconsistency: we match the text's
                // 37%, not the table's 26.9%.
                assert!((s.values[0] - 36.8).abs() < 0.3, "{}", s.values[0]);
            } else {
                assert!(delta < 0.15, "{}: {} vs {}", s.label, s.values[0], s.paper[0]);
            }
        }
    }
}
