//! Figure 1: application speedup as the base vector processor scales from
//! 1 to 8 lanes. Long-vector applications scale; short-vector and scalar
//! applications plateau — the motivation for VLT.

use vlt_core::SystemConfig;
use vlt_stats::{Experiment, Series};
use vlt_workloads::{suite, Scale};

use crate::harness::{run_suite_parallel, RunSpec, SuiteError};

const LANES: [usize; 4] = [1, 2, 4, 8];

/// Paper values digitized from the Figure 1 chart (approximate; the paper
/// prints no table for this figure).
fn paper_series(name: &str) -> Vec<f64> {
    match name {
        "mxm" => vec![1.0, 2.0, 3.9, 7.2],
        "sage" => vec![1.0, 1.9, 3.7, 6.6],
        "mpenc" => vec![1.0, 1.5, 1.9, 2.1],
        "trfd" => vec![1.0, 1.7, 2.2, 2.5],
        "multprec" => vec![1.0, 1.7, 2.3, 2.6],
        "bt" => vec![1.0, 1.3, 1.5, 1.6],
        _ => vec![1.0, 1.0, 1.0, 1.0], // radix, ocean, barnes: no vectors
    }
}

/// Run the lane sweep for every workload.
pub fn run(scale: Scale) -> Result<Experiment, SuiteError> {
    let mut e = Experiment::new(
        "fig1",
        "Effect of lane count on the base vector processor",
        "speedup vs 1 lane",
    );
    let x: Vec<String> = LANES.iter().map(|l| format!("{l} lanes")).collect();

    let specs: Vec<RunSpec> = suite()
        .into_iter()
        .flat_map(|w| {
            LANES.iter().map(move |l| RunSpec {
                workload: w,
                config: SystemConfig::base(*l),
                threads: 1,
                scale,
            })
        })
        .collect();
    let results = run_suite_parallel(specs)?;

    for (wi, w) in suite().into_iter().enumerate() {
        let cycles: Vec<u64> = (0..LANES.len()).map(|li| results[wi * 4 + li].cycles).collect();
        let speedups: Vec<f64> = cycles.iter().map(|c| cycles[0] as f64 / *c as f64).collect();
        e.push(Series::new(w.name(), &x, speedups).with_paper(paper_series(w.name())));
    }
    Ok(e)
}
