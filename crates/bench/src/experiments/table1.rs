//! Table 1: component area breakdown (mm² at 0.10 µm).

use vlt_area::AreaModel;
use vlt_stats::{Experiment, Series};

/// Emit the component areas (analytical — Table 1 is the model's input,
/// echoed here with the derived base-processor total).
pub fn run() -> Experiment {
    let m = AreaModel::default();
    let mut e = Experiment::new("table1", "Area breakdown for vector processor components", "mm^2");
    let x = vec!["area".to_string()];
    let rows: [(&str, f64, f64); 6] = [
        ("2-way scalar unit + L1 caches", m.su2, 5.7),
        ("4-way scalar unit + L1 caches", m.su4, 20.9),
        ("2-way VCL", m.vcl2, 2.1),
        ("Vector lane", m.lane, 6.1),
        ("L2 cache (4MB)", m.l2, 98.4),
        ("Base vector processor (4-way SU, 8 lanes)", m.base_processor(8), 170.2),
    ];
    for (label, v, paper) in rows {
        e.push(Series::new(label, &x, vec![v]).with_paper(vec![paper]));
    }
    e
}

#[cfg(test)]
mod tests {
    #[test]
    fn matches_paper_exactly() {
        let e = super::run();
        for s in &e.series {
            assert!(
                (s.values[0] - s.paper[0]).abs() < 0.05,
                "{}: {} vs {}",
                s.label,
                s.values[0],
                s.paper[0]
            );
        }
    }
}
