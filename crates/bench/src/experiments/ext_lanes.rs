//! Extension study (paper §9): "VLT helps manufacturers of vector systems
//! to continue increasing the number of lanes". We scale the base design
//! to 16 lanes and measure how much more VLT recovers: the idle-lane
//! problem worsens with lane count for short-vector applications, so the
//! VLT-4 speedup should *grow* from 8 to 16 lanes.

use vlt_core::SystemConfig;
use vlt_stats::{Experiment, Series};
use vlt_workloads::{workload, Scale};

use crate::harness::{run_suite_parallel, RunSpec, SuiteError};

use super::fig3::APPS;

/// Run the 8-vs-16-lane VLT comparison.
pub fn run(scale: Scale) -> Result<Experiment, SuiteError> {
    let mut e = Experiment::new(
        "ext_lanes",
        "Extension: VLT-4 speedup as the lane count scales (paper §9 claim)",
        "V4-CMP speedup over same-lane base",
    );
    let x = vec!["8 lanes".to_string(), "16 lanes".to_string()];

    let specs: Vec<RunSpec> = APPS
        .iter()
        .flat_map(|name| {
            let w = workload(name).unwrap();
            [
                RunSpec { workload: w, config: SystemConfig::base(8), threads: 1, scale },
                RunSpec { workload: w, config: SystemConfig::v4_cmp(), threads: 4, scale },
                RunSpec { workload: w, config: SystemConfig::base(16), threads: 1, scale },
                RunSpec {
                    workload: w,
                    config: SystemConfig::v4_cmp().with_lanes(16),
                    threads: 4,
                    scale,
                },
            ]
        })
        .collect();
    let results = run_suite_parallel(specs)?;

    for (i, name) in APPS.iter().enumerate() {
        let b8 = results[i * 4].cycles as f64;
        let v8 = results[i * 4 + 1].cycles as f64;
        let b16 = results[i * 4 + 2].cycles as f64;
        let v16 = results[i * 4 + 3].cycles as f64;
        e.push(Series::new(*name, &x, vec![b8 / v8, b16 / v16]));
    }
    Ok(e)
}
