//! Measure workload characteristics against the paper's Table 4.

fn main() {
    let scale = vlt_bench::experiments::scale_from_env();
    println!("{}", vlt_bench::experiments::table4::render_full(scale));
    let e = vlt_bench::experiments::table4::run(scale);
    match e.write_to(&vlt_bench::results_dir()) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(err) => eprintln!("could not write results JSON: {err}"),
    }
}
