//! Extension/ablation study. See `vlt_bench::experiments::ext_chaining`.

fn main() {
    let scale = vlt_bench::experiments::scale_from_env();
    vlt_bench::experiments::emit_result(vlt_bench::experiments::ext_chaining::run(scale));
}
