//! Extension/ablation study. See `vlt_bench::experiments::ext_chaining`.

fn main() {
    let scale = vlt_bench::experiments::scale_from_env();
    let e = vlt_bench::experiments::ext_chaining::run(scale);
    vlt_bench::experiments::emit(&e);
}
