//! `vlprof`: run any workload (or a raw `.s` program) under the full
//! observability stack and emit a Perfetto/Chrome trace, a metrics JSON
//! document, and a terminal summary of the top stall causes per region.
//!
//! ```text
//! vlprof saxpy.s                      # profile an assembly file
//! vlprof mxm --config v4-cmp          # profile a suite workload
//! vlprof radix --threads 8 --config v4-cmt-lanes --out prof/
//! ```
//!
//! Both output documents are validated before they are written (the same
//! validators the test suite uses), so a malformed trace fails the run
//! instead of failing later inside `chrome://tracing`.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use vlt_core::{EngineMode, SimResult, System, SystemConfig};
use vlt_obs::perfetto::validate_chrome_trace;
use vlt_obs::{MetricsObserver, Multi, PerfettoObserver};
use vlt_stats::metrics::validate_metrics_json;
use vlt_stats::{MetricsRegistry, Table};
use vlt_workloads::{workload, Scale};

const USAGE: &str = "\
usage: vlprof <workload|file.s> [options]

  <workload|file.s>   a suite workload name (mxm, sage, mpenc, trfd,
                      multprec, bt, radix, ocean, barnes) or a path to a
                      VLT assembly file

options:
  --config NAME   design point: base, v2-smt, v2-cmp, v2-cmp-h, v4-smt,
                  v4-cmt, v4-cmp, v4-cmp-h, cmt, v4-cmt-lanes, or the
                  ultra-wide v8-2x8 / v8-4x8 / v8-8x8 (default: v4-cmt)
  --clusters N    replicate the config's vector unit over N lane clusters
                  (vector configs only; the trace gains per-cluster
                  partition tracks)
  --threads N     software threads (default: 4, the examples' shape)
  --scale S       workload problem size: test | small | full
                  (default: small; ignored for .s files)
  --engine E      functional engine: block (threaded-code blocks, the
                  default) | interp (the single-step oracle)
  --out DIR       output directory for trace.json + metrics.json
                  (default: vlprof-out)
  -h, --help      this text";

struct Args {
    target: String,
    config: String,
    clusters: usize,
    threads: usize,
    scale: Scale,
    engine: EngineMode,
    out: PathBuf,
}

fn parse_args(mut argv: std::env::Args) -> Result<Args, String> {
    argv.next(); // program name
    let mut target = None;
    let mut config = "v4-cmt".to_string();
    let mut clusters = 1usize;
    let mut threads = 4usize;
    let mut scale = Scale::Small;
    let mut engine = EngineMode::default();
    let mut out = PathBuf::from("vlprof-out");
    let next = |argv: &mut std::env::Args, flag: &str| {
        argv.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "-h" | "--help" => return Err(USAGE.to_string()),
            "--config" => config = next(&mut argv, "--config")?,
            "--clusters" => {
                clusters = next(&mut argv, "--clusters")?
                    .parse()
                    .ok()
                    .filter(|c: &usize| c.is_power_of_two())
                    .ok_or_else(|| "--clusters needs a power-of-two count".to_string())?;
            }
            "--threads" => {
                threads = next(&mut argv, "--threads")?
                    .parse()
                    .map_err(|_| "--threads needs a positive integer".to_string())?;
            }
            "--scale" => {
                scale = match next(&mut argv, "--scale")?.as_str() {
                    "test" => Scale::Test,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    s => return Err(format!("unknown scale {s:?} (test | small | full)")),
                };
            }
            "--engine" => {
                engine = match next(&mut argv, "--engine")?.as_str() {
                    "block" => EngineMode::Block,
                    "interp" => EngineMode::Interp,
                    s => return Err(format!("unknown engine {s:?} (block | interp)")),
                };
            }
            "--out" => out = PathBuf::from(next(&mut argv, "--out")?),
            s if s.starts_with('-') => return Err(format!("unknown option {s}\n\n{USAGE}")),
            _ => {
                if target.replace(a).is_some() {
                    return Err("more than one workload given".to_string());
                }
            }
        }
    }
    let target = target.ok_or_else(|| USAGE.to_string())?;
    if threads == 0 {
        return Err("--threads needs a positive integer".to_string());
    }
    Ok(Args { target, config, clusters, threads, scale, engine, out })
}

/// Resolve a design-point name (case- and `-`/`_`-insensitive).
fn config_by_name(name: &str) -> Option<SystemConfig> {
    match name.to_ascii_lowercase().replace('_', "-").as_str() {
        "base" => Some(SystemConfig::base(8)),
        "v2-smt" => Some(SystemConfig::v2_smt()),
        "v2-cmp" => Some(SystemConfig::v2_cmp()),
        "v2-cmp-h" => Some(SystemConfig::v2_cmp_h()),
        "v4-smt" => Some(SystemConfig::v4_smt()),
        "v4-cmt" => Some(SystemConfig::v4_cmt()),
        "v4-cmp" => Some(SystemConfig::v4_cmp()),
        "v4-cmp-h" => Some(SystemConfig::v4_cmp_h()),
        "cmt" => Some(SystemConfig::cmt()),
        "v4-cmt-lanes" | "lane-threads" => Some(SystemConfig::v4_cmt_lane_threads()),
        "v8-2x8" => Some(SystemConfig::v8_clustered(2)),
        "v8-4x8" => Some(SystemConfig::v8_clustered(4)),
        "v8-8x8" => Some(SystemConfig::v8_clustered(8)),
        _ => None,
    }
}

fn run(args: &Args) -> Result<(), String> {
    let mut cfg = config_by_name(&args.config)
        .ok_or_else(|| format!("unknown config {:?}\n\n{USAGE}", args.config))?;
    if args.clusters > 1 {
        if !cfg.has_vu || cfg.lane_threads {
            return Err(format!("{} has no vector unit to replicate over clusters", cfg.name));
        }
        cfg = cfg.with_clusters(args.clusters);
    }
    if args.threads > cfg.max_threads() {
        return Err(format!(
            "{} supports at most {} threads, got {}",
            cfg.name,
            cfg.max_threads(),
            args.threads
        ));
    }

    // Resolve the target: a `.s` file profiles as-is; a workload name
    // builds at the requested scale and verifies after the run.
    let is_asm = args.target.ends_with(".s");
    let (label, program, built) = if is_asm {
        let src = std::fs::read_to_string(&args.target)
            .map_err(|e| format!("cannot read {}: {e}", args.target))?;
        let program = vlt_isa::asm::assemble(&src).map_err(|e| format!("{}: {e}", args.target))?;
        (args.target.clone(), program, None)
    } else {
        let w = workload(&args.target).ok_or_else(|| {
            format!("{:?} is neither a workload name nor a .s file\n\n{USAGE}", args.target)
        })?;
        // Spread the program's vltcfg over the machine's clusters so an
        // ultra-wide profile actually exercises every cluster.
        let built = w.build_spread(args.threads, cfg.clusters, args.scale);
        (w.name().to_string(), built.program.clone(), Some(built))
    };

    eprintln!("vlprof: {label} on {} x{} ...", cfg.name, args.threads);
    let mut sys = System::new(cfg.clone(), &program, args.threads).with_engine(args.engine);
    let mut metrics = MetricsObserver::new();
    let mut trace = PerfettoObserver::new();
    let result = {
        let mut multi = Multi::new().with(&mut metrics).with(&mut trace);
        sys.run_observed(vlt_bench::harness::MAX_CYCLES, &mut multi)
            .map_err(|e| format!("simulation failed: {e}"))?
    };
    if let Some(built) = &built {
        (built.verifier)(sys.funcsim()).map_err(|m| format!("verification failed: {m}"))?;
    }
    result.check_stall_conservation().map_err(|e| format!("stall accounting broken: {e}"))?;

    // Validate both documents before writing anything.
    let metrics_doc = metrics.into_registry();
    let metrics_json = metrics_doc.to_json();
    validate_metrics_json(&metrics_json).map_err(|e| format!("metrics JSON invalid: {e}"))?;
    let trace_json = trace.into_json();
    validate_chrome_trace(&trace_json).map_err(|e| format!("trace JSON invalid: {e}"))?;

    std::fs::create_dir_all(&args.out)
        .map_err(|e| format!("cannot create {}: {e}", args.out.display()))?;
    for (name, doc) in [("trace.json", &trace_json), ("metrics.json", &metrics_json)] {
        let path = args.out.join(name);
        std::fs::write(&path, doc.pretty())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!("wrote {}", path.display());
    }

    print_summary(&label, &cfg, &result, &metrics_doc);
    Ok(())
}

/// Per-region stall-cause counters out of the registry, keyed by region.
fn stalls_by_region(reg: &MetricsRegistry) -> BTreeMap<u32, Vec<(String, u64)>> {
    let mut per_region: BTreeMap<u32, Vec<(String, u64)>> = BTreeMap::new();
    for (name, v) in reg.counters() {
        let Some(rest) = name.strip_prefix("stalls.region") else { continue };
        let Some((region, cause)) = rest.split_once('.') else { continue };
        let Ok(region) = region.parse::<u32>() else { continue };
        per_region.entry(region).or_default().push((cause.to_string(), v));
    }
    for causes in per_region.values_mut() {
        causes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    }
    per_region
}

fn print_summary(label: &str, cfg: &SystemConfig, result: &SimResult, reg: &MetricsRegistry) {
    println!("{label} on {} — {} cycles, {} committed", cfg.name, result.cycles, result.committed);
    if cfg.has_vu {
        println!(
            "vector datapaths {:.1}% busy; {} vector issues",
            100.0 * result.utilization.busy_fraction(),
            reg.counter("vu.issues"),
        );
    }
    if reg.counter("barrier.releases") > 0 {
        println!("{} barrier rendezvous", reg.counter("barrier.releases"));
    }
    println!();

    let per_region = stalls_by_region(reg);
    let mut t = Table::new(
        "Top stall causes per region",
        &["region", "cycles", "stall-cycles", "top causes"],
    );
    for (region, causes) in &per_region {
        let total: u64 = causes.iter().map(|(_, n)| n).sum();
        let top = causes
            .iter()
            .take(3)
            .map(|(cause, n)| format!("{cause} {:.0}%", 100.0 * *n as f64 / total as f64))
            .collect::<Vec<_>>()
            .join(", ");
        t.row(&[
            region.to_string(),
            result.region_cycles.get(region).copied().unwrap_or(0).to_string(),
            total.to_string(),
            top,
        ]);
    }
    if t.is_empty() {
        println!("no stalled or idle cycles attributed (nothing ever waited)");
    } else {
        println!("{t}");
    }
}

fn main() -> ExitCode {
    match parse_args(std::env::args()) {
        Ok(args) => match run(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("vlprof: {e}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
